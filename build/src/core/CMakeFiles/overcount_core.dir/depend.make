# Empty dependencies file for overcount_core.
# This may be replaced when dependencies are built.

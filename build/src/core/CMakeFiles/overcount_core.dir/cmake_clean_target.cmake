file(REMOVE_RECURSE
  "libovercount_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/overcount_core.dir/dht_density.cpp.o"
  "CMakeFiles/overcount_core.dir/dht_density.cpp.o.d"
  "CMakeFiles/overcount_core.dir/polling.cpp.o"
  "CMakeFiles/overcount_core.dir/polling.cpp.o.d"
  "CMakeFiles/overcount_core.dir/random_tour.cpp.o"
  "CMakeFiles/overcount_core.dir/random_tour.cpp.o.d"
  "CMakeFiles/overcount_core.dir/sample_collide.cpp.o"
  "CMakeFiles/overcount_core.dir/sample_collide.cpp.o.d"
  "CMakeFiles/overcount_core.dir/sampling.cpp.o"
  "CMakeFiles/overcount_core.dir/sampling.cpp.o.d"
  "CMakeFiles/overcount_core.dir/tree_aggregate.cpp.o"
  "CMakeFiles/overcount_core.dir/tree_aggregate.cpp.o.d"
  "libovercount_core.a"
  "libovercount_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overcount_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dht_density.cpp" "src/core/CMakeFiles/overcount_core.dir/dht_density.cpp.o" "gcc" "src/core/CMakeFiles/overcount_core.dir/dht_density.cpp.o.d"
  "/root/repo/src/core/polling.cpp" "src/core/CMakeFiles/overcount_core.dir/polling.cpp.o" "gcc" "src/core/CMakeFiles/overcount_core.dir/polling.cpp.o.d"
  "/root/repo/src/core/random_tour.cpp" "src/core/CMakeFiles/overcount_core.dir/random_tour.cpp.o" "gcc" "src/core/CMakeFiles/overcount_core.dir/random_tour.cpp.o.d"
  "/root/repo/src/core/sample_collide.cpp" "src/core/CMakeFiles/overcount_core.dir/sample_collide.cpp.o" "gcc" "src/core/CMakeFiles/overcount_core.dir/sample_collide.cpp.o.d"
  "/root/repo/src/core/sampling.cpp" "src/core/CMakeFiles/overcount_core.dir/sampling.cpp.o" "gcc" "src/core/CMakeFiles/overcount_core.dir/sampling.cpp.o.d"
  "/root/repo/src/core/tree_aggregate.cpp" "src/core/CMakeFiles/overcount_core.dir/tree_aggregate.cpp.o" "gcc" "src/core/CMakeFiles/overcount_core.dir/tree_aggregate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/walk/CMakeFiles/overcount_walk.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/overcount_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/spectral/CMakeFiles/overcount_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/overcount_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

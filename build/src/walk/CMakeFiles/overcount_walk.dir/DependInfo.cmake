
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/walk/exact.cpp" "src/walk/CMakeFiles/overcount_walk.dir/exact.cpp.o" "gcc" "src/walk/CMakeFiles/overcount_walk.dir/exact.cpp.o.d"
  "/root/repo/src/walk/hitting.cpp" "src/walk/CMakeFiles/overcount_walk.dir/hitting.cpp.o" "gcc" "src/walk/CMakeFiles/overcount_walk.dir/hitting.cpp.o.d"
  "/root/repo/src/walk/mixing.cpp" "src/walk/CMakeFiles/overcount_walk.dir/mixing.cpp.o" "gcc" "src/walk/CMakeFiles/overcount_walk.dir/mixing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/overcount_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/overcount_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/overcount_walk.dir/exact.cpp.o"
  "CMakeFiles/overcount_walk.dir/exact.cpp.o.d"
  "CMakeFiles/overcount_walk.dir/hitting.cpp.o"
  "CMakeFiles/overcount_walk.dir/hitting.cpp.o.d"
  "CMakeFiles/overcount_walk.dir/mixing.cpp.o"
  "CMakeFiles/overcount_walk.dir/mixing.cpp.o.d"
  "libovercount_walk.a"
  "libovercount_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overcount_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libovercount_walk.a"
)

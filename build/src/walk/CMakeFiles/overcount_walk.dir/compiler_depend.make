# Empty compiler generated dependencies file for overcount_walk.
# This may be replaced when dependencies are built.

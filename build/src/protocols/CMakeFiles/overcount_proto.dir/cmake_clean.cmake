file(REMOVE_RECURSE
  "CMakeFiles/overcount_proto.dir/gossip_protocol.cpp.o"
  "CMakeFiles/overcount_proto.dir/gossip_protocol.cpp.o.d"
  "CMakeFiles/overcount_proto.dir/polling_protocol.cpp.o"
  "CMakeFiles/overcount_proto.dir/polling_protocol.cpp.o.d"
  "CMakeFiles/overcount_proto.dir/random_tour_protocol.cpp.o"
  "CMakeFiles/overcount_proto.dir/random_tour_protocol.cpp.o.d"
  "CMakeFiles/overcount_proto.dir/sampling_protocol.cpp.o"
  "CMakeFiles/overcount_proto.dir/sampling_protocol.cpp.o.d"
  "libovercount_proto.a"
  "libovercount_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overcount_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for overcount_proto.
# This may be replaced when dependencies are built.

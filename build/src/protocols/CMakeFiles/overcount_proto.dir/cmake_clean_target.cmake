file(REMOVE_RECURSE
  "libovercount_proto.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/overcount_membership.dir/shuffle.cpp.o"
  "CMakeFiles/overcount_membership.dir/shuffle.cpp.o.d"
  "libovercount_membership.a"
  "libovercount_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overcount_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

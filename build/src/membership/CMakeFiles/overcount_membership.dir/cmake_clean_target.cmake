file(REMOVE_RECURSE
  "libovercount_membership.a"
)

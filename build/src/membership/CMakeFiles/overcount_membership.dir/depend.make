# Empty dependencies file for overcount_membership.
# This may be replaced when dependencies are built.

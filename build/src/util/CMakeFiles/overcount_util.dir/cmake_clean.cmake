file(REMOVE_RECURSE
  "CMakeFiles/overcount_util.dir/options.cpp.o"
  "CMakeFiles/overcount_util.dir/options.cpp.o.d"
  "CMakeFiles/overcount_util.dir/rng.cpp.o"
  "CMakeFiles/overcount_util.dir/rng.cpp.o.d"
  "CMakeFiles/overcount_util.dir/stats.cpp.o"
  "CMakeFiles/overcount_util.dir/stats.cpp.o.d"
  "CMakeFiles/overcount_util.dir/table.cpp.o"
  "CMakeFiles/overcount_util.dir/table.cpp.o.d"
  "CMakeFiles/overcount_util.dir/tests.cpp.o"
  "CMakeFiles/overcount_util.dir/tests.cpp.o.d"
  "libovercount_util.a"
  "libovercount_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overcount_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for overcount_util.
# This may be replaced when dependencies are built.

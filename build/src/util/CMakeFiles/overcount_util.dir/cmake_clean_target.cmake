file(REMOVE_RECURSE
  "libovercount_util.a"
)

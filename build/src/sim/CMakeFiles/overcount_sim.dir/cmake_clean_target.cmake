file(REMOVE_RECURSE
  "libovercount_sim.a"
)

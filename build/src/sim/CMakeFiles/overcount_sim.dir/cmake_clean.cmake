file(REMOVE_RECURSE
  "CMakeFiles/overcount_sim.dir/scenario.cpp.o"
  "CMakeFiles/overcount_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/overcount_sim.dir/trace.cpp.o"
  "CMakeFiles/overcount_sim.dir/trace.cpp.o.d"
  "libovercount_sim.a"
  "libovercount_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overcount_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for overcount_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/overcount_spectral.dir/conductance.cpp.o"
  "CMakeFiles/overcount_spectral.dir/conductance.cpp.o.d"
  "CMakeFiles/overcount_spectral.dir/dense.cpp.o"
  "CMakeFiles/overcount_spectral.dir/dense.cpp.o.d"
  "CMakeFiles/overcount_spectral.dir/laplacian.cpp.o"
  "CMakeFiles/overcount_spectral.dir/laplacian.cpp.o.d"
  "libovercount_spectral.a"
  "libovercount_spectral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overcount_spectral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libovercount_spectral.a"
)

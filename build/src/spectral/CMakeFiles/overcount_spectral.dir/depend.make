# Empty dependencies file for overcount_spectral.
# This may be replaced when dependencies are built.

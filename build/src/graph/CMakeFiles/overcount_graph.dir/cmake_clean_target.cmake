file(REMOVE_RECURSE
  "libovercount_graph.a"
)

# Empty dependencies file for overcount_graph.
# This may be replaced when dependencies are built.

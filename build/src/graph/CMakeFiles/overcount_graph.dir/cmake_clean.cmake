file(REMOVE_RECURSE
  "CMakeFiles/overcount_graph.dir/connectivity.cpp.o"
  "CMakeFiles/overcount_graph.dir/connectivity.cpp.o.d"
  "CMakeFiles/overcount_graph.dir/dynamic_graph.cpp.o"
  "CMakeFiles/overcount_graph.dir/dynamic_graph.cpp.o.d"
  "CMakeFiles/overcount_graph.dir/generators.cpp.o"
  "CMakeFiles/overcount_graph.dir/generators.cpp.o.d"
  "CMakeFiles/overcount_graph.dir/graph.cpp.o"
  "CMakeFiles/overcount_graph.dir/graph.cpp.o.d"
  "CMakeFiles/overcount_graph.dir/io.cpp.o"
  "CMakeFiles/overcount_graph.dir/io.cpp.o.d"
  "CMakeFiles/overcount_graph.dir/metrics.cpp.o"
  "CMakeFiles/overcount_graph.dir/metrics.cpp.o.d"
  "libovercount_graph.a"
  "libovercount_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overcount_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libovercount_des.a"
)

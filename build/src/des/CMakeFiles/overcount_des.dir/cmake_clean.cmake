file(REMOVE_RECURSE
  "CMakeFiles/overcount_des.dir/network.cpp.o"
  "CMakeFiles/overcount_des.dir/network.cpp.o.d"
  "CMakeFiles/overcount_des.dir/simulator.cpp.o"
  "CMakeFiles/overcount_des.dir/simulator.cpp.o.d"
  "libovercount_des.a"
  "libovercount_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overcount_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

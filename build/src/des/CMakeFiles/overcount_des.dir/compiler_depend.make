# Empty compiler generated dependencies file for overcount_des.
# This may be replaced when dependencies are built.

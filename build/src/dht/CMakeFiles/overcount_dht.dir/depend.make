# Empty dependencies file for overcount_dht.
# This may be replaced when dependencies are built.

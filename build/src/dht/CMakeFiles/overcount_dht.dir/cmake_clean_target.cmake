file(REMOVE_RECURSE
  "libovercount_dht.a"
)

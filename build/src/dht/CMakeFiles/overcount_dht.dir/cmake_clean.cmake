file(REMOVE_RECURSE
  "CMakeFiles/overcount_dht.dir/chord.cpp.o"
  "CMakeFiles/overcount_dht.dir/chord.cpp.o.d"
  "libovercount_dht.a"
  "libovercount_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overcount_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/live_stream_admission.dir/live_stream_admission.cpp.o"
  "CMakeFiles/live_stream_admission.dir/live_stream_admission.cpp.o.d"
  "live_stream_admission"
  "live_stream_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_stream_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

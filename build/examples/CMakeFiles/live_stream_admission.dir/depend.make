# Empty dependencies file for live_stream_admission.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for neighbour_sampling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/neighbour_sampling.dir/neighbour_sampling.cpp.o"
  "CMakeFiles/neighbour_sampling.dir/neighbour_sampling.cpp.o.d"
  "neighbour_sampling"
  "neighbour_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neighbour_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for overlay_monitor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dht_bootstrap.dir/dht_bootstrap.cpp.o"
  "CMakeFiles/dht_bootstrap.dir/dht_bootstrap.cpp.o.d"
  "dht_bootstrap"
  "dht_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dht_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for dht_bootstrap.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/spectral_test[1]_include.cmake")
include("/root/repo/build/tests/walk_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/des_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/dht_test[1]_include.cmake")
include("/root/repo/build/tests/membership_test[1]_include.cmake")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/membership/shuffle_test.cpp" "tests/CMakeFiles/membership_test.dir/membership/shuffle_test.cpp.o" "gcc" "tests/CMakeFiles/membership_test.dir/membership/shuffle_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/overcount_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/overcount_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/overcount_des.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/overcount_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/overcount_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/membership/CMakeFiles/overcount_membership.dir/DependInfo.cmake"
  "/root/repo/build/src/spectral/CMakeFiles/overcount_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/walk/CMakeFiles/overcount_walk.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/overcount_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/overcount_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/aggregate_test.cpp.o"
  "CMakeFiles/core_test.dir/core/aggregate_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/baselines2_test.cpp.o"
  "CMakeFiles/core_test.dir/core/baselines2_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/baselines_test.cpp.o"
  "CMakeFiles/core_test.dir/core/baselines_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/collision_law_test.cpp.o"
  "CMakeFiles/core_test.dir/core/collision_law_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/ctrw_tour_test.cpp.o"
  "CMakeFiles/core_test.dir/core/ctrw_tour_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/f_sweep_test.cpp.o"
  "CMakeFiles/core_test.dir/core/f_sweep_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/gap_diagnostics_test.cpp.o"
  "CMakeFiles/core_test.dir/core/gap_diagnostics_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/monitor_test.cpp.o"
  "CMakeFiles/core_test.dir/core/monitor_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/quantile_test.cpp.o"
  "CMakeFiles/core_test.dir/core/quantile_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/random_tour_test.cpp.o"
  "CMakeFiles/core_test.dir/core/random_tour_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/sample_collide_test.cpp.o"
  "CMakeFiles/core_test.dir/core/sample_collide_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/sampling_test.cpp.o"
  "CMakeFiles/core_test.dir/core/sampling_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/seed_sweep_test.cpp.o"
  "CMakeFiles/core_test.dir/core/seed_sweep_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/walk_test.dir/walk/exact_identities_test.cpp.o"
  "CMakeFiles/walk_test.dir/walk/exact_identities_test.cpp.o.d"
  "CMakeFiles/walk_test.dir/walk/exact_test.cpp.o"
  "CMakeFiles/walk_test.dir/walk/exact_test.cpp.o.d"
  "CMakeFiles/walk_test.dir/walk/hitting_test.cpp.o"
  "CMakeFiles/walk_test.dir/walk/hitting_test.cpp.o.d"
  "CMakeFiles/walk_test.dir/walk/metropolis_test.cpp.o"
  "CMakeFiles/walk_test.dir/walk/metropolis_test.cpp.o.d"
  "CMakeFiles/walk_test.dir/walk/mixing_test.cpp.o"
  "CMakeFiles/walk_test.dir/walk/mixing_test.cpp.o.d"
  "CMakeFiles/walk_test.dir/walk/walkers_test.cpp.o"
  "CMakeFiles/walk_test.dir/walk/walkers_test.cpp.o.d"
  "walk_test"
  "walk_test.pdb"
  "walk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

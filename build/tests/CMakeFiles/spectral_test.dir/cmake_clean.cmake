file(REMOVE_RECURSE
  "CMakeFiles/spectral_test.dir/spectral/conductance_test.cpp.o"
  "CMakeFiles/spectral_test.dir/spectral/conductance_test.cpp.o.d"
  "CMakeFiles/spectral_test.dir/spectral/dense_test.cpp.o"
  "CMakeFiles/spectral_test.dir/spectral/dense_test.cpp.o.d"
  "CMakeFiles/spectral_test.dir/spectral/laplacian_test.cpp.o"
  "CMakeFiles/spectral_test.dir/spectral/laplacian_test.cpp.o.d"
  "CMakeFiles/spectral_test.dir/spectral/spectrum_families_test.cpp.o"
  "CMakeFiles/spectral_test.dir/spectral/spectrum_families_test.cpp.o.d"
  "spectral_test"
  "spectral_test.pdb"
  "spectral_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/proto_test.dir/protocols/determinism_test.cpp.o"
  "CMakeFiles/proto_test.dir/protocols/determinism_test.cpp.o.d"
  "CMakeFiles/proto_test.dir/protocols/gossip_protocol_test.cpp.o"
  "CMakeFiles/proto_test.dir/protocols/gossip_protocol_test.cpp.o.d"
  "CMakeFiles/proto_test.dir/protocols/polling_protocol_test.cpp.o"
  "CMakeFiles/proto_test.dir/protocols/polling_protocol_test.cpp.o.d"
  "CMakeFiles/proto_test.dir/protocols/random_tour_protocol_test.cpp.o"
  "CMakeFiles/proto_test.dir/protocols/random_tour_protocol_test.cpp.o.d"
  "CMakeFiles/proto_test.dir/protocols/sampling_protocol_test.cpp.o"
  "CMakeFiles/proto_test.dir/protocols/sampling_protocol_test.cpp.o.d"
  "proto_test"
  "proto_test.pdb"
  "proto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig11_sc_shrink.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig06_rt_scalefree.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_aggregates"
  "../bench/bench_aggregates.pdb"
  "CMakeFiles/bench_aggregates.dir/bench_aggregates.cpp.o"
  "CMakeFiles/bench_aggregates.dir/bench_aggregates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig12_sc_grow"
  "../bench/bench_fig12_sc_grow.pdb"
  "CMakeFiles/bench_fig12_sc_grow.dir/bench_fig12_sc_grow.cpp.o"
  "CMakeFiles/bench_fig12_sc_grow.dir/bench_fig12_sc_grow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_sc_grow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig12_sc_grow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig04_value_cdf"
  "../bench/bench_fig04_value_cdf.pdb"
  "CMakeFiles/bench_fig04_value_cdf.dir/bench_fig04_value_cdf.cpp.o"
  "CMakeFiles/bench_fig04_value_cdf.dir/bench_fig04_value_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_value_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig02_rt_sliding.
# This may be replaced when dependencies are built.

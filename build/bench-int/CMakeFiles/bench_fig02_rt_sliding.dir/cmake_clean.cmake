file(REMOVE_RECURSE
  "../bench/bench_fig02_rt_sliding"
  "../bench/bench_fig02_rt_sliding.pdb"
  "CMakeFiles/bench_fig02_rt_sliding.dir/bench_fig02_rt_sliding.cpp.o"
  "CMakeFiles/bench_fig02_rt_sliding.dir/bench_fig02_rt_sliding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_rt_sliding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

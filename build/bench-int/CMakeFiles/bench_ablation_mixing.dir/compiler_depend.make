# Empty compiler generated dependencies file for bench_ablation_mixing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_ablation_mixing"
  "../bench/bench_ablation_mixing.pdb"
  "CMakeFiles/bench_ablation_mixing.dir/bench_ablation_mixing.cpp.o"
  "CMakeFiles/bench_ablation_mixing.dir/bench_ablation_mixing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

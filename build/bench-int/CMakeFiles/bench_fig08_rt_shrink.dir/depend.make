# Empty dependencies file for bench_fig08_rt_shrink.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig08_rt_shrink"
  "../bench/bench_fig08_rt_shrink.pdb"
  "CMakeFiles/bench_fig08_rt_shrink.dir/bench_fig08_rt_shrink.cpp.o"
  "CMakeFiles/bench_fig08_rt_shrink.dir/bench_fig08_rt_shrink.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_rt_shrink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

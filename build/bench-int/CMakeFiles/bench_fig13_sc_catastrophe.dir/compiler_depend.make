# Empty compiler generated dependencies file for bench_fig13_sc_catastrophe.
# This may be replaced when dependencies are built.

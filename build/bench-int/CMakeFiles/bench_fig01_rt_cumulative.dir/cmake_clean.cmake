file(REMOVE_RECURSE
  "../bench/bench_fig01_rt_cumulative"
  "../bench/bench_fig01_rt_cumulative.pdb"
  "CMakeFiles/bench_fig01_rt_cumulative.dir/bench_fig01_rt_cumulative.cpp.o"
  "CMakeFiles/bench_fig01_rt_cumulative.dir/bench_fig01_rt_cumulative.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_rt_cumulative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

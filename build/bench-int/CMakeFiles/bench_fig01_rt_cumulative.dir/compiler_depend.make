# Empty compiler generated dependencies file for bench_fig01_rt_cumulative.
# This may be replaced when dependencies are built.

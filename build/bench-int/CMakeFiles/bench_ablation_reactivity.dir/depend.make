# Empty dependencies file for bench_ablation_reactivity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_ablation_reactivity"
  "../bench/bench_ablation_reactivity.pdb"
  "CMakeFiles/bench_ablation_reactivity.dir/bench_ablation_reactivity.cpp.o"
  "CMakeFiles/bench_ablation_reactivity.dir/bench_ablation_reactivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reactivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

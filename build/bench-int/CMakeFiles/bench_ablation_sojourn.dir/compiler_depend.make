# Empty compiler generated dependencies file for bench_ablation_sojourn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_ablation_sojourn"
  "../bench/bench_ablation_sojourn.pdb"
  "CMakeFiles/bench_ablation_sojourn.dir/bench_ablation_sojourn.cpp.o"
  "CMakeFiles/bench_ablation_sojourn.dir/bench_ablation_sojourn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sojourn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

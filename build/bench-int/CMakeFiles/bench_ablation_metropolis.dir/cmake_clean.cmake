file(REMOVE_RECURSE
  "../bench/bench_ablation_metropolis"
  "../bench/bench_ablation_metropolis.pdb"
  "CMakeFiles/bench_ablation_metropolis.dir/bench_ablation_metropolis.cpp.o"
  "CMakeFiles/bench_ablation_metropolis.dir/bench_ablation_metropolis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_metropolis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

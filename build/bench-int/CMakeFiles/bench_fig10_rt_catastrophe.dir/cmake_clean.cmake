file(REMOVE_RECURSE
  "../bench/bench_fig10_rt_catastrophe"
  "../bench/bench_fig10_rt_catastrophe.pdb"
  "CMakeFiles/bench_fig10_rt_catastrophe.dir/bench_fig10_rt_catastrophe.cpp.o"
  "CMakeFiles/bench_fig10_rt_catastrophe.dir/bench_fig10_rt_catastrophe.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_rt_catastrophe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig10_rt_catastrophe.
# This may be replaced when dependencies are built.

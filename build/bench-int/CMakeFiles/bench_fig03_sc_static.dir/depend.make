# Empty dependencies file for bench_fig03_sc_static.
# This may be replaced when dependencies are built.

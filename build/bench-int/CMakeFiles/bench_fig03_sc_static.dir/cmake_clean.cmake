file(REMOVE_RECURSE
  "../bench/bench_fig03_sc_static"
  "../bench/bench_fig03_sc_static.pdb"
  "CMakeFiles/bench_fig03_sc_static.dir/bench_fig03_sc_static.cpp.o"
  "CMakeFiles/bench_fig03_sc_static.dir/bench_fig03_sc_static.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_sc_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

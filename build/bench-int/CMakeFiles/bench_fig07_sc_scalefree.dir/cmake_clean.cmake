file(REMOVE_RECURSE
  "../bench/bench_fig07_sc_scalefree"
  "../bench/bench_fig07_sc_scalefree.pdb"
  "CMakeFiles/bench_fig07_sc_scalefree.dir/bench_fig07_sc_scalefree.cpp.o"
  "CMakeFiles/bench_fig07_sc_scalefree.dir/bench_fig07_sc_scalefree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_sc_scalefree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig07_sc_scalefree.
# This may be replaced when dependencies are built.

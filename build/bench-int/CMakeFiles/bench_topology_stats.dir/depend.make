# Empty dependencies file for bench_topology_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_topology_stats"
  "../bench/bench_topology_stats.pdb"
  "CMakeFiles/bench_topology_stats.dir/bench_topology_stats.cpp.o"
  "CMakeFiles/bench_topology_stats.dir/bench_topology_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topology_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

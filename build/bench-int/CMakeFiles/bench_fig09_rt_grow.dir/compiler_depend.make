# Empty compiler generated dependencies file for bench_fig09_rt_grow.
# This may be replaced when dependencies are built.

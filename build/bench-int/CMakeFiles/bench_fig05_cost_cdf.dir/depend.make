# Empty dependencies file for bench_fig05_cost_cdf.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_ablation_des.
# This may be replaced when dependencies are built.

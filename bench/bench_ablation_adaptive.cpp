// Ablation (Section 4.1): the timer bootstrap when N and lambda_2 are
// unknown — re-run Sample & Collide with doubled timers until the estimate
// stops climbing.
//
// Shape: the trajectory ramps while under-budgeted and flattens at the true
// size; total cost is dominated by the last couple of rounds (geometric
// series), so "not knowing T" costs only a small constant factor.
#include "common.hpp"
#include "core/adaptive.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("ablation_adaptive",
           "Section 4.1 bootstrap: doubling the timer until stabilisation");
  paper_note(
      "Sec 4.1: run with T, re-run with 2T, ...; estimates increase with T "
      "until T is sufficiently large");

  Rng master(master_seed());
  Rng graph_rng = master.split();
  const Graph g = make_balanced(graph_rng);
  const double n = static_cast<double>(g.num_nodes());
  const double oracle_timer = sampling_timer(g, master_seed());

  Rng run_rng = master.split();
  const auto r = adaptive_sample_collide(g, 0, 50, run_rng,
                                         /*initial_timer=*/0.25,
                                         /*tolerance=*/0.2,
                                         /*max_rounds=*/14);
  Series trajectory{"estimate_by_round", {}, {}};
  for (std::size_t i = 0; i < r.trajectory.size(); ++i)
    trajectory.add(static_cast<double>(i + 1), r.trajectory[i] / n);
  emit("Ablation - adaptive timer trajectory (estimate / true N)",
       {trajectory});

  std::cout << "# converged=" << (r.converged ? "yes" : "no")
            << " rounds=" << r.rounds
            << " final timer=" << format_double(r.timer, 2)
            << " (oracle recommends " << format_double(oracle_timer, 2)
            << ")\n"
            << "# final estimate=" << format_double(r.estimate, 0)
            << " true=" << g.num_nodes()
            << " total hops=" << r.total_hops << '\n';

  // Cost overhead vs knowing the right timer up front.
  SampleCollideEstimator oracle(g, 0, oracle_timer, 50, master.split());
  const auto oracle_run = oracle.estimate();
  std::cout << "# oracle single-run hops=" << oracle_run.hops
            << "; bootstrap overhead = x"
            << format_double(static_cast<double>(r.total_hops) /
                                 static_cast<double>(oracle_run.hops),
                             2)
            << '\n';
  return 0;
}

// Figure 2: Random Tour estimates averaged over a sliding window of the
// last 200 samples, on three balanced random graphs.
//
// Paper shape: curves fluctuate around 100% with ~+/-20% excursions
// (window of 200 -> standard deviation ~ 0.2 of the mean... the paper reads
// this as "roughly consistent with an accuracy of +/-20%").
#include "common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("fig02_rt_sliding",
           "Random Tour sliding-window (200) mean, 3 balanced graphs");
  paper_note(
      "Fig 2: windowed curves hover around 100% with ~20% excursions");

  const std::size_t total_runs = runs(2000);
  const std::size_t window = 200;
  std::vector<Series> series;
  Rng master(master_seed());
  for (int graph_idx = 1; graph_idx <= 3; ++graph_idx) {
    Rng graph_rng = master.split();
    const Graph g = make_balanced(graph_rng);
    const double n = static_cast<double>(g.num_nodes());
    RandomTourEstimator estimator(g, 0, master.split());
    SlidingWindowMean mean(window);
    WalkStats walk;
    WalkStatsProbe probe(walk);
    SerialTimer timer;

    Series s{"estimation_" + std::to_string(graph_idx), {}, {}};
    RunningStats quality;
    for (std::size_t run = 1; run <= total_runs; ++run) {
      mean.push(estimator.estimate_size(probe).value);
      if (run >= window && run % 10 == 0) {
        const double pct = 100.0 * mean.mean() / n;
        s.add(static_cast<double>(run), pct);
        quality.add(pct);
      }
    }
    std::cout << "# graph " << graph_idx
              << ": windowed mean=" << format_double(quality.mean(), 2)
              << "% sd=" << format_double(quality.stddev(), 2) << "%\n";
    const std::string label = "rt graph " + std::to_string(graph_idx);
    emit_batch(label, timer.finish(total_runs, estimator.total_steps()));
    emit_walk_stats(label, walk);
    series.push_back(std::move(s));
  }
  emit("Figure 2 - RT sliding window 200 (% of system size)", series);
  return 0;
}

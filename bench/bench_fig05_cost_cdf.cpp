// Figure 5: CDFs of per-run message cost (normalised by system size) for
// Random Tour, Sample & Collide l=10 and l=100, on a balanced random graph.
//
// Paper shape: S&C costs are far less variable than RT's; RT's cost CDF has
// a long tail (return times are heavy-tailed) while S&C's is nearly a step.
#include "common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("fig05_cost_cdf",
           "CDF of per-run message cost: RT vs S&C l=10 vs S&C l=100");
  paper_note(
      "Fig 5: RT cost mean ~7.2N and highly variable; S&C(10) ~1.1N, "
      "S&C(100) ~3.3N and concentrated");

  Rng master(master_seed());
  Rng graph_rng = master.split();
  const Graph g = make_balanced(graph_rng);
  const double n = static_cast<double>(g.num_nodes());
  const double timer = sampling_timer(g, master_seed());

  auto cdf_series = [](const std::string& name, std::vector<double> values,
                       double x_max) {
    Ecdf ecdf(std::move(values));
    Series s{name, {}, {}};
    for (double x = 0.0; x <= x_max; x += x_max / 120.0) s.add(x, ecdf(x));
    return s;
  };

  std::vector<Series> series;
  {
    RandomTourEstimator rt(g, 0, master.split());
    WalkStats walk;
    WalkStatsProbe probe(walk);
    SerialTimer clock;
    std::vector<double> costs;
    const std::size_t rt_runs = runs(1000);
    for (std::size_t i = 0; i < rt_runs; ++i)
      costs.push_back(static_cast<double>(rt.estimate_size(probe).steps) / n);
    RunningStats st;
    for (double c : costs) st.add(c);
    std::cout << "# RT cost/N: mean=" << format_double(st.mean(), 2)
              << " var=" << format_double(st.variance(), 2) << '\n';
    emit_batch("rt", clock.finish(rt_runs, rt.total_steps()));
    emit_walk_stats("rt", walk);
    series.push_back(cdf_series("RT", std::move(costs), 20.0));
  }
  for (const std::size_t ell : {std::size_t{10}, std::size_t{100}}) {
    SampleCollideEstimator sc(g, 0, timer, ell, master.split());
    WalkStats walk;
    WalkStatsProbe probe(walk);
    SerialTimer clock;
    std::vector<double> costs;
    std::uint64_t hops = 0;
    const std::size_t sc_runs = runs(ell == 10 ? 400 : 120);
    for (std::size_t i = 0; i < sc_runs; ++i) {
      const auto e = sc.estimate(probe);
      hops += e.hops;
      costs.push_back(static_cast<double>(e.hops) / n);
    }
    RunningStats st;
    for (double c : costs) st.add(c);
    std::cout << "# SC l=" << ell
              << " cost/N: mean=" << format_double(st.mean(), 2)
              << " var=" << format_double(st.variance(), 2) << '\n';
    const std::string label = "sc l=" + std::to_string(ell);
    emit_batch(label, clock.finish(sc_runs, hops));
    emit_walk_stats(label, walk);
    series.push_back(
        cdf_series("SC_l" + std::to_string(ell), std::move(costs), 20.0));
  }
  emit("Figure 5 - CDF of cost in messages (normalised by N)", series);
  return 0;
}

// Sharded-walk-engine bench: message cost and throughput of Random Tour
// batches completed by cross-shard token passing, over S in {1, 2, 4, 8}
// shards, direct (edge-per-handoff, bit-identical) vs stitched (segment
// splicing, ~L/lambda handoffs per tour). The headline counter —
// shard.handoffs_per_tour for the stitched S=8 run (lower-is-better in
// baseline diffs) — lands in BENCH_shard.json, and the bench exits non-zero
// when the stitched handoff/step ratio at S=8 exceeds the 0.25 gate.
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <string>

#include "common.hpp"
#include "shard/engine.hpp"
#include "shard/partition.hpp"
#include "shard/segment.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("shard",
           "sharded walk engine: handoffs per tour and throughput, direct "
           "token passing vs segment stitching, S in {1,2,4,8}");
  paper_note(
      "Das Sarma et al. (PAPERS.md): splicing precomputed sub-walks at "
      "shard boundaries completes a length-L walk in ~L/lambda handoffs "
      "instead of one per crossing edge; the tour estimates themselves stay "
      "the paper's Section 3 regenerative-cycle estimator");

  Rng master(master_seed());
  const Graph g = make_balanced(master);
  NodeId origin = 0;
  while (g.degree(origin) == 0) ++origin;
  const std::size_t m = runs(2000);
  const std::uint64_t seed = master_seed() + 17;
  ParallelRunner runner(worker_threads());

  const std::uint32_t shard_counts[] = {1, 2, 4, 8};
  Series direct_handoffs{"direct_handoffs_per_tour", {}, {}};
  Series stitched_handoffs{"stitched_handoffs_per_tour", {}, {}};
  Series stitched_ratio{"stitched_handoff_step_ratio", {}, {}};

  double gate_ratio = 0.0;        // stitched handoffs/steps at the widest S
  double gate_handoffs = 0.0;     // stitched handoffs per tour at widest S
  double direct_steps_s8 = 0.0;   // throughput comparison at S=8
  double stitched_steps_s8 = 0.0;

  TextTable table({"S", "path", "handoffs/tour", "handoffs/steps",
                   "rounds", "Msteps/s"});
  for (const std::uint32_t shards : shard_counts) {
    const ShardPlan plan = make_shard_plan(g, shards);
    const ShardedGraph sharded(g, plan);
    const std::string tag = "shard.s" + std::to_string(shards);
    const auto walks = static_cast<double>(m);

    // Direct: every boundary crossing is one token handoff. This is the
    // bit-identical reference path.
    ShardedWalkEngine engine(sharded, runner);
    const TourBatch direct =
        engine.run_tours(origin, m, [](NodeId) { return 1.0; }, seed);
    const ShardRunStats direct_stats = engine.last_run_stats();
    emit_batch(tag + ".direct", direct);
    const double direct_hpt =
        static_cast<double>(direct_stats.handoffs) / walks;
    const double direct_mpss =
        direct.stats.wall_seconds > 0.0
            ? static_cast<double>(direct.stats.steps) /
                  direct.stats.wall_seconds / 1e6
            : 0.0;
    direct_handoffs.add(shards, direct_hpt);
    record_value(tag + ".direct_handoffs_per_tour", direct_hpt);
    record_value(tag + ".direct_steps_per_second",
                 direct_mpss * 1e6);
    table.add_row({std::to_string(shards), "direct",
                   format_double(direct_hpt, 2),
                   format_double(direct.total_steps > 0
                                     ? static_cast<double>(
                                           direct_stats.handoffs) /
                                           static_cast<double>(
                                               direct.total_steps)
                                     : 0.0,
                                 4),
                   std::to_string(direct_stats.rounds),
                   format_double(direct_mpss, 2)});

    // Stitched: boundary arrivals consume precomputed lambda-step segments,
    // so handoffs amortise to ~1/lambda per step.
    SegmentStore store(sharded, StitchConfig{});
    engine.enable_stitching(store);
    const TourBatch stitched =
        engine.run_tours(origin, m, [](NodeId) { return 1.0; }, seed);
    const ShardRunStats stitched_stats = engine.last_run_stats();
    engine.disable_stitching();
    emit_batch(tag + ".stitched", stitched);
    const double stitched_hpt =
        static_cast<double>(stitched_stats.handoffs) / walks;
    const double ratio =
        stitched.total_steps > 0
            ? static_cast<double>(stitched_stats.handoffs) /
                  static_cast<double>(stitched.total_steps)
            : 0.0;
    const double stitched_mpss =
        stitched.stats.wall_seconds > 0.0
            ? static_cast<double>(stitched.stats.steps) /
                  stitched.stats.wall_seconds / 1e6
            : 0.0;
    stitched_handoffs.add(shards, stitched_hpt);
    stitched_ratio.add(shards, ratio);
    record_value(tag + ".stitched_handoffs_per_tour", stitched_hpt);
    record_value(tag + ".stitched_handoff_step_ratio", ratio);
    record_value(tag + ".stitched_steps_per_second", stitched_mpss * 1e6);
    record_value(tag + ".stitch_steps",
                 static_cast<double>(stitched_stats.stitch_steps));
    record_value(tag + ".rounds_direct",
                 static_cast<double>(direct_stats.rounds));
    record_value(tag + ".rounds_stitched",
                 static_cast<double>(stitched_stats.rounds));
    table.add_row({std::to_string(shards), "stitched",
                   format_double(stitched_hpt, 2), format_double(ratio, 4),
                   std::to_string(stitched_stats.rounds),
                   format_double(stitched_mpss, 2)});

    if (shards == 8) {
      gate_ratio = ratio;
      gate_handoffs = stitched_hpt;
      direct_steps_s8 = direct_mpss * 1e6;
      stitched_steps_s8 = stitched_mpss * 1e6;
    }
  }
  table.print(std::cout);

  emit("shard handoffs per tour vs shard count",
       {direct_handoffs, stitched_handoffs, stitched_ratio});

  // Headline counters. shard.handoffs_per_tour is the stitched S=8 figure
  // the baseline diff watches (lower-is-better, see
  // scripts/validate_bench_json.py); the gate below is the ISSUE acceptance
  // criterion: stitched tours at S=8 must spend at most 0.25 handoffs per
  // walk step (i.e. complete an L-step tour in <= 0.25 L handoffs).
  record_value("shard.handoffs_per_tour", gate_handoffs);
  record_value("shard.handoff_step_ratio", gate_ratio);
  record_value("shard.stitched_vs_direct_round_speedup",
               direct_steps_s8 > 0.0 && stitched_steps_s8 > 0.0
                   ? stitched_steps_s8 / direct_steps_s8
                   : 0.0);

  constexpr double kGate = 0.25;
  if (gate_ratio > kGate) {
    std::cerr << "FAIL: stitched S=8 handoff/step ratio " << gate_ratio
              << " exceeds the " << kGate << " gate\n";
    return 1;
  }
  std::cout << "# gate: stitched S=8 handoff/step ratio "
            << format_double(gate_ratio, 4) << " <= "
            << format_double(kGate, 2) << "\n";
  return 0;
}

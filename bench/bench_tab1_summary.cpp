// Table 1: summary statistics of the three estimators on a balanced random
// graph — mean and variance of normalised estimate values, and mean and
// variance of normalised per-run costs.
//
// Paper's Table 1 (100,000-node balanced graph):
//   Algorithm        RT      SC l=10   SC l=100
//   Average value    1.01    1.08      1.01
//   Variance(value)  1.3     0.1       0.01
//   Average cost     7.16    1.08      3.27
//   Variance(cost)   8.06    0.1       0.02
// Shape to reproduce: value variances ~ 1/l for S&C and O(1) for RT; cost
// ratio SC(100)/SC(10) ~ sqrt(10) ~ 3.2; RT cost ~ dbar * N / d_i.
#include "common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("tab1_summary", "Table 1: value/cost summary for RT, S&C 10/100");
  paper_note(
      "Tab 1: value var RT=1.3 SC10=0.1 SC100=0.01; cost mean RT=7.16N "
      "SC10=1.08N SC100=3.27N");

  Rng master(master_seed());
  Rng graph_rng = master.split();
  const Graph g = make_balanced(graph_rng);
  const double n = static_cast<double>(g.num_nodes());
  const double timer = sampling_timer(g, master_seed());
  std::cout << "# n=" << g.num_nodes() << " timer=" << format_double(timer, 2)
            << " avg_degree=" << format_double(g.average_degree(), 2) << '\n';

  struct Row {
    std::string name;
    RunningStats value;
    RunningStats cost;
  };
  std::vector<Row> rows;
  ParallelRunner runner(worker_threads());

  {
    Row row{"RT", {}, {}};
    const std::size_t rt_runs = runs(1500);
    const std::uint64_t batch_seed = master.split().next();
    WalkStats walk;
    const auto batch =
        run_tours_size_probed(g, 0, rt_runs, batch_seed, runner, walk);
    for (const auto& e : batch.tours) {
      row.value.add(e.value / n);
      row.cost.add(static_cast<double>(e.steps) / n);
    }
    emit_batch("rt_tours", batch);
    emit_walk_stats("rt_tours", walk);
    rows.push_back(std::move(row));
  }
  for (const std::size_t ell : {std::size_t{10}, std::size_t{100}}) {
    Row row{"SC, l=" + std::to_string(ell), {}, {}};
    const std::size_t sc_runs = runs(ell == 10 ? 500 : 150);
    const std::uint64_t batch_seed = master.split().next();
    WalkStats walk;
    const auto batch = run_sc_trials_probed(g, 0, sc_runs, timer, ell,
                                            batch_seed, runner, walk);
    for (const auto& e : batch.trials) {
      row.value.add(e.simple / n);
      row.cost.add(static_cast<double>(e.hops) / n);
    }
    emit_batch("sc_trials l=" + std::to_string(ell), batch);
    emit_walk_stats("sc_trials l=" + std::to_string(ell), walk);
    rows.push_back(std::move(row));
  }

  TextTable table({"Algorithm", "Average value", "Variance(value)",
                   "Average cost", "Variance(cost)"});
  for (const auto& row : rows)
    table.add_row({row.name, format_double(row.value.mean(), 2),
                   format_double(row.value.variance(), 3),
                   format_double(row.cost.mean(), 2),
                   format_double(row.cost.variance(), 3)});
  table.print(std::cout);

  std::cout << "# RT cost/N = dbar/d_origin = "
            << format_double(g.average_degree(), 2) << "/" << g.degree(0)
            << "; the paper's 7.16 corresponds to a degree-1 initiator.\n"
            << "# S&C cost/N scales with the timer T (ours is budgeted from "
               "the measured gap; the paper fixes T=10).\n";
  const double cost_ratio = rows[2].cost.mean() / rows[1].cost.mean();
  std::cout << "# SC cost ratio l=100 / l=10: " << format_double(cost_ratio, 2)
            << " (paper: 3.27, theory sqrt(10)=3.16)\n";
  const double var_ratio =
      rows[1].value.variance() / rows[2].value.variance();
  std::cout << "# SC value-variance ratio l=10 / l=100: "
            << format_double(var_ratio, 1) << " (theory: 10)\n";
  return 0;
}

// Serving-layer bench: request latency percentiles and cache behaviour of
// the EstimateService under concurrent mixed load (size + degree-sum,
// Random Tour + Sample & Collide, spread accuracy targets) over a lightly
// churning overlay. The headline values — serve.request_latency_p50_us /
// _p99_us (lower-is-better in baseline diffs) and serve.cache_hit_ratio —
// land in BENCH_serve.json for validate_bench_json.py.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "graph/dynamic_graph.hpp"
#include "obs/cost/cost.hpp"
#include "serve/service.hpp"
#include "serve/source.hpp"
#include "sim/scenario.hpp"

namespace {

// NaN (not 0) on an empty vector, matching Log2Histogram::percentile: "no
// observations" must not diff as a 0 us latency in baseline comparisons.
// The JSON writer turns NaN into null, so BENCH_serve.json stays parseable.
double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return std::numeric_limits<double>::quiet_NaN();
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[idx];
}

}  // namespace

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("serve",
           "estimate-serving broker: latency percentiles, cache hit ratio "
           "and load-shedding under concurrent mixed queries");
  paper_note(
      "each query's (eps, delta) target is inverted into a tour budget via "
      "eps = sqrt(2 d_bar / (lambda2 m delta)) (Prop. 2), so serving cost "
      "tracks the requested accuracy, not the caller count");

  Rng master(master_seed());
  Rng graph_rng = master.split();
  Rng churn_rng = master.split();
  DynamicGraph graph(make_balanced(graph_rng));
  std::mutex graph_mutex;
  const std::size_t base_alive = graph.num_alive();

  // The cost ledger rides the whole run: each request class below carries a
  // distinct tenant, so BENCH_serve.json gains per-tenant cost.* headline
  // counters a baseline diff can watch ("which team's query mix got more
  // expensive?"). Declared before the service so it outlives the broker.
  CostLedger ledger;
  ledger.install();

  ServiceConfig config;
  config.threads = worker_threads();
  config.queue_capacity = 64;
  config.freshness.base_ttl_us = 2'000'000;
  config.seed = master_seed() + 1;
  EstimateService service(dynamic_graph_source(graph, graph_mutex), config);

  const int clients = 4;
  const int per_client = static_cast<int>(runs(150));

  std::atomic<bool> churning{true};
  std::thread churn([&] {
    Rng local = churn_rng;
    while (churning.load(std::memory_order_relaxed)) {
      {
        std::lock_guard lock(graph_mutex);
        churn_join(graph, TopologyKind::kBalanced, local, 3, 10);
        if (graph.num_alive() > base_alive) churn_leave(graph, local);
      }
      // Slow enough that versions survive a few batches: the bench measures
      // both the miss path (fresh batches) and the hit path (cached serves).
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
  });

  struct ClientTally {
    std::vector<double> latencies_us;       ///< every kOk response
    std::vector<double> miss_latencies_us;  ///< kOk responses that ran walks
    std::uint64_t ok = 0, hits = 0, coalesced = 0, rejected = 0,
                  deadline_missed = 0, failed = 0;
  };
  std::vector<ClientTally> tallies(clients);

  auto client = [&](int id) {
    ClientTally& t = tallies[static_cast<std::size_t>(id)];
    t.latencies_us.reserve(static_cast<std::size_t>(per_client));
    for (int q = 0; q < per_client; ++q) {
      EstimateRequest req;
      // One tenant per request class, so the ledger's per-tenant rows tell
      // the load mix apart: the tight-target "search" class should dominate
      // the step bill even though every tenant sends the same query count.
      switch ((id + q) % 4) {
        case 0:
          req.epsilon = 0.3;
          req.delta = 0.2;
          req.tenant = "ads";
          break;
        case 1:
          req.kind = QueryKind::kDegreeSum;
          req.epsilon = 0.4;
          req.delta = 0.2;
          req.tenant = "analytics";
          break;
        case 2:
          // The one deadline-carrying class in the mix: generous enough to
          // mostly hit, so the serve.slo.*.deadline ledger shows a real
          // hit-rate instead of degenerate all-miss/all-hit.
          req.epsilon = 0.2;
          req.delta = 0.1;
          req.deadline_us = service.now_us() + 2'000'000;
          req.tenant = "search";
          break;
        default:
          req.method = EstimateMethod::kSampleCollide;
          req.epsilon = 0.5;
          req.delta = 0.3;
          req.tenant = "research";
          break;
      }
      const EstimateResponse resp = service.query(req);
      switch (resp.status) {
        case ServeStatus::kOk:
          ++t.ok;
          t.latencies_us.push_back(static_cast<double>(resp.latency_us));
          if (!resp.cache_hit)
            t.miss_latencies_us.push_back(static_cast<double>(resp.latency_us));
          if (resp.cache_hit) ++t.hits;
          if (resp.coalesced) ++t.coalesced;
          break;
        case ServeStatus::kRejected:
          ++t.rejected;
          std::this_thread::sleep_for(std::chrono::microseconds(
              std::min<std::uint64_t>(resp.retry_after_us, 20'000)));
          break;
        case ServeStatus::kDeadlineMiss:
          ++t.deadline_missed;
          break;
        case ServeStatus::kFailed:
          ++t.failed;
          break;
      }
    }
  };

  const auto wall_start = std::chrono::steady_clock::now();
  SerialTimer load_timer;
  std::vector<std::thread> workers;
  for (int id = 0; id < clients; ++id) workers.emplace_back(client, id);
  for (auto& w : workers) w.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  churning.store(false, std::memory_order_relaxed);
  churn.join();
  service.stop();
  ledger.uninstall();  // broker joined: the ledger is quiesced, fold away

  // Fold the ledger by tenant. Refresh batches account under "(refresh)",
  // so the sum over tenants plus the sink covers every charged step.
  struct TenantCost {
    std::uint64_t steps = 0, walks = 0, cpu_us = 0, cache_hits = 0;
  };
  std::map<std::string, TenantCost> by_tenant;
  for (const CostRecord& row : ledger.snapshot()) {
    if (row.ctx == 0) continue;
    TenantCost& t = by_tenant[row.context.tenant];
    t.steps += row.steps();
    t.walks += row.get(CostField::kWalks);
    t.cpu_us += row.cpu_us();
    t.cache_hits += row.get(CostField::kCacheHits);
  }
  const CostRecord cost_totals = ledger.totals();

  ClientTally total;
  for (const ClientTally& t : tallies) {
    total.ok += t.ok;
    total.hits += t.hits;
    total.coalesced += t.coalesced;
    total.rejected += t.rejected;
    total.deadline_missed += t.deadline_missed;
    total.failed += t.failed;
    total.latencies_us.insert(total.latencies_us.end(),
                              t.latencies_us.begin(), t.latencies_us.end());
    total.miss_latencies_us.insert(total.miss_latencies_us.end(),
                                   t.miss_latencies_us.begin(),
                                   t.miss_latencies_us.end());
  }
  std::sort(total.latencies_us.begin(), total.latencies_us.end());
  std::sort(total.miss_latencies_us.begin(), total.miss_latencies_us.end());
  const double p50 = percentile(total.latencies_us, 0.50);
  const double p90 = percentile(total.latencies_us, 0.90);
  const double p99 = percentile(total.latencies_us, 0.99);
  const double miss_p50 = percentile(total.miss_latencies_us, 0.50);
  const double miss_p99 = percentile(total.miss_latencies_us, 0.99);
  const double hit_ratio =
      total.ok > 0 ? static_cast<double>(total.hits) /
                         static_cast<double>(total.ok)
                   : 0.0;
  const auto snap = service.metrics().snapshot();
  const double batches = snap.counter_or_zero("serve.batches");
  const double walks = snap.counter_or_zero("serve.walks");
  const double steps = snap.counter_or_zero("serve.steps");
  const double queries =
      static_cast<double>(clients) * static_cast<double>(per_client);

  // The runtime-counter row for the whole serving run: tasks = successful
  // responses, steps = walk steps the broker actually spent. Clients block
  // on futures, so parallel efficiency here reflects the broker, not them.
  emit_batch("serve.load",
             load_timer.finish(static_cast<std::size_t>(total.ok),
                               static_cast<std::uint64_t>(steps)));
  Log2Histogram latency_hist;
  for (double v : total.latencies_us)
    latency_hist.record(static_cast<std::uint64_t>(v));
  emit_histogram("serve.request_latency_us", latency_hist);
  Log2Histogram miss_hist;
  for (double v : total.miss_latencies_us)
    miss_hist.record(static_cast<std::uint64_t>(v));
  emit_histogram("serve.miss_latency_us", miss_hist);

  TextTable table({"metric", "value"});
  table.add_row({"queries", format_double(queries, 0)});
  table.add_row({"ok", format_double(static_cast<double>(total.ok), 0)});
  table.add_row({"cache hit ratio", format_double(hit_ratio, 3)});
  table.add_row(
      {"coalesced", format_double(static_cast<double>(total.coalesced), 0)});
  table.add_row(
      {"rejected", format_double(static_cast<double>(total.rejected), 0)});
  table.add_row({"failed",
                 format_double(static_cast<double>(total.failed), 0)});
  table.add_row({"latency p50 (us)", format_double(p50, 0)});
  table.add_row({"latency p90 (us)", format_double(p90, 0)});
  table.add_row({"latency p99 (us)", format_double(p99, 0)});
  table.add_row({"miss latency p50 (us)", format_double(miss_p50, 0)});
  table.add_row({"miss latency p99 (us)", format_double(miss_p99, 0)});
  table.add_row({"batches run", format_double(batches, 0)});
  table.add_row({"walks spent", format_double(walks, 0)});
  for (const auto& [tenant, cost] : by_tenant) {
    const double share =
        cost_totals.steps() > 0
            ? static_cast<double>(cost.steps) /
                  static_cast<double>(cost_totals.steps())
            : 0.0;
    table.add_row({"cost: " + tenant + " steps",
                   format_double(static_cast<double>(cost.steps), 0) +
                       " (" + format_double(100.0 * share, 1) + "%)"});
  }
  table.print(std::cout);

  record_value("serve.queries", queries);
  record_value("serve.ok", static_cast<double>(total.ok));
  record_value("serve.request_latency_p50_us", p50);
  record_value("serve.request_latency_p90_us", p90);
  record_value("serve.request_latency_p99_us", p99);
  record_value("serve.miss_latency_p50_us", miss_p50);
  record_value("serve.miss_latency_p99_us", miss_p99);
  record_value("serve.cache_hit_ratio", hit_ratio);
  record_value("serve.coalesced", static_cast<double>(total.coalesced));
  record_value("serve.rejected", static_cast<double>(total.rejected));
  record_value("serve.failed", static_cast<double>(total.failed));
  record_value("serve.batches", batches);
  record_value("serve.walks", walks);
  record_value("serve.throughput_qps", wall_s > 0.0 ? queries / wall_s : 0.0);
  // The SLO ledger's whole family (per-class hit rates, budget burn,
  // request/miss counters) rides into BENCH_serve.json so baseline diffs
  // catch deadline-health regressions, not just latency shifts.
  for (const auto& [name, v] : snap.counters)
    if (name.rfind("serve.slo.", 0) == 0)
      record_value(name, static_cast<double>(v));
  for (const auto& [name, v] : snap.gauges)
    if (name.rfind("serve.slo.", 0) == 0) record_value(name, v);

  // Per-tenant accounting headlines. The baseline diff watches these
  // warn-only: a tenant's step bill drifting is a cost-mix signal, not a
  // hard regression gate like the latency percentiles above.
  record_value("cost.steps", static_cast<double>(cost_totals.steps()));
  record_value("cost.cpu_us", static_cast<double>(cost_totals.cpu_us()));
  record_value("cost.contexts", static_cast<double>(ledger.contexts()));
  record_value("cost.unattributed_steps",
               static_cast<double>(ledger.unattributed().steps()));
  for (const auto& [tenant, cost] : by_tenant) {
    const std::string prefix = "cost.tenant." + tenant + ".";
    record_value(prefix + "steps", static_cast<double>(cost.steps));
    record_value(prefix + "walks", static_cast<double>(cost.walks));
    record_value(prefix + "cpu_us", static_cast<double>(cost.cpu_us));
    record_value(prefix + "cache_hits",
                 static_cast<double>(cost.cache_hits));
    record_value(prefix + "steps_share",
                 cost_totals.steps() > 0
                     ? static_cast<double>(cost.steps) /
                           static_cast<double>(cost_totals.steps())
                     : 0.0);
  }

  // The reconciliation contract holds under full load or the accounting is
  // lying: every walk step the broker spent must appear in the ledger, and
  // every admitted query carried a context (zero unattributed residue).
  // Under OVERCOUNT_COST=OFF the charge sites are compiled away and there
  // is nothing to reconcile.
#if OVERCOUNT_COST_ENABLED
  if (static_cast<double>(cost_totals.steps()) != steps) {
    std::cerr << "error: cost ledger holds " << cost_totals.steps()
              << " steps but the broker spent " << steps << "\n";
    return 1;
  }
  if (ledger.unattributed().steps() != 0) {
    std::cerr << "error: " << ledger.unattributed().steps()
              << " walk steps escaped attribution\n";
    return 1;
  }
#endif  // OVERCOUNT_COST_ENABLED
  return total.failed == 0 ? 0 : 1;
}

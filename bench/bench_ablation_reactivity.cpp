// Ablation (Section 5.1 "Reactivity" / 5.3 window discussion): accuracy vs
// time-to-react after a sudden population change, for plain sliding windows
// of several sizes and for the change-detecting SizeMonitor.
//
// Shape: bigger windows are smoother but converge to a new level only after
// ~window runs ("the smaller the window, the faster the convergence time
// but the higher the estimator variance"); the detector gets both.
#include <cmath>
#include <memory>

#include "common.hpp"
#include "core/monitor.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("ablation_reactivity",
           "window size vs reactivity after a catastrophic change");
  paper_note(
      "Sec 5.3: window size trades steady-state variance against "
      "convergence time after jumps (cf. Fig 10 lag)");

  // One shared stream of raw S&C estimates over a -33% catastrophe.
  ScenarioSpec spec;
  spec.initial_nodes = overlay_size() / 2;
  spec.runs = runs(240);
  spec.topology = TopologyKind::kBalanced;
  spec.actual_size_every = 1;
  const std::size_t drop_at = spec.runs / 2;
  spec.sudden.push_back(
      SuddenChange{drop_at,
                   -static_cast<std::ptrdiff_t>(spec.initial_nodes / 3)});
  const std::size_t ell = 50;
  const auto raw =
      run_scenario(spec, sample_collide_estimate_fn(10.0, ell), 1, 7);

  struct Tracker {
    std::string name;
    std::function<double(double)> feed;  // returns current smoothed value
  };
  std::vector<Tracker> trackers;
  std::vector<SlidingWindowMean> windows;
  windows.reserve(3);
  for (std::size_t w : {5u, 20u, 80u}) {
    windows.emplace_back(w);
    auto* win = &windows.back();
    trackers.push_back({"window_" + std::to_string(w),
                        [win](double e) {
                          win->push(e);
                          return win->mean();
                        }});
  }
  MonitorConfig config;
  config.window = 80;
  config.estimate_rel_std = 1.0 / std::sqrt(static_cast<double>(ell));
  auto monitor = std::make_shared<SizeMonitor>(config);
  trackers.push_back({"detector_w80", [monitor](double e) {
                        monitor->feed(e);
                        return monitor->value();
                      }});

  TextTable table({"tracker", "steady rel-sd before drop",
                   "runs to re-enter +/-10% band", "rel-sd after recovery"});
  std::vector<Series> series;
  for (auto& t : trackers) {
    Series s{t.name, {}, {}};
    RunningStats before;
    RunningStats after;
    std::ptrdiff_t recovered_at = -1;
    for (std::size_t i = 0; i < raw.points.size(); ++i) {
      const double smoothed = t.feed(raw.points[i].estimate);
      const double actual = raw.points[i].actual_size;
      s.add(static_cast<double>(i), smoothed);
      const double rel = smoothed / actual - 1.0;
      if (i > 40 && i < drop_at) before.add(rel);
      if (i >= drop_at) {
        if (recovered_at < 0 && std::abs(rel) <= 0.10)
          recovered_at = static_cast<std::ptrdiff_t>(i - drop_at);
        if (recovered_at >= 0 &&
            i >= drop_at + static_cast<std::size_t>(recovered_at) + 10)
          after.add(rel);
      }
    }
    table.add_row(
        {t.name, format_double(std::sqrt(before.mean() * before.mean() +
                                         before.variance()),
                               3),
         recovered_at < 0 ? "never" : std::to_string(recovered_at),
         after.count() > 0 ? format_double(after.stddev(), 3) : "-"});
    series.push_back(std::move(s));
  }
  table.print(std::cout);
  Series real{"real_size", {}, {}};
  for (std::size_t i = 0; i < raw.points.size(); ++i)
    real.add(static_cast<double>(i), raw.points[i].actual_size);
  series.insert(series.begin(), std::move(real));
  emit("Ablation - reactivity after -33% catastrophe", series,
       /*plot=*/false);
  std::cout << "# detector changes flagged: " << monitor->changes_detected()
            << '\n';
  return 0;
}

// Ablation (Remark 1): exponential versus deterministic sojourn times in
// the CTRW sampler.
//
// Deterministic sojourns save one random draw per hop, but on a bipartite
// regular overlay the sample's side is a deterministic function of the
// timer — variation distance to uniform never drops below 1/2. Exponential
// sojourns have the Lemma 1 guarantee on every graph.
#include "common.hpp"
#include "walk/exact.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("ablation_sojourn",
           "exponential vs deterministic sojourns (Remark 1 counterexample)");
  paper_note(
      "Remark 1: deterministic-sojourn CTRW on bipartite graphs never "
      "mixes; exponential does");

  Rng master(master_seed());
  Rng graph_rng = master.split();
  const std::size_t half = 256;
  const Graph bipartite = bipartite_regular(half, 4, graph_rng);

  // Empirical side frequencies at a generous timer.
  const double timer = 16.0 + 0.5 / 4.0;  // floor(T*d) even
  Rng walk_rng = master.split();
  std::size_t det_origin_side = 0;
  std::size_t exp_origin_side = 0;
  const int draws = 4000;
  for (int i = 0; i < draws; ++i) {
    if (deterministic_ctrw_sample(bipartite, 0, timer, walk_rng).node < half)
      ++det_origin_side;
    if (ctrw_sample(bipartite, 0, timer, walk_rng).node < half)
      ++exp_origin_side;
  }
  TextTable table({"sampler", "P(sample on origin side)", "uniform would be"});
  table.add_row({"deterministic sojourn",
                 format_double(static_cast<double>(det_origin_side) / draws, 3),
                 "0.500"});
  table.add_row({"exponential sojourn",
                 format_double(static_cast<double>(exp_origin_side) / draws, 3),
                 "0.500"});
  table.print(std::cout);

  // Exact variation distances on a small bipartite graph as T grows.
  Rng small_rng = master.split();
  const Graph small = bipartite_regular(12, 3, small_rng);
  Series det_series{"deterministic", {}, {}};
  Series exp_series{"exponential", {}, {}};
  for (double t = 0.5; t <= 24.0; t += 0.5) {
    det_series.add(t, variation_distance_to_uniform(
                          deterministic_ctrw_distribution_regular(small, 0, t)));
    exp_series.add(t,
                   variation_distance_to_uniform(ctrw_distribution(small, 0, t)));
  }
  emit("Ablation - variation distance to uniform vs timer T",
       {det_series, exp_series});
  std::cout << "# deterministic floor: "
            << format_double(det_series.ys.back(), 3)
            << " (stuck at >= 0.5); exponential: "
            << format_double(exp_series.ys.back(), 5) << " (vanishes)\n";
  return 0;
}

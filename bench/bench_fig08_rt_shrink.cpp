// Figure 8: Random Tour (sliding window 700) on a shrinking network — 50%
// of the nodes depart between runs 3000 and 8000 (of 10000).
//
// Paper shape: the windowed estimate tracks the descending real size with a
// lag of roughly the window length; accuracy is maintained throughout.
#include "dynamic_common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("fig08_rt_shrink",
           "Random Tour window=700 on gradually shrinking overlay");
  paper_note(
      "Fig 8: estimates follow the 100k->50k ramp (runs 3000-8000) with "
      "window-sized lag; constant accuracy");

  DynamicFigure fig;
  const std::size_t total_runs = runs(10000);
  fig.title = "Figure 8 - RT window 700, shrinking network";
  fig.spec = gradual_decrease_spec(overlay_size(), total_runs,
                                   TopologyKind::kBalanced);
  fig.spec.actual_size_every = std::max<std::size_t>(1, total_runs / 500);
  fig.estimator = random_tour_estimate_fn();
  fig.window = std::max<std::size_t>(1, runs(700));
  fig.repetitions = 3;
  fig.stride = std::max<std::size_t>(1, total_runs / 200);
  run_dynamic_figure(fig);
  return 0;
}

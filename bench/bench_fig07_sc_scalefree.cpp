// Figure 7: raw Sample & Collide estimates (l = 100) on a scale-free
// (Barabasi-Albert) overlay.
//
// Paper shape: same tight ~+/-10% scatter as on the balanced graph — the
// CTRW sampler's uniformity is insensitive to node heterogeneity.
#include "common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("fig07_sc_scalefree",
           "Sample&Collide l=100 raw estimates, scale-free graph");
  paper_note("Fig 7: accuracy matches the balanced-graph case (Fig 3)");

  Rng master(master_seed());
  Rng graph_rng = master.split();
  const Graph g = make_scale_free(graph_rng);
  const double n = static_cast<double>(g.num_nodes());
  const double timer = sampling_timer(g, master_seed());
  std::cout << "# n=" << g.num_nodes() << " max_degree=" << g.max_degree()
            << " timer=" << format_double(timer, 2) << '\n';

  SampleCollideEstimator estimator(g, 0, timer, 100, master.split());
  WalkStats walk;
  WalkStatsProbe probe(walk);
  SerialTimer clock;
  Series s{"sc_l100_scalefree", {}, {}};
  RunningStats quality;
  std::uint64_t hops = 0;
  const std::size_t total_runs = runs(100);
  for (std::size_t run = 1; run <= total_runs; ++run) {
    const auto e = estimator.estimate(probe);
    hops += e.hops;
    const double pct = 100.0 * e.simple / n;
    s.add(static_cast<double>(run), pct);
    quality.add(pct);
  }
  std::cout << "# mean=" << format_double(quality.mean(), 2)
            << "% sd=" << format_double(quality.stddev(), 2)
            << "% (theory ~10%)\n";
  emit_batch("sc l=100", clock.finish(total_runs, hops));
  emit_walk_stats("sc l=100", walk);
  emit("Figure 7 - S&C l=100 on scale-free graph (%)", {s});
  return 0;
}

// Figure 6: Random Tour with a sliding window of 200 on a scale-free
// (Barabasi-Albert) overlay.
//
// Paper shape: accuracy comparable to the balanced-graph case (Figure 2) —
// the estimator copes with heavy degree heterogeneity unchanged.
#include "common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("fig06_rt_scalefree",
           "Random Tour sliding-window (200) mean, scale-free graph");
  paper_note(
      "Fig 6: same ~+/-20% windowed accuracy as on balanced graphs despite "
      "power-law degrees");

  const std::size_t total_runs = runs(1000);
  const std::size_t window = 200;
  std::vector<Series> series;
  Rng master(master_seed());
  for (int graph_idx = 1; graph_idx <= 3; ++graph_idx) {
    Rng graph_rng = master.split();
    const Graph g = make_scale_free(graph_rng);
    const double n = static_cast<double>(g.num_nodes());
    RandomTourEstimator estimator(g, 0, master.split());
    SlidingWindowMean mean(window);
    WalkStats walk;
    WalkStatsProbe probe(walk);
    SerialTimer timer;

    Series s{"estimation_" + std::to_string(graph_idx), {}, {}};
    RunningStats quality;
    for (std::size_t run = 1; run <= total_runs; ++run) {
      mean.push(estimator.estimate_size(probe).value);
      if (run >= window && run % 10 == 0) {
        const double pct = 100.0 * mean.mean() / n;
        s.add(static_cast<double>(run), pct);
        quality.add(pct);
      }
    }
    std::cout << "# graph " << graph_idx << ": max_degree=" << g.max_degree()
              << " windowed mean=" << format_double(quality.mean(), 2)
              << "% sd=" << format_double(quality.stddev(), 2) << "%\n";
    const std::string label = "rt graph " + std::to_string(graph_idx);
    emit_batch(label, timer.finish(total_runs, estimator.total_steps()));
    emit_walk_stats(label, walk);
    series.push_back(std::move(s));
  }
  emit("Figure 6 - RT sliding window 200 on scale-free graph (%)", series);
  return 0;
}

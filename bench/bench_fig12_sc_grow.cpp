// Figure 12: Sample & Collide (l = 100, no window) on a growing network —
// 50% more nodes join between runs 30 and 80 (of 100).
//
// Paper shape: raw estimates follow the 100k -> 150k ramp within ~10%.
#include "dynamic_common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("fig12_sc_grow",
           "Sample&Collide l=100 on gradually growing overlay");
  paper_note("Fig 12: estimates follow 100k->150k (runs 30-80) within ~10%");

  Rng probe_rng(master_seed());
  const Graph probe = make_balanced(probe_rng);
  const double timer = sampling_timer(probe, master_seed());
  std::cout << "# timer=" << format_double(timer, 2) << '\n';

  DynamicFigure fig;
  const std::size_t total_runs = runs(100);
  fig.title = "Figure 12 - S&C l=100, growing network";
  fig.spec = gradual_increase_spec(overlay_size(), total_runs,
                                   TopologyKind::kBalanced);
  fig.spec.actual_size_every = 1;
  fig.estimator = sample_collide_estimate_fn(timer, 100);
  fig.window = 1;
  fig.repetitions = 1;
  fig.stride = 1;
  run_dynamic_figure(fig);
  return 0;
}

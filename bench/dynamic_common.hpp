// Shared driver for the dynamic-scenario figures (8-13): runs a churn
// scenario with a given estimator and emits the paper's series — real
// network size plus the (windowed) estimates.
#pragma once

#include "common.hpp"
#include "sim/scenario.hpp"

namespace overcount::bench {

struct DynamicFigure {
  std::string title;
  ScenarioSpec spec;
  EstimateFn estimator;
  std::size_t window = 1;
  int repetitions = 1;       ///< independent curves (paper plots 3 for RT)
  std::size_t stride = 1;    ///< plot every stride-th run
};

inline void run_dynamic_figure(const DynamicFigure& fig) {
  std::vector<Series> series;
  Series real{"real_size", {}, {}};
  Rng master(master_seed());
  for (int rep = 1; rep <= fig.repetitions; ++rep) {
    SerialTimer clock;
    const auto result = run_scenario(fig.spec, fig.estimator, fig.window,
                                     master.split().next());
    Series est{"estimation_" + std::to_string(rep), {}, {}};
    Log2Histogram messages_per_run;
    for (const auto& p : result.points) messages_per_run.record(p.messages);
    for (std::size_t i = 0; i < result.points.size(); i += fig.stride) {
      const auto& p = result.points[i];
      est.add(static_cast<double>(p.run), p.windowed);
      if (rep == 1) real.add(static_cast<double>(p.run), p.actual_size);
    }
    std::cout << "# rep " << rep << ": total_messages="
              << result.total_messages << " avg_cost_per_run="
              << format_double(static_cast<double>(result.total_messages) /
                                   static_cast<double>(fig.spec.runs),
                               1)
              << '\n';
    const std::string label = "rep " + std::to_string(rep);
    emit_batch(label,
               clock.finish(result.points.size(), result.total_messages));
    emit_histogram(label + ".messages_per_run", messages_per_run);
    series.push_back(std::move(est));
  }
  series.insert(series.begin(), std::move(real));
  emit(fig.title, series);

  // Tracking error summary over the post-warmup region.
  for (std::size_t si = 1; si < series.size(); ++si) {
    RunningStats rel_err;
    const auto& est = series[si];
    for (std::size_t i = est.xs.size() / 5; i < est.xs.size(); ++i) {
      const double actual = series[0].ys[i];
      if (actual > 0.0)
        rel_err.add(std::abs(est.ys[i] - actual) / actual);
    }
    std::cout << "# " << est.name << ": mean |rel error| after warmup = "
              << format_double(100.0 * rel_err.mean(), 1) << "%\n";
  }
}

}  // namespace overcount::bench

// Ablation (Section 4.3): cost of Random Tour versus Sample & Collide at
// MATCHED accuracy, as a function of system size.
//
// Theory: to reach relative variance 1/l, RT needs m ~ 2*dbar/lambda_2 * l
// tours at ~dbar*N steps each => cost Theta(l N dbar^2 / lambda_2); S&C
// needs sqrt(2 l N) samples at ~T*dbar hops each => cost
// Theta(sqrt(l N) dbar log N / lambda_2). The ratio grows like
// sqrt(N/l) * dbar / log N, so S&C wins at scale — the paper's headline.
#include <cmath>

#include "common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("ablation_cost_ratio",
           "RT vs S&C message cost at matched accuracy, sweeping N");
  paper_note(
      "Sec 4.3: cost ratio RT/S&C grows ~ sqrt(N); S&C preferred for large "
      "systems");

  const std::size_t ell = 10;  // target relative variance 1/10
  TextTable table({"N", "RT var(1 run)", "RT runs needed", "RT cost",
                   "S&C cost", "ratio RT/S&C", "sqrt(N)"});
  Series ratio_series{"cost_ratio", {}, {}};

  Rng master(master_seed());
  for (std::size_t n_target : {2000u, 4000u, 8000u, 16000u, 32000u}) {
    Rng graph_rng = master.split();
    const Graph g =
        largest_component(balanced_random_graph(n_target, graph_rng));
    const double n = static_cast<double>(g.num_nodes());
    const double timer = sampling_timer(g, master_seed());

    // Empirical single-tour relative variance and cost, averaged over
    // uniformly random initiators (a single tour's cost is dbar*N/d_origin,
    // so fixing one origin would inject arbitrary per-graph noise).
    Rng rt_rng = master.split();
    RunningStats rt_vals;
    RunningStats rt_cost;
    const std::size_t probe_runs = runs(400);
    for (std::size_t i = 0; i < probe_runs; ++i) {
      const auto origin =
          static_cast<NodeId>(rt_rng.uniform_below(g.num_nodes()));
      const auto e = random_tour_size(g, origin, rt_rng);
      rt_vals.add(e.value / n);
      rt_cost.add(static_cast<double>(e.steps));
    }
    const double rt_var = rt_vals.variance();
    // Tours for relative variance 1/ell, and the resulting message cost.
    const double rt_runs_needed = rt_var * static_cast<double>(ell);
    const double rt_total_cost = rt_runs_needed * rt_cost.mean();

    SampleCollideEstimator sc(g, 0, timer, ell, master.split());
    RunningStats sc_cost;
    for (int i = 0; i < 10; ++i)
      sc_cost.add(static_cast<double>(sc.estimate().hops));

    const double ratio = rt_total_cost / sc_cost.mean();
    table.add_row({std::to_string(g.num_nodes()), format_double(rt_var, 2),
                   format_double(rt_runs_needed, 1),
                   format_double(rt_total_cost, 0),
                   format_double(sc_cost.mean(), 0), format_double(ratio, 1),
                   format_double(std::sqrt(n), 0)});
    ratio_series.add(n, ratio);
  }
  table.print(std::cout);
  emit("Ablation - RT/S&C cost ratio vs N (expect ~sqrt(N) growth)",
       {ratio_series});
  return 0;
}

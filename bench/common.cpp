#include "common.hpp"

#include <cstdlib>
#include <thread>

namespace overcount::bench {

namespace {

std::uint64_t env_or(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

}  // namespace

std::size_t overlay_size() {
  return static_cast<std::size_t>(env_or("OVERCOUNT_N", 20000));
}

std::uint64_t master_seed() { return env_or("OVERCOUNT_SEED", 1); }

bool fast_mode() {
  const char* value = std::getenv("OVERCOUNT_FAST");
  return value != nullptr && *value != '\0';
}

std::size_t runs(std::size_t full) {
  if (!fast_mode()) return full;
  return std::max<std::size_t>(1, full / 10);
}

unsigned worker_threads() {
  const auto configured =
      static_cast<unsigned>(env_or("OVERCOUNT_THREADS", 0));
  if (configured > 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

Graph make_balanced(Rng& rng) {
  return largest_component(balanced_random_graph(overlay_size(), rng));
}

Graph make_scale_free(Rng& rng) {
  return largest_component(barabasi_albert(overlay_size(), 3, rng));
}

double sampling_timer(const Graph& g, std::uint64_t seed) {
  const double gap = spectral_gap_lanczos(g, 120, seed);
  return recommended_ctrw_timer(static_cast<double>(g.num_nodes()),
                                std::max(gap, 1e-3));
}

void preamble(const std::string& figure, const std::string& description) {
  std::cout << "==============================================\n"
            << "# bench: " << figure << '\n'
            << "# " << description << '\n'
            << "# N=" << overlay_size() << " seed=" << master_seed()
            << (fast_mode() ? " (fast mode)" : "") << '\n';
}

void paper_note(const std::string& note) {
  std::cout << "# paper: " << note << '\n';
}

void emit(const std::string& figure_title, const std::vector<Series>& series,
          bool plot) {
  print_series(std::cout, figure_title, series);
  if (plot)
    for (const auto& s : series) ascii_plot(std::cout, s);
}

void emit_batch(const std::string& label, const BatchStats& stats) {
  std::cout << "# batch: " << label << '\n';
  print_batch_stats(std::cout, stats);
}

}  // namespace overcount::bench

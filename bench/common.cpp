#include "common.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace overcount::bench {

namespace {

std::uint64_t env_or(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

// In-memory mirror of everything a bench prints, serialised to
// BENCH_<name>.json at exit when OVERCOUNT_JSON is set.
struct BenchReport {
  std::string name;
  std::string description;
  std::vector<std::string> notes;
  std::vector<Series> series;
  std::vector<std::pair<std::string, BatchStats>> batches;
  std::vector<std::pair<std::string, Log2Histogram>> histograms;
  std::vector<std::pair<std::string, WalkStats>> walks;
  std::vector<std::pair<std::string, double>> values;
  bool writer_registered = false;
};

BenchReport& report() {
  static BenchReport r;
  return r;
}

const char* git_rev() {
#ifdef OVERCOUNT_GIT_REV
  return OVERCOUNT_GIT_REV;
#else
  return "unknown";
#endif
}

void write_report() {
  const std::string dir = telemetry_dir();
  if (dir.empty() || report().name.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::filesystem::path path =
      std::filesystem::path(dir) / ("BENCH_" + report().name + ".json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "# telemetry: cannot open " << path << '\n';
    return;
  }

  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", 1);
  w.kv("bench", report().name);
  w.kv("description", report().description);

  w.key("meta");
  w.begin_object();
  w.kv("n", static_cast<std::uint64_t>(overlay_size()));
  w.kv("seed", master_seed());
  w.kv("threads", worker_threads());
  w.kv("fast", fast_mode());
  w.kv("git_rev", git_rev());
  w.end_object();

  w.key("paper_notes");
  w.begin_array();
  for (const auto& note : report().notes) w.value(note);
  w.end_array();

  w.key("series");
  w.begin_array();
  for (const auto& s : report().series) {
    w.begin_object();
    w.kv("name", s.name);
    w.key("points");
    w.begin_array();
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      w.begin_array();
      w.value(s.xs[i]);
      w.value(s.ys[i]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("batches");
  w.begin_array();
  for (const auto& [label, stats] : report().batches) {
    w.begin_object();
    w.kv("label", label);
    w.key("stats");
    write_json(w, stats);
    w.end_object();
  }
  w.end_array();

  w.key("histograms");
  w.begin_array();
  for (const auto& [label, h] : report().histograms) {
    w.begin_object();
    w.kv("label", label);
    w.key("summary");
    write_json(w, h);
    w.end_object();
  }
  w.end_array();

  w.key("walk_stats");
  w.begin_array();
  for (const auto& [label, ws] : report().walks) {
    w.begin_object();
    w.kv("label", label);
    w.key("stats");
    write_json(w, ws);
    w.end_object();
  }
  w.end_array();

  w.key("values");
  w.begin_object();
  for (const auto& [key, value] : report().values) w.kv(key, value);
  w.end_object();

  w.end_object();
  out << '\n';
  std::cout << "# telemetry: wrote " << path.string() << '\n';
}

// Span tracing for a whole bench run (OVERCOUNT_TRACE_JSON=<file>): the
// recorder is installed by the first preamble() and the Chrome trace_event
// file is written at process exit, after the last walk quiesced. One ring
// per thread, bounded memory, overwrite-oldest — see obs/trace.hpp.
std::string trace_json_path() {
  const char* value = std::getenv("OVERCOUNT_TRACE_JSON");
  return value == nullptr ? std::string{} : std::string{value};
}

TraceRecorder& trace_recorder() {
  static TraceRecorder r;
  return r;
}

void write_trace() {
  trace_recorder().uninstall();
  const std::string path = trace_json_path();
  if (path.empty()) return;
  if (write_chrome_trace_file(
          path, trace_recorder(),
          report().name.empty() ? "bench" : report().name))
    std::cout << "# trace: wrote " << path << '\n';
}

void print_histogram_line(const std::string& label, const Log2Histogram& h) {
  std::cout << "# hist: " << label << " count=" << h.count;
  if (!h.empty()) {
    std::cout << " min=" << h.min << " max=" << h.max
              << " mean=" << format_double(h.mean(), 1)
              << " p50=" << format_double(h.percentile(0.50), 0)
              << " p90=" << format_double(h.percentile(0.90), 0)
              << " p99=" << format_double(h.percentile(0.99), 0);
  }
  std::cout << '\n';
}

}  // namespace

std::size_t overlay_size() {
  return static_cast<std::size_t>(env_or("OVERCOUNT_N", 20000));
}

std::uint64_t master_seed() { return env_or("OVERCOUNT_SEED", 1); }

bool fast_mode() {
  const char* value = std::getenv("OVERCOUNT_FAST");
  return value != nullptr && *value != '\0';
}

std::size_t runs(std::size_t full) {
  if (!fast_mode()) return full;
  return std::max<std::size_t>(1, full / 10);
}

unsigned worker_threads() {
  const auto configured =
      static_cast<unsigned>(env_or("OVERCOUNT_THREADS", 0));
  if (configured > 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::string telemetry_dir() {
  const char* value = std::getenv("OVERCOUNT_JSON");
  return value == nullptr ? std::string{} : std::string{value};
}

Graph make_balanced(Rng& rng) {
  return largest_component(balanced_random_graph(overlay_size(), rng));
}

Graph make_scale_free(Rng& rng) {
  return largest_component(barabasi_albert(overlay_size(), 3, rng));
}

double sampling_timer(const Graph& g, std::uint64_t seed) {
  const double gap = spectral_gap_lanczos(g, 120, seed);
  return recommended_ctrw_timer(static_cast<double>(g.num_nodes()),
                                std::max(gap, 1e-3));
}

void preamble(const std::string& figure, const std::string& description) {
  report().name = figure;
  report().description = description;
  if (!report().writer_registered) {
    report().writer_registered = true;
    std::atexit(write_report);
    if (!trace_json_path().empty()) {
      trace_recorder().install();
      std::atexit(write_trace);
    }
  }
  std::cout << "==============================================\n"
            << "# bench: " << figure << '\n'
            << "# " << description << '\n'
            << "# N=" << overlay_size() << " seed=" << master_seed()
            << (fast_mode() ? " (fast mode)" : "") << '\n';
}

void paper_note(const std::string& note) {
  report().notes.push_back(note);
  std::cout << "# paper: " << note << '\n';
}

void emit(const std::string& figure_title, const std::vector<Series>& series,
          bool plot) {
  for (const auto& s : series) report().series.push_back(s);
  print_series(std::cout, figure_title, series);
  if (plot)
    for (const auto& s : series) ascii_plot(std::cout, s);
}

void emit_batch(const std::string& label, const BatchStats& stats) {
  report().batches.emplace_back(label, stats);
  std::cout << "# batch: " << label << '\n';
  print_batch_stats(std::cout, stats);
}

void emit_batch(const std::string& label, const TourBatch& batch) {
  emit_batch(label, batch.stats);
  Log2Histogram steps;
  for (const auto& t : batch.tours) steps.record(t.steps);
  emit_histogram(label + ".tour_steps", steps);
  record_value(label + ".completed", static_cast<double>(batch.completed));
  record_value(label + ".truncated", static_cast<double>(batch.truncated));
}

void emit_batch(const std::string& label, const SampleBatch& batch) {
  emit_batch(label, batch.stats);
  Log2Histogram hops;
  for (const auto& s : batch.samples) hops.record(s.hops);
  emit_histogram(label + ".sample_hops", hops);
}

void emit_batch(const std::string& label, const ScBatch& batch) {
  emit_batch(label, batch.stats);
  Log2Histogram hops;
  Log2Histogram samples;
  for (const auto& t : batch.trials) {
    hops.record(t.hops);
    samples.record(t.samples);
  }
  emit_histogram(label + ".trial_hops", hops);
  emit_histogram(label + ".samples_per_trial", samples);
}

void emit_walk_stats(const std::string& label, const WalkStats& stats) {
  report().walks.emplace_back(label, stats);
  std::cout << "# walk: " << label << " walks=" << stats.walks
            << " visits=" << stats.visits << " revisits=" << stats.revisits
            << " rejects=" << stats.rejects
            << " collisions=" << stats.collisions << '\n';
  if (!stats.tour_steps.empty())
    print_histogram_line(label + ".tour_steps", stats.tour_steps);
  if (!stats.sample_hops.empty())
    print_histogram_line(label + ".sample_hops", stats.sample_hops);
  if (!stats.collision_gaps.empty())
    print_histogram_line(label + ".collision_gaps", stats.collision_gaps);
}

void emit_histogram(const std::string& label, const Log2Histogram& h) {
  report().histograms.emplace_back(label, h);
  print_histogram_line(label, h);
}

void record_value(const std::string& key, double value) {
  report().values.emplace_back(key, value);
  std::cout << "# value: " << key << " = " << format_double(value, 4) << '\n';
}

void flush_telemetry() { write_report(); }

}  // namespace overcount::bench

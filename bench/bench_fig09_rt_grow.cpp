// Figure 9: Random Tour (sliding window 700) on a growing network — 50%
// more nodes join between runs 3000 and 8000 (of 10000).
//
// Paper shape: the windowed estimate follows the 100k -> 150k ramp with a
// window-length lag and unchanged accuracy.
#include "dynamic_common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("fig09_rt_grow",
           "Random Tour window=700 on gradually growing overlay");
  paper_note("Fig 9: estimates follow the 100k->150k ramp (runs 3000-8000)");

  DynamicFigure fig;
  const std::size_t total_runs = runs(10000);
  fig.title = "Figure 9 - RT window 700, growing network";
  fig.spec = gradual_increase_spec(overlay_size(), total_runs,
                                   TopologyKind::kBalanced);
  fig.spec.actual_size_every = std::max<std::size_t>(1, total_runs / 500);
  fig.estimator = random_tour_estimate_fn();
  fig.window = std::max<std::size_t>(1, runs(700));
  fig.repetitions = 3;
  fig.stride = std::max<std::size_t>(1, total_runs / 200);
  run_dynamic_figure(fig);
  return 0;
}

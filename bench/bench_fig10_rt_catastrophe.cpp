// Figure 10: Random Tour (sliding window 700) under catastrophic changes —
// 25% of nodes vanish at run 1000 and again at run 5000, and a flash crowd
// of 25% arrives at run 7000 (of 10000).
//
// Paper shape: after each jump the windowed estimate converges to the new
// level within roughly one window of runs; larger windows converge slower
// but with lower variance.
#include "dynamic_common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("fig10_rt_catastrophe",
           "Random Tour window=700 under catastrophic failures/flash crowd");
  paper_note(
      "Fig 10: -25% at run 1000 and 5000, +25% at run 7000; estimates "
      "re-converge within ~700 runs of each event");

  DynamicFigure fig;
  const std::size_t total_runs = runs(10000);
  fig.title = "Figure 10 - RT window 700, catastrophic changes";
  fig.spec =
      catastrophic_spec(overlay_size(), total_runs, TopologyKind::kBalanced);
  fig.spec.actual_size_every = std::max<std::size_t>(1, total_runs / 500);
  fig.estimator = random_tour_estimate_fn();
  fig.window = std::max<std::size_t>(1, runs(700));
  fig.repetitions = 3;
  fig.stride = std::max<std::size_t>(1, total_runs / 200);
  run_dynamic_figure(fig);
  return 0;
}

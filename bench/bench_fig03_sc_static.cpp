// Figure 3: raw Sample & Collide estimates (l = 100, no sliding window) on
// a balanced random graph, 100 consecutive measurements.
//
// Paper shape: points scatter tightly around 100% — an order of magnitude
// fewer runs than RT for the same accuracy (relative std ~ 1/sqrt(l) = 10%).
//
// The measurements are independent, so they run as one parallel batch and
// are plotted in task-index order (bit-identical at any OVERCOUNT_THREADS).
#include "common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("fig03_sc_static",
           "Sample&Collide l=100 raw estimates, balanced graph");
  paper_note(
      "Fig 3: S&C(l=100) needs ~10x fewer estimates than RT for the same "
      "accuracy; scatter ~ +/-10%");

  Rng master(master_seed());
  Rng graph_rng = master.split();
  const Graph g = make_balanced(graph_rng);
  const double n = static_cast<double>(g.num_nodes());
  const double timer = sampling_timer(g, master_seed());
  std::cout << "# n=" << g.num_nodes() << " timer=" << format_double(timer, 2)
            << '\n';

  const std::size_t total_runs = runs(100);
  const std::uint64_t batch_seed = master.split().next();
  const auto batch = run_sc_trials(g, 0, total_runs, timer, 100, batch_seed,
                                   worker_threads());

  Series s{"sc_l100", {}, {}};
  RunningStats quality;
  std::size_t run = 0;
  for (const auto& trial : batch.trials) {
    const double pct = 100.0 * trial.simple / n;
    s.add(static_cast<double>(++run), pct);
    quality.add(pct);
  }
  std::cout << "# mean=" << format_double(quality.mean(), 2)
            << "% sd=" << format_double(quality.stddev(), 2)
            << "% (theory ~10%)\n";
  emit_batch("sc_trials l=100", batch);
  emit("Figure 3 - S&C l=100 raw estimates (% of system size)", {s});
  return 0;
}

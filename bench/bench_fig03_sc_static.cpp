// Figure 3: raw Sample & Collide estimates (l = 100, no sliding window) on
// a balanced random graph, 100 consecutive measurements.
//
// Paper shape: points scatter tightly around 100% — an order of magnitude
// fewer runs than RT for the same accuracy (relative std ~ 1/sqrt(l) = 10%).
#include "common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("fig03_sc_static",
           "Sample&Collide l=100 raw estimates, balanced graph");
  paper_note(
      "Fig 3: S&C(l=100) needs ~10x fewer estimates than RT for the same "
      "accuracy; scatter ~ +/-10%");

  Rng master(master_seed());
  Rng graph_rng = master.split();
  const Graph g = make_balanced(graph_rng);
  const double n = static_cast<double>(g.num_nodes());
  const double timer = sampling_timer(g, master_seed());
  std::cout << "# n=" << g.num_nodes() << " timer=" << format_double(timer, 2)
            << '\n';

  SampleCollideEstimator estimator(g, 0, timer, 100, master.split());
  Series s{"sc_l100", {}, {}};
  RunningStats quality;
  const std::size_t total_runs = runs(100);
  for (std::size_t run = 1; run <= total_runs; ++run) {
    const auto e = estimator.estimate();
    const double pct = 100.0 * e.simple / n;
    s.add(static_cast<double>(run), pct);
    quality.add(pct);
  }
  std::cout << "# mean=" << format_double(quality.mean(), 2)
            << "% sd=" << format_double(quality.stddev(), 2)
            << "% (theory ~10%)\n";
  emit("Figure 3 - S&C l=100 raw estimates (% of system size)", {s});
  return 0;
}

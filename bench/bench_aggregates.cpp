// Aggregation beyond counting (paper Sections 1 and 3): "counting the
// number of peers with given characteristics, or aggregating
// characteristics of interest of individual peers over all peers" — e.g.
// dial-up vs broadband viewers of a live stream, total upload capacity,
// regional populations. One table: truth vs Random-Tour estimate vs its
// reported standard error, for a spread of statistics on one overlay.
#include <cmath>

#include "common.hpp"
#include "core/aggregate.hpp"
#include "sim/attributes.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("aggregates",
           "general Sigma f(j) estimation over peer characteristics");
  paper_note(
      "Sec 1/3: the same tour estimates any per-peer statistic: counts "
      "with predicates, capacity sums, class sizes");

  Rng master(master_seed());
  Rng graph_rng = master.split();
  const Graph g = make_balanced(graph_rng);
  const PeerAttributes attrs(master_seed() + 7);
  const std::size_t tours = runs(600);

  struct Stat {
    std::string name;
    std::function<double(NodeId)> f;
  };
  const std::vector<Stat> stats = {
      {"system size N", [](NodeId) { return 1.0; }},
      {"dial-up peers",
       [&](NodeId v) {
         return attrs.of(v).link == LinkClass::kDialup ? 1.0 : 0.0;
       }},
      {"broadband peers",
       [&](NodeId v) {
         return attrs.of(v).link != LinkClass::kDialup ? 1.0 : 0.0;
       }},
      {"upload >= 10 Mb/s",
       [&](NodeId v) { return attrs.of(v).upload_mbps >= 10.0 ? 1.0 : 0.0; }},
      {"total upload (Mb/s)",
       [&](NodeId v) { return attrs.of(v).upload_mbps; }},
      {"region-0 peers",
       [&](NodeId v) { return attrs.of(v).region == 0 ? 1.0 : 0.0; }},
      {"degree sum 2|E|",
       [&](NodeId v) { return static_cast<double>(g.degree(v)); }},
      {"uptime hours (sum)",
       [&](NodeId v) { return attrs.of(v).uptime_hours; }},
  };

  TextTable table({"statistic", "truth", "estimate", "std err",
                   "rel err %"});
  Rng walk_rng = master.split();
  for (const auto& stat : stats) {
    double truth = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) truth += stat.f(v);
    const auto est = estimate_sum(g, 0, stat.f, tours, walk_rng);
    const double rel =
        truth > 0.0 ? 100.0 * (est.value - truth) / truth : 0.0;
    table.add_row({stat.name, format_double(truth, 0),
                   format_double(est.value, 0),
                   format_double(est.standard_error, 0),
                   format_double(rel, 1)});
  }
  table.print(std::cout);

  // Population mean via the shared-tour ratio estimator.
  Rng ratio_rng = master.split();
  const auto mean_upload = estimate_mean(
      g, 0, [&](NodeId v) { return attrs.of(v).upload_mbps; }, tours,
      ratio_rng);
  double truth_mean = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    truth_mean += attrs.of(v).upload_mbps;
  truth_mean /= static_cast<double>(g.num_nodes());
  std::cout << "# mean upload per peer: estimate="
            << format_double(mean_upload.value, 3)
            << " truth=" << format_double(truth_mean, 3)
            << " (ratio estimator on shared tours)\n";
  return 0;
}

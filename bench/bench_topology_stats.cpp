// Expansion properties of the evaluated overlay families (Section 3.4):
// spectral gap, sweep-cut expansion, Cheeger sandwich, plus the structural
// statistics (degrees, clustering, distances) that contextualise them.
//
// Shape: balanced-random / k-out / scale-free overlays have gaps bounded
// away from 0 ("several overlay architectures ensure good expansion by
// design"); rings and grids do not, which is where the walk methods
// degrade.
#include "common.hpp"
#include "graph/metrics.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("topology_stats",
           "expansion + structure of the overlay families under test");
  paper_note(
      "Sec 3.4: expander families keep lambda_2 bounded away from 0; "
      "Cheeger: h^2/(2 d_max) <= lambda_2 <= 2h");

  Rng master(master_seed());
  const std::size_t n = std::min<std::size_t>(overlay_size(), 8000);

  struct Family {
    std::string name;
    Graph graph;
  };
  std::vector<Family> families;
  {
    Rng rng = master.split();
    families.push_back({"balanced", largest_component(
                                        balanced_random_graph(n, rng))});
  }
  {
    Rng rng = master.split();
    families.push_back(
        {"scale-free", largest_component(barabasi_albert(n, 3, rng))});
  }
  {
    Rng rng = master.split();
    families.push_back(
        {"k-out (k=3)", largest_component(k_out_graph(n, 3, rng))});
  }
  families.push_back({"ring", ring(n)});
  {
    const std::size_t side = static_cast<std::size_t>(std::sqrt(double(n)));
    families.push_back({"torus", grid_2d(side, side, true)});
  }

  TextTable table({"family", "n", "dbar", "dmax", "lambda2", "sweep h",
                   "cheeger low", "cheeger high", "clustering",
                   "avg dist", "assortativity"});
  Rng metric_rng = master.split();
  for (auto& f : families) {
    const Graph& g = f.graph;
    const double gap = spectral_gap_lanczos(g, 150, master_seed());
    const auto sweep = sweep_cut(g, fiedler_vector(g, 150, master_seed()));
    const auto cheeger = cheeger_bounds(sweep.expansion, g.max_degree());
    const auto dist = distance_stats(g, 6, metric_rng);
    table.add_row({f.name, std::to_string(g.num_nodes()),
                   format_double(g.average_degree(), 2),
                   std::to_string(g.max_degree()), format_double(gap, 4),
                   format_double(sweep.expansion, 4),
                   format_double(cheeger.lower, 5),
                   format_double(cheeger.upper, 4),
                   format_double(average_clustering(g), 4),
                   format_double(dist.average, 2),
                   format_double(degree_assortativity(g), 3)});
  }
  table.print(std::cout);
  std::cout << "# sweep h upper-bounds the true isoperimetric constant; "
               "lambda2 must lie inside [h'^2/(2 dmax), 2h'] for the TRUE "
               "h' <= sweep h.\n";
  return 0;
}

// Shared support for the per-figure bench binaries.
//
// Every bench regenerates one table or figure of the paper at a scale set by
// the environment:
//   OVERCOUNT_N        overlay size             (default 20000; paper 100000)
//   OVERCOUNT_SEED     master seed              (default 1)
//   OVERCOUNT_FAST     if set, shrink run counts ~10x for smoke testing
//   OVERCOUNT_THREADS  batch-estimator pool size (default: all hardware
//                      threads; results are bit-identical at any setting)
// Output format: a `# figure:` header, `# series:` blocks with "name x y"
// rows (plot-ready), an ASCII shape preview, and `# paper:` lines recording
// what the original reports so the shapes can be compared directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iostream>
#include <string>

#include "core/overcount.hpp"
#include "util/table.hpp"

namespace overcount::bench {

/// Overlay size for this run (env OVERCOUNT_N, default 20000).
std::size_t overlay_size();

/// Master seed (env OVERCOUNT_SEED, default 1).
std::uint64_t master_seed();

/// True when OVERCOUNT_FAST is set: benches shrink their run counts.
bool fast_mode();

/// Scales a run count down by ~10x in fast mode (at least 1).
std::size_t runs(std::size_t full);

/// Thread-pool size for batch estimator runs (env OVERCOUNT_THREADS,
/// default 0 = hardware concurrency).
unsigned worker_threads();

/// Builds the paper's balanced random graph at the configured size and
/// restricts to the largest component (estimators see one component).
Graph make_balanced(Rng& rng);

/// Scale-free (Barabasi-Albert, m = 3) graph, largest component.
Graph make_scale_free(Rng& rng);

/// CTRW timer budgeted from the measured spectral gap:
/// T = beta log(n) / lambda_2 (Section 4.1, beta = 1.5).
double sampling_timer(const Graph& g, std::uint64_t seed);

/// Emits the standard preamble (figure id, scale, seed).
void preamble(const std::string& figure, const std::string& description);

/// Emits a `# paper: ...` annotation line.
void paper_note(const std::string& note);

/// Prints a series and its ASCII preview.
void emit(const std::string& figure_title, const std::vector<Series>& series,
          bool plot = true);

/// Prints a labelled `# batch:` line plus the per-batch runtime counters
/// (tasks, steps, wall/cpu time, steps/sec, threads).
void emit_batch(const std::string& label, const BatchStats& stats);

}  // namespace overcount::bench

// Shared support for the per-figure bench binaries.
//
// Every bench regenerates one table or figure of the paper at a scale set by
// the environment:
//   OVERCOUNT_N        overlay size             (default 20000; paper 100000)
//   OVERCOUNT_SEED     master seed              (default 1)
//   OVERCOUNT_FAST     if set, shrink run counts ~10x for smoke testing
//   OVERCOUNT_THREADS  batch-estimator pool size (default: all hardware
//                      threads; results are bit-identical at any setting)
//   OVERCOUNT_JSON     directory for machine-readable telemetry; when set,
//                      each bench writes BENCH_<name>.json there on exit
//   OVERCOUNT_TRACE_JSON  file for a Chrome/Perfetto trace_event span trace
//                      of the whole run (obs/trace.hpp); written on exit
// Output format: a `# figure:` header, `# series:` blocks with "name x y"
// rows (plot-ready), an ASCII shape preview, and `# paper:` lines recording
// what the original reports so the shapes can be compared directly.
//
// Telemetry: everything printed through this header (series, batch counters,
// walk-stats, histograms, scalar values) is also accumulated in an in-memory
// report. When OVERCOUNT_JSON names a directory the report is serialised via
// obs/json.hpp as BENCH_<name>.json at process exit — one self-describing
// artifact per bench, diffable across commits (see EXPERIMENTS.md).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <ctime>
#include <iostream>
#include <string>

#include "core/overcount.hpp"
#include "core/parallel.hpp"
#include "obs/export.hpp"
#include "util/table.hpp"

namespace overcount::bench {

/// Overlay size for this run (env OVERCOUNT_N, default 20000).
std::size_t overlay_size();

/// Master seed (env OVERCOUNT_SEED, default 1).
std::uint64_t master_seed();

/// True when OVERCOUNT_FAST is set: benches shrink their run counts.
bool fast_mode();

/// Scales a run count down by ~10x in fast mode (at least 1).
std::size_t runs(std::size_t full);

/// Thread-pool size for batch estimator runs (env OVERCOUNT_THREADS,
/// default 0 = hardware concurrency).
unsigned worker_threads();

/// Telemetry directory (env OVERCOUNT_JSON). Empty when unset; telemetry is
/// then collected but never written.
std::string telemetry_dir();

/// Builds the paper's balanced random graph at the configured size and
/// restricts to the largest component (estimators see one component).
Graph make_balanced(Rng& rng);

/// Scale-free (Barabasi-Albert, m = 3) graph, largest component.
Graph make_scale_free(Rng& rng);

/// CTRW timer budgeted from the measured spectral gap:
/// T = beta log(n) / lambda_2 (Section 4.1, beta = 1.5).
double sampling_timer(const Graph& g, std::uint64_t seed);

/// Emits the standard preamble (figure id, scale, seed) and opens the
/// telemetry report under `figure` (which becomes BENCH_<figure>.json).
void preamble(const std::string& figure, const std::string& description);

/// Emits a `# paper: ...` annotation line.
void paper_note(const std::string& note);

/// Prints a series and its ASCII preview.
void emit(const std::string& figure_title, const std::vector<Series>& series,
          bool plot = true);

/// Prints a labelled `# batch:` line plus the per-batch runtime counters
/// (tasks, steps, wall/cpu time, steps/sec, parallel efficiency, threads).
void emit_batch(const std::string& label, const BatchStats& stats);

/// Batch-aware overloads: besides the BatchStats counters these derive and
/// record the per-item cost distributions (log2 histograms with p50/p90/p99)
/// — tour lengths for TourBatch, hops/sample for SampleBatch, hops and
/// samples per trial for ScBatch.
void emit_batch(const std::string& label, const TourBatch& batch);
void emit_batch(const std::string& label, const SampleBatch& batch);
void emit_batch(const std::string& label, const ScBatch& batch);

/// Prints a `# walk: ...` summary of probe-collected WalkStats (visits,
/// revisits, rejects, tour/hop percentiles) and records it in the report.
void emit_walk_stats(const std::string& label, const WalkStats& stats);

/// Prints a one-line histogram summary and records it in the report.
void emit_histogram(const std::string& label, const Log2Histogram& h);

/// Records a named scalar into the report's `values` object (and prints it
/// as `# value: key = v`). Use for headline numbers like final estimates.
void record_value(const std::string& key, double value);

/// Wall/CPU stopwatch for serial estimation loops. finish() renders the
/// elapsed time as a BatchStats row (threads = 1), so serial benches emit
/// the same runtime counters as the parallel batch APIs.
class SerialTimer {
 public:
  SerialTimer()
      : wall_start_(std::chrono::steady_clock::now()),
        cpu_start_(std::clock()) {}

  BatchStats finish(std::size_t tasks, std::uint64_t steps) const {
    BatchStats stats;
    stats.tasks = tasks;
    stats.steps = steps;
    stats.wall_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - wall_start_)
                             .count();
    stats.cpu_seconds = static_cast<double>(std::clock() - cpu_start_) /
                        static_cast<double>(CLOCKS_PER_SEC);
    stats.threads = 1;
    return stats;
  }

 private:
  std::chrono::steady_clock::time_point wall_start_;
  std::clock_t cpu_start_;
};

/// Writes BENCH_<name>.json immediately (normally done automatically at
/// exit). Safe to call multiple times; later telemetry rewrites the file.
void flush_telemetry();

}  // namespace overcount::bench

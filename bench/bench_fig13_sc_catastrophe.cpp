// Figure 13: Sample & Collide (l = 100, no window) under catastrophic
// changes — 25% of nodes vanish at runs 10 and 50, and a 25% flash crowd
// arrives at run 70 (of 100).
//
// Paper shape: the raw estimate snaps to each new level within one run
// (no window lag) while keeping ~10% accuracy.
#include "dynamic_common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("fig13_sc_catastrophe",
           "Sample&Collide l=100 under catastrophic failures/flash crowd");
  paper_note(
      "Fig 13: -25% at runs 10 and 50, +25% at run 70; estimates jump to "
      "each new level immediately");

  Rng probe_rng(master_seed());
  const Graph probe = make_balanced(probe_rng);
  const double timer = sampling_timer(probe, master_seed());
  std::cout << "# timer=" << format_double(timer, 2) << '\n';

  DynamicFigure fig;
  const std::size_t total_runs = runs(100);
  fig.title = "Figure 13 - S&C l=100, catastrophic changes";
  fig.spec =
      catastrophic_spec(overlay_size(), total_runs, TopologyKind::kBalanced);
  fig.spec.actual_size_every = 1;
  fig.estimator = sample_collide_estimate_fn(timer, 100);
  fig.window = 1;
  fig.repetitions = 1;
  fig.stride = 1;
  run_dynamic_figure(fig);
  return 0;
}

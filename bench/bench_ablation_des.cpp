// Ablation (Section 5.3.1): protocol-level execution on the discrete-event
// network versus the direct graph-walk fast path, with and without message
// loss.
//
// Shape: with zero loss the DES protocol and the direct estimator agree;
// with loss, the timeout-and-retry recovery keeps estimates usable at the
// price of retries (and a small bias from tours censored at the timeout).
#include <cmath>
#include <functional>

#include "common.hpp"
#include "protocols/random_tour_protocol.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("ablation_des",
           "DES protocol vs direct walk; message-loss recovery (Sec 5.3.1)");
  paper_note(
      "Sec 5.3.1: lost probes are declared dead after mean + k*sd of past "
      "trip times and relaunched");

  Rng master(master_seed());
  Rng graph_rng = master.split();
  // DES runs are per-message; use a smaller overlay to keep this quick.
  const std::size_t n_des = std::min<std::size_t>(overlay_size() / 10, 2000);
  const Graph g =
      largest_component(balanced_random_graph(std::max<std::size_t>(n_des, 200),
                                              graph_rng));
  const double n = static_cast<double>(g.num_nodes());
  std::cout << "# DES overlay n=" << g.num_nodes() << '\n';

  // Direct fast path.
  RunningStats direct;
  {
    RandomTourEstimator rt(g, 0, master.split());
    const std::size_t reps = runs(2000);
    for (std::size_t i = 0; i < reps; ++i)
      direct.add(rt.estimate_size().value / n);
  }

  TextTable table({"path", "loss", "mean est / N", "rel std", "retries/run",
                   "msgs lost"});
  table.add_row({"direct walk", "-", format_double(direct.mean(), 3),
                 format_double(direct.stddev(), 3), "0", "0"});

  for (double loss : {0.0, 0.0005, 0.002}) {
    DynamicGraph dyn(g);
    Simulator sim;
    Network net(sim, dyn, {1.0, 0.2}, loss, master.split());
    RandomTourProtocol proto(net, master.split());
    proto.set_timeout_policy(8.0, 1e9);
    RunningStats values;
    std::uint64_t retries = 0;
    std::function<void(const RandomTourProtocol::Result&)> on_done;
    std::size_t remaining = runs(600);
    const std::size_t total = remaining;
    on_done = [&](const RandomTourProtocol::Result& r) {
      values.add(r.estimate / n);
      retries += r.retries;
      if (--remaining > 0) proto.start(0, on_done);
    };
    proto.start(0, on_done);
    sim.run();
    table.add_row({"DES protocol", format_double(loss, 4),
                   format_double(values.mean(), 3),
                   format_double(values.stddev(), 3),
                   format_double(static_cast<double>(retries) /
                                     static_cast<double>(total),
                                 3),
                   std::to_string(net.messages_lost())});
  }
  table.print(std::cout);
  return 0;
}

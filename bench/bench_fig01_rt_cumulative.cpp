// Figure 1: empirical averages of Random Tour estimates (as % of true
// system size) over an increasing number of estimates, on three
// independently generated balanced random graphs.
//
// Paper shape: each curve starts noisy and converges to ~100%; the cost is
// linear in the number of runs and the averaged variance decays like 1/runs.
//
// The tours of each curve run as one parallel batch (core/parallel.hpp);
// the cumulative averages are then replayed over the batch in task-index
// order, so the figure is bit-identical at any OVERCOUNT_THREADS.
#include "common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("fig01_rt_cumulative",
           "Random Tour cumulative empirical mean, 3 balanced graphs");
  paper_note(
      "Fig 1: curves converge to 100% of a 100,000-node overlay within a "
      "few thousand estimates");

  const std::size_t total_runs = runs(3000);
  std::vector<Series> series;
  Rng master(master_seed());
  ParallelRunner runner(worker_threads());
  for (int graph_idx = 1; graph_idx <= 3; ++graph_idx) {
    Rng graph_rng = master.split();
    const Graph g = make_balanced(graph_rng);
    const double n = static_cast<double>(g.num_nodes());
    const std::uint64_t batch_seed = master.split().next();
    const auto batch = run_tours_size(g, 0, total_runs, batch_seed, runner);

    Series s{"estimation_" + std::to_string(graph_idx), {}, {}};
    double acc = 0.0;
    std::size_t run = 0;
    for (const auto& tour : batch.tours) {
      acc += tour.value;
      ++run;
      if (run % 10 == 0 || run < 20)
        s.add(static_cast<double>(run),
              100.0 * (acc / static_cast<double>(run)) / n);
    }
    std::cout << "# graph " << graph_idx << ": n=" << g.num_nodes()
              << " final_quality_pct=" << format_double(s.ys.back(), 2)
              << " avg_cost_per_run="
              << format_double(static_cast<double>(batch.total_steps) /
                                   static_cast<double>(total_runs),
                               1)
              << " steps\n";
    emit_batch("rt_tours graph " + std::to_string(graph_idx), batch);
    series.push_back(std::move(s));
  }
  emit("Figure 1 - RT cumulative average (% of system size)", series);
  return 0;
}

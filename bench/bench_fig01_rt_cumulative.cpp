// Figure 1: empirical averages of Random Tour estimates (as % of true
// system size) over an increasing number of estimates, on three
// independently generated balanced random graphs.
//
// Paper shape: each curve starts noisy and converges to ~100%; the cost is
// linear in the number of runs and the averaged variance decays like 1/runs.
#include "common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("fig01_rt_cumulative",
           "Random Tour cumulative empirical mean, 3 balanced graphs");
  paper_note(
      "Fig 1: curves converge to 100% of a 100,000-node overlay within a "
      "few thousand estimates");

  const std::size_t total_runs = runs(3000);
  std::vector<Series> series;
  Rng master(master_seed());
  for (int graph_idx = 1; graph_idx <= 3; ++graph_idx) {
    Rng graph_rng = master.split();
    const Graph g = make_balanced(graph_rng);
    const double n = static_cast<double>(g.num_nodes());
    RandomTourEstimator estimator(g, 0, master.split());

    Series s{"estimation_" + std::to_string(graph_idx), {}, {}};
    double acc = 0.0;
    for (std::size_t run = 1; run <= total_runs; ++run) {
      acc += estimator.estimate_size().value;
      if (run % 10 == 0 || run < 20)
        s.add(static_cast<double>(run),
              100.0 * (acc / static_cast<double>(run)) / n);
    }
    std::cout << "# graph " << graph_idx << ": n=" << g.num_nodes()
              << " final_quality_pct=" << format_double(s.ys.back(), 2)
              << " avg_cost_per_run="
              << format_double(static_cast<double>(estimator.total_steps()) /
                                   static_cast<double>(total_runs),
                               1)
              << " steps\n";
    series.push_back(std::move(s));
  }
  emit("Figure 1 - RT cumulative average (% of system size)", series);
  return 0;
}

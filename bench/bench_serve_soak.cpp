// Million-request soak of the multi-tenant socket front end: closed-loop
// then open-loop load over real loopback connections against an
// EstimateNetServer (replicated broker shards + token-bucket/DRR
// admission), with DynamicGraph churn running concurrently the whole time.
//
// Scale knobs (on top of the usual OVERCOUNT_N/SEED/FAST/THREADS/JSON):
//   OVERCOUNT_SOAK_REQUESTS  total requests        (default 1'000'000)
//   OVERCOUNT_SOAK_TENANTS   simulated tenants     (default 1'000)
//   OVERCOUNT_SOAK_CONNS     client connections    (default 8)
//   OVERCOUNT_SOAK_CHURN_MS  churn cadence, 0 = off (default 1000)
// OVERCOUNT_FAST shrinks the defaults to a 50k-request / 100-tenant smoke
// (the committed baseline scale).
//
// Phase 1 (70% of the budget) is closed-loop: each connection keeps a
// pipelining window of requests in flight and sends as fast as responses
// return. Phase 2 (30%) is open-loop at 1.15x the measured closed-loop
// rate: arrivals are scheduled on the clock, and when the window is full
// at an arrival instant the client must block (counted as backpressure) —
// the classic open-loop overload probe.
//
// Headline values in BENCH_soak.json: per-SLO-class p50/p90/p99 latency
// and deadline hit-rate, the Jain fairness index over per-tenant served
// fractions, reject/shed rates, and per-class/per-tenant cost.* rollups
// from the cost ledger. Exit is non-zero when any deadline class's
// hit-rate drops below 95% or Jain drops below 0.9 — the soak is a gate,
// not just a report.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common.hpp"
#include "graph/dynamic_graph.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/cost/cost.hpp"
#include "serve/service.hpp"
#include "serve/source.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace overcount;
using namespace overcount::bench;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return std::numeric_limits<double>::quiet_NaN();
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[idx];
}

std::uint64_t steady_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The three soak SLO classes. Rate limits are sized out of the way on
/// purpose: the soak measures the serving path and the fair-share layer
/// under overload, not per-tenant throttling (pinned separately in
/// tests/net/). Deadlines: gold 2 s, silver 4 s, bronze best-effort.
std::vector<net::SloClassSpec> soak_classes() {
  return {
      {"gold", 0.30, 0.2, 2'000'000, 50'000.0, 10'000.0},
      {"silver", 0.40, 0.2, 4'000'000, 50'000.0, 10'000.0},
      {"bronze", 0.50, 0.3, 0, 50'000.0, 10'000.0},
  };
}

constexpr int kClasses = 3;

struct Sent {
  std::uint32_t tenant_idx = 0;
  std::uint8_t class_id = 0;
  std::uint64_t t_us = 0;
};

struct ConnTally {
  std::vector<double> latencies_us[kClasses];  ///< kOk only, per class
  std::uint64_t sent = 0;
  std::uint64_t ok[kClasses] = {0, 0, 0};
  std::uint64_t deadline_missed[kClasses] = {0, 0, 0};
  std::uint64_t failed[kClasses] = {0, 0, 0};
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;  ///< kQueueFull subset of rejected
  std::uint64_t backpressure = 0;
  std::uint64_t transport_errors = 0;
  std::unordered_map<std::uint32_t, std::uint64_t> offered_by_tenant;
  std::unordered_map<std::uint32_t, std::uint64_t> ok_by_tenant;
  double closed_rate_rps = 0.0;  ///< measured in phase 1
};

}  // namespace

int main() {
  preamble("soak",
           "multi-tenant socket front end soak: closed+open-loop load over "
           "loopback connections, SLO-class latency/deadline health, Jain "
           "fairness, reject/shed rates, per-tenant cost rollups, with "
           "concurrent churn");
  paper_note(
      "the per-request walk budget from eps = sqrt(2 d_bar / (lambda2 m "
      "delta)) (Prop. 2) is cheap enough, amortised by the serve cache, "
      "that the socket front end -- not the walk kernel -- is the layer "
      "under test at this request volume");

  const bool fast = fast_mode();
  const std::uint64_t total_requests = env_u64(
      "OVERCOUNT_SOAK_REQUESTS", fast ? 1'000'000 / 20 : 1'000'000);
  const std::uint32_t tenants = static_cast<std::uint32_t>(
      env_u64("OVERCOUNT_SOAK_TENANTS", fast ? 100 : 1000));
  const unsigned conns = static_cast<unsigned>(
      env_u64("OVERCOUNT_SOAK_CONNS", 8));
  std::cout << "# soak: " << total_requests << " requests, " << tenants
            << " tenants, " << conns << " connections\n";

  Rng master(master_seed());
  Rng graph_rng = master.split();
  Rng churn_rng = master.split();
  DynamicGraph graph(make_balanced(graph_rng));
  std::mutex graph_mutex;
  const std::size_t base_alive = graph.num_alive();

  // Per-tenant cost attribution rides the whole soak: every request names
  // its tenant, so the ledger folds into per-class and per-tenant rollups
  // below. Declared before the server so it outlives the shards.
  CostLedger ledger;
  ledger.install();

  MetricsRegistry registry;
  net::NetServerConfig server_config;
  server_config.acceptors = conns;
  server_config.shards = 2;
  server_config.classes = soak_classes();
  server_config.metrics = &registry;
  server_config.service.threads = worker_threads();
  server_config.service.queue_capacity = 64;
  // Skip the per-version Lanczos profile: under churn every version bump
  // would otherwise pay a spectral solve before the first walk, and the
  // soak measures the serving path, not gap estimation (pinned elsewhere).
  server_config.service.lambda2_hint = 0.5;
  server_config.service.freshness.base_ttl_us = 2'000'000;
  // One reused ledger context per (tenant, class): per-query contexts would
  // overflow the ledger's 16k table long before a million requests and the
  // overflow would bill to the unattributed sink, breaking reconciliation.
  server_config.service.cost_aggregate_contexts = true;
  server_config.service.seed = master_seed() + 1;
  net::EstimateNetServer server(dynamic_graph_source(graph, graph_mutex),
                                server_config);

  // Every version bump re-dirties every cached key on every shard, and a
  // miss batch is hundreds of ms of walk work at full overlay size on one
  // core — the cadence keeps recompute below saturation while still
  // exercising invalidation continuously. EDF inside each shard serves the
  // deadline classes' recomputes first, which is what keeps their hit-rate
  // gates honest even when a bump lands mid-run.
  const std::uint64_t churn_ms = env_u64("OVERCOUNT_SOAK_CHURN_MS", 1000);
  std::atomic<bool> churning{churn_ms != 0};
  std::thread churn([&] {
    Rng local = churn_rng;
    while (churning.load(std::memory_order_relaxed)) {
      {
        std::lock_guard lock(graph_mutex);
        churn_join(graph, TopologyKind::kBalanced, local, 2, 8);
        if (graph.num_alive() > base_alive) churn_leave(graph, local);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(churn_ms));
    }
  });

  const std::uint64_t per_conn = total_requests / conns;
  const std::uint64_t closed_budget = per_conn * 7 / 10;
  constexpr std::size_t kWindow = 32;
  std::vector<ConnTally> tallies(conns);

  auto conn_worker = [&](unsigned conn_idx) {
    ConnTally& tally = tallies[conn_idx];
    Rng rng(master_seed() + 1000 + conn_idx);
    net::NetClient client;
    if (!client.connect(server.port())) {
      ++tally.transport_errors;
      return;
    }
    // This connection speaks for every tenant with idx % conns == conn_idx
    // (the server multiplexes tenants per connection).
    std::vector<std::uint32_t> my_tenants;     // tenant idx
    std::vector<std::uint32_t> my_tenant_ids;  // wire ids, same order
    for (std::uint32_t t = conn_idx; t < tenants; t += conns) {
      char name[16];
      std::snprintf(name, sizeof(name), "t%06u", t);
      auto welcome = client.hello(name, static_cast<std::uint8_t>(t % 3));
      if (!welcome.has_value()) {
        ++tally.transport_errors;
        return;
      }
      my_tenants.push_back(t);
      my_tenant_ids.push_back(welcome->tenant_id);
    }
    if (my_tenants.empty()) return;

    std::unordered_map<std::uint64_t, Sent> outstanding;
    outstanding.reserve(kWindow * 2);
    std::uint64_t next_id = 1;

    auto absorb_frame = [&](const net::Frame& frame) -> bool {
      std::uint64_t request_id = 0;
      bool is_reject = false;
      std::uint8_t status = 0;
      std::uint8_t reason = 0;
      if (frame.type() == net::FrameType::kResponse) {
        auto msg = net::decode_response(frame);
        if (!msg) return false;
        request_id = msg->request_id;
        status = msg->status;
      } else if (frame.type() == net::FrameType::kReject) {
        auto msg = net::decode_reject(frame);
        if (!msg) return false;
        request_id = msg->request_id;
        is_reject = true;
        reason = msg->reason;
      } else {
        return false;
      }
      auto it = outstanding.find(request_id);
      if (it == outstanding.end()) return false;
      const Sent sent = it->second;
      outstanding.erase(it);
      const std::size_t cls = sent.class_id;
      if (is_reject) {
        ++tally.rejected;
        if (reason == static_cast<std::uint8_t>(net::RejectReason::kQueueFull))
          ++tally.shed;
        return true;
      }
      switch (static_cast<ServeStatus>(status)) {
        case ServeStatus::kOk:
          ++tally.ok[cls];
          ++tally.ok_by_tenant[sent.tenant_idx];
          tally.latencies_us[cls].push_back(
              static_cast<double>(steady_us() - sent.t_us));
          break;
        case ServeStatus::kRejected:  // travels as kReject frames instead
        case ServeStatus::kDeadlineMiss:
          ++tally.deadline_missed[cls];
          break;
        case ServeStatus::kFailed:
          ++tally.failed[cls];
          break;
      }
      return true;
    };

    auto drain_one = [&]() -> bool {
      auto frame = client.read_frame(60'000);
      if (!frame.has_value()) {
        ++tally.transport_errors;
        return false;
      }
      return absorb_frame(*frame);
    };

    auto send_one = [&]() -> bool {
      const std::size_t pick = rng.uniform_below(my_tenants.size());
      const std::uint32_t tenant_idx = my_tenants[pick];
      const std::uint8_t class_id = static_cast<std::uint8_t>(tenant_idx % 3);
      net::RequestMsg req;
      req.request_id = next_id++;
      req.tenant_id = my_tenant_ids[pick];
      req.flags = net::kReqAllowCached | net::kReqExplicitTarget;
      // Class-shaped queries with a small epsilon spread: a handful of
      // distinct cache keys per class, so the soak exercises hit, miss and
      // coalesce paths without unbounded key growth.
      const double spread = 0.05 * static_cast<double>(rng.uniform_below(3));
      switch (class_id) {
        case 0:
          req.kind = 0;  // size / random tour
          req.method = 0;
          req.epsilon = 0.30 + spread;
          req.delta = 0.2;
          break;
        case 1:
          req.kind = 1;  // degree sum / random tour
          req.method = 0;
          req.epsilon = 0.40 + spread;
          req.delta = 0.2;
          break;
        default:
          req.kind = 0;  // size / sample & collide, best effort
          req.method = 1;
          req.epsilon = 0.50 + spread;
          req.delta = 0.3;
          break;
      }
      if (!client.send_request(req)) {
        ++tally.transport_errors;
        return false;
      }
      outstanding.emplace(req.request_id, Sent{tenant_idx, class_id,
                                               steady_us()});
      ++tally.sent;
      ++tally.offered_by_tenant[tenant_idx];
      return true;
    };

    // ---- Phase 1: closed loop (window-limited, self-clocked).
    const std::uint64_t t0 = steady_us();
    for (std::uint64_t i = 0; i < closed_budget; ++i) {
      if (outstanding.size() >= kWindow && !drain_one()) return;
      if (!send_one()) return;
    }
    while (!outstanding.empty()) {
      if (!drain_one()) return;
    }
    const std::uint64_t t1 = steady_us();
    tally.closed_rate_rps =
        t1 > t0 ? static_cast<double>(closed_budget) * 1e6 /
                      static_cast<double>(t1 - t0)
                : 0.0;

    // ---- Phase 2: open loop at 1.15x the measured closed-loop rate.
    // Arrivals are scheduled on the clock; a full window at an arrival
    // instant means the generator is ahead of the service and must block
    // (counted, not silently absorbed).
    const double rate = std::max(tally.closed_rate_rps * 1.15, 1000.0);
    const double interval_us = 1e6 / rate;
    double next_send = static_cast<double>(steady_us());
    for (std::uint64_t i = closed_budget; i < per_conn; ++i) {
      next_send += interval_us;
      while (static_cast<double>(steady_us()) < next_send) {
        if (outstanding.size() >= kWindow / 2) {
          if (!drain_one()) return;  // use the wait to drain replies
        } else {
          std::this_thread::yield();
        }
      }
      if (outstanding.size() >= kWindow) {
        ++tally.backpressure;
        if (!drain_one()) return;
      }
      if (!send_one()) return;
    }
    while (!outstanding.empty()) {
      if (!drain_one()) return;
    }
  };

  const auto wall_start = std::chrono::steady_clock::now();
  SerialTimer load_timer;
  std::vector<std::thread> workers;
  for (unsigned c = 0; c < conns; ++c) workers.emplace_back(conn_worker, c);
  for (auto& w : workers) w.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  churning.store(false, std::memory_order_relaxed);
  churn.join();
  server.stop();
  ledger.uninstall();  // shards joined: the ledger is quiesced, fold away

  // ---- Aggregate.
  const std::vector<net::SloClassSpec> classes = soak_classes();
  std::uint64_t sent_total = 0, rejected = 0, shed = 0, backpressure = 0,
                transport_errors = 0;
  std::uint64_t ok[kClasses] = {0, 0, 0};
  std::uint64_t missed[kClasses] = {0, 0, 0};
  std::uint64_t failed[kClasses] = {0, 0, 0};
  std::vector<double> latencies[kClasses];
  std::map<std::uint32_t, double> offered_by_tenant, ok_by_tenant;
  double closed_rate_total = 0.0;
  for (const ConnTally& t : tallies) {
    sent_total += t.sent;
    rejected += t.rejected;
    shed += t.shed;
    backpressure += t.backpressure;
    transport_errors += t.transport_errors;
    closed_rate_total += t.closed_rate_rps;
    for (int c = 0; c < kClasses; ++c) {
      ok[c] += t.ok[c];
      missed[c] += t.deadline_missed[c];
      failed[c] += t.failed[c];
      latencies[c].insert(latencies[c].end(), t.latencies_us[c].begin(),
                          t.latencies_us[c].end());
    }
    for (const auto& [tenant, n] : t.offered_by_tenant)
      offered_by_tenant[tenant] += static_cast<double>(n);
    for (const auto& [tenant, n] : t.ok_by_tenant)
      ok_by_tenant[tenant] += static_cast<double>(n);
  }
  std::uint64_t ok_total = 0, missed_total = 0, failed_total = 0;
  for (int c = 0; c < kClasses; ++c) {
    ok_total += ok[c];
    missed_total += missed[c];
    failed_total += failed[c];
  }

  // Jain fairness over per-tenant served fractions (ok / offered): every
  // registered tenant that offered load counts, so a starved tenant drags
  // the index down even though the busy ones look healthy.
  std::vector<double> served_fraction;
  for (const auto& [tenant, offered] : offered_by_tenant) {
    if (offered <= 0.0) continue;
    const auto it = ok_by_tenant.find(tenant);
    const double got = it == ok_by_tenant.end() ? 0.0 : it->second;
    served_fraction.push_back(got / offered);
  }
  const double jain = net::jain_index(served_fraction);

  // Fold the cost ledger by tenant and by class (tenant "t%06u" has class
  // idx % 3 by construction; "(refresh)" and other system contexts fold
  // into the "system" bucket).
  struct CostRoll {
    std::uint64_t steps = 0, walks = 0, cpu_us = 0, cache_hits = 0;
  };
  CostRoll by_class[kClasses];
  CostRoll system_cost;
  std::uint64_t tenant_steps_max = 0;
  double tenant_steps_sum = 0.0;
  std::map<std::string, std::uint64_t> steps_by_tenant;
  for (const CostRecord& row : ledger.snapshot()) {
    if (row.ctx == 0) continue;
    CostRoll* roll = &system_cost;
    const std::string& tenant = row.context.tenant;
    if (tenant.size() > 1 && tenant[0] == 't') {
      char* end = nullptr;
      const unsigned long idx = std::strtoul(tenant.c_str() + 1, &end, 10);
      if (end != nullptr && *end == '\0') {
        roll = &by_class[idx % kClasses];
      }
    }
    roll->steps += row.steps();
    roll->walks += row.get(CostField::kWalks);
    roll->cpu_us += row.cpu_us();
    roll->cache_hits += row.get(CostField::kCacheHits);
    if (roll != &system_cost) {
      steps_by_tenant[tenant] += row.steps();
    }
  }
  for (const auto& [tenant, steps] : steps_by_tenant) {
    tenant_steps_max = std::max(tenant_steps_max, steps);
    tenant_steps_sum += static_cast<double>(steps);
  }
  const CostRecord cost_totals = ledger.totals();

  const auto snap = registry.snapshot();
  const double steps = snap.counter_or_zero("serve.steps");
  emit_batch("soak.load",
             load_timer.finish(static_cast<std::size_t>(ok_total),
                               static_cast<std::uint64_t>(steps)));

  TextTable table({"metric", "value"});
  table.add_row({"requests sent", format_double(
      static_cast<double>(sent_total), 0)});
  table.add_row({"ok", format_double(static_cast<double>(ok_total), 0)});
  table.add_row({"rejected", format_double(static_cast<double>(rejected), 0)});
  table.add_row({"shed (queue full)",
                 format_double(static_cast<double>(shed), 0)});
  table.add_row({"deadline missed",
                 format_double(static_cast<double>(missed_total), 0)});
  table.add_row({"failed", format_double(static_cast<double>(failed_total),
                                         0)});
  table.add_row({"open-loop backpressure",
                 format_double(static_cast<double>(backpressure), 0)});
  table.add_row({"throughput (rps)",
                 format_double(wall_s > 0.0
                                   ? static_cast<double>(sent_total) / wall_s
                                   : 0.0,
                               0)});
  table.add_row({"jain fairness", format_double(jain, 4)});

  record_value("soak.requests", static_cast<double>(sent_total));
  record_value("soak.ok", static_cast<double>(ok_total));
  record_value("soak.rejected", static_cast<double>(rejected));
  record_value("soak.rejected_rate",
               sent_total > 0 ? static_cast<double>(rejected) /
                                    static_cast<double>(sent_total)
                              : 0.0);
  record_value("soak.shed_rate",
               sent_total > 0 ? static_cast<double>(shed) /
                                    static_cast<double>(sent_total)
                              : 0.0);
  record_value("soak.deadline_missed", static_cast<double>(missed_total));
  record_value("soak.failed", static_cast<double>(failed_total));
  record_value("soak.backpressure", static_cast<double>(backpressure));
  record_value("soak.transport_errors",
               static_cast<double>(transport_errors));
  record_value("soak.tenants", static_cast<double>(tenants));
  record_value("soak.connections", static_cast<double>(conns));
  record_value("soak.throughput_rps",
               wall_s > 0.0 ? static_cast<double>(sent_total) / wall_s : 0.0);
  record_value("soak.closed_loop_rps", closed_rate_total);
  record_value("soak.jain_fairness", jain);

  bool gates_ok = transport_errors == 0;
  if (transport_errors != 0) {
    std::cerr << "error: " << transport_errors << " transport errors\n";
  }
  for (int c = 0; c < kClasses; ++c) {
    const std::string prefix = "soak.class." + classes[c].name + ".";
    std::sort(latencies[c].begin(), latencies[c].end());
    const double p50 = percentile(latencies[c], 0.50);
    const double p90 = percentile(latencies[c], 0.90);
    const double p99 = percentile(latencies[c], 0.99);
    const std::uint64_t counted = ok[c] + missed[c] + failed[c];
    // Hit rate over COUNTED requests: rejects are load shedding, reported
    // separately, same convention as SloLedger.
    const double hit_rate =
        counted > 0 ? static_cast<double>(ok[c]) /
                          static_cast<double>(counted)
                    : 1.0;
    record_value(prefix + "requests", static_cast<double>(counted));
    record_value(prefix + "ok", static_cast<double>(ok[c]));
    record_value(prefix + "hit_rate", hit_rate);
    record_value(prefix + "latency_p50_us", p50);
    record_value(prefix + "latency_p90_us", p90);
    record_value(prefix + "latency_p99_us", p99);
    Log2Histogram hist;
    for (double v : latencies[c])
      hist.record(static_cast<std::uint64_t>(v));
    emit_histogram(prefix + "latency_us", hist);

    table.add_row({classes[c].name + " hit rate",
                   format_double(hit_rate, 4)});
    table.add_row({classes[c].name + " p50/p99 (us)",
                   format_double(p50, 0) + " / " + format_double(p99, 0)});

    // The gate: deadline classes must hold 95%. Best-effort classes have
    // no deadline to miss, but a failure spike still trips via kFailed.
    const bool has_deadline = classes[c].deadline_us != 0;
    const double bar = has_deadline ? 0.95 : 0.99;
    if (counted > 0 && hit_rate < bar) {
      std::cerr << "error: class " << classes[c].name << " hit rate "
                << hit_rate << " below " << bar << "\n";
      gates_ok = false;
    }

    const std::string cost_prefix = "cost.class." + classes[c].name + ".";
    record_value(cost_prefix + "steps",
                 static_cast<double>(by_class[c].steps));
    record_value(cost_prefix + "walks",
                 static_cast<double>(by_class[c].walks));
    record_value(cost_prefix + "cpu_us",
                 static_cast<double>(by_class[c].cpu_us));
    record_value(cost_prefix + "cache_hits",
                 static_cast<double>(by_class[c].cache_hits));
  }
  if (jain < 0.9) {
    std::cerr << "error: jain fairness " << jain << " below 0.9\n";
    gates_ok = false;
  }

  record_value("cost.steps", static_cast<double>(cost_totals.steps()));
  record_value("cost.cpu_us", static_cast<double>(cost_totals.cpu_us()));
  record_value("cost.contexts", static_cast<double>(ledger.contexts()));
  record_value("cost.unattributed_steps",
               static_cast<double>(ledger.unattributed().steps()));
  record_value("cost.unattributed_walks",
               static_cast<double>(ledger.unattributed().get(
                   CostField::kWalks)));
  record_value("cost.unattributed_batches",
               static_cast<double>(ledger.unattributed().get(
                   CostField::kBatches)));
  record_value("cost.dropped_contexts",
               static_cast<double>(ledger.dropped_contexts()));
  record_value("cost.system.steps", static_cast<double>(system_cost.steps));
  record_value("cost.tenant.steps_max",
               static_cast<double>(tenant_steps_max));
  record_value("cost.tenant.steps_mean",
               steps_by_tenant.empty()
                   ? 0.0
                   : tenant_steps_sum /
                         static_cast<double>(steps_by_tenant.size()));

  // net.* front-end counters ride into the artifact for baseline context.
  for (const auto& [name, v] : snap.counters)
    if (name.rfind("net.", 0) == 0)
      record_value(name, static_cast<double>(v));

  table.print(std::cout);
  std::cout << "# soak: " << (gates_ok ? "PASS" : "FAIL") << " ("
            << format_double(wall_s, 1) << " s, "
            << format_double(wall_s > 0.0
                                 ? static_cast<double>(sent_total) / wall_s
                                 : 0.0,
                             0)
            << " rps)\n";

  // Reconciliation: every walk step the shards spent must be attributed
  // (same contract bench_serve pins; compiled away when cost is off).
#if OVERCOUNT_COST_ENABLED
  if (static_cast<double>(cost_totals.steps()) != steps) {
    std::cerr << "error: cost ledger holds " << cost_totals.steps()
              << " steps but the shards spent " << steps << "\n";
    return 1;
  }
  if (ledger.unattributed().steps() != 0) {
    std::cerr << "error: " << ledger.unattributed().steps()
              << " walk steps escaped attribution\n";
    return 1;
  }
#endif  // OVERCOUNT_COST_ENABLED
  return gates_ok ? 0 : 1;
}

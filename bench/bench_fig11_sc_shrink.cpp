// Figure 11: Sample & Collide (l = 100, no window) on a shrinking network —
// 50% of the nodes depart between runs 30 and 80 (of 100).
//
// Paper shape: raw estimates track the descending real size within ~10%;
// a single point costs ~3.5N messages versus RT's ~5600N windowed cost —
// three orders of magnitude cheaper for the same plotted accuracy.
#include "dynamic_common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("fig11_sc_shrink",
           "Sample&Collide l=100 on gradually shrinking overlay");
  paper_note(
      "Fig 11: estimates track 100k->50k (runs 30-80) within ~10%; a point "
      "costs ~350k messages vs 560M for a Fig-8 point");

  // Budget the timer from a same-sized balanced graph's measured gap; the
  // scenario's churned overlay has comparable expansion (Section 5.1 rules).
  Rng probe_rng(master_seed());
  const Graph probe = make_balanced(probe_rng);
  const double timer = sampling_timer(probe, master_seed());
  std::cout << "# timer=" << format_double(timer, 2) << '\n';

  DynamicFigure fig;
  const std::size_t total_runs = runs(100);
  fig.title = "Figure 11 - S&C l=100, shrinking network";
  fig.spec = gradual_decrease_spec(overlay_size(), total_runs,
                                   TopologyKind::kBalanced);
  fig.spec.actual_size_every = 1;
  fig.estimator = sample_collide_estimate_fn(timer, 100);
  fig.window = 1;
  fig.repetitions = 1;
  fig.stride = 1;
  run_dynamic_figure(fig);
  return 0;
}

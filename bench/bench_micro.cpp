// Micro-benchmarks (google-benchmark): throughput of the primitives every
// experiment above is built from — walk steps, CTRW samples, full tours,
// DES events, the Lanczos spectral-gap computation, and the parallel batch
// runner's scaling across thread counts. The BM_RandomTour* trio checks the
// probe-hook overhead contract: NullProbe must match the bare walk (the
// hooks compile out), and even a live WalkStatsProbe should cost only a few
// percent.
#include <benchmark/benchmark.h>

#include <limits>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/overcount.hpp"
#include "des/simulator.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_runner.hpp"
#include "walk/kernel.hpp"
#include "walk/walkers.hpp"

namespace {

using namespace overcount;

const Graph& balanced_graph() {
  static const Graph g = [] {
    Rng rng(1);
    return largest_component(balanced_random_graph(20000, rng));
  }();
  return g;
}

void BM_DtrwStep(benchmark::State& state) {
  const Graph& g = balanced_graph();
  Rng rng(2);
  DtrwWalker walker(g, 0);
  for (auto _ : state) benchmark::DoNotOptimize(walker.step(rng));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DtrwStep);

void BM_RandomTour(benchmark::State& state) {
  const Graph& g = balanced_graph();
  Rng rng(3);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const auto e = random_tour_size(g, 0, rng);
    steps += e.steps;
    benchmark::DoNotOptimize(e.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
  state.counters["steps/tour"] =
      static_cast<double>(steps) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_RandomTour);

// Explicit NullProbe: must be indistinguishable from BM_RandomTour — every
// hook sits behind `if constexpr (probe_enabled_v<P>)`.
void BM_RandomTourNullProbe(benchmark::State& state) {
  const Graph& g = balanced_graph();
  Rng rng(3);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const auto e = random_tour_size(g, 0, rng, ~0ULL, NullProbe{});
    steps += e.steps;
    benchmark::DoNotOptimize(e.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_RandomTourNullProbe);

// Live WalkStatsProbe: per-step histogram update plus a hash-set insert for
// revisit tracking. Same rng seed as BM_RandomTour, so the walks (and the
// estimates) are identical — only the instrumentation differs.
void BM_RandomTourProbed(benchmark::State& state) {
  const Graph& g = balanced_graph();
  Rng rng(3);
  WalkStats stats;
  WalkStatsProbe probe(stats);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const auto e = random_tour_size(g, 0, rng, ~0ULL, probe);
    steps += e.steps;
    benchmark::DoNotOptimize(e.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_RandomTourProbed);

// Interleaved walk kernel (walk/kernel.hpp) at a sweep of widths, same
// 20k balanced graph and walk workload as BM_RandomTour. width:1 measures
// the kernel harness running one lane (the round-robin overhead floor);
// width >= 8 must beat the scalar BM_RandomTour items/s — that delta is the
// whole point of the kernel, and the perf-smoke CI job pins it via the
// committed baseline artifact (bench/baselines/BENCH_micro.json).
void BM_RandomTourKernel(benchmark::State& state) {
  const Graph& g = balanced_graph();
  const auto width = static_cast<std::size_t>(state.range(0));
  const std::size_t walks = 64;
  const auto master = derive_streams(3, walks);
  std::vector<TourEstimate> out(walks);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    auto streams = master;  // identical walks every iteration
    tour_kernel(
        g, 0, [](NodeId) { return 1.0; }, std::span<Rng>(streams),
        std::span<TourEstimate>(out), width);
    for (const auto& t : out) steps += t.steps;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
  state.counters["width"] = static_cast<double>(width);
}
BENCHMARK(BM_RandomTourKernel)
    ->ArgName("width")
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32);

// Same kernel workload as BM_RandomTourKernel at width 16, but with a live
// TraceRecorder installed, so every tour records a lifecycle span
// (obs/trace.hpp). The acceptance bound is <= 5% items/s below the untraced
// width:16 run — spans are per WALK (hundreds of steps), so two clock reads
// per tour must disappear into the DRAM noise. The headline value
// rt_kernel_trace_overhead records the measured fraction.
void BM_RandomTourKernelTraced(benchmark::State& state) {
  const Graph& g = balanced_graph();
  const std::size_t width = 16;
  const std::size_t walks = 64;
  const auto master = derive_streams(3, walks);
  std::vector<TourEstimate> out(walks);
  TraceRecorder* previous = TraceRecorder::active();
  TraceRecorder recorder;  // rings overwrite oldest: bounded regardless of
  recorder.install();      // how long the benchmark loops
  std::uint64_t steps = 0;
  for (auto _ : state) {
    auto streams = master;  // identical walks every iteration
    tour_kernel(
        g, 0, [](NodeId) { return 1.0; }, std::span<Rng>(streams),
        std::span<TourEstimate>(out), width);
    for (const auto& t : out) steps += t.steps;
    benchmark::DoNotOptimize(out.data());
  }
  if (previous != nullptr)
    previous->install();  // hand back to an OVERCOUNT_TRACE_JSON recorder
  else
    recorder.uninstall();
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
  state.counters["events_recorded"] =
      static_cast<double>(recorder.events().size());
}
BENCHMARK(BM_RandomTourKernelTraced);

// Kernel-vs-scalar pair for the Sample & Collide inner loop: the same 16
// trials, serially one-by-one (scalar path) vs interleaved in one band
// (sc_kernel). Items are CTRW hops.
void BM_ScTrialsScalar(benchmark::State& state) {
  const Graph& g = balanced_graph();
  const std::size_t trials = 16, ell = 10;
  std::uint64_t seed = 5000;
  std::uint64_t hops = 0;
  for (auto _ : state) {
    auto streams = derive_streams(seed++, trials);
    for (std::size_t i = 0; i < trials; ++i) {
      SampleCollideEstimator estimator(g, 0, 6.0, ell, streams[i]);
      const auto e = estimator.estimate();
      hops += e.hops;
      benchmark::DoNotOptimize(e.simple);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(hops));
}
BENCHMARK(BM_ScTrialsScalar);

void BM_ScTrialsKernel(benchmark::State& state) {
  const Graph& g = balanced_graph();
  const std::size_t trials = 16, ell = 10;
  std::uint64_t seed = 5000;  // same trials as BM_ScTrialsScalar
  std::vector<ScTrialRaw> raw(trials);
  std::uint64_t hops = 0;
  for (auto _ : state) {
    auto streams = derive_streams(seed++, trials);
    sc_kernel(g, 0, 6.0, ell, std::span<Rng>(streams),
              std::span<ScTrialRaw>(raw), trials);
    for (const auto& t : raw) hops += t.hops;
    benchmark::DoNotOptimize(raw.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(hops));
}
BENCHMARK(BM_ScTrialsKernel);

// Batch of independent tours fanned over a ParallelRunner pool; Arg is the
// thread count. The acceptance target is >= 3x items/s at 8 threads vs the
// 1-thread batch on an 8-core machine; results are bit-identical across
// thread counts, so this only buys wall-clock, never different numbers.
void BM_TourBatchParallel(benchmark::State& state) {
  const Graph& g = balanced_graph();
  const auto threads = static_cast<unsigned>(state.range(0));
  ParallelRunner runner(threads);
  const std::size_t batch_size = 64;
  std::uint64_t seed = 1000;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const auto batch = run_tours_size(g, 0, batch_size, seed++, runner);
    steps += batch.total_steps;
    benchmark::DoNotOptimize(batch.sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
  state.counters["tours/batch"] = static_cast<double>(batch_size);
}
BENCHMARK(BM_TourBatchParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Same scaling probe for a batch of CTRW samples (the S&C inner loop).
void BM_SampleBatchParallel(benchmark::State& state) {
  const Graph& g = balanced_graph();
  const auto threads = static_cast<unsigned>(state.range(0));
  ParallelRunner runner(threads);
  const std::size_t batch_size = 256;
  std::uint64_t seed = 2000;
  std::uint64_t hops = 0;
  for (auto _ : state) {
    const auto batch = run_samples(g, 0, batch_size, 6.0, seed++, runner);
    hops += batch.total_hops;
    benchmark::DoNotOptimize(batch.samples.back().node);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(hops));
}
BENCHMARK(BM_SampleBatchParallel)
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_CtrwSample(benchmark::State& state) {
  const Graph& g = balanced_graph();
  Rng rng(4);
  const auto timer = static_cast<double>(state.range(0));
  std::uint64_t hops = 0;
  for (auto _ : state) {
    const auto s = ctrw_sample(g, 0, timer, rng);
    hops += s.hops;
    benchmark::DoNotOptimize(s.node);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(hops));
}
BENCHMARK(BM_CtrwSample)->Arg(2)->Arg(8);

void BM_SampleCollide(benchmark::State& state) {
  const Graph& g = balanced_graph();
  Rng rng(5);
  SampleCollideEstimator estimator(g, 0, 6.0,
                                   static_cast<std::size_t>(state.range(0)),
                                   rng.split());
  for (auto _ : state) benchmark::DoNotOptimize(estimator.estimate().simple);
}
BENCHMARK(BM_SampleCollide)->Arg(5)->Arg(20);

void BM_DesEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) sim.schedule_after(1.0, tick);
    };
    sim.schedule_at(0.0, tick);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * 10000));
}
BENCHMARK(BM_DesEventLoop);

void BM_SpectralGapLanczos(benchmark::State& state) {
  Rng rng(6);
  const Graph g = largest_component(
      balanced_random_graph(static_cast<std::size_t>(state.range(0)), rng));
  for (auto _ : state)
    benchmark::DoNotOptimize(spectral_gap_lanczos(g, 80));
}
BENCHMARK(BM_SpectralGapLanczos)->Arg(2000)->Arg(8000);

void BM_BalancedGeneration(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        balanced_random_graph(static_cast<std::size_t>(state.range(0)), rng)
            .num_edges());
}
BENCHMARK(BM_BalancedGeneration)->Arg(10000);

// Mirrors each finished benchmark into the telemetry report on top of the
// normal console table: `bm.<name>.real_time` (in the benchmark's own time
// unit) plus every finalized counter as `bm.<name>.<counter>` — notably
// items_per_second, which the perf-smoke baseline diff
// (scripts/validate_bench_json.py --baseline) compares across commits.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      overcount::bench::record_value("bm." + name + ".real_time",
                                     run.GetAdjustedRealTime());
      for (const auto& [counter_name, counter] : run.counters) {
        overcount::bench::record_value("bm." + name + "." + counter_name,
                                       counter.value);
        if (counter_name == "items_per_second")
          items_per_second_[name] = counter.value;
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  /// Finalized items/s of a benchmark by full name, NaN when absent.
  double items_per_second(const std::string& name) const {
    const auto it = items_per_second_.find(name);
    return it == items_per_second_.end()
               ? std::numeric_limits<double>::quiet_NaN()
               : it->second;
  }

 private:
  std::map<std::string, double> items_per_second_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("micro",
           "google-benchmark microbenchmarks: walk, DES, spectral, batch "
           "scaling, probe overhead");

  // In fast mode shrink the measurement window so CI smoke runs stay quick.
  std::vector<char*> args(argv, argv + argc);
  char min_time_flag[] = "--benchmark_min_time=0.01";
  if (fast_mode()) args.push_back(min_time_flag);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;

  RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  // Headline number for the interleaved kernel: items/s at width 16 over
  // the scalar tour loop. The committed perf baseline records this, so a
  // kernel regression that only shows up relative to scalar still fails the
  // baseline diff.
  const double scalar_rate = reporter.items_per_second("BM_RandomTour");
  const double kernel_rate =
      reporter.items_per_second("BM_RandomTourKernel/width:16");
  if (scalar_rate > 0.0 && kernel_rate > 0.0)
    record_value("rt_kernel_speedup_width16", kernel_rate / scalar_rate);

  // Tracing overhead headline: fraction of width-16 kernel throughput lost
  // with a live recorder (acceptance: <= 0.05 plus measurement noise). Kept
  // out of the committed baseline's diffed counters — the baseline diff
  // reports new counters as informational only.
  const double traced_rate =
      reporter.items_per_second("BM_RandomTourKernelTraced");
  if (kernel_rate > 0.0 && traced_rate > 0.0)
    record_value("rt_kernel_trace_overhead",
                 (kernel_rate - traced_rate) / kernel_rate);

  // A small probed batch so the micro artifact also carries histogram and
  // walk-stats sections (the same schema the figure benches emit).
  WalkStats walk;
  ParallelRunner runner(worker_threads());
  const auto batch =
      run_tours_size_probed(balanced_graph(), 0, 64, 42, runner, walk);
  emit_batch("rt_probed_batch", batch);
  emit_walk_stats("rt_probed_batch", walk);

  benchmark::Shutdown();
  return 0;
}

// Figure 4: CDFs of normalised estimate values for Random Tour,
// Sample & Collide l=10 and l=100, on a balanced random graph.
//
// Paper shape: the steeper the curve the tighter the estimator; S&C(l=100)
// is steepest, then S&C(l=10), then RT (whose single-tour estimates are
// widely dispersed).
#include "common.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("fig04_value_cdf",
           "CDF of normalised estimates: RT vs S&C l=10 vs S&C l=100");
  paper_note(
      "Fig 4: ordering of steepness S&C(100) > S&C(10) > RT; all centred "
      "at 1.0");

  Rng master(master_seed());
  Rng graph_rng = master.split();
  const Graph g = make_balanced(graph_rng);
  const double n = static_cast<double>(g.num_nodes());
  const double timer = sampling_timer(g, master_seed());

  auto cdf_series = [](const std::string& name, std::vector<double> values) {
    Ecdf ecdf(std::move(values));
    Series s{name, {}, {}};
    for (double x = 0.0; x <= 6.0; x += 0.05) s.add(x, ecdf(x));
    return s;
  };

  std::vector<Series> series;

  {
    RandomTourEstimator rt(g, 0, master.split());
    WalkStats walk;
    WalkStatsProbe probe(walk);
    SerialTimer clock;
    std::vector<double> values;
    const std::size_t rt_runs = runs(1000);
    for (std::size_t i = 0; i < rt_runs; ++i)
      values.push_back(rt.estimate_size(probe).value / n);
    emit_batch("rt", clock.finish(rt_runs, rt.total_steps()));
    emit_walk_stats("rt", walk);
    series.push_back(cdf_series("RT", std::move(values)));
  }
  for (const std::size_t ell : {std::size_t{10}, std::size_t{100}}) {
    SampleCollideEstimator sc(g, 0, timer, ell, master.split());
    WalkStats walk;
    WalkStatsProbe probe(walk);
    SerialTimer clock;
    std::vector<double> values;
    std::uint64_t hops = 0;
    const std::size_t sc_runs = runs(ell == 10 ? 400 : 120);
    for (std::size_t i = 0; i < sc_runs; ++i) {
      const auto e = sc.estimate(probe);
      hops += e.hops;
      values.push_back(e.simple / n);
    }
    const std::string label = "sc l=" + std::to_string(ell);
    emit_batch(label, clock.finish(sc_runs, hops));
    emit_walk_stats(label, walk);
    series.push_back(
        cdf_series("SC_l" + std::to_string(ell), std::move(values)));
  }
  emit("Figure 4 - CDF of estimate values (normalised by N)", series);
  return 0;
}

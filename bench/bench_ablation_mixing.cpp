// Ablation (Lemma 1): sampling quality versus timer budget T, and the
// variation-distance bound sqrt(N) e^{-lambda_2 T} against exact
// distributions.
//
// Shape: the exact distance decays exponentially at rate lambda_2 and sits
// under the bound; on the big graph the chi-square statistic of empirical
// samples drops to its null expectation once T passes ~log(N)/lambda_2.
#include <cmath>

#include "common.hpp"
#include "util/tests.hpp"
#include "walk/exact.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("ablation_mixing",
           "CTRW sampling quality vs timer T; Lemma 1 bound check");
  paper_note(
      "Lemma 1: d_TV(sample, uniform) <= sqrt(N) exp(-lambda_2 T); "
      "T = 1.5 log(N)/lambda_2 => O(1/N) bias");

  // Exact check on a mid-sized balanced graph.
  Rng master(master_seed());
  Rng small_rng = master.split();
  const Graph small = largest_component(balanced_random_graph(300, small_rng));
  const double gap = spectral_gap_exact(small);
  const double sqrt_n = std::sqrt(static_cast<double>(small.num_nodes()));
  Series exact{"exact_distance", {}, {}};
  Series bound{"lemma1_bound", {}, {}};
  for (double t = 0.25; t <= 6.0; t += 0.25) {
    exact.add(t, variation_distance_to_uniform(
                     ctrw_distribution(small, 0, t)));
    bound.add(t, std::min(1.0, sqrt_n * std::exp(-gap * t)));
  }
  std::cout << "# small graph n=" << small.num_nodes()
            << " lambda2=" << format_double(gap, 3) << '\n';
  emit("Ablation - exact variation distance vs Lemma 1 bound (log-shape)",
       {exact, bound});

  // Empirical chi-square on the full-size graph as T sweeps through the
  // recommended budget.
  Rng big_rng = master.split();
  const Graph big = make_balanced(big_rng);
  const double big_gap = spectral_gap_lanczos(big, 120, master_seed());
  const double recommended = recommended_ctrw_timer(
      static_cast<double>(big.num_nodes()), big_gap);
  std::cout << "# big graph n=" << big.num_nodes()
            << " lambda2~=" << format_double(big_gap, 3)
            << " recommended T=" << format_double(recommended, 2) << '\n';

  TextTable table({"T", "chi2/dof (1.0 = unbiased)", "avg hops/sample"});
  const std::size_t buckets = 200;  // aggregate nodes into buckets for power
  for (double frac : {0.1, 0.25, 0.5, 1.0, 1.5}) {
    const double t = frac * recommended;
    CtrwSampler sampler(big, t, master.split());
    std::vector<std::size_t> counts(buckets, 0);
    const std::size_t draws = runs(40000);
    for (std::size_t i = 0; i < draws; ++i)
      ++counts[sampler.sample(0).node % buckets];
    const auto chi = chi_square_uniform(counts);
    table.add_row({format_double(t, 1),
                   format_double(chi.statistic / chi.dof, 2),
                   format_double(static_cast<double>(sampler.total_hops()) /
                                     static_cast<double>(draws),
                                 1)});
  }
  table.print(std::cout);
  return 0;
}

// Ablation (Section 2): the paper's methods against the generic baselines
// it surveys — gossip averaging [20], probabilistic polling [15,33,24], and
// the inverted birthday paradox [7] — on one balanced overlay.
//
// Shape: polling costs Theta(N) with ACK implosion; gossip costs
// Theta(N log N) but amortises over all nodes; birthday-paradox needs
// ~sqrt(ell) more samples than S&C for the same variance; RT costs
// Theta(N) per run with O(1) relative variance.
#include <cmath>

#include "common.hpp"
#include "core/dht_density.hpp"
#include "core/tree_aggregate.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("ablation_baselines",
           "RT / S&C vs gossip, polling, birthday-paradox baselines");
  paper_note(
      "Sec 2: polling = Theta(N) + ACK implosion; gossip = Theta(N log N) "
      "amortised; [7] = sqrt(ell) more samples than S&C");

  Rng master(master_seed());
  Rng graph_rng = master.split();
  const Graph g = make_balanced(graph_rng);
  const double n = static_cast<double>(g.num_nodes());
  const double timer = sampling_timer(g, master_seed());
  const std::size_t ell = 10;

  TextTable table({"method", "mean estimate / N", "rel. std", "messages/run",
                   "note"});

  auto add_row = [&](const std::string& name, RunningStats& values,
                     double cost, const std::string& note) {
    table.add_row({name, format_double(values.mean(), 3),
                   format_double(values.stddev(), 3), format_double(cost, 0),
                   note});
  };

  {
    RandomTourEstimator rt(g, 0, master.split());
    RunningStats values;
    const std::size_t reps = runs(300);
    for (std::size_t i = 0; i < reps; ++i)
      values.add(rt.estimate_size().value / n);
    add_row("Random Tour (1 run)", values,
            static_cast<double>(rt.total_steps()) / static_cast<double>(reps),
            "unbiased, O(1) rel var");
  }
  {
    SampleCollideEstimator sc(g, 0, timer, ell, master.split());
    RunningStats values;
    std::uint64_t hops = 0;
    const std::size_t reps = runs(60);
    for (std::size_t i = 0; i < reps; ++i) {
      const auto e = sc.estimate();
      values.add(e.simple / n);
      hops += e.hops;
    }
    add_row("Sample&Collide l=10", values,
            static_cast<double>(hops) / static_cast<double>(reps),
            "rel var ~ 1/l");
  }
  {
    BirthdayParadoxEstimator bd(g, 0, timer, ell, master.split());
    RunningStats values;
    std::uint64_t hops = 0;
    const std::size_t reps = runs(40);
    for (std::size_t i = 0; i < reps; ++i) {
      const auto e = bd.estimate();
      values.add(e.value / n);
      hops += e.hops;
    }
    add_row("Birthday paradox x10 [7]", values,
            static_cast<double>(hops) / static_cast<double>(reps),
            "~sqrt(l/2 * pi/2) x S&C samples");
  }
  {
    Rng poll_rng = master.split();
    RunningStats values;
    double cost = 0.0;
    const std::size_t reps = runs(40);
    std::uint64_t worst_implosion = 0;
    for (std::size_t i = 0; i < reps; ++i) {
      const auto e = probabilistic_polling(g, 0, 0.05, poll_rng);
      values.add(e.value / n);
      cost += static_cast<double>(e.flood_messages + e.replies);
      worst_implosion = std::max(worst_implosion, e.replies);
    }
    add_row("Probabilistic polling p=.05", values,
            cost / static_cast<double>(reps),
            "ACK implosion: " + std::to_string(worst_implosion) +
                " replies at once");
  }
  {
    // Architecture-specific: DHT identifier density [11] — O(k) cost but
    // requires a structured overlay.
    Rng dht_rng = master.split();
    RunningStats values;
    const std::size_t k = 32;
    const std::size_t reps = runs(200);
    for (std::size_t i = 0; i < reps; ++i) {
      const DhtIdSpace space(g.num_nodes(), dht_rng);
      values.add(space.estimate_size(dht_rng.next(), k) / n);
    }
    add_row("DHT id density k=32 [11]", values, static_cast<double>(k),
            "DHT-only; O(k) lookups");
  }
  {
    // Architecture-specific: spanning-tree aggregation [9,32,25] — exact
    // but Theta(N) and churn-fragile.
    const auto t = tree_count(g, 0);
    RunningStats values;
    values.add(t.value / n);
    add_row("spanning tree [9,32,25]", values,
            static_cast<double>(t.messages), "exact; rebuilt under churn");
  }
  {
    Rng gossip_rng = master.split();
    RunningStats values;
    const std::uint64_t exchanges =
        30ull * static_cast<std::uint64_t>(g.num_nodes());
    const auto r = gossip_average(g, 0, g.num_nodes(), exchanges, gossip_rng);
    for (std::size_t v = 0; v < g.num_nodes(); v += 97)
      values.add(r.estimates[v] / n);
    add_row("Gossip averaging [20]", values,
            static_cast<double>(r.messages),
            "one run serves ALL nodes");
  }
  table.print(std::cout);
  return 0;
}

// Ablation: the paper's CTRW sampler versus the Metropolis-Hastings walk —
// the other standard way to get a uniform stationary distribution.
//
// Both are unbiased in the limit; the interesting axis is message cost per
// usable sample at matched quality. MH pays a probe for every rejected
// proposal and needs ~mixing-time steps per sample; the CTRW compresses
// its stay at high-degree nodes into virtual time instead of messages.
#include <cmath>

#include "common.hpp"
#include "util/tests.hpp"
#include "walk/metropolis.hpp"

int main() {
  using namespace overcount;
  using namespace overcount::bench;

  preamble("ablation_metropolis",
           "CTRW sampler vs Metropolis-Hastings at matched uniformity");
  paper_note(
      "Sec 4.1 alternative: MH also samples uniformly but spends probes on "
      "rejections; CTRW spends virtual time instead");

  Rng master(master_seed());
  Rng graph_rng = master.split();
  const Graph g = make_scale_free(graph_rng);  // heterogeneous worst case
  const std::size_t n = g.num_nodes();
  const double timer = sampling_timer(g, master_seed());

  const std::size_t buckets = 200;
  const std::size_t draws = runs(30000);

  TextTable table({"sampler", "chi2/dof (1 = uniform)", "mean deg of sample",
                   "messages/sample"});

  {
    CtrwSampler sampler(g, timer, master.split());
    std::vector<std::size_t> counts(buckets, 0);
    RunningStats deg;
    for (std::size_t i = 0; i < draws; ++i) {
      const NodeId s = sampler.sample(0).node;
      ++counts[s % buckets];
      deg.add(static_cast<double>(g.degree(s)));
    }
    const auto chi = chi_square_uniform(counts);
    table.add_row({"CTRW (paper)",
                   format_double(chi.statistic / chi.dof, 2),
                   format_double(deg.mean(), 2),
                   format_double(static_cast<double>(sampler.total_hops()) /
                                     static_cast<double>(draws),
                                 1)});
  }
  // MH with step budget matched to the CTRW's message cost, and with 4x.
  const auto ctrw_cost = static_cast<std::uint64_t>(
      timer * g.average_degree());
  for (const std::uint64_t steps : {ctrw_cost, 4 * ctrw_cost}) {
    MetropolisSampler sampler(g, steps, master.split());
    std::vector<std::size_t> counts(buckets, 0);
    RunningStats deg;
    for (std::size_t i = 0; i < draws; ++i) {
      const NodeId s = sampler.sample(0).node;
      ++counts[s % buckets];
      deg.add(static_cast<double>(g.degree(s)));
    }
    const auto chi = chi_square_uniform(counts);
    table.add_row({"Metropolis " + std::to_string(steps) + " steps",
                   format_double(chi.statistic / chi.dof, 2),
                   format_double(deg.mean(), 2),
                   format_double(static_cast<double>(sampler.probes_sent()) /
                                     static_cast<double>(draws),
                                 1)});
  }
  {
    DtrwSampler sampler(g, ctrw_cost, master.split());
    std::vector<std::size_t> counts(buckets, 0);
    RunningStats deg;
    for (std::size_t i = 0; i < draws; ++i) {
      const NodeId s = sampler.sample(0).node;
      ++counts[s % buckets];
      deg.add(static_cast<double>(g.degree(s)));
    }
    const auto chi = chi_square_uniform(counts);
    table.add_row({"plain DTRW (biased)",
                   format_double(chi.statistic / chi.dof, 2),
                   format_double(deg.mean(), 2),
                   format_double(static_cast<double>(ctrw_cost), 1)});
  }
  std::cout << "# overlay average degree = "
            << format_double(g.average_degree(), 2)
            << " (an unbiased sampler's mean sampled degree matches it; the "
               "DTRW's is E[d^2]/E[d])\n";
  table.print(std::cout);
  (void)n;
  return 0;
}

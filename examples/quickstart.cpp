// Quickstart: estimate the size of an overlay network two ways.
//
//   $ ./quickstart [--peers=10000] [--tours=50] [--ell=20] [--seed=42]
//
// Builds a balanced random overlay, then runs the paper's two estimators
// from one peer's local viewpoint:
//  * Random Tour      — one probe message walks until it returns home;
//  * Sample & Collide — CTRW-sampled peers are collected until l repeats.
#include <cstdlib>
#include <iostream>

#include "core/overcount.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace overcount;

  Options opts;
  opts.add("peers", "10000", "overlay size");
  opts.add("tours", "50", "Random Tours to average");
  opts.add("ell", "20", "Sample&Collide accuracy parameter");
  opts.add("seed", "42", "master seed");
  try {
    opts.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << opts.usage(argv[0]);
    return 1;
  }
  const auto n = static_cast<std::size_t>(opts.get_int("peers"));
  Rng rng(static_cast<std::uint64_t>(opts.get_int("seed")));
  const Graph overlay = largest_component(balanced_random_graph(n, rng));
  std::cout << "overlay: " << overlay.num_nodes() << " peers, "
            << overlay.num_edges() << " links, average degree "
            << overlay.average_degree() << "\n\n";

  const NodeId me = 0;

  // --- Random Tour: average a handful of tours. -------------------------
  RandomTourEstimator tour(overlay, me, rng.split());
  const auto tours = static_cast<std::size_t>(opts.get_int("tours"));
  const double rt_estimate = tour.averaged_size_estimate(tours);
  std::cout << "Random Tour   (" << tours << " tours):  N ~ " << rt_estimate
            << "   [cost: " << tour.total_steps() << " messages]\n";

  // --- Sample & Collide: one measurement at l = 20. ---------------------
  // Budget the sampling timer from the overlay's spectral gap (Lemma 1).
  const double gap = spectral_gap_lanczos(overlay, 100);
  const double timer = recommended_ctrw_timer(
      static_cast<double>(overlay.num_nodes()), gap);
  SampleCollideEstimator collide(
      overlay, me, timer, static_cast<std::size_t>(opts.get_int("ell")),
      rng.split());
  const auto sc = collide.estimate();
  std::cout << "Sample&Collide (l=" << opts.get("ell") << "):     N ~ "
            << sc.simple
            << "   (ML: " << sc.ml << ", bracket [" << sc.n_minus << ", "
            << sc.n_plus << "])\n"
            << "                           [cost: " << sc.hops
            << " messages for " << sc.samples << " samples]\n\n";

  std::cout << "true size: " << overlay.num_nodes() << "\n";
  return 0;
}

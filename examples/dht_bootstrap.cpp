// DHT bootstrap sizing — the paper's very first motivation (Section 1):
// "overlay maintenance protocols, such as Viceroy, rely on approximate
// knowledge of the overlay size to incorporate a newly arrived peer".
//
// A joining peer estimates N three ways and derives its routing parameters
// (finger count ~ log2 N, Viceroy level ~ uniform in 1..log N) from each:
//   1. Sample & Collide over the DHT's own routing topology (generic),
//   2. Random Tour over the same topology (generic),
//   3. identifier density around its position (DHT-specific, cheapest).
//
//   $ ./dht_bootstrap [--peers=5000] [--ell=20]
#include <cmath>
#include <iostream>

#include "core/overcount.hpp"
#include "dht/chord.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace overcount;

  Options opts;
  opts.add("peers", "5000", "number of peers in the ring");
  opts.add("ell", "20", "Sample&Collide accuracy parameter");
  opts.add("seed", "17", "master seed");
  try {
    opts.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << opts.usage(argv[0]);
    return 1;
  }

  Rng rng(static_cast<std::uint64_t>(opts.get_int("seed")));
  const auto n = static_cast<std::size_t>(opts.get_int("peers"));
  const auto ell = static_cast<std::size_t>(opts.get_int("ell"));

  const ChordRing ring(n, rng);
  const Graph overlay = ring.to_overlay_graph();
  std::cout << "Chord ring: " << ring.size() << " peers, overlay degree "
            << overlay.average_degree() << ", avg distinct fingers "
            << ring.average_distinct_fingers() << "\n\n";

  const NodeId me = 0;
  auto report = [&](const char* method, double estimate, double cost) {
    const double log2n = std::log2(std::max(estimate, 2.0));
    std::cout << method << ": N ~ " << static_cast<long>(estimate)
              << "  -> finger-table size " << static_cast<int>(log2n + 0.5)
              << ", Viceroy level range 1.." << static_cast<int>(log2n)
              << "   [" << static_cast<long>(cost) << " msgs]\n";
  };

  {
    const double gap = spectral_gap_lanczos(overlay, 100);
    const double timer =
        recommended_ctrw_timer(static_cast<double>(n), gap);
    SampleCollideEstimator sc(overlay, me, timer, ell, rng.split());
    const auto e = sc.estimate();
    report("Sample&Collide (generic) ", e.simple,
           static_cast<double>(e.hops));
  }
  {
    RandomTourEstimator rt(overlay, me, rng.split());
    const double estimate = rt.averaged_size_estimate(20);
    report("Random Tour x20 (generic)", estimate,
           static_cast<double>(rt.total_steps()));
  }
  {
    report("identifier density (DHT) ",
           ring.estimate_size_density(me, 64), 64.0);
  }
  std::cout << "\ntrue size: " << n << "\n";
  return 0;
}

// Live-media admission control — the paper's own motivating application
// (Section 1, citing DONet/CoolStreaming [36]): before admitting more
// dial-up viewers, the operator needs to know how many of the current peers
// are on broadband versus dial-up. Random Tour aggregates ANY per-node
// statistic, so one walk answers both questions at once.
//
//   $ ./live_stream_admission
#include <iostream>
#include <vector>

#include "core/overcount.hpp"

int main() {
  using namespace overcount;

  Rng rng(7);
  const std::size_t n = 20000;
  const Graph overlay = largest_component(balanced_random_graph(n, rng));

  // Assign each peer an upload capacity: ~30% dial-up (0.05 Mb/s), the
  // rest broadband (2-20 Mb/s). In a real deployment this is the peer's
  // locally known attribute; here we synthesise it.
  std::vector<double> upload_mbps(overlay.num_nodes());
  Rng attr_rng = rng.split();
  for (auto& u : upload_mbps)
    u = attr_rng.bernoulli(0.3) ? 0.05 : 2.0 + 18.0 * attr_rng.uniform();

  double true_broadband = 0.0;
  double true_capacity = 0.0;
  for (double u : upload_mbps) {
    if (u >= 2.0) true_broadband += 1.0;
    true_capacity += u;
  }

  const NodeId tracker = 0;
  Rng walk_rng = rng.split();

  // One aggregate per statistic; average a few tours each.
  auto average_tours = [&](auto&& f, int tours) {
    double acc = 0.0;
    for (int t = 0; t < tours; ++t)
      acc += random_tour(overlay, tracker, f, walk_rng).value;
    return acc / tours;
  };

  const int tours = 60;
  const double est_size =
      average_tours([](NodeId) { return 1.0; }, tours);
  const double est_broadband = average_tours(
      [&](NodeId v) { return upload_mbps[v] >= 2.0 ? 1.0 : 0.0; }, tours);
  const double est_capacity = average_tours(
      [&](NodeId v) { return upload_mbps[v]; }, tours);

  std::cout << "swarm size:          " << est_size
            << "  (true " << overlay.num_nodes() << ")\n"
            << "broadband peers:     " << est_broadband << "  (true "
            << true_broadband << ")\n"
            << "aggregate upload:    " << est_capacity << " Mb/s  (true "
            << true_capacity << ")\n\n";

  // Admission decision: every viewer consumes ~1 Mb/s; keep 20% headroom.
  const double stream_rate = 1.0;
  const double admissible =
      est_capacity / (1.2 * stream_rate) - est_size;
  if (admissible > 0)
    std::cout << "decision: can admit ~" << static_cast<long>(admissible)
              << " more dial-up viewers\n";
  else
    std::cout << "decision: at capacity - defer new dial-up viewers\n";
  return 0;
}

// Estimate serving end to end: an EstimateService brokering concurrent
// size/aggregate queries over a CHURNING overlay, observable over HTTP
// while it runs.
//
// Four client threads fire mixed queries — size and degree-sum, Random
// Tour and Sample & Collide, various (epsilon, delta) targets, deadlines
// attached — while a churn thread joins and removes peers under the graph
// mutex. The service translates each accuracy target into a walk budget
// (paper Section 3.4 / Section 4), serves repeats from its freshness-aware
// cache, coalesces identical concurrent misses into single batches, and
// load-sheds when the bounded queue fills. A MetricsHttpServer exports the
// serve.* family live; /readyz reports 503 until the service has warmed
// (first batch landed), then 200 — distinct from /healthz liveness.
//
//   $ ./estimate_server                          # full load, ephemeral port
//   $ OVERCOUNT_SERVE_FAST=1 ./estimate_server   # CI smoke shape
//   $ OVERCOUNT_METRICS_PORT=9464 ./estimate_server &
//   $ curl -s localhost:9464/metrics | grep serve_
//   $ curl -s -o /dev/null -w '%{http_code}\n' localhost:9464/readyz
//
// Exit code: non-zero when responses with deadlines miss more often than
// OVERCOUNT_SERVE_DEADLINE_BUDGET allows (default: unlimited; the CI
// serve-smoke job sets 0 in fast mode — generous deadlines, so a miss
// means the broker stalled, not that the machine was slow).
//
// The server also carries the full health stack from src/obs/health/: an
// EstimateAuditor cross-checks every landed batch against its promised
// (epsilon, delta) envelope, an SloLedger tracks per-class deadline-hit
// rate and error-budget burn (serve.slo.* family), a watchdog watches
// DeadlineQueue saturation, and a FlightRecorder (enabled by setting
// OVERCOUNT_FLIGHT_DIR) dumps a post-mortem bundle on any critical event
// or fatal signal. Two fault injections exist so CI can drill the chain:
//
//   OVERCOUNT_SERVE_DEADLINE_US      client deadline (default 10s)
//   OVERCOUNT_INJECT_QUEUE_STALL_MS  repeatedly pause the broker this long
//
// With a short deadline and an injected stall, queued requests expire,
// the per-class burn crosses 1.0, the ledger raises a kCritical
// serve.slo_breach, and the flight recorder drops a bundle — the second
// half of the CI health-smoke job. When the stall injection is on, the
// run fails unless at least one breach was raised (and, when a flight dir
// is configured, at least one bundle landed).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "obs/cost/cost.hpp"
#include "obs/expose.hpp"
#include "obs/health/audit.hpp"
#include "obs/health/flight.hpp"
#include "obs/health/health.hpp"
#include "obs/health/watchdog.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"
#include "serve/source.hpp"
#include "sim/scenario.hpp"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return static_cast<std::uint64_t>(std::strtoull(raw, nullptr, 10));
}

}  // namespace

int main() {
  using namespace overcount;

  const bool fast = env_u64("OVERCOUNT_SERVE_FAST", 0) != 0;
  const std::size_t nodes = fast ? 500 : 2000;
  const int clients = 4;
  const int queries_per_client = fast ? 24 : 120;
  // ~0 = no budget enforced; the CI smoke job sets 0.
  const std::uint64_t miss_budget =
      env_u64("OVERCOUNT_SERVE_DEADLINE_BUDGET", ~0ULL);
  // Fault injections for the health-smoke drill (see header comment).
  const std::uint64_t deadline_us =
      env_u64("OVERCOUNT_SERVE_DEADLINE_US", 10'000'000);
  const std::uint64_t stall_ms = env_u64("OVERCOUNT_INJECT_QUEUE_STALL_MS", 0);

  Rng rng(77);
  Rng build_rng = rng.split();
  Rng churn_rng = rng.split();
  DynamicGraph graph(balanced_random_graph(nodes, build_rng));
  std::mutex graph_mutex;

  MetricsRegistry registry;
  HealthCenter center(&registry);
  center.install();
  EstimateAuditor auditor(&registry, &center);

  // Cost attribution: each client class below carries a tenant, the broker
  // opens one ledger context per admitted query, and every walk step /
  // handoff / cache hit / queue wait bills to it. The ledger mirrors
  // cost.* families into the same registry /metrics exports, and the
  // tracer's cost.ctx spans let a flight bundle's profile.folded attribute
  // CPU time by tenant. Declared before the service so it outlives the
  // broker's shutdown path.
  CostLedger cost_ledger(&registry);
  cost_ledger.install();
  TraceRecorder trace;
  trace.install();

  ServiceConfig config;
  config.queue_capacity = 32;
  config.freshness.base_ttl_us = 2'000'000;
  config.refresh_period_us = fast ? 0 : 250'000;  // background refresher
  config.seed = 78;
  config.metrics = &registry;
  config.auditor = &auditor;
  // Demo objective, deliberately tighter than the default policy: the
  // 50-request window allows a single miss, so even a fast-mode run with
  // one injected stall pulse burns the whole budget and breaches.
  config.slo.target = 0.98;
  config.slo.window = 50;
  config.slo.min_requests = 10;
  EstimateService service(dynamic_graph_source(graph, graph_mutex), config);

  // Flight recorder: off unless OVERCOUNT_FLIGHT_DIR names a directory.
  FlightRecorder flight(FlightRecorder::env_dir());
  flight.attach_metrics(&registry);
  flight.attach_health(&center);
  flight.attach_trace(&trace);
  flight.attach_cost(&cost_ledger);
  if (flight.enabled()) {
    flight.auto_dump_on(center, HealthSeverity::kCritical);
    flight.install_signal_dump();
  }

  // Watchdog: a sustained near-full DeadlineQueue means the broker cannot
  // keep up (or is wedged) — shedding alone would hide that as rejections.
  Watchdog dog(&center);
  dog.watch_level(
      "serve.queue_saturated", "serve",
      [&service] { return static_cast<double>(service.queue_depth()); },
      0.9 * static_cast<double>(service.queue_capacity()),
      /*sustain_us=*/500'000);
  dog.start();

  // Export the same registry the service writes into; readiness = warmed.
  MetricsHttpServer http(registry,
                         static_cast<std::uint16_t>(
                             env_u64("OVERCOUNT_METRICS_PORT", 0)));
  http.set_ready_check([&service] { return service.warmed(); });
  http.set_cost_ledger(&cost_ledger);
  std::cerr << "# metrics: http://127.0.0.1:" << http.port()
            << "/metrics — /readyz 503 until the first batch lands; "
               "/costs ranks tenants by walk-step spend\n";

  // Broker-stall injector: repeatedly pause dispatch for stall_ms, letting
  // queued requests sit past their (short, injected) deadlines, then
  // unpause so the scrub resolves them as misses and clients make progress
  // between pulses. Off unless OVERCOUNT_INJECT_QUEUE_STALL_MS is set.
  std::atomic<bool> stalling{stall_ms > 0};
  std::thread staller([&] {
    while (stalling.load(std::memory_order_relaxed)) {
      service.set_paused(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
      service.set_paused(false);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max<std::uint64_t>(stall_ms / 2, 1)));
    }
  });

  std::atomic<bool> churning{true};
  std::thread churn([&] {
    Rng local = churn_rng;
    while (churning.load(std::memory_order_relaxed)) {
      {
        std::lock_guard lock(graph_mutex);
        churn_join(graph, TopologyKind::kBalanced, local, 3, 10);
        if (graph.num_alive() > nodes) churn_leave(graph, local);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(fast ? 60 : 25));
    }
  });

  struct Tally {
    std::atomic<std::uint64_t> ok{0}, hits{0}, coalesced{0}, rejected{0},
        deadline_missed{0}, failed{0}, latency_sum_us{0};
  };
  Tally tally;

  auto client = [&](int id) {
    // Per-client jitter stream for reject backoff: honouring the broker's
    // retry_after_us verbatim would march every shed client back in
    // lockstep and re-collide them; the shared helper spreads the herd
    // across [0.75, 1.25) of the hint (net/client.hpp, same policy the
    // socket clients use).
    Rng backoff_rng(0x9E3779B9u + static_cast<std::uint64_t>(id));
    for (int q = 0; q < queries_per_client; ++q) {
      EstimateRequest req;
      // One tenant per query class, so /costs has a real mix to rank: the
      // tight-target "search" class buys the biggest walk budgets and
      // should top every by_steps ranking.
      switch ((id + q) % 4) {
        case 0:  // the common cheap ask: cached size, loose target
          req.epsilon = 0.3;
          req.delta = 0.2;
          req.tenant = "ads";
          break;
        case 1:  // aggregate query over the same machinery
          req.kind = QueryKind::kDegreeSum;
          req.epsilon = 0.4;
          req.delta = 0.2;
          req.tenant = "analytics";
          break;
        case 2:  // tighter target: bigger budget, cache rarely suffices
          req.epsilon = 0.2;
          req.delta = 0.1;
          req.tenant = "search";
          break;
        default:  // the paper's other estimator
          req.method = EstimateMethod::kSampleCollide;
          req.epsilon = 0.5;
          req.delta = 0.3;
          req.tenant = "research";
          break;
      }
      // Generous by default: a miss means the broker stalled, not load.
      // The health-smoke drill shortens this so injected stalls miss.
      req.deadline_us = service.now_us() + deadline_us;
      const EstimateResponse resp = service.query(req);
      switch (resp.status) {
        case ServeStatus::kOk:
          tally.ok.fetch_add(1);
          tally.latency_sum_us.fetch_add(resp.latency_us);
          if (resp.cache_hit) tally.hits.fetch_add(1);
          if (resp.coalesced) tally.coalesced.fetch_add(1);
          break;
        case ServeStatus::kRejected:
          tally.rejected.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::microseconds(
              net::jittered_backoff_us(resp.retry_after_us, backoff_rng)));
          break;
        case ServeStatus::kDeadlineMiss:
          tally.deadline_missed.fetch_add(1);
          break;
        case ServeStatus::kFailed:
          tally.failed.fetch_add(1);
          break;
      }
    }
  };

  std::vector<std::thread> workers;
  for (int id = 0; id < clients; ++id) workers.emplace_back(client, id);
  for (auto& w : workers) w.join();
  stalling.store(false, std::memory_order_relaxed);
  staller.join();
  service.set_paused(false);  // in case the last pulse left it paused
  churning.store(false, std::memory_order_relaxed);
  churn.join();
  dog.stop();
  service.stop();
  trace.uninstall();
  cost_ledger.uninstall();
  center.uninstall();

  const auto snap = registry.snapshot();
  const std::uint64_t total =
      static_cast<std::uint64_t>(clients) * queries_per_client;
  std::cout << "queries          " << total << "\n"
            << "ok               " << tally.ok.load() << "\n"
            << "cache hits       " << tally.hits.load() << "\n"
            << "coalesced        " << tally.coalesced.load() << "\n"
            << "rejected (shed)  " << tally.rejected.load() << "\n"
            << "deadline missed  " << tally.deadline_missed.load() << "\n"
            << "failed           " << tally.failed.load() << "\n"
            << "batches run      " << snap.counter_or_zero("serve.batches")
            << "\n"
            << "walks spent      " << snap.counter_or_zero("serve.walks")
            << "\n"
            << "refreshes        " << snap.counter_or_zero("serve.refreshes")
            << "\n"
            << "invalidations    "
            << snap.counter_or_zero("serve.cache_invalidations") << "\n";
  if (tally.ok.load() > 0)
    std::cout << "mean ok latency  "
              << tally.latency_sum_us.load() / tally.ok.load() << " us\n";

  // Per-class SLO ledger (the serve.slo.* family in /metrics).
  std::cout << "\nSLO ledger (target " << config.slo.target << "):\n";
  for (const char* cls : {"size.random_tour.deadline",
                          "degree_sum.random_tour.deadline",
                          "size.sample_collide.deadline"})
    std::cout << "  " << cls << "  hit_rate " << service.slo().hit_rate(cls)
              << "  burn " << service.slo().budget_burn(cls) << "\n";
  std::cout << "  breaches " << service.slo().breaches() << "  audited "
            << auditor.observations() << "  health events "
            << center.total_raised() << "  bundles " << flight.dumps()
            << "\n";

  // Who ate the cluster: the ledger folded by tenant, plus the ranked
  // JSON answer the /costs endpoint serves to dashboards.
  std::cout << "\ncost ledger (" << cost_ledger.contexts()
            << " contexts, unattributed steps "
            << cost_ledger.unattributed().steps() << "):\n";
  {
    std::map<std::string, std::uint64_t> steps_by_tenant;
    for (const CostRecord& row : cost_ledger.snapshot())
      if (row.ctx != 0) steps_by_tenant[row.context.tenant] += row.steps();
    const std::uint64_t total_steps = cost_ledger.totals().steps();
    for (const auto& [tenant, tenant_steps] : steps_by_tenant)
      std::cout << "  " << tenant << "  steps " << tenant_steps << "  ("
                << (total_steps > 0
                        ? 100.0 * static_cast<double>(tenant_steps) /
                              static_cast<double>(total_steps)
                        : 0.0)
                << "%)\n";
  }
  std::cout << "\ntop tenants by steps (GET /costs?k=3):\n"
            << http_get_body(http.port(), "/costs?k=3") << "\n";

  std::cout << "\nserve.* exposition (GET /metrics):\n";
  const std::string metrics = http_get_body(http.port(), "/metrics");
  std::istringstream lines(metrics);
  for (std::string line; std::getline(lines, line);)
    if (line.rfind("serve_", 0) == 0 ||
        line.rfind("# TYPE serve_", 0) == 0)
      std::cout << line << '\n';

  int readyz_status = 0;
  http_get_body(http.port(), "/readyz", &readyz_status);
  std::cout << "\n/readyz after warm-up: " << readyz_status << "\n";

  if (tally.ok.load() == 0) {
    std::cerr << "error: no query succeeded\n";
    return 1;
  }
  if (readyz_status != 200) {
    std::cerr << "error: /readyz not 200 after warm-up\n";
    return 1;
  }
  if (miss_budget != ~0ULL && tally.deadline_missed.load() > miss_budget) {
    std::cerr << "error: " << tally.deadline_missed.load()
              << " deadline misses exceed budget " << miss_budget << "\n";
    return 1;
  }
  if (cost_ledger.unattributed().steps() != 0) {
    // Zero-residue contract: every admitted query carried a context, so
    // nothing the broker spent may land on the sink.
    std::cerr << "error: " << cost_ledger.unattributed().steps()
              << " walk steps escaped cost attribution\n";
    return 1;
  }
  if (stall_ms > 0) {
    // The drill exists to prove the alarm chain: stall -> misses -> burn
    // crosses 1.0 -> kCritical serve.slo_breach -> flight bundle.
    if (service.slo().breaches() == 0) {
      std::cerr << "error: injected broker stall never breached the SLO\n";
      return 1;
    }
    if (flight.enabled() && flight.dumps() == 0) {
      std::cerr << "error: SLO breached but no flight bundle landed\n";
      return 1;
    }
  }
  return 0;
}

// Full protocol-stack stress test: Random Tour and Sample & Collide run as
// MESSAGE protocols over the discrete-event network — with latency, per-hop
// message loss, and continuous churn — rather than as abstract walks. This
// is the closest analogue of deploying the estimators on a real overlay
// (Section 5.3.1's loss handling in action). Two regime notes baked into
// the setup: churn must be slow relative to one measurement (otherwise the
// population genuinely IS larger across the measurement window), and
// per-hop loss censors long Random Tours, so the RT phase runs loss-free.
//
// Live introspection (obs/): OVERCOUNT_METRICS_PORT=9464 serves the DES
// event counters at /metrics while the simulation runs (curl -s
// localhost:9464/metrics), and OVERCOUNT_TRACE_JSON=/tmp/churn-trace.json
// records a per-event span trace for ui.perfetto.dev. A scripted scraper
// (CI's tracing-smoke job) can set OVERCOUNT_METRICS_HOLD_S=<seconds> to
// keep the endpoint alive after the simulation finishes until one scrape
// has been served (or the deadline passes).
//
//   $ ./churn_stress
#include <chrono>
#include <cstdlib>
#include <thread>
#include <functional>
#include <iomanip>
#include <iostream>

#include "core/overcount.hpp"
#include "obs/expose.hpp"
#include "obs/trace.hpp"
#include "protocols/random_tour_protocol.hpp"
#include "protocols/sampling_protocol.hpp"

int main() {
  using namespace overcount;

  Rng rng(31);
  DynamicGraph overlay(
      largest_component(balanced_random_graph(4000, rng)));
  std::cout << "overlay: " << overlay.num_alive()
            << " peers; latency 1+/-1, loss 0.2%, churn: 1 join + 1 "
               "departure per 200 time units\n\n";

  Simulator sim;
  // Live introspection, both opt-in: the scrape endpoint watches the DES
  // counters while the simulation runs, the recorder captures a span per
  // fired event. Neither touches any Rng (estimates stay bit-identical).
  MetricsRegistry registry;
  sim.attach_metrics(registry);
  const auto server = maybe_serve_metrics(registry);
  const char* trace_path = std::getenv("OVERCOUNT_TRACE_JSON");
  TraceRecorder recorder;
  if (trace_path != nullptr && *trace_path != '\0') recorder.install();
  // 0.2% per-hop loss: a sampling walk of ~80 hops still completes ~85% of
  // the time, so timeouts recover the rest without dominating.
  Network net(sim, overlay, {1.0, 1.0}, 0.002, rng.split());

  // Churn driver: a join (balanced attachment) and a departure every 200
  // simulated time units while a measurement phase is active (the flag
  // lets sim.run() drain between phases).
  Rng churn_rng = rng.split();
  const NodeId probe_node = overlay.random_alive_node(churn_rng);
  bool churn_active = true;
  std::function<void()> churn = [&] {
    if (!churn_active) return;
    // Join: up to 5 targets with degree < 10.
    std::vector<NodeId> targets;
    for (int t = 0; t < 12 && targets.size() < 5; ++t) {
      const NodeId cand = overlay.random_alive_node(churn_rng);
      if (overlay.degree(cand) < 10 &&
          std::find(targets.begin(), targets.end(), cand) == targets.end())
        targets.push_back(cand);
    }
    overlay.add_node(targets);
    // Departure: anyone but the probing node or its last remaining
    // neighbour (a real deployment would have the prober re-join; keeping
    // it attached keeps the demo focused on the estimators).
    NodeId victim = overlay.random_alive_node(churn_rng);
    const bool is_last_link =
        overlay.degree(probe_node) == 1 &&
        overlay.has_edge(probe_node, victim);
    if (victim != probe_node && !is_last_link) overlay.remove_node(victim);
    sim.schedule_after(200.0, churn);
  };
  sim.schedule_after(200.0, churn);

  // --- Sample & Collide protocol, back-to-back measurements. -----------
  {
    SampleCollideProtocol sc(net, 10.0, 25, rng.split());
    int remaining = 8;
    std::cout << "Sample&Collide (l=25) over the DES:\n";
    std::function<void(const SampleCollideProtocol::Result&)> on_done =
        [&](const SampleCollideProtocol::Result& r) {
          std::cout << "  t=" << std::setw(8) << std::fixed
                    << std::setprecision(0) << sim.now()
                    << "  estimate=" << std::setw(6) << r.estimate.simple
                    << "  actual=" << overlay.component_size(probe_node)
                    << "  samples=" << r.estimate.samples
                    << "  retries=" << r.retries << "\n";
          if (--remaining > 0) sc.start(probe_node, on_done);
          else churn_active = false;
        };
    sc.start(probe_node, on_done);
    sim.run();
  }

  // --- Random Tour protocol under the same conditions. ------------------
  {
    churn_active = true;
    sim.schedule_after(200.0, churn);
    // Per-hop loss censors Random Tour: a tour of ~2|E|/d hops survives
    // with probability exp(-loss * length), so any loss rate biases the
    // surviving tours (hence the estimate) sharply downward. The paper's
    // model only loses probes to node departures; we disable random loss
    // for this phase and let the churn-driven losses exercise the timeout.
    net.set_loss_probability(0.0);
    RandomTourProtocol rt(net, rng.split());
    rt.set_timeout_policy(6.0, 1e5);
    int remaining = 40;
    RunningStats estimates;
    std::uint64_t retries = 0;
    std::cout << "\nRandom Tour over the DES (40 tours):\n";
    std::function<void(const RandomTourProtocol::Result&)> on_done =
        [&](const RandomTourProtocol::Result& r) {
          estimates.add(r.estimate);
          retries += r.retries;
          if (--remaining > 0) rt.start(probe_node, on_done);
          else churn_active = false;
        };
    rt.start(probe_node, on_done);
    sim.run();
    std::cout << "  mean estimate=" << std::setprecision(0)
              << estimates.mean()
              << "  actual=" << overlay.component_size(probe_node)
              << "  relative sd="
              << std::setprecision(2)
              << estimates.stddev() / estimates.mean()
              << "  probes retried=" << retries << "\n";
  }

  std::cout << "\nnetwork totals: " << net.messages_sent() << " sent, "
            << net.messages_lost() << " lost ("
            << std::setprecision(2)
            << 100.0 * static_cast<double>(net.messages_lost()) /
                   static_cast<double>(net.messages_sent())
            << "%)\n";
  if (trace_path != nullptr && *trace_path != '\0') {
    recorder.uninstall();
    if (write_chrome_trace_file(trace_path, recorder, "churn_stress"))
      std::cerr << "# trace: wrote " << trace_path << '\n';
  }
  const char* hold = std::getenv("OVERCOUNT_METRICS_HOLD_S");
  if (server != nullptr && hold != nullptr && *hold != '\0') {
    // Keep the scrape endpoint alive for an external scraper, returning as
    // soon as it has collected one sample of the finished run.
    const std::uint64_t served_before = server->requests_served();
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(std::atof(hold)));
    while (server->requests_served() == served_before &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return 0;
}

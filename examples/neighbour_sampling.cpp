// Uniform peer sampling for neighbour selection — the "independent
// interest" use of the paper's sampling sub-routine (Section 1): a joining
// node wants k overlay neighbours chosen uniformly at random, which keeps
// the overlay expander-like ([18]). A naive fixed-length DTRW picks
// high-degree peers and aggravates hub formation; the CTRW sampler does not.
//
//   $ ./neighbour_sampling
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/overcount.hpp"

int main() {
  using namespace overcount;

  Rng rng(11);
  // A scale-free overlay: the worst case for degree bias.
  const Graph overlay = largest_component(barabasi_albert(10000, 3, rng));
  std::cout << "overlay: " << overlay.num_nodes()
            << " peers, max degree " << overlay.max_degree()
            << ", average degree " << overlay.average_degree() << "\n\n";

  const NodeId bootstrap = 0;  // the contact node a joiner starts from
  const double timer = recommended_ctrw_timer(
      static_cast<double>(overlay.num_nodes()),
      spectral_gap_lanczos(overlay, 100));

  CtrwSampler uniform_sampler(overlay, timer, rng.split());
  DtrwSampler biased_sampler(overlay, 50, rng.split());

  // Draw 2000 candidate neighbours with each sampler and compare the mean
  // degree of the selected peers against the overlay average.
  const int draws = 2000;
  RunningStats ctrw_degree;
  RunningStats dtrw_degree;
  for (int i = 0; i < draws; ++i) {
    ctrw_degree.add(static_cast<double>(
        overlay.degree(uniform_sampler.sample(bootstrap).node)));
    dtrw_degree.add(static_cast<double>(
        overlay.degree(biased_sampler.sample(bootstrap).node)));
  }

  std::cout << "mean degree of sampled peers:\n"
            << "  CTRW (paper's sampler):  " << ctrw_degree.mean()
            << "   <- matches overlay average "
            << overlay.average_degree() << "\n"
            << "  fixed-step DTRW:         " << dtrw_degree.mean()
            << "   <- degree-biased (E[d^2]/E[d] ~ hubs)\n\n";

  // Pick 5 fresh neighbours for the joiner (deduplicated, not bootstrap).
  std::vector<NodeId> chosen;
  while (chosen.size() < 5) {
    const NodeId cand = uniform_sampler.sample(bootstrap).node;
    if (cand != bootstrap &&
        std::find(chosen.begin(), chosen.end(), cand) == chosen.end())
      chosen.push_back(cand);
  }
  std::cout << "joiner's neighbour set:";
  for (NodeId v : chosen)
    std::cout << "  " << v << "(d=" << overlay.degree(v) << ")";
  std::cout << "\ncost: " << uniform_sampler.total_hops()
            << " probe messages for " << uniform_sampler.samples_drawn()
            << " samples\n";
  return 0;
}

// Watch the paper's estimators converge: run a Random Tour batch and a
// Sample & Collide trial batch through the monitored runners of
// core/convergence.hpp, print the recorded trajectories, and write them as
// time-series JSON for scripts/report_convergence.py.
//
// The recorded half-width column is the THEORY envelope — eps(m) =
// sqrt(2 d_bar / (lambda2 m delta)) for Random Tours (Section 3.4),
// 1.96/sqrt(ell k) for k averaged S&C trials (Lemma 2) — so the output
// shows the observed error tracking the predicted decay, and the monitored
// batches return bit-identical estimates to the plain run_tours_size /
// run_sc_trials of the same seed (checked at the end, exit 1 on
// divergence).
//
//   $ ./convergence_watch [n_nodes] [out_dir]
//   $ python3 scripts/report_convergence.py /tmp/convergence_rt.json
//         /tmp/convergence_sc.json --strict
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>

#include "core/convergence.hpp"
#include "core/overcount.hpp"
#include "obs/timeseries.hpp"

namespace {

void print_trajectory(const overcount::TimeSeriesRecorder& rec) {
  std::cout << "  " << std::setw(8) << "walks" << std::setw(14) << "steps"
            << std::setw(12) << "estimate" << std::setw(12) << "rel_err"
            << std::setw(12) << "pred_hw" << '\n';
  for (const auto& p : rec.points()) {
    const double rel = rec.has_truth()
                           ? std::abs(p.estimate - rec.truth()) / rec.truth()
                           : 0.0;
    std::cout << "  " << std::setw(8) << p.walks << std::setw(14) << p.steps
              << std::setw(12) << std::fixed << std::setprecision(0)
              << p.estimate << std::setw(11) << std::setprecision(1)
              << 100.0 * rel << "%" << std::setw(12) << std::setprecision(3)
              << p.half_width << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace overcount;

  const std::size_t n_nodes =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 20000;
  const std::string out_dir = argc > 2 ? argv[2] : "/tmp";
  Rng rng(7);
  const Graph overlay =
      largest_component(balanced_random_graph(n_nodes, rng));
  const double n = static_cast<double>(overlay.num_nodes());
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  ParallelRunner runner(hw);
  std::cout << "overlay: " << overlay.num_nodes() << " nodes, "
            << overlay.num_edges() << " edges; pool: " << hw << " threads\n";

  const double gap = spectral_gap_lanczos(overlay, 120, 7);
  ConvergenceOptions opts;
  opts.truth = n;
  opts.lambda2 = std::max(gap, 1e-3);
  opts.avg_degree = 2.0 * static_cast<double>(overlay.num_edges()) / n;

  // --- Random Tour trajectory: 2000 tours, ~50 snapshots. ---------------
  const std::uint64_t seed = 42;
  TimeSeriesRecorder rt_rec;
  const auto tours =
      run_tours_size_converging(overlay, 0, 2000, seed, runner, rt_rec, opts);
  std::cout << "\nRandom Tour, " << tours.tours.size() << " tours (theory "
            << "half-width at delta=" << opts.delta << "):\n";
  print_trajectory(rt_rec);

  // --- Sample & Collide trajectory: 64 trials at ell = 20. --------------
  const double timer = recommended_ctrw_timer(n, opts.lambda2);
  TimeSeriesRecorder sc_rec;
  const auto sc = run_sc_converging(overlay, 0, 64, timer, 20, seed + 1,
                                    runner, sc_rec, opts);
  std::cout << "\nSample&Collide, " << sc.trials.size()
            << " trials at ell=20:\n";
  print_trajectory(sc_rec);

  const std::string rt_path = out_dir + "/convergence_rt.json";
  const std::string sc_path = out_dir + "/convergence_sc.json";
  if (!write_timeseries_file(rt_path, rt_rec) ||
      !write_timeseries_file(sc_path, sc_rec))
    return 1;
  std::cout << "\nwrote " << rt_path << " and " << sc_path
            << " (render: scripts/report_convergence.py)\n";

  // --- Monitoring must not perturb the estimate: replay unmonitored. ----
  const auto plain = run_tours_size(overlay, 0, 2000, seed, runner);
  const bool identical = plain.sum == tours.sum &&
                         plain.total_steps == tours.total_steps &&
                         plain.completed == tours.completed;
  std::cout << "unmonitored replay: "
            << (identical ? "bit-identical" : "DIVERGED — bug!") << '\n';
  return identical ? 0 : 1;
}

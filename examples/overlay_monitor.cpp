// Continuous size monitoring of a churning overlay — the dynamic scenario
// of the paper's Section 5.3, packaged as a dashboard-style monitor.
// A flash crowd arrives, then a correlated failure takes out a quarter of
// the peers; the monitor tracks both with Sample & Collide while a
// sliding-window Random Tour tracker runs alongside for comparison.
//
//   $ ./overlay_monitor
#include <iomanip>
#include <iostream>

#include "core/overcount.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace overcount;

  ScenarioSpec spec;
  spec.initial_nodes = 8000;
  spec.runs = 60;
  spec.topology = TopologyKind::kBalanced;
  spec.actual_size_every = 1;
  // Flash crowd (+50%) at run 15, catastrophic failure (-25%) at run 40.
  spec.sudden.push_back(SuddenChange{15, +4000});
  spec.sudden.push_back(SuddenChange{40, -3000});

  const double timer = 12.0;
  const auto sc_result =
      run_scenario(spec, sample_collide_estimate_fn(timer, 50), 1, 2024);
  const auto rt_result =
      run_scenario(spec, random_tour_estimate_fn(), 10, 2024);

  std::cout << "run   true-size   S&C(l=50)   RT(win=10)   S&C err\n";
  std::cout << std::fixed << std::setprecision(0);
  for (std::size_t i = 0; i < sc_result.points.size(); i += 3) {
    const auto& sc = sc_result.points[i];
    const auto& rt = rt_result.points[i];
    const double err = 100.0 * (sc.windowed - sc.actual_size) /
                       sc.actual_size;
    std::cout << std::setw(3) << sc.run << "   " << std::setw(8)
              << sc.actual_size << "   " << std::setw(9) << sc.windowed
              << "   " << std::setw(9) << rt.windowed << "   "
              << std::setprecision(1) << std::setw(6) << err << "%\n"
              << std::setprecision(0);
  }
  std::cout << "\nS&C total cost: " << sc_result.total_messages
            << " messages; RT total cost: " << rt_result.total_messages
            << " messages\n";
  return 0;
}

// Continuous size monitoring of a churning overlay — the dynamic scenario
// of the paper's Section 5.3, packaged as a dashboard-style monitor.
// A flash crowd arrives, then a correlated failure takes out a quarter of
// the peers; a CUSUM-guarded SizeMonitor tracks both from Sample & Collide
// estimates, while an obs/ MetricsRegistry watches the machinery itself:
// every walk the estimator launches reports into the registry through a
// RegistryProbe, and the monitor's resets are counted alongside. The live
// table therefore shows WHAT the monitor believes and WHAT IT COST, and the
// run ends with a full metrics snapshot.
//
//   $ ./overlay_monitor
#include <iomanip>
#include <iostream>

#include "core/monitor.hpp"
#include "core/overcount.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace overcount;

  const std::size_t initial_nodes = 8000;
  const std::size_t total_runs = 60;
  const std::size_t ell = 50;
  const double timer = 12.0;

  Rng rng(2024);
  Rng build_rng = rng.split();
  Rng churn_rng = rng.split();
  Rng estimate_rng = rng.split();
  DynamicGraph g(balanced_random_graph(initial_nodes, build_rng));
  const NodeId probe_node = 0;

  MetricsRegistry registry;
  RegistryProbe probe(registry, "walk");
  Counter& estimates = registry.counter("monitor.estimates");
  Counter& resets = registry.counter("monitor.resets");

  MonitorConfig config;
  config.window = 20;
  config.estimate_rel_std = 1.0 / std::sqrt(static_cast<double>(ell));
  config.cusum_k = 0.5;  // the -25% failure is only ~1.8 sigma per run
  SizeMonitor monitor(config);

  std::cout << "run   true-size   monitor    walks     steps   resets\n";
  std::cout << std::fixed << std::setprecision(0);
  for (std::size_t run = 0; run < total_runs; ++run) {
    // Flash crowd (+50%) at run 15, catastrophic failure (-25%) at run 40.
    if (run == 15)
      for (int k = 0; k < 4000; ++k)
        churn_join(g, TopologyKind::kBalanced, churn_rng, 3, 10);
    if (run == 40)
      for (int k = 0; k < 3000; ++k) churn_leave(g, churn_rng);

    SampleCollideEstimator estimator(g, probe_node, timer, ell,
                                     estimate_rng.split());
    const auto estimate = estimator.estimate(probe);
    estimates.inc();
    if (monitor.feed(estimate.simple)) resets.inc();

    if (run % 3 == 0) {
      const auto snap = registry.snapshot();
      std::cout << std::setw(3) << run << "   " << std::setw(8)
                << g.component_size(probe_node) << "   " << std::setw(8)
                << monitor.value() << "   " << std::setw(6)
                << snap.counter_or_zero("walk.walks") << "   " << std::setw(8)
                << snap.counter_or_zero("walk.visits") << "   " << std::setw(5)
                << snap.counter_or_zero("monitor.resets") << '\n';
    }
  }

  std::cout << "\nchanges detected by the CUSUM monitor: "
            << monitor.changes_detected() << " (expected 2)\n"
            << "\nfinal metrics snapshot:\n";
  print_snapshot(std::cout, registry.snapshot());
  return 0;
}

// Continuous size monitoring of a churning overlay — the dynamic scenario
// of the paper's Section 5.3, packaged as a dashboard-style monitor that is
// ITSELF monitored over HTTP.
//
// A flash crowd arrives, then a correlated failure takes out a quarter of
// the peers; a CUSUM-guarded SizeMonitor tracks both from Sample & Collide
// estimates, while an obs/ MetricsRegistry watches the machinery: every
// walk the estimator launches reports into the registry through a
// RegistryProbe, and the monitor's resets are counted alongside. The
// registry is served live by an obs/expose.hpp MetricsHttpServer, and the
// dashboard table is built by polling the server's own /snapshot.json —
// the same bytes an external scraper would see, so the example doubles as
// an end-to-end test of the exposition path.
//
//   $ ./overlay_monitor                         # ephemeral port
//   $ OVERCOUNT_METRICS_PORT=9464 ./overlay_monitor &
//   $ curl -s localhost:9464/metrics            # Prometheus exposition
//   $ curl -s localhost:9464/snapshot.json | python3 -m json.tool
//   $ curl -s localhost:9464/healthz
//
// Span tracing rides along: OVERCOUNT_TRACE_JSON=/tmp/monitor-trace.json
// records every estimator walk and writes a Chrome/Perfetto trace_event
// file at exit (open it at ui.perfetto.dev).
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>

#include "core/monitor.hpp"
#include "core/overcount.hpp"
#include "obs/expose.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "sim/scenario.hpp"

namespace {

/// Counter value out of a polled /snapshot.json body; 0 when absent.
std::uint64_t polled_counter(const overcount::JsonValue& snapshot,
                             const std::string& name) {
  const auto* counters = snapshot.find("counters");
  if (counters == nullptr) return 0;
  const auto* value = counters->find(name);
  return value == nullptr
             ? 0
             : static_cast<std::uint64_t>(value->as_number());
}

}  // namespace

int main() {
  using namespace overcount;

  const std::size_t initial_nodes = 8000;
  const std::size_t total_runs = 60;
  const std::size_t ell = 50;
  const double timer = 12.0;

  Rng rng(2024);
  Rng build_rng = rng.split();
  Rng churn_rng = rng.split();
  Rng estimate_rng = rng.split();
  DynamicGraph g(balanced_random_graph(initial_nodes, build_rng));
  const NodeId probe_node = 0;

  MetricsRegistry registry;
  RegistryProbe probe(registry, "walk");
  Counter& estimates = registry.counter("monitor.estimates");
  Counter& resets = registry.counter("monitor.resets");

  // Serve the registry for the whole run: OVERCOUNT_METRICS_PORT when set,
  // otherwise an ephemeral port (still printed, still curl-able while the
  // run lasts). The dashboard below reads through this server.
  std::unique_ptr<MetricsHttpServer> server = maybe_serve_metrics(registry);
  if (server == nullptr) {
    server = std::make_unique<MetricsHttpServer>(registry, 0);
    std::cerr << "# metrics: serving http://127.0.0.1:" << server->port()
              << "/metrics (set OVERCOUNT_METRICS_PORT to pin)\n";
  }

  // Optional span trace of every estimator walk (OVERCOUNT_TRACE_JSON).
  const char* trace_path = std::getenv("OVERCOUNT_TRACE_JSON");
  TraceRecorder recorder;
  if (trace_path != nullptr && *trace_path != '\0') recorder.install();

  MonitorConfig config;
  config.window = 20;
  config.estimate_rel_std = 1.0 / std::sqrt(static_cast<double>(ell));
  config.cusum_k = 0.5;  // the -25% failure is only ~1.8 sigma per run
  SizeMonitor monitor(config);

  std::cout << "run   true-size   monitor    walks     steps   resets\n";
  std::cout << std::fixed << std::setprecision(0);
  for (std::size_t run = 0; run < total_runs; ++run) {
    // Flash crowd (+50%) at run 15, catastrophic failure (-25%) at run 40.
    if (run == 15)
      for (int k = 0; k < 4000; ++k)
        churn_join(g, TopologyKind::kBalanced, churn_rng, 3, 10);
    if (run == 40)
      for (int k = 0; k < 3000; ++k) churn_leave(g, churn_rng);

    SampleCollideEstimator estimator(g, probe_node, timer, ell,
                                     estimate_rng.split());
    const auto estimate = estimator.estimate(probe);
    estimates.inc();
    if (monitor.feed(estimate.simple)) resets.inc();

    if (run % 3 == 0) {
      // Dashboard row via the HTTP endpoint, not registry.snapshot():
      // what the table shows is exactly what a scraper would have seen.
      const std::string body =
          http_get_body(server->port(), "/snapshot.json");
      if (body.empty()) {
        std::cerr << "error: polling /snapshot.json failed\n";
        return 1;
      }
      const JsonValue snap = parse_json(body);
      std::cout << std::setw(3) << run << "   " << std::setw(8)
                << g.component_size(probe_node) << "   " << std::setw(8)
                << monitor.value() << "   " << std::setw(6)
                << polled_counter(snap, "walk.walks") << "   " << std::setw(8)
                << polled_counter(snap, "walk.visits") << "   "
                << std::setw(5) << polled_counter(snap, "monitor.resets")
                << '\n';
    }
  }

  std::cout << "\nchanges detected by the CUSUM monitor: "
            << monitor.changes_detected() << " (expected 2)\n"
            << "\nfinal Prometheus exposition (GET /metrics, "
            << server->requests_served() << " requests served):\n"
            << http_get_body(server->port(), "/metrics");

  if (trace_path != nullptr && *trace_path != '\0') {
    recorder.uninstall();
    if (write_chrome_trace_file(trace_path, recorder, "overlay_monitor"))
      std::cerr << "# trace: wrote " << trace_path << '\n';
  }
  server->stop();
  return 0;
}

// Health drill: force a BSP superstep stall in the sharded walk engine and
// watch the whole alarm chain fire — heartbeat goes silent, the watchdog
// raises shard.superstep_stall (kCritical), and the flight recorder drops a
// self-contained post-mortem bundle (Chrome trace with cross-shard flow
// events, metrics snapshot, health-event JSONL, convergence windows) under
// OVERCOUNT_FLIGHT_DIR. This is the walkthrough in EXPERIMENTS.md and the
// first half of the CI health-smoke job (scripts/validate_flight.py checks
// the bundle's integrity).
//
//   $ OVERCOUNT_INJECT_SUPERSTEP_DELAY_US=40000 OVERCOUNT_FLIGHT_DIR=/tmp/flight ./health_drill
//
// Without the injected delay the drill runs the same instrumented batch,
// trips nothing, dumps nothing, and exits 0 — the health layer is silent on
// a healthy run. With it, the drill exits non-zero unless the stall was
// BOTH detected (>= 1 watchdog trip) and captured (>= 1 bundle).
//
// The drill also re-runs the identical (seed, m) batch on a bare engine —
// no recorder, no heartbeat, no metrics, no injected delay — and insists
// the estimates match BIT FOR BIT: the audit layer observes, it never
// perturbs, even while the engine is artificially wedged.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/parallel.hpp"
#include "graph/generators.hpp"
#include "obs/cost/cost.hpp"
#include "obs/health/flight.hpp"
#include "obs/health/health.hpp"
#include "obs/health/watchdog.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "shard/engine.hpp"
#include "shard/partition.hpp"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return static_cast<std::uint64_t>(std::strtoull(raw, nullptr, 10));
}

}  // namespace

int main() {
  using namespace overcount;

  // The engine reads the superstep delay itself (shard/engine.hpp); the
  // drill only needs to know whether an injection is on to pick its exit
  // contract.
  const std::uint64_t delay_us =
      env_u64("OVERCOUNT_INJECT_SUPERSTEP_DELAY_US", 0);
  // Stall threshold: half the injected delay (so every slept superstep is
  // a detectable stall), or 150 ms on a healthy run.
  const std::uint64_t stall_after_us =
      env_u64("OVERCOUNT_STALL_AFTER_US",
              delay_us > 0 ? std::max<std::uint64_t>(delay_us / 2, 1'000)
                           : 150'000);
  std::string flight_dir = FlightRecorder::env_dir();
  if (flight_dir.empty()) flight_dir = "flight-drill";

  const std::size_t nodes = env_u64("OVERCOUNT_N", 120);
  const std::size_t walks = env_u64("OVERCOUNT_M", 8);
  constexpr std::uint64_t kSeed = 0xFEEDBEEF;

  Rng rng(99);
  const Graph g = balanced_random_graph(nodes, rng);
  const ShardPlan plan = make_shard_plan(g, 4);
  const ShardedGraph sharded(g, plan);

  // The full audit stack, wired the way a long-running deployment would:
  // events and counters into one registry, trace + metrics + health +
  // convergence windows all attached to the flight recorder, bundles
  // auto-dumped on any critical event, fatal signals hooked.
  MetricsRegistry registry;
  HealthCenter center(&registry);
  center.install();
  TraceRecorder trace;
  trace.install();
  TimeSeriesRecorder series("size");
  // Cost ledger + one context for the drill's batch: the bundle's
  // profile.folded then carries "tenant=drill;query=1" attribution frames
  // above the engine spans, which is what scripts/flamegraph.py renders.
  CostLedger cost_ledger(&registry);
  cost_ledger.install();
  QueryContext drill_ctx;
  drill_ctx.tenant = "drill";
  drill_ctx.query_id = 1;
  drill_ctx.kind = "size";
  drill_ctx.method = "random_tour";
  drill_ctx.slo_class = "size.random_tour.besteffort";
  const std::uint32_t drill_cost = cost_ledger.open(std::move(drill_ctx));

  Heartbeat heartbeat;
  WatchdogConfig wcfg;
  wcfg.poll_period_us = std::max<std::uint64_t>(stall_after_us / 4, 1'000);
  Watchdog dog(&center, wcfg);
  dog.watch_heartbeat("shard.superstep_stall", "shard", &heartbeat,
                      stall_after_us);

  FlightRecorder flight(flight_dir);
  flight.attach_metrics(&registry);
  flight.attach_trace(&trace);
  flight.attach_health(&center);
  flight.attach_timeseries(&series);
  flight.attach_cost(&cost_ledger);
  flight.auto_dump_on(center, HealthSeverity::kCritical);
  flight.install_signal_dump();
  dog.start();

  ParallelRunner runner(4, 8);
  ShardedWalkEngine engine(sharded, runner, &registry);
  engine.set_heartbeat(&heartbeat);
  const TourBatch batch = [&] {
    CostScope scope(drill_cost);
    return engine.run_tours(0, walks, [](NodeId) { return 1.0; }, kSeed);
  }();
  series.record(walks, batch.total_steps,
                batch.sum / static_cast<double>(walks), 0.0);

  dog.stop();

  // One final bundle so EVEN a run whose trips were all rate-limited away
  // leaves a complete post-mortem on disk (reason records why it exists).
  const std::string final_bundle =
      flight.dump(delay_us > 0 ? "drill.injected_stall" : "drill.baseline");

  // Bit-identity pin: same (seed, m) on a bare engine, injection disabled.
  // The ledger comes off first so the bare run is truly bare — otherwise
  // its steps would land on the sink and muddy the zero-residue story.
  cost_ledger.uninstall();
  ::unsetenv("OVERCOUNT_INJECT_SUPERSTEP_DELAY_US");
  ParallelRunner bare_runner(4, 8);
  ShardedWalkEngine bare(sharded, bare_runner);
  const TourBatch reference =
      bare.run_tours(0, walks, [](NodeId) { return 1.0; }, kSeed);

  trace.uninstall();
  center.uninstall();

  const ShardRunStats& stats = engine.last_run_stats();
  std::cout << "injected delay    " << delay_us << " us/superstep\n"
            << "stall threshold   " << stall_after_us << " us\n"
            << "walks             " << stats.walks << "\n"
            << "supersteps        " << stats.rounds << "\n"
            << "handoffs          " << stats.handoffs << "\n"
            << "heartbeat beats   " << heartbeat.beats() << "\n"
            << "watchdog trips    " << dog.trips() << "\n"
            << "health events     " << center.total_raised() << "\n"
            << "bundles dumped    " << flight.dumps() << " (+"
            << flight.suppressed_dumps() << " rate-limited)\n"
            << "last bundle       " << final_bundle << "\n";

  if (batch.sum != reference.sum ||
      batch.total_steps != reference.total_steps) {
    std::cerr << "error: instrumented estimates diverged from the bare run\n";
    return 1;
  }
  std::cout << "bit-identity      instrumented == bare (sum "
            << batch.sum << ")\n";

  if (delay_us > 0) {
    if (dog.trips() == 0) {
      std::cerr << "error: injected stall was never detected\n";
      return 1;
    }
    if (flight.dumps() == 0) {
      std::cerr << "error: stall detected but no flight bundle landed\n";
      return 1;
    }
  } else if (dog.trips() != 0) {
    std::cerr << "error: watchdog tripped on a healthy run\n";
    return 1;
  }
  return 0;
}

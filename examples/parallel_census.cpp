// Parallel census of an overlay: fan a batch of Random Tours and a batch of
// Sample & Collide trials across all hardware threads, then show that the
// numbers are bit-identical to a single-threaded run of the same seed —
// the determinism guarantee of overcount::ParallelRunner.
//
//   ./parallel_census [n_nodes]
#include <cstdlib>
#include <iostream>
#include <thread>

#include "core/overcount.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace overcount;

  const std::size_t n_nodes =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 20000;
  Rng rng(7);
  const Graph overlay =
      largest_component(balanced_random_graph(n_nodes, rng));
  const double n = static_cast<double>(overlay.num_nodes());
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::cout << "overlay: " << overlay.num_nodes() << " nodes, "
            << overlay.num_edges() << " edges; pool: " << hw << " threads\n";

  // --- Random Tour census: 2000 independent tours in one batch. ---
  const std::uint64_t tour_seed = 42;
  const auto tours = run_tours_size(overlay, 0, 2000, tour_seed, hw);
  if (!tours.ok()) {  // every tour truncated: mean() is NaN, not a size
    std::cout << "all tours truncated — no estimate\n";
    return 1;
  }
  std::cout << "\nRandom Tour batch:  mean estimate = "
            << format_double(tours.mean(), 1) << "  ("
            << format_double(100.0 * tours.mean() / n, 2) << "% of true N), "
            << tours.completed << " completed, " << tours.truncated
            << " truncated\n";
  print_batch_stats(std::cout, tours.stats);

  // --- Sample & Collide census: 32 trials at ell = 20. ---
  const double gap = spectral_gap_lanczos(overlay, 120, 7);
  const double timer = recommended_ctrw_timer(n, std::max(gap, 1e-3));
  const auto sc = run_sc_trials(overlay, 0, 32, timer, 20, tour_seed + 1, hw);
  std::cout << "\nSample&Collide batch:  mean estimate = "
            << format_double(sc.mean_simple(), 1) << "  ("
            << format_double(100.0 * sc.mean_simple() / n, 2)
            << "% of true N)\n";
  print_batch_stats(std::cout, sc.stats);

  // --- The reproducibility contract: same seed, 1 thread, same bits. ---
  const auto serial = run_tours_size(overlay, 0, 2000, tour_seed, 1u);
  const bool identical = serial.sum == tours.sum &&
                         serial.total_steps == tours.total_steps;
  std::cout << "\n1-thread replay of the tour batch: sum "
            << (identical ? "bit-identical" : "DIVERGED — bug!")
            << " (thread count only changes wall-clock, never results)\n";
  return identical ? 0 : 1;
}

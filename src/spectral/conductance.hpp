// Isoperimetric constant (edge expansion / conductance, paper Section 3.4):
//   h(G) = min over nonempty S with |S| <= n/2 of |E(S, S_bar)| / |S|.
// Cheeger's inequality ties it to the spectral gap:
//   h^2 / (2 d_max) <= lambda_2 <= 2 h.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace overcount {

struct CutResult {
  double expansion = 0.0;          // |E(S, S_bar)| / min(|S|, |S_bar|)
  std::vector<NodeId> side;        // nodes of the (smaller) witness side S
  std::size_t cut_edges = 0;
};

/// Exact isoperimetric constant by subset enumeration (Gray-code order,
/// O(2^n) subsets with O(d) incremental updates). Requires 2 <= n <= 24.
CutResult isoperimetric_exact(const Graph& g);

/// Expansion of the specific cut defined by `in_s` (true = in S). S must be
/// a proper nonempty subset.
double cut_expansion(const Graph& g, const std::vector<bool>& in_s);

/// Sweep cut: sort nodes by `score` (typically the Fiedler vector) and take
/// the best prefix cut. Upper-bounds h(G); by Cheeger it is within
/// sqrt(2 lambda_2 d_max)-ish of optimal.
CutResult sweep_cut(const Graph& g, std::span<const double> score);

/// Cheeger bounds on lambda_2 given h and d_max.
struct CheegerBounds {
  double lower = 0.0;  // h^2 / (2 d_max)
  double upper = 0.0;  // 2 h
};
CheegerBounds cheeger_bounds(double isoperimetric_constant,
                             std::size_t max_degree);

}  // namespace overcount

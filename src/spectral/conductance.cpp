#include "spectral/conductance.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/contracts.hpp"

namespace overcount {

CutResult isoperimetric_exact(const Graph& g) {
  const std::size_t n = g.num_nodes();
  OVERCOUNT_EXPECTS(n >= 2 && n <= 24);

  // Gray-code walk over all subsets containing flips of one node at a time;
  // maintain the cut size incrementally. Fix node n-1 out of S so each
  // {S, S_bar} pair is visited once.
  std::vector<bool> in_s(n, false);
  std::size_t cut = 0;
  std::size_t size_s = 0;
  double best = std::numeric_limits<double>::infinity();
  std::uint64_t best_mask = 0;
  std::uint64_t mask = 0;

  const std::uint64_t limit = 1ULL << (n - 1);
  for (std::uint64_t code = 1; code < limit; ++code) {
    const auto flip =
        static_cast<std::size_t>(__builtin_ctzll(code));  // Gray-code bit
    const bool entering = !in_s[flip];
    in_s[flip] = entering;
    size_s += entering ? 1 : std::size_t(-1);
    mask ^= 1ULL << flip;
    // Each neighbour edge toggles between cut and non-cut.
    std::ptrdiff_t delta = 0;
    for (NodeId u : g.neighbors(static_cast<NodeId>(flip)))
      delta += in_s[u] == entering ? -1 : +1;
    cut = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(cut) + delta);

    const std::size_t small = std::min(size_s, n - size_s);
    if (small == 0) continue;
    const double expansion =
        static_cast<double>(cut) / static_cast<double>(small);
    if (expansion < best) {
      best = expansion;
      best_mask = mask;
    }
  }

  CutResult out;
  out.expansion = best;
  std::vector<bool> witness(n, false);
  std::size_t size_witness = 0;
  for (std::size_t v = 0; v < n - 1; ++v) {
    if ((best_mask >> v) & 1ULL) {
      witness[v] = true;
      ++size_witness;
    }
  }
  // Report the smaller side.
  const bool invert = size_witness > n - size_witness;
  std::size_t cut_edges = 0;
  for (NodeId v = 0; v < n; ++v)
    for (NodeId u : g.neighbors(v))
      if (v < u && witness[v] != witness[u]) ++cut_edges;
  out.cut_edges = cut_edges;
  for (NodeId v = 0; v < n; ++v)
    if (witness[v] != invert) out.side.push_back(v);
  return out;
}

double cut_expansion(const Graph& g, const std::vector<bool>& in_s) {
  const std::size_t n = g.num_nodes();
  OVERCOUNT_EXPECTS(in_s.size() == n);
  std::size_t size_s = 0;
  std::size_t cut = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (in_s[v]) ++size_s;
    for (NodeId u : g.neighbors(v))
      if (v < u && in_s[v] != in_s[u]) ++cut;
  }
  OVERCOUNT_EXPECTS(size_s > 0 && size_s < n);
  return static_cast<double>(cut) /
         static_cast<double>(std::min(size_s, n - size_s));
}

CutResult sweep_cut(const Graph& g, std::span<const double> score) {
  const std::size_t n = g.num_nodes();
  OVERCOUNT_EXPECTS(score.size() == n);
  OVERCOUNT_EXPECTS(n >= 2);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return score[a] < score[b]; });

  std::vector<bool> in_s(n, false);
  std::size_t cut = 0;
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_prefix = 0;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const NodeId v = order[k];
    in_s[v] = true;
    for (NodeId u : g.neighbors(v)) cut += in_s[u] ? std::size_t(-1) : 1;
    const std::size_t small = std::min(k + 1, n - (k + 1));
    const double expansion =
        static_cast<double>(cut) / static_cast<double>(small);
    if (expansion < best) {
      best = expansion;
      best_prefix = k + 1;
    }
  }

  CutResult out;
  out.expansion = best;
  const bool smaller_is_prefix = best_prefix <= n - best_prefix;
  for (std::size_t k = 0; k < n; ++k) {
    const bool in_prefix = k < best_prefix;
    if (in_prefix == smaller_is_prefix) out.side.push_back(order[k]);
  }
  std::fill(in_s.begin(), in_s.end(), false);
  for (std::size_t k = 0; k < best_prefix; ++k) in_s[order[k]] = true;
  for (NodeId v = 0; v < n; ++v)
    for (NodeId u : g.neighbors(v))
      if (v < u && in_s[v] != in_s[u]) ++out.cut_edges;
  return out;
}

CheegerBounds cheeger_bounds(double isoperimetric_constant,
                             std::size_t max_degree) {
  OVERCOUNT_EXPECTS(isoperimetric_constant >= 0.0);
  OVERCOUNT_EXPECTS(max_degree > 0);
  CheegerBounds b;
  b.lower = isoperimetric_constant * isoperimetric_constant /
            (2.0 * static_cast<double>(max_degree));
  b.upper = 2.0 * isoperimetric_constant;
  return b;
}

}  // namespace overcount

// Small dense symmetric matrices and a cyclic-Jacobi eigensolver. Used for
// exact spectra of test graphs and for diagonalising the Lanczos tridiagonal
// matrix; not intended for matrices beyond a few hundred rows.
#pragma once

#include <cstddef>
#include <vector>

#include "util/contracts.hpp"

namespace overcount {

/// Row-major dense symmetric matrix. Only symmetry-consistent access is
/// enforced by convention; set() mirrors automatically.
class DenseSymMatrix {
 public:
  explicit DenseSymMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {
    OVERCOUNT_EXPECTS(n > 0);
  }

  std::size_t size() const noexcept { return n_; }

  double operator()(std::size_t i, std::size_t j) const {
    OVERCOUNT_EXPECTS(i < n_ && j < n_);
    return data_[i * n_ + j];
  }

  /// Sets both (i, j) and (j, i).
  void set(std::size_t i, std::size_t j, double v) {
    OVERCOUNT_EXPECTS(i < n_ && j < n_);
    data_[i * n_ + j] = v;
    data_[j * n_ + i] = v;
  }

  void add(std::size_t i, std::size_t j, double v) {
    set(i, j, (*this)(i, j) + v);
  }

 private:
  std::size_t n_;
  std::vector<double> data_;
};

struct EigenDecomposition {
  std::vector<double> values;               // ascending
  std::vector<std::vector<double>> vectors;  // vectors[k] pairs values[k]
};

/// All eigenvalues (ascending) of a symmetric matrix via cyclic Jacobi
/// rotations; O(n^3) per sweep, converges in a handful of sweeps.
std::vector<double> jacobi_eigenvalues(const DenseSymMatrix& m,
                                       double tol = 1e-12);

/// Eigenvalues and orthonormal eigenvectors.
EigenDecomposition jacobi_eigensystem(const DenseSymMatrix& m,
                                      double tol = 1e-12);

/// Eigenvalues (ascending) of a symmetric tridiagonal matrix given its
/// diagonal and off-diagonal; implemented by bisection with Sturm sequences,
/// robust for the Lanczos post-processing step.
std::vector<double> tridiagonal_eigenvalues(const std::vector<double>& diag,
                                            const std::vector<double>& off);

}  // namespace overcount

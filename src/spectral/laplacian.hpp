// Graph Laplacian machinery (paper Definition 1): L = D - A, eigenvalues
// 0 = lambda_1 <= lambda_2 <= ..., with lambda_2 the spectral gap that
// controls both the Random Tour variance (Proposition 2) and the CTRW
// sampling mixing time (Lemma 1).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "spectral/dense.hpp"

namespace overcount {

/// Dense Laplacian of a (small) graph.
DenseSymMatrix dense_laplacian(const Graph& g);

/// y = L x for the sparse Laplacian; x and y must have size n, x != y.
void laplacian_apply(const Graph& g, std::span<const double> x,
                     std::span<double> y);

/// Full Laplacian spectrum (ascending) by dense Jacobi; for small graphs.
std::vector<double> laplacian_spectrum(const Graph& g);

/// Exact spectral gap lambda_2 by dense diagonalisation; for small graphs.
double spectral_gap_exact(const Graph& g);

/// lambda_2 of a large sparse graph by Lanczos with full
/// reorthogonalisation on the complement of the constant vector.
/// `max_iters` bounds the Krylov dimension. Requires a connected graph for a
/// meaningful result (otherwise returns ~0).
double spectral_gap_lanczos(const Graph& g, std::size_t max_iters = 200,
                            std::uint64_t seed = 1);

/// Approximate Fiedler vector (eigenvector of lambda_2) by Lanczos; used to
/// drive sweep-cut conductance estimates.
std::vector<double> fiedler_vector(const Graph& g,
                                   std::size_t max_iters = 200,
                                   std::uint64_t seed = 1);

}  // namespace overcount

#include "spectral/dense.hpp"

#include <algorithm>
#include <cmath>

namespace overcount {

namespace {

// One full cyclic-Jacobi pass over the strict upper triangle of `a`,
// accumulating rotations into `v` when non-null. Returns the off-diagonal
// Frobenius norm after the sweep.
double jacobi_sweep(std::vector<double>& a, std::size_t n,
                    std::vector<double>* v) {
  auto at = [&](std::size_t i, std::size_t j) -> double& {
    return a[i * n + j];
  };
  for (std::size_t p = 0; p + 1 < n; ++p) {
    for (std::size_t q = p + 1; q < n; ++q) {
      const double apq = at(p, q);
      if (std::abs(apq) < 1e-300) continue;
      const double app = at(p, p);
      const double aqq = at(q, q);
      const double theta = (aqq - app) / (2.0 * apq);
      const double t = (theta >= 0 ? 1.0 : -1.0) /
                       (std::abs(theta) + std::sqrt(theta * theta + 1.0));
      const double c = 1.0 / std::sqrt(t * t + 1.0);
      const double s = t * c;
      for (std::size_t k = 0; k < n; ++k) {
        const double akp = at(k, p);
        const double akq = at(k, q);
        at(k, p) = c * akp - s * akq;
        at(k, q) = s * akp + c * akq;
      }
      for (std::size_t k = 0; k < n; ++k) {
        const double apk = at(p, k);
        const double aqk = at(q, k);
        at(p, k) = c * apk - s * aqk;
        at(q, k) = s * apk + c * aqk;
      }
      if (v != nullptr) {
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = (*v)[k * n + p];
          const double vkq = (*v)[k * n + q];
          (*v)[k * n + p] = c * vkp - s * vkq;
          (*v)[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }
  double off = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) off += at(i, j) * at(i, j);
  return std::sqrt(off);
}

std::vector<double> copy_matrix(const DenseSymMatrix& m) {
  const std::size_t n = m.size();
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a[i * n + j] = m(i, j);
  return a;
}

}  // namespace

std::vector<double> jacobi_eigenvalues(const DenseSymMatrix& m, double tol) {
  const std::size_t n = m.size();
  auto a = copy_matrix(m);
  double scale = 0.0;
  for (double x : a) scale = std::max(scale, std::abs(x));
  const double threshold = tol * std::max(scale, 1.0);
  for (int sweep = 0; sweep < 100; ++sweep)
    if (jacobi_sweep(a, n, nullptr) < threshold) break;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = a[i * n + i];
  std::sort(values.begin(), values.end());
  return values;
}

EigenDecomposition jacobi_eigensystem(const DenseSymMatrix& m, double tol) {
  const std::size_t n = m.size();
  auto a = copy_matrix(m);
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;
  double scale = 0.0;
  for (double x : a) scale = std::max(scale, std::abs(x));
  const double threshold = tol * std::max(scale, 1.0);
  for (int sweep = 0; sweep < 100; ++sweep)
    if (jacobi_sweep(a, n, &v) < threshold) break;

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a[x * n + x] < a[y * n + y];
  });
  EigenDecomposition out;
  out.values.resize(n);
  out.vectors.assign(n, std::vector<double>(n));
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = a[order[k] * n + order[k]];
    for (std::size_t i = 0; i < n; ++i)
      out.vectors[k][i] = v[i * n + order[k]];
  }
  return out;
}

std::vector<double> tridiagonal_eigenvalues(const std::vector<double>& diag,
                                            const std::vector<double>& off) {
  const std::size_t n = diag.size();
  OVERCOUNT_EXPECTS(n > 0);
  OVERCOUNT_EXPECTS(off.size() + 1 == n);

  // Gershgorin bounds.
  double lo = diag[0];
  double hi = diag[0];
  for (std::size_t i = 0; i < n; ++i) {
    double radius = 0.0;
    if (i > 0) radius += std::abs(off[i - 1]);
    if (i + 1 < n) radius += std::abs(off[i]);
    lo = std::min(lo, diag[i] - radius);
    hi = std::max(hi, diag[i] + radius);
  }

  // Sturm count: number of eigenvalues < x.
  auto count_below = [&](double x) {
    std::size_t count = 0;
    double q = diag[0] - x;
    if (q < 0.0) ++count;
    for (std::size_t i = 1; i < n; ++i) {
      const double denom = std::abs(q) < 1e-300 ? 1e-300 : q;
      q = diag[i] - x - off[i - 1] * off[i - 1] / denom;
      if (q < 0.0) ++count;
    }
    return count;
  };

  std::vector<double> values(n);
  for (std::size_t k = 0; k < n; ++k) {
    double a = lo;
    double b = hi;
    for (int iter = 0; iter < 200 && b - a > 1e-13 * std::max(1.0, std::abs(b));
         ++iter) {
      const double mid = 0.5 * (a + b);
      if (count_below(mid) > k) b = mid;
      else a = mid;
    }
    values[k] = 0.5 * (a + b);
  }
  return values;
}

}  // namespace overcount

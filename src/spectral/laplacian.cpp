#include "spectral/laplacian.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace overcount {

DenseSymMatrix dense_laplacian(const Graph& g) {
  const std::size_t n = g.num_nodes();
  OVERCOUNT_EXPECTS(n > 0);
  DenseSymMatrix m(n);
  for (NodeId v = 0; v < n; ++v) {
    m.set(v, v, static_cast<double>(g.degree(v)));
    for (NodeId u : g.neighbors(v))
      if (v < u) m.set(v, u, -1.0);
  }
  return m;
}

void laplacian_apply(const Graph& g, std::span<const double> x,
                     std::span<double> y) {
  const std::size_t n = g.num_nodes();
  OVERCOUNT_EXPECTS(x.size() == n && y.size() == n);
  OVERCOUNT_EXPECTS(x.data() != y.data());
  for (NodeId v = 0; v < n; ++v) {
    double acc = static_cast<double>(g.degree(v)) * x[v];
    for (NodeId u : g.neighbors(v)) acc -= x[u];
    y[v] = acc;
  }
}

std::vector<double> laplacian_spectrum(const Graph& g) {
  return jacobi_eigenvalues(dense_laplacian(g));
}

double spectral_gap_exact(const Graph& g) {
  const auto spectrum = laplacian_spectrum(g);
  OVERCOUNT_EXPECTS(spectrum.size() >= 2);
  return spectrum[1];
}

namespace {

struct LanczosResult {
  std::vector<double> alpha;               // tridiagonal diagonal
  std::vector<double> beta;                // tridiagonal off-diagonal
  std::vector<std::vector<double>> basis;  // Lanczos vectors (optional use)
  double shift = 0.0;                      // operator was shift*I - L
};

// Lanczos with full reorthogonalisation on the operator B = cI - L
// restricted to the orthogonal complement of the constant vector. The
// largest eigenvalue of B there is c - lambda_2.
LanczosResult lanczos_shifted(const Graph& g, std::size_t max_iters,
                              std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  OVERCOUNT_EXPECTS(n >= 2);
  LanczosResult out;
  // Gershgorin: lambda_max(L) <= 2 * d_max.
  out.shift = 2.0 * static_cast<double>(g.max_degree()) + 1.0;

  Rng rng(seed);
  std::vector<double> q(n);
  for (auto& x : q) x = rng.uniform() - 0.5;

  auto project_out_constant = [&](std::vector<double>& v) {
    double mean = 0.0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(n);
    for (double& x : v) x -= mean;
  };
  auto norm = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x * x;
    return std::sqrt(s);
  };
  auto dot = [](const std::vector<double>& a, const std::vector<double>& b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
  };

  project_out_constant(q);
  const double q0 = norm(q);
  OVERCOUNT_ENSURES(q0 > 0.0);
  for (double& x : q) x /= q0;

  std::vector<double> w(n);
  const std::size_t iters = std::min(max_iters, n - 1);
  out.basis.reserve(iters);
  for (std::size_t k = 0; k < iters; ++k) {
    out.basis.push_back(q);
    // w = B q = shift*q - L q
    laplacian_apply(g, q, w);
    for (std::size_t i = 0; i < n; ++i) w[i] = out.shift * q[i] - w[i];

    const double alpha = dot(w, q);
    out.alpha.push_back(alpha);

    // w -= alpha*q + beta*q_prev, then full reorthogonalisation.
    for (std::size_t i = 0; i < n; ++i) w[i] -= alpha * q[i];
    if (k > 0) {
      const double beta_prev = out.beta.back();
      const auto& prev = out.basis[k - 1];
      for (std::size_t i = 0; i < n; ++i) w[i] -= beta_prev * prev[i];
    }
    project_out_constant(w);
    for (const auto& b : out.basis) {
      const double c = dot(w, b);
      for (std::size_t i = 0; i < n; ++i) w[i] -= c * b[i];
    }

    const double beta = norm(w);
    if (beta < 1e-10) break;  // invariant subspace found
    out.beta.push_back(beta);
    for (std::size_t i = 0; i < n; ++i) q[i] = w[i] / beta;
  }
  // alpha has one more entry than beta.
  if (out.beta.size() == out.alpha.size()) out.beta.pop_back();
  return out;
}

}  // namespace

double spectral_gap_lanczos(const Graph& g, std::size_t max_iters,
                            std::uint64_t seed) {
  const auto lz = lanczos_shifted(g, max_iters, seed);
  const auto evals = tridiagonal_eigenvalues(lz.alpha, lz.beta);
  return lz.shift - evals.back();
}

std::vector<double> fiedler_vector(const Graph& g, std::size_t max_iters,
                                   std::uint64_t seed) {
  const auto lz = lanczos_shifted(g, max_iters, seed);
  const std::size_t k = lz.alpha.size();
  DenseSymMatrix t(k);
  for (std::size_t i = 0; i < k; ++i) {
    t.set(i, i, lz.alpha[i]);
    if (i + 1 < k) t.set(i, i + 1, lz.beta[i]);
  }
  const auto es = jacobi_eigensystem(t);
  const auto& y = es.vectors.back();  // largest eigenvalue of B ~ lambda_2
  std::vector<double> v(g.num_nodes(), 0.0);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] += y[j] * lz.basis[j][i];
  return v;
}

}  // namespace overcount

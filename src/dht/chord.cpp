#include "dht/chord.hpp"

#include <algorithm>

namespace overcount {

ChordRing::ChordRing(std::size_t n, Rng& rng, std::size_t successors)
    : successor_count_(successors) {
  OVERCOUNT_EXPECTS(n >= 2);
  OVERCOUNT_EXPECTS(successors >= 1 && successors < n);
  ids_.resize(n);
  for (;;) {
    for (auto& id : ids_) id = rng.next();
    std::sort(ids_.begin(), ids_.end());
    if (std::adjacent_find(ids_.begin(), ids_.end()) == ids_.end()) break;
    // 64-bit collision: astronomically rare; redraw.
  }
  // Finger i of node v: the peer responsible for id(v) + 2^i. Keep the
  // distinct ones that are not v itself or its immediate successor run.
  fingers_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (int bit = 0; bit < 64; ++bit) {
      const ChordId target = ids_[v] + (ChordId{1} << bit);
      const std::size_t f = successor_of(target);
      if (f == v) continue;
      if (std::find(fingers_[v].begin(), fingers_[v].end(), f) ==
          fingers_[v].end())
        fingers_[v].push_back(f);
    }
  }
}

std::size_t ChordRing::successor_of(ChordId key) const {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), key);
  if (it == ids_.end()) return 0;  // wrap
  return static_cast<std::size_t>(it - ids_.begin());
}

ChordRing::LookupResult ChordRing::lookup(std::size_t from,
                                          ChordId key) const {
  OVERCOUNT_EXPECTS(from < ids_.size());
  LookupResult out;
  const std::size_t n = ids_.size();
  std::size_t at = from;
  out.path.push_back(at);
  for (std::size_t guard = 0; guard < 128; ++guard) {
    const std::size_t next_on_ring = (at + 1) % n;
    if (ids_[at] == key ||
        in_interval(key, ids_[at], ids_[next_on_ring])) {
      out.responsible = ids_[at] == key ? at : next_on_ring;
      if (out.responsible != at) {
        ++out.hops;
        out.path.push_back(out.responsible);
      }
      return out;
    }
    // Closest preceding peer among fingers and the successor list: the one
    // whose id lies in (id(at), key) and is clockwise-furthest from at.
    std::size_t best = next_on_ring;
    ChordId best_distance = ids_[next_on_ring] - ids_[at];
    auto consider = [&](std::size_t cand) {
      if (cand == at) return;
      const ChordId distance = ids_[cand] - ids_[at];  // clockwise, wraps
      const ChordId key_distance = key - ids_[at];
      if (distance < key_distance && distance > best_distance) {
        best = cand;
        best_distance = distance;
      }
    };
    for (std::size_t s = 1; s <= successor_count_; ++s)
      consider((at + s) % n);
    for (const std::size_t f : fingers_[at]) consider(f);
    at = best;
    ++out.hops;
    out.path.push_back(at);
  }
  OVERCOUNT_ENSURES(false);  // routing must terminate in O(log n) hops
  return out;
}

double ChordRing::estimate_size_density(std::size_t index,
                                        std::size_t k) const {
  OVERCOUNT_EXPECTS(index < ids_.size());
  OVERCOUNT_EXPECTS(k >= 1 && k < ids_.size());
  // Indices follow ring order, so the k-th successor is (index + k) mod n.
  const ChordId arc = ids_[(index + k) % ids_.size()] - ids_[index];
  OVERCOUNT_ENSURES(arc != 0);
  const double fraction =
      static_cast<double>(arc) / 18446744073709551616.0;  // 2^64
  return static_cast<double>(k) / fraction - 1.0;
}

Graph ChordRing::to_overlay_graph() const {
  const std::size_t n = ids_.size();
  GraphBuilder b(n);
  auto connect = [&](std::size_t u, std::size_t v) {
    if (u == v) return;
    const auto a = static_cast<NodeId>(u);
    const auto c = static_cast<NodeId>(v);
    if (!b.has_edge(a, c)) b.add_edge(a, c);
  };
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t s = 1; s <= successor_count_; ++s)
      connect(v, (v + s) % n);
    for (const std::size_t f : fingers_[v]) connect(v, f);
  }
  return b.build();
}

double ChordRing::average_distinct_fingers() const {
  double total = 0.0;
  for (const auto& f : fingers_) total += static_cast<double>(f.size());
  return total / static_cast<double>(fingers_.size());
}

}  // namespace overcount

// A Chord-style structured overlay (Stoica et al.), the substrate behind
// the paper's Section 2.1 discussion of architecture-specific size
// estimation ([11]: identifier density) and of protocols like Viceroy [28]
// that consume size estimates. Provides:
//   * the ring: nodes with uniform 64-bit identifiers, successor lists and
//     finger tables;
//   * greedy O(log N) key lookup with hop accounting;
//   * the identifier-density size estimator;
//   * export of the routing topology as a Graph, so the paper's GENERIC
//     estimators (Random Tour, Sample & Collide) can run on a DHT overlay
//     unchanged — the interoperability the paper's "generic" claim implies.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace overcount {

using ChordId = std::uint64_t;

/// Immutable Chord ring over n peers.
class ChordRing {
 public:
  /// Draws n distinct uniform identifiers; builds successor lists of length
  /// `successors` and full 64-entry finger tables. Requires n >= 2.
  ChordRing(std::size_t n, Rng& rng, std::size_t successors = 4);

  std::size_t size() const noexcept { return ids_.size(); }

  /// Identifier of peer `index` (indices follow ring order).
  ChordId id_of(std::size_t index) const {
    OVERCOUNT_EXPECTS(index < ids_.size());
    return ids_[index];
  }

  /// Index of the peer responsible for `key`: the first peer whose id is
  /// >= key in clockwise order (wrapping).
  std::size_t successor_of(ChordId key) const;

  struct LookupResult {
    std::size_t responsible = 0;  ///< index of the owning peer
    std::size_t hops = 0;         ///< routing hops taken
    std::vector<std::size_t> path;
  };

  /// Greedy Chord routing from peer `from` towards `key`: forward to the
  /// closest preceding finger until the key falls between a peer and its
  /// successor. Hops are O(log N) with high probability.
  LookupResult lookup(std::size_t from, ChordId key) const;

  /// Identifier-density size estimate at peer `index` using its k nearest
  /// successors ([11]). Requires k < size().
  double estimate_size_density(std::size_t index, std::size_t k) const;

  /// The routing topology as an undirected graph (successor-list edges +
  /// finger edges, deduplicated). Node v of the graph is peer index v.
  Graph to_overlay_graph() const;

  /// Number of finger entries that differ from the plain successor (a
  /// measure of long-range connectivity; ~log2(N) per node on average).
  double average_distinct_fingers() const;

 private:
  std::vector<ChordId> ids_;                       // sorted
  std::size_t successor_count_;
  std::vector<std::vector<std::size_t>> fingers_;  // per node, distinct

  /// True iff x lies in the clockwise half-open interval (a, b].
  static bool in_interval(ChordId x, ChordId a, ChordId b) {
    return static_cast<ChordId>(x - a - 1) < static_cast<ChordId>(b - a);
  }
};

}  // namespace overcount

#include "core/dht_density.hpp"

namespace overcount {

DhtIdSpace::DhtIdSpace(std::size_t n, Rng& rng) {
  OVERCOUNT_EXPECTS(n >= 2);
  ids_.resize(n);
  for (auto& id : ids_) id = rng.next();
  std::sort(ids_.begin(), ids_.end());
}

std::vector<std::uint64_t> DhtIdSpace::successors(std::uint64_t from,
                                                  std::size_t count) const {
  OVERCOUNT_EXPECTS(count >= 1);
  OVERCOUNT_EXPECTS(count < ids_.size());
  std::vector<std::uint64_t> out;
  out.reserve(count);
  auto it = std::upper_bound(ids_.begin(), ids_.end(), from);
  while (out.size() < count) {
    if (it == ids_.end()) it = ids_.begin();
    if (*it != from) out.push_back(*it);
    ++it;
  }
  return out;
}

double DhtIdSpace::estimate_size(std::uint64_t from, std::size_t k) const {
  const auto succ = successors(from, k);
  // Clockwise arc length from `from` to the k-th successor.
  const std::uint64_t arc = succ.back() - from;  // wraps via unsigned math
  OVERCOUNT_ENSURES(arc != 0);
  const double fraction =
      static_cast<double>(arc) / 18446744073709551616.0;  // 2^64
  return static_cast<double>(k) / fraction - 1.0;
}

}  // namespace overcount

// Higher-level aggregation built on Random Tour (paper Section 3: "our
// techniques also apply to the estimation of sums of functions of the
// nodes"). Each helper runs `tours` tours and averages, reporting the
// estimate together with its empirical standard error and message cost.
#pragma once

#include <cmath>
#include <functional>

#include "core/random_tour.hpp"
#include "util/stats.hpp"

namespace overcount {

struct AggregateEstimate {
  double value = 0.0;          ///< averaged estimate of sum_j f(j)
  double standard_error = 0.0; ///< empirical se of the average
  std::uint64_t messages = 0;  ///< total walk steps spent
  std::size_t tours = 0;
};

/// Estimates sum_j f(j) by averaging `tours` Random Tours from `origin`.
template <OverlayTopology G>
AggregateEstimate estimate_sum(const G& g, NodeId origin,
                               const std::function<double(NodeId)>& f,
                               std::size_t tours, Rng& rng) {
  OVERCOUNT_EXPECTS(tours > 0);
  RunningStats stats;
  AggregateEstimate out;
  for (std::size_t t = 0; t < tours; ++t) {
    const auto e = random_tour(g, origin, f, rng);
    stats.add(e.value);
    out.messages += e.steps;
  }
  out.value = stats.mean();
  out.standard_error =
      stats.stddev() / std::sqrt(static_cast<double>(tours));
  out.tours = tours;
  return out;
}

/// Estimates the number of peers satisfying `predicate`.
template <OverlayTopology G>
AggregateEstimate estimate_count(const G& g, NodeId origin,
                                 const std::function<bool(NodeId)>& predicate,
                                 std::size_t tours, Rng& rng) {
  return estimate_sum(
      g, origin,
      [&predicate](NodeId v) { return predicate(v) ? 1.0 : 0.0; }, tours,
      rng);
}

/// Estimates the population mean of `f` as the ratio of two tour-averaged
/// sums (sum f / sum 1). Both sums are accumulated on the SAME tours, which
/// cancels most of the tour-length noise: the ratio estimator's error is
/// driven by the dispersion of f, not of the tour length.
template <OverlayTopology G>
AggregateEstimate estimate_mean(const G& g, NodeId origin,
                                const std::function<double(NodeId)>& f,
                                std::size_t tours, Rng& rng) {
  OVERCOUNT_EXPECTS(tours > 0);
  RunningStats ratio_stats;
  AggregateEstimate out;
  double total_f = 0.0;
  double total_1 = 0.0;
  for (std::size_t t = 0; t < tours; ++t) {
    // One tour, two counters: replay the same trajectory for f and 1 by
    // accumulating both along a single walk.
    const auto d_origin = static_cast<double>(g.degree(origin));
    OVERCOUNT_EXPECTS(d_origin > 0);
    double counter_f = f(origin) / d_origin;
    double counter_1 = 1.0 / d_origin;
    NodeId at = random_neighbor(g, origin, rng);
    ++out.messages;
    while (at != origin) {
      const auto d = static_cast<double>(g.degree(at));
      counter_f += f(at) / d;
      counter_1 += 1.0 / d;
      at = random_neighbor(g, at, rng);
      ++out.messages;
    }
    total_f += d_origin * counter_f;
    total_1 += d_origin * counter_1;
    if (counter_1 > 0.0) ratio_stats.add(counter_f / counter_1);
  }
  out.value = total_1 > 0.0 ? total_f / total_1 : 0.0;
  out.standard_error = ratio_stats.count() >= 2
                           ? ratio_stats.stddev() /
                                 std::sqrt(static_cast<double>(
                                     ratio_stats.count()))
                           : 0.0;
  out.tours = tours;
  return out;
}

}  // namespace overcount

// Probabilistic-polling baseline ([15, 33, 24], paper Section 2.2): the
// initiator floods a query; every reached node independently replies with
// probability p; the reply count R gives the unbiased estimate
// N_hat = 1 + R/p. Cost is linear in the system size (the flood visits every
// edge) and the initiator risks "ACK implosion" — R concurrent replies —
// which is why the paper's walk-based methods exist.
#pragma once

#include <cstdint>

#include "graph/connectivity.hpp"
#include "util/rng.hpp"

namespace overcount {

struct PollingEstimate {
  double value = 0.0;
  std::uint64_t flood_messages = 0;  ///< one per directed edge traversed
  std::uint64_t replies = 0;         ///< concurrent replies at the initiator
};

/// Floods from `origin` (full component, or only up to `max_hops` if given)
/// and simulates the probabilistic replies.
PollingEstimate probabilistic_polling(const Graph& g, NodeId origin,
                                      double reply_probability, Rng& rng,
                                      std::size_t max_hops = ~std::size_t{0});

}  // namespace overcount

#include "core/polling.hpp"

namespace overcount {

PollingEstimate probabilistic_polling(const Graph& g, NodeId origin,
                                      double reply_probability, Rng& rng,
                                      std::size_t max_hops) {
  OVERCOUNT_EXPECTS(origin < g.num_nodes());
  OVERCOUNT_EXPECTS(reply_probability > 0.0 && reply_probability <= 1.0);
  const auto dist = bfs_distances(g, origin);
  PollingEstimate out;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] > max_hops) continue;  // unreachable nodes have dist SIZE_MAX
    // Every reached node forwards the query once over each incident edge
    // (classic flooding); the initiator does too.
    out.flood_messages += g.degree(v);
    if (v == origin) continue;
    if (rng.bernoulli(reply_probability)) ++out.replies;
  }
  out.value = 1.0 + static_cast<double>(out.replies) / reply_probability;
  return out;
}

}  // namespace overcount

// Gossip-averaging baseline (Jelasity & Montresor [20], paper Section 2.2):
// one distinguished node starts with value 1, all others 0; in each
// asynchronous exchange a random edge's endpoints replace both their values
// by the average. The common limit is 1/N, so every node can read off N.
// Cost is Theta(N log N) messages per epoch on expanders ([10]).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "walk/topology.hpp"

namespace overcount {

struct GossipResult {
  /// Per-node size estimates 1/value (0-valued nodes map to +inf; callers
  /// should run enough exchanges that this cannot happen).
  std::vector<double> estimates;
  std::uint64_t messages = 0;  ///< 2 per pairwise exchange
  double max_value = 0.0;
  double min_value = 0.0;
};

/// Runs `exchanges` pairwise averaging steps: each step picks a uniform
/// random node and a uniform random neighbour and averages their values.
/// `starter` holds the initial 1. Requires every node to have a neighbour.
template <OverlayTopology G>
GossipResult gossip_average(const G& g, NodeId starter, std::size_t n_nodes,
                            std::uint64_t exchanges, Rng& rng) {
  OVERCOUNT_EXPECTS(starter < n_nodes);
  std::vector<double> value(n_nodes, 0.0);
  value[starter] = 1.0;
  GossipResult out;
  for (std::uint64_t k = 0; k < exchanges; ++k) {
    const auto u = static_cast<NodeId>(rng.uniform_below(n_nodes));
    const NodeId v = random_neighbor(g, u, rng);
    const double avg = 0.5 * (value[u] + value[v]);
    value[u] = avg;
    value[v] = avg;
    out.messages += 2;  // request + response
  }
  out.estimates.resize(n_nodes);
  out.max_value = value[0];
  out.min_value = value[0];
  for (std::size_t i = 0; i < n_nodes; ++i) {
    out.estimates[i] = value[i] > 0.0
                           ? 1.0 / value[i]
                           : std::numeric_limits<double>::infinity();
    out.max_value = std::max(out.max_value, value[i]);
    out.min_value = std::min(out.min_value, value[i]);
  }
  return out;
}

}  // namespace overcount

// Population quantiles of per-peer attributes by uniform sampling — the
// third member of the paper's "aggregating characteristics over all peers"
// family (Sections 1 and 4.1: the sampling sub-routine "is of independent
// interest"). Draw m CTRW samples, evaluate the attribute at each, and
// report empirical quantiles with the distribution-free DKW confidence
// radius: with probability 1-delta every quantile's cdf position is within
// sqrt(log(2/delta) / (2m)).
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "core/sampling.hpp"
#include "util/stats.hpp"

namespace overcount {

struct QuantileEstimate {
  double value = 0.0;        ///< empirical quantile of the attribute
  double lower = 0.0;        ///< attribute at quantile (q - radius)
  double upper = 0.0;        ///< attribute at quantile (q + radius)
  double cdf_radius = 0.0;   ///< DKW radius in cdf space
  std::uint64_t hops = 0;    ///< sampling message cost
};

/// Estimates the q-quantile of attribute(v) over the peers reachable by the
/// sampler, from `samples` CTRW draws. `delta` is the DKW failure
/// probability. Requires q in [0, 1], samples >= 10.
template <OverlayTopology G>
QuantileEstimate estimate_quantile(
    const G& g, NodeId origin, double timer, double q,
    const std::function<double(NodeId)>& attribute, std::size_t samples,
    Rng& rng, double delta = 0.05) {
  OVERCOUNT_EXPECTS(q >= 0.0 && q <= 1.0);
  OVERCOUNT_EXPECTS(samples >= 10);
  OVERCOUNT_EXPECTS(delta > 0.0 && delta < 1.0);
  CtrwSampler sampler(g, timer, rng.split());
  std::vector<double> values;
  values.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i)
    values.push_back(attribute(sampler.sample(origin).node));
  const Ecdf ecdf(std::move(values));

  QuantileEstimate out;
  out.cdf_radius = std::sqrt(std::log(2.0 / delta) /
                             (2.0 * static_cast<double>(samples)));
  out.value = ecdf.quantile(q);
  out.lower = ecdf.quantile(std::max(0.0, q - out.cdf_radius));
  out.upper = ecdf.quantile(std::min(1.0, q + out.cdf_radius));
  out.hops = sampler.total_hops();
  return out;
}

/// Median convenience wrapper.
template <OverlayTopology G>
QuantileEstimate estimate_median(
    const G& g, NodeId origin, double timer,
    const std::function<double(NodeId)>& attribute, std::size_t samples,
    Rng& rng) {
  return estimate_quantile(g, origin, timer, 0.5, attribute, samples, rng);
}

}  // namespace overcount

#include "core/random_tour.hpp"

#include <cmath>

namespace overcount {

std::size_t random_tour_runs_needed(double avg_degree, double spectral_gap,
                                    double eps, double delta) {
  OVERCOUNT_EXPECTS(avg_degree > 0.0);
  OVERCOUNT_EXPECTS(spectral_gap > 0.0);
  OVERCOUNT_EXPECTS(eps > 0.0);
  OVERCOUNT_EXPECTS(delta > 0.0 && delta < 1.0);
  const double m = 2.0 * avg_degree / (spectral_gap * eps * eps * delta);
  return static_cast<std::size_t>(std::ceil(m));
}

}  // namespace overcount

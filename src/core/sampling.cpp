#include "core/sampling.hpp"

namespace overcount {

double recommended_ctrw_timer(double n_guess, double spectral_gap_lower,
                              double beta) {
  OVERCOUNT_EXPECTS(n_guess >= 2.0);
  OVERCOUNT_EXPECTS(spectral_gap_lower > 0.0);
  OVERCOUNT_EXPECTS(beta > 0.0);
  return beta * std::log(n_guess) / spectral_gap_lower;
}

}  // namespace overcount

// The Random Tour estimator (paper Section 3).
//
// A probe walks from the initiator i along uniformly random neighbours until
// it first returns to i. The probe carries a counter X, initialised to
// f(i)/d_i and incremented by f(j)/d_j at every intermediate node j. On
// return, Phi_hat = d_i * X is an unbiased estimate of Phi = sum_j f(j)
// (Proposition 1, via the regenerative cycle formula). With f = 1 this
// estimates the system size N.
//
// Accuracy (Proposition 2): Var(N_hat) <= N^2 * 2*d_bar/lambda_2 + O(N), so
// the relative standard deviation is controlled by the overlay's spectral
// gap, hence (Cheeger) by its edge expansion. Cost of one tour is
// E_i[T_i] = 2|E|/d_i steps.
#pragma once

#include <cstdint>
#include <functional>

#include "obs/probe.hpp"
#include "walk/topology.hpp"
#include "walk/walkers.hpp"

namespace overcount {

/// Result of one Random Tour.
struct TourEstimate {
  double value = 0.0;       ///< Phi_hat = d_origin * accumulated counter
  std::uint64_t steps = 0;  ///< walk steps == messages spent by the probe
  /// True when the probe actually returned to the origin. A tour aborted by
  /// `max_steps` sets this false: its value is the partial accumulation,
  /// which is biased LOW and must not enter an average (the batch APIs in
  /// core/parallel.hpp drop such tours and report them separately).
  bool completed = true;
};

/// Runs one Random Tour from `origin`, estimating sum_j f(j).
/// `f` maps NodeId -> double. Requires origin to have at least one
/// neighbour. `max_steps` aborts pathological tours; an aborted tour is
/// flagged by `completed == false` and its partial estimate is biased. The
/// default cap never triggers in practice.
///
/// `probe` (obs/probe.hpp) observes every visited node and the tour length;
/// the default NullProbe compiles to the bare walk, and no probe ever draws
/// from `rng`, so instrumented and plain tours return identical estimates.
template <OverlayTopology G, typename F, WalkProbe P = NullProbe>
TourEstimate random_tour(const G& g, NodeId origin, F&& f, Rng& rng,
                         std::uint64_t max_steps = ~0ULL, P&& probe = P{}) {
  const auto d_origin = static_cast<double>(g.degree(origin));
  OVERCOUNT_EXPECTS(d_origin > 0);
  if constexpr (probe_enabled_v<P>) probe.walk_begin(origin);
  double counter = f(origin) / d_origin;
  NodeId at = random_neighbor(g, origin, rng);
  std::uint64_t steps = 1;
  while (at != origin && steps < max_steps) {
    if constexpr (probe_enabled_v<P>) probe.on_visit(at);
    counter += f(at) / static_cast<double>(g.degree(at));
    at = random_neighbor(g, at, rng);
    ++steps;
  }
  const bool completed = at == origin;
  if constexpr (probe_enabled_v<P>) probe.tour_end(steps, completed);
  return {d_origin * counter, steps, completed};
}

/// One Random Tour size estimate (f = 1).
template <OverlayTopology G, WalkProbe P = NullProbe>
TourEstimate random_tour_size(const G& g, NodeId origin, Rng& rng,
                              std::uint64_t max_steps = ~0ULL,
                              P&& probe = P{}) {
  return random_tour(
      g, origin, [](NodeId) { return 1.0; }, rng, max_steps,
      std::forward<P>(probe));
}

/// The continuous-time reading of the tour (Section 3.3): run the walk as
/// the exponential-sojourn CTRW and report d_origin times the first RETURN
/// TIME. Renewal-reward with the uniform stationary distribution gives
/// E[cycle] = 1/(pi_i q_i) = N/d_i, so this too is an unbiased size
/// estimate — at the same message cost as the discrete tour but with extra
/// dispersion from the exponential sojourns. (With DETERMINISTIC sojourns
/// of 1/d_v the elapsed time IS the discrete tour's counter, which is
/// exactly how the paper connects the two pictures.)
template <OverlayTopology G>
TourEstimate ctrw_return_time_tour(const G& g, NodeId origin, Rng& rng) {
  const auto d_origin = static_cast<double>(g.degree(origin));
  OVERCOUNT_EXPECTS(d_origin > 0);
  double elapsed = rng.exponential(d_origin);  // sojourn at the origin
  NodeId at = random_neighbor(g, origin, rng);
  std::uint64_t steps = 1;
  while (at != origin) {
    elapsed += rng.exponential(static_cast<double>(g.degree(at)));
    at = random_neighbor(g, at, rng);
    ++steps;
  }
  return {d_origin * elapsed, steps, /*completed=*/true};
}

/// Convenience driver that owns the per-estimator RNG stream and accumulates
/// cost across repeated tours; the unit most benches and applications use.
template <OverlayTopology G>
class RandomTourEstimator {
 public:
  RandomTourEstimator(const G& graph, NodeId origin, Rng rng)
      : graph_(&graph), origin_(origin), rng_(rng) {}

  NodeId origin() const noexcept { return origin_; }
  std::uint64_t total_steps() const noexcept { return total_steps_; }
  std::uint64_t tours_run() const noexcept { return tours_; }

  /// One tour, f = 1 (system size).
  TourEstimate estimate_size() {
    return record(random_tour_size(*graph_, origin_, rng_));
  }

  /// One size tour observed by a walk probe (obs/probe.hpp); the probe
  /// never draws from the estimator's stream.
  template <WalkProbe P>
  TourEstimate estimate_size(P&& probe) {
    return record(random_tour_size(*graph_, origin_, rng_, ~0ULL,
                                   std::forward<P>(probe)));
  }

  /// One tour estimating sum_j f(j).
  TourEstimate estimate_sum(const std::function<double(NodeId)>& f) {
    return record(random_tour(*graph_, origin_, f, rng_));
  }

  /// Mean of `runs` independent size estimates (variance shrinks as 1/runs,
  /// Section 3.5).
  double averaged_size_estimate(std::size_t runs) {
    OVERCOUNT_EXPECTS(runs > 0);
    double acc = 0.0;
    for (std::size_t r = 0; r < runs; ++r) acc += estimate_size().value;
    return acc / static_cast<double>(runs);
  }

 private:
  TourEstimate record(TourEstimate t) {
    total_steps_ += t.steps;
    ++tours_;
    return t;
  }

  const G* graph_;
  NodeId origin_;
  Rng rng_;
  std::uint64_t total_steps_ = 0;
  std::uint64_t tours_ = 0;
};

/// Number of tours needed for relative error <= eps with confidence
/// 1 - delta, from the Chebyshev bound of Section 3.5 with the Proposition 2
/// variance bound: m >= 2*d_bar / (lambda_2 * eps^2 * delta).
std::size_t random_tour_runs_needed(double avg_degree, double spectral_gap,
                                    double eps, double delta);

}  // namespace overcount

// Batch front-ends for the paper's estimators, fanned across a
// ParallelRunner (src/runtime/): a batch of m independent Random Tours,
// CTRW samples, Sample & Collide trials, or Metropolis walks runs one task
// per trial, each on the `Rng::split()` stream indexed by its task id.
//
// Reproducibility contract: for a fixed (graph, origin, parameters, seed)
// the returned batch — every per-trial result AND every reduced aggregate —
// is bit-identical for any `n_threads`, including 1. Per-trial results are
// stored by task index and floating-point aggregates go through the fixed
// pairwise tree reduction of runtime/parallel_runner.hpp, so scheduling
// never leaks into the numbers.
//
// Truncated tours (a `max_steps` abort) are excluded from the reduced
// aggregates and reported via TourBatch::truncated instead of silently
// biasing the mean — see TourEstimate::completed.
//
// Hot path: when the batch is at least one kernel width wide (W =
// resolved_kernel_width(runner.kernel_width()), default 16, runner option /
// OVERCOUNT_KERNEL_WIDTH), the tour, CTRW-sample and S&C batches run the
// interleaved prefetching kernel of walk/kernel.hpp — each pool task
// advances a W-wide chunk of walks round-robin instead of one walk at a
// time. The kernel replays the scalar per-walk draw order exactly, results
// land in the same task-index slots, and probed variants fold the same
// per-walk WalkStats in the same order, so everything above stays
// bit-identical whether the kernel, the scalar path, or any thread count
// ran the batch (tests/walk/kernel_equivalence_test.cpp). Width 1 forces
// the scalar path. Origins are validated unconditionally here at batch
// entry; the per-step degree checks inside the walks compile out of plain
// Release builds (OVERCOUNT_HOT_CHECKS, util/contracts.hpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/random_tour.hpp"
#include "core/sample_collide.hpp"
#include "core/sampling.hpp"
#include "obs/cost/cost.hpp"
#include "obs/probe.hpp"
#include "runtime/parallel_runner.hpp"
#include "walk/kernel.hpp"
#include "walk/metropolis.hpp"
#include "walk/walkers.hpp"

namespace overcount {

/// A batch of Random Tours from one origin.
struct TourBatch {
  std::vector<TourEstimate> tours;  ///< all m tours, task-index order
  std::size_t completed = 0;        ///< tours that returned to the origin
  std::size_t truncated = 0;        ///< tours aborted by max_steps (dropped)
  double sum = 0.0;            ///< tree-reduced sum of COMPLETED estimates
  std::uint64_t total_steps = 0;  ///< walk steps across all tours
  BatchStats stats;

  /// True when at least one tour completed, i.e. mean() is a usable size
  /// estimate. A batch where EVERY tour hit max_steps has no unbiased
  /// information at all.
  bool ok() const noexcept { return completed > 0; }

  /// Mean of the completed (unbiased) estimates. NaN when every tour was
  /// truncated — deliberately not 0.0, so a failed batch can never be
  /// mistaken for a tiny size estimate downstream; check ok() first.
  double mean() const noexcept {
    return ok() ? sum / static_cast<double>(completed)
                : std::numeric_limits<double>::quiet_NaN();
  }
};

/// A batch of sampling walks (CTRW or Metropolis) from one origin.
struct SampleBatch {
  std::vector<SampleResult> samples;  ///< task-index order
  std::uint64_t total_hops = 0;
  BatchStats stats;
};

/// A batch of independent Sample & Collide measurements from one origin.
struct ScBatch {
  std::vector<ScEstimate> trials;  ///< task-index order
  double sum_simple = 0.0;         ///< tree-reduced sum of C^2/(2l) values
  double sum_ml = 0.0;             ///< tree-reduced sum of ML estimates
  std::uint64_t total_hops = 0;
  BatchStats stats;

  double mean_simple() const noexcept {
    return trials.empty() ? 0.0
                          : sum_simple / static_cast<double>(trials.size());
  }
  double mean_ml() const noexcept {
    return trials.empty() ? 0.0
                          : sum_ml / static_cast<double>(trials.size());
  }
};

namespace detail {

/// Deterministic fold of per-task WalkStats, in task-index order. Integer
/// counters and histogram buckets are order-independent sums; the one
/// floating-point field (sojourn_time) goes through the same pairwise tree
/// reduction as every batch aggregate, so the merged stats are bit-identical
/// at any thread count.
inline WalkStats fold_walk_stats(std::span<const WalkStats> parts) {
  WalkStats out;
  std::vector<double> sojourns;
  sojourns.reserve(parts.size());
  for (const auto& p : parts) {
    out.merge_counts(p);
    sojourns.push_back(p.sojourn_time);
  }
  out.sojourn_time = tree_sum(sojourns);
  return out;
}

/// Number of width-sized kernel chunks covering a batch of m walks.
inline constexpr std::size_t kernel_chunk_count(std::size_t m,
                                                std::size_t width) {
  return (m + width - 1) / width;
}

/// Applies the Section 4 estimator math to one raw kernel trial. The trial
/// stopped at exactly `ell` collisions, so this reproduces bit-identically
/// what SampleCollideEstimator::estimate computes from its tracker.
inline ScEstimate finalize_sc_trial(const ScTrialRaw& raw, std::size_t ell) {
  ScEstimate out;
  out.samples = raw.samples;
  out.hops = raw.hops;
  out.replies = raw.samples;
  const auto collisions = static_cast<std::uint64_t>(ell);
  out.ml = sc_ml_estimate(raw.samples, collisions);
  out.simple = sc_simple_estimate(raw.samples, collisions);
  const auto bracket = sc_bracket(raw.samples, collisions);
  out.n_minus = bracket.n_minus;
  out.n_plus = bracket.n_plus;
  return out;
}

/// Fills the shared tail of TourBatch from the per-tour results.
inline void finish_tour_batch(TourBatch& batch) {
  std::vector<double> completed_values;
  completed_values.reserve(batch.tours.size());
  for (const auto& t : batch.tours) {
    batch.total_steps += t.steps;
    if (t.completed) {
      ++batch.completed;
      completed_values.push_back(t.value);
    } else {
      ++batch.truncated;
    }
  }
  batch.sum = tree_sum(completed_values);
  batch.stats.steps = batch.total_steps;
}

}  // namespace detail

/// m independent Random Tours estimating sum_j f(j), on an existing pool.
template <OverlayTopology G, typename F>
TourBatch run_tours(const G& g, NodeId origin, std::size_t m, F f,
                    std::uint64_t seed, ParallelRunner& runner,
                    std::uint64_t max_steps = ~0ULL) {
  OVERCOUNT_EXPECTS(g.degree(origin) > 0);  // unconditional boundary check
  TourBatch batch;
  auto streams = derive_streams(seed, m);
  const std::size_t width = resolved_kernel_width(runner.kernel_width());
  if (width > 1 && m >= width) {
    batch.tours.resize(m);
    runner.run<char>(
        detail::kernel_chunk_count(m, width),
        [&](std::size_t c) {
          const std::size_t begin = c * width;
          const std::size_t count = std::min(width, m - begin);
          tour_kernel(g, origin, f,
                      std::span<Rng>(streams).subspan(begin, count),
                      std::span<TourEstimate>(batch.tours)
                          .subspan(begin, count),
                      count, max_steps);
          return char{0};
        },
        &batch.stats);
    batch.stats.tasks = m;  // chunking is an implementation detail
  } else {
    batch.tours = runner.run<TourEstimate>(
        m,
        [&](std::size_t i) {
          return random_tour(g, origin, f, streams[i], max_steps);
        },
        &batch.stats);
  }
  detail::finish_tour_batch(batch);
  // Cost attribution rides the caller's CostScope (serve batches set one);
  // one charge per batch, never per step. No-op without an active ledger.
  cost_charge_batch(batch.stats.steps, batch.stats.tasks,
                    batch.stats.cpu_seconds);
  return batch;
}

/// m independent Random Tours on a throwaway pool of `n_threads` threads.
template <OverlayTopology G, typename F>
TourBatch run_tours(const G& g, NodeId origin, std::size_t m, F f,
                    std::uint64_t seed, unsigned n_threads,
                    std::uint64_t max_steps = ~0ULL) {
  ParallelRunner runner(n_threads);
  return run_tours(g, origin, m, f, seed, runner, max_steps);
}

/// m independent Random Tour size estimates (f = 1).
template <OverlayTopology G>
TourBatch run_tours_size(const G& g, NodeId origin, std::size_t m,
                         std::uint64_t seed, ParallelRunner& runner,
                         std::uint64_t max_steps = ~0ULL) {
  return run_tours(
      g, origin, m, [](NodeId) { return 1.0; }, seed, runner, max_steps);
}

template <OverlayTopology G>
TourBatch run_tours_size(const G& g, NodeId origin, std::size_t m,
                         std::uint64_t seed, unsigned n_threads,
                         std::uint64_t max_steps = ~0ULL) {
  ParallelRunner runner(n_threads);
  return run_tours_size(g, origin, m, seed, runner, max_steps);
}

/// m independent Random Tours with per-walk probe statistics: each task
/// records into its own WalkStats (one WalkStatsProbe per tour, so revisit
/// tracking stays walk-local) and `walk_out` receives the deterministic
/// fold. The batch itself — every tour, the reduced sum, BatchStats — is
/// bit-identical to the unprobed run_tours of the same (seed, m): probes
/// observe the walk, they never draw from its stream.
template <OverlayTopology G, typename F>
TourBatch run_tours_probed(const G& g, NodeId origin, std::size_t m, F f,
                           std::uint64_t seed, ParallelRunner& runner,
                           WalkStats& walk_out,
                           std::uint64_t max_steps = ~0ULL) {
  OVERCOUNT_EXPECTS(g.degree(origin) > 0);  // unconditional boundary check
  TourBatch batch;
  auto streams = derive_streams(seed, m);
  std::vector<WalkStats> per_task(m);
  const std::size_t width = resolved_kernel_width(runner.kernel_width());
  if (width > 1 && m >= width) {
    batch.tours.resize(m);
    runner.run<char>(
        detail::kernel_chunk_count(m, width),
        [&](std::size_t c) {
          const std::size_t begin = c * width;
          const std::size_t count = std::min(width, m - begin);
          std::vector<WalkStatsProbe> probes;
          probes.reserve(count);
          for (std::size_t j = 0; j < count; ++j)
            probes.emplace_back(per_task[begin + j]);
          tour_kernel(g, origin, f,
                      std::span<Rng>(streams).subspan(begin, count),
                      std::span<TourEstimate>(batch.tours)
                          .subspan(begin, count),
                      count, max_steps, std::span<WalkStatsProbe>(probes));
          return char{0};
        },
        &batch.stats);
    batch.stats.tasks = m;
  } else {
    batch.tours = runner.run<TourEstimate>(
        m,
        [&](std::size_t i) {
          WalkStatsProbe probe(per_task[i]);
          return random_tour(g, origin, f, streams[i], max_steps, probe);
        },
        &batch.stats);
  }
  detail::finish_tour_batch(batch);
  walk_out = detail::fold_walk_stats(per_task);
  cost_charge_batch(batch.stats.steps, batch.stats.tasks,
                    batch.stats.cpu_seconds);
  return batch;
}

/// Probed Random Tour size batch (f = 1).
template <OverlayTopology G>
TourBatch run_tours_size_probed(const G& g, NodeId origin, std::size_t m,
                                std::uint64_t seed, ParallelRunner& runner,
                                WalkStats& walk_out,
                                std::uint64_t max_steps = ~0ULL) {
  return run_tours_probed(
      g, origin, m, [](NodeId) { return 1.0; }, seed, runner, walk_out,
      max_steps);
}

template <OverlayTopology G>
TourBatch run_tours_size_probed(const G& g, NodeId origin, std::size_t m,
                                std::uint64_t seed, unsigned n_threads,
                                WalkStats& walk_out,
                                std::uint64_t max_steps = ~0ULL) {
  ParallelRunner runner(n_threads);
  return run_tours_size_probed(g, origin, m, seed, runner, walk_out,
                               max_steps);
}

/// m independent CTRW samples (paper Section 4.1) from `origin`.
template <OverlayTopology G>
SampleBatch run_samples(const G& g, NodeId origin, std::size_t m,
                        double timer, std::uint64_t seed,
                        ParallelRunner& runner) {
  OVERCOUNT_EXPECTS(g.degree(origin) > 0);  // unconditional boundary check
  SampleBatch batch;
  auto streams = derive_streams(seed, m);
  const std::size_t width = resolved_kernel_width(runner.kernel_width());
  if (width > 1 && m >= width) {
    batch.samples.resize(m);
    runner.run<char>(
        detail::kernel_chunk_count(m, width),
        [&](std::size_t c) {
          const std::size_t begin = c * width;
          const std::size_t count = std::min(width, m - begin);
          ctrw_kernel(g, origin, timer,
                      std::span<Rng>(streams).subspan(begin, count),
                      std::span<SampleResult>(batch.samples)
                          .subspan(begin, count),
                      count);
          return char{0};
        },
        &batch.stats);
    batch.stats.tasks = m;
  } else {
    batch.samples = runner.run<SampleResult>(
        m,
        [&](std::size_t i) {
          return ctrw_sample(g, origin, timer, streams[i]);
        },
        &batch.stats);
  }
  for (const auto& s : batch.samples) batch.total_hops += s.hops;
  batch.stats.steps = batch.total_hops;
  cost_charge_batch(batch.stats.steps, batch.stats.tasks,
                    batch.stats.cpu_seconds);
  return batch;
}

template <OverlayTopology G>
SampleBatch run_samples(const G& g, NodeId origin, std::size_t m,
                        double timer, std::uint64_t seed,
                        unsigned n_threads) {
  ParallelRunner runner(n_threads);
  return run_samples(g, origin, m, timer, seed, runner);
}

/// m independent CTRW samples with per-walk probe statistics (see
/// run_tours_probed for the determinism contract).
template <OverlayTopology G>
SampleBatch run_samples_probed(const G& g, NodeId origin, std::size_t m,
                               double timer, std::uint64_t seed,
                               ParallelRunner& runner, WalkStats& walk_out) {
  OVERCOUNT_EXPECTS(g.degree(origin) > 0);  // unconditional boundary check
  SampleBatch batch;
  auto streams = derive_streams(seed, m);
  std::vector<WalkStats> per_task(m);
  const std::size_t width = resolved_kernel_width(runner.kernel_width());
  if (width > 1 && m >= width) {
    batch.samples.resize(m);
    runner.run<char>(
        detail::kernel_chunk_count(m, width),
        [&](std::size_t c) {
          const std::size_t begin = c * width;
          const std::size_t count = std::min(width, m - begin);
          std::vector<WalkStatsProbe> probes;
          probes.reserve(count);
          for (std::size_t j = 0; j < count; ++j)
            probes.emplace_back(per_task[begin + j]);
          ctrw_kernel(g, origin, timer,
                      std::span<Rng>(streams).subspan(begin, count),
                      std::span<SampleResult>(batch.samples)
                          .subspan(begin, count),
                      count, std::span<WalkStatsProbe>(probes));
          return char{0};
        },
        &batch.stats);
    batch.stats.tasks = m;
  } else {
    batch.samples = runner.run<SampleResult>(
        m,
        [&](std::size_t i) {
          WalkStatsProbe probe(per_task[i]);
          return ctrw_sample(g, origin, timer, streams[i], probe);
        },
        &batch.stats);
  }
  for (const auto& s : batch.samples) batch.total_hops += s.hops;
  batch.stats.steps = batch.total_hops;
  walk_out = detail::fold_walk_stats(per_task);
  cost_charge_batch(batch.stats.steps, batch.stats.tasks,
                    batch.stats.cpu_seconds);
  return batch;
}

/// `trials` independent Sample & Collide measurements, each sampling until
/// `ell` collisions on its own stream.
template <OverlayTopology G>
ScBatch run_sc_trials(const G& g, NodeId origin, std::size_t trials,
                      double timer, std::size_t ell, std::uint64_t seed,
                      ParallelRunner& runner) {
  OVERCOUNT_EXPECTS(g.degree(origin) > 0);  // unconditional boundary check
  ScBatch batch;
  auto streams = derive_streams(seed, trials);
  const std::size_t width = resolved_kernel_width(runner.kernel_width());
  if (width > 1 && trials >= width) {
    batch.trials.resize(trials);
    runner.run<char>(
        detail::kernel_chunk_count(trials, width),
        [&](std::size_t c) {
          const std::size_t begin = c * width;
          const std::size_t count = std::min(width, trials - begin);
          std::vector<ScTrialRaw> raw(count);
          sc_kernel(g, origin, timer, ell,
                    std::span<Rng>(streams).subspan(begin, count),
                    std::span<ScTrialRaw>(raw), count);
          for (std::size_t j = 0; j < count; ++j)
            batch.trials[begin + j] = detail::finalize_sc_trial(raw[j], ell);
          return char{0};
        },
        &batch.stats);
    batch.stats.tasks = trials;
  } else {
    batch.trials = runner.run<ScEstimate>(
        trials,
        [&](std::size_t i) {
          SampleCollideEstimator estimator(g, origin, timer, ell, streams[i]);
          return estimator.estimate();
        },
        &batch.stats);
  }
  std::vector<double> simple, ml;
  simple.reserve(trials);
  ml.reserve(trials);
  for (const auto& t : batch.trials) {
    batch.total_hops += t.hops;
    simple.push_back(t.simple);
    ml.push_back(t.ml);
  }
  batch.sum_simple = tree_sum(simple);
  batch.sum_ml = tree_sum(ml);
  batch.stats.steps = batch.total_hops;
  cost_charge_batch(batch.stats.steps, batch.stats.tasks,
                    batch.stats.cpu_seconds);
  return batch;
}

template <OverlayTopology G>
ScBatch run_sc_trials(const G& g, NodeId origin, std::size_t trials,
                      double timer, std::size_t ell, std::uint64_t seed,
                      unsigned n_threads) {
  ParallelRunner runner(n_threads);
  return run_sc_trials(g, origin, trials, timer, ell, seed, runner);
}

/// `trials` probed Sample & Collide measurements: the fold additionally
/// carries the collision-interarrival histogram (see run_tours_probed for
/// the determinism contract).
template <OverlayTopology G>
ScBatch run_sc_trials_probed(const G& g, NodeId origin, std::size_t trials,
                             double timer, std::size_t ell,
                             std::uint64_t seed, ParallelRunner& runner,
                             WalkStats& walk_out) {
  OVERCOUNT_EXPECTS(g.degree(origin) > 0);  // unconditional boundary check
  ScBatch batch;
  auto streams = derive_streams(seed, trials);
  std::vector<WalkStats> per_task(trials);
  const std::size_t width = resolved_kernel_width(runner.kernel_width());
  if (width > 1 && trials >= width) {
    batch.trials.resize(trials);
    runner.run<char>(
        detail::kernel_chunk_count(trials, width),
        [&](std::size_t c) {
          const std::size_t begin = c * width;
          const std::size_t count = std::min(width, trials - begin);
          std::vector<WalkStatsProbe> probes;
          probes.reserve(count);
          for (std::size_t j = 0; j < count; ++j)
            probes.emplace_back(per_task[begin + j]);
          std::vector<ScTrialRaw> raw(count);
          sc_kernel(g, origin, timer, ell,
                    std::span<Rng>(streams).subspan(begin, count),
                    std::span<ScTrialRaw>(raw), count,
                    std::span<WalkStatsProbe>(probes));
          for (std::size_t j = 0; j < count; ++j)
            batch.trials[begin + j] = detail::finalize_sc_trial(raw[j], ell);
          return char{0};
        },
        &batch.stats);
    batch.stats.tasks = trials;
  } else {
    batch.trials = runner.run<ScEstimate>(
        trials,
        [&](std::size_t i) {
          SampleCollideEstimator estimator(g, origin, timer, ell, streams[i]);
          WalkStatsProbe probe(per_task[i]);
          return estimator.estimate(probe);
        },
        &batch.stats);
  }
  std::vector<double> simple, ml;
  simple.reserve(trials);
  ml.reserve(trials);
  for (const auto& t : batch.trials) {
    batch.total_hops += t.hops;
    simple.push_back(t.simple);
    ml.push_back(t.ml);
  }
  batch.sum_simple = tree_sum(simple);
  batch.sum_ml = tree_sum(ml);
  batch.stats.steps = batch.total_hops;
  walk_out = detail::fold_walk_stats(per_task);
  cost_charge_batch(batch.stats.steps, batch.stats.tasks,
                    batch.stats.cpu_seconds);
  return batch;
}

/// m independent Metropolis-Hastings samples of `steps` transitions each.
template <OverlayTopology G>
SampleBatch run_metropolis_samples(const G& g, NodeId origin, std::size_t m,
                                   std::uint64_t steps, std::uint64_t seed,
                                   ParallelRunner& runner) {
  OVERCOUNT_EXPECTS(g.degree(origin) > 0);  // unconditional boundary check
  SampleBatch batch;
  auto streams = derive_streams(seed, m);
  batch.samples = runner.run<SampleResult>(
      m,
      [&](std::size_t i) {
        MetropolisSampler sampler(g, steps, streams[i]);
        return sampler.sample(origin);
      },
      &batch.stats);
  for (const auto& s : batch.samples) batch.total_hops += s.hops;
  batch.stats.steps = batch.total_hops;
  cost_charge_batch(batch.stats.steps, batch.stats.tasks,
                    batch.stats.cpu_seconds);
  return batch;
}

template <OverlayTopology G>
SampleBatch run_metropolis_samples(const G& g, NodeId origin, std::size_t m,
                                   std::uint64_t steps, std::uint64_t seed,
                                   unsigned n_threads) {
  ParallelRunner runner(n_threads);
  return run_metropolis_samples(g, origin, m, steps, seed, runner);
}

/// m probed Metropolis-Hastings samples: the fold additionally counts
/// rejections (see run_tours_probed for the determinism contract).
template <OverlayTopology G>
SampleBatch run_metropolis_samples_probed(const G& g, NodeId origin,
                                          std::size_t m, std::uint64_t steps,
                                          std::uint64_t seed,
                                          ParallelRunner& runner,
                                          WalkStats& walk_out) {
  OVERCOUNT_EXPECTS(g.degree(origin) > 0);  // unconditional boundary check
  SampleBatch batch;
  auto streams = derive_streams(seed, m);
  std::vector<WalkStats> per_task(m);
  batch.samples = runner.run<SampleResult>(
      m,
      [&](std::size_t i) {
        MetropolisSampler sampler(g, steps, streams[i]);
        WalkStatsProbe probe(per_task[i]);
        return sampler.sample(origin, probe);
      },
      &batch.stats);
  for (const auto& s : batch.samples) batch.total_hops += s.hops;
  batch.stats.steps = batch.total_hops;
  walk_out = detail::fold_walk_stats(per_task);
  cost_charge_batch(batch.stats.steps, batch.stats.tasks,
                    batch.stats.cpu_seconds);
  return batch;
}

}  // namespace overcount

// Monitored batch runs: the core/parallel.hpp estimator batches, executed
// in recording intervals with a convergence snapshot between intervals.
//
// The point of watching a run converge is to compare the observed error
// against the paper's predicted envelope:
//  * Random Tours (Section 3.4): after m tours the relative half-width at
//    confidence 1-delta is eps(m) = sqrt(2 d_bar / (lambda2 m delta)) —
//    Chebyshev over the per-tour variance bound of Prop. 2.
//  * Sample & Collide (Section 4, Lemma 2): one trial of accuracy ell has
//    relative MSE ~ 1/ell, so the average of k independent trials has
//    relative standard error ~ 1/sqrt(ell k); the recorded half-width is
//    the z=1.96 normal interval 1.96/sqrt(ell k).
//
// Determinism contract (tests/obs/timeseries_test.cpp): the streams are
// derived ONCE for the whole batch (derive_streams(seed, m)) and each walk
// runs on its own stream exactly as in the unmonitored batch, so every
// per-walk result and every reduced aggregate of the returned batch is
// BIT-IDENTICAL to run_tours_size / run_sc_trials of the same (seed, m) —
// at any thread count, kernel width and recording interval. Only the
// BatchStats timings differ (the monitored run stops the clock to record).
// Running estimates at interior points use the same pairwise tree reduction
// over the task-order prefix, so the trajectory itself is reproducible too.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/parallel.hpp"
#include "obs/timeseries.hpp"

namespace overcount {

/// Knobs for a monitored run. The theory inputs are optional: when
/// lambda2/avg_degree (Random Tours) are unset the recorded half-width is
/// NaN and the trajectory is still useful against `truth`.
struct ConvergenceOptions {
  /// Walks per recording interval; 0 picks ~50 snapshots across the batch
  /// (at least one kernel width per interval, so the hot path stays hot).
  std::size_t interval = 0;
  double delta = 0.05;       ///< confidence failure probability (RT bound)
  double lambda2 = 0.0;      ///< spectral gap of the overlay, when known
  double avg_degree = 0.0;   ///< d_bar, when known
  /// Ground-truth size for reporting (copied into the recorder); NaN = none.
  double truth = std::numeric_limits<double>::quiet_NaN();
};

namespace detail {

inline std::size_t resolve_interval(std::size_t configured, std::size_t m,
                                    std::size_t width) {
  if (configured != 0) return configured;
  const std::size_t by_count = (m + 49) / 50;  // ~50 snapshots
  return std::max(width, by_count);
}

/// eps(m) = sqrt(2 d_bar / (lambda2 m delta)); NaN when inputs are unknown.
inline double rt_half_width(const ConvergenceOptions& opts,
                            std::uint64_t walks) {
  if (opts.lambda2 <= 0.0 || opts.avg_degree <= 0.0 || opts.delta <= 0.0 ||
      walks == 0)
    return std::numeric_limits<double>::quiet_NaN();
  return std::sqrt(2.0 * opts.avg_degree /
                   (opts.lambda2 * static_cast<double>(walks) * opts.delta));
}

/// 1.96 / sqrt(ell k): normal interval on the mean of k S&C trials.
inline double sc_half_width(std::size_t ell, std::uint64_t trials) {
  if (ell == 0 || trials == 0)
    return std::numeric_limits<double>::quiet_NaN();
  return 1.96 / std::sqrt(static_cast<double>(ell) *
                          static_cast<double>(trials));
}

}  // namespace detail

/// Random Tour size batch with convergence recording: bit-identical batch
/// results to run_tours_size(g, origin, m, seed, runner, max_steps), plus
/// one recorded point per interval. The recorder's kind/truth are set here.
template <OverlayTopology G>
TourBatch run_tours_size_converging(const G& g, NodeId origin, std::size_t m,
                                    std::uint64_t seed,
                                    ParallelRunner& runner,
                                    TimeSeriesRecorder& recorder,
                                    const ConvergenceOptions& opts = {},
                                    std::uint64_t max_steps = ~0ULL) {
  OVERCOUNT_EXPECTS(g.degree(origin) > 0);  // unconditional boundary check
  recorder = TimeSeriesRecorder("random_tour", opts.truth);
  TourBatch batch;
  batch.tours.resize(m);
  auto streams = derive_streams(seed, m);
  const std::size_t width = resolved_kernel_width(runner.kernel_width());
  const std::size_t interval = detail::resolve_interval(opts.interval, m,
                                                        width);
  auto f = [](NodeId) { return 1.0; };
  std::uint64_t steps_spent = 0;
  std::vector<double> completed_prefix;  // completed estimates, task order
  completed_prefix.reserve(m);
  std::size_t next_prefix = 0;
  for (std::size_t done = 0; done < m;) {
    const std::size_t group = std::min(interval, m - done);
    BatchStats group_stats;
    // Each walk runs on streams[its task index] exactly as in run_tours, so
    // the interval boundaries cannot perturb any walk.
    if (width > 1 && group >= width) {
      runner.run<char>(
          detail::kernel_chunk_count(group, width),
          [&](std::size_t c) {
            const std::size_t begin = done + c * width;
            const std::size_t count = std::min(width, done + group - begin);
            tour_kernel(g, origin, f,
                        std::span<Rng>(streams).subspan(begin, count),
                        std::span<TourEstimate>(batch.tours)
                            .subspan(begin, count),
                        count, max_steps);
            return char{0};
          },
          &group_stats);
    } else {
      runner.run<char>(
          group,
          [&](std::size_t i) {
            batch.tours[done + i] =
                random_tour(g, origin, f, streams[done + i], max_steps);
            return char{0};
          },
          &group_stats);
    }
    done += group;
    batch.stats.wall_seconds += group_stats.wall_seconds;
    batch.stats.cpu_seconds += group_stats.cpu_seconds;
    batch.stats.threads = group_stats.threads;
    for (; next_prefix < done; ++next_prefix) {
      steps_spent += batch.tours[next_prefix].steps;
      if (batch.tours[next_prefix].completed)
        completed_prefix.push_back(batch.tours[next_prefix].value);
    }
    const double estimate =
        completed_prefix.empty()
            ? std::numeric_limits<double>::quiet_NaN()
            : tree_sum(completed_prefix) /
                  static_cast<double>(completed_prefix.size());
    recorder.record(done, steps_spent, estimate,
                    detail::rt_half_width(opts, done));
  }
  detail::finish_tour_batch(batch);
  batch.stats.tasks = m;
  return batch;
}

/// Sample & Collide trial batch with convergence recording: bit-identical
/// batch results to run_sc_trials(g, origin, trials, timer, ell, seed,
/// runner), plus one recorded point per interval. The running estimate is
/// the mean of the simple C^2/(2 ell) estimates over the trials so far (the
/// statistic the paper's own evaluation plots).
template <OverlayTopology G>
ScBatch run_sc_converging(const G& g, NodeId origin, std::size_t trials,
                          double timer, std::size_t ell, std::uint64_t seed,
                          ParallelRunner& runner,
                          TimeSeriesRecorder& recorder,
                          const ConvergenceOptions& opts = {}) {
  OVERCOUNT_EXPECTS(g.degree(origin) > 0);  // unconditional boundary check
  recorder = TimeSeriesRecorder("sample_collide", opts.truth);
  ScBatch batch;
  batch.trials.resize(trials);
  auto streams = derive_streams(seed, trials);
  const std::size_t width = resolved_kernel_width(runner.kernel_width());
  const std::size_t interval = detail::resolve_interval(opts.interval,
                                                        trials, width);
  std::uint64_t hops_spent = 0;
  std::vector<double> simple_prefix;
  simple_prefix.reserve(trials);
  std::size_t next_prefix = 0;
  for (std::size_t done = 0; done < trials;) {
    const std::size_t group = std::min(interval, trials - done);
    BatchStats group_stats;
    if (width > 1 && group >= width) {
      runner.run<char>(
          detail::kernel_chunk_count(group, width),
          [&](std::size_t c) {
            const std::size_t begin = done + c * width;
            const std::size_t count = std::min(width, done + group - begin);
            std::vector<ScTrialRaw> raw(count);
            sc_kernel(g, origin, timer, ell,
                      std::span<Rng>(streams).subspan(begin, count),
                      std::span<ScTrialRaw>(raw), count);
            for (std::size_t j = 0; j < count; ++j)
              batch.trials[begin + j] =
                  detail::finalize_sc_trial(raw[j], ell);
            return char{0};
          },
          &group_stats);
    } else {
      runner.run<char>(
          group,
          [&](std::size_t i) {
            SampleCollideEstimator estimator(g, origin, timer, ell,
                                             streams[done + i]);
            batch.trials[done + i] = estimator.estimate();
            return char{0};
          },
          &group_stats);
    }
    done += group;
    batch.stats.wall_seconds += group_stats.wall_seconds;
    batch.stats.cpu_seconds += group_stats.cpu_seconds;
    batch.stats.threads = group_stats.threads;
    for (; next_prefix < done; ++next_prefix) {
      hops_spent += batch.trials[next_prefix].hops;
      simple_prefix.push_back(batch.trials[next_prefix].simple);
    }
    recorder.record(done, hops_spent,
                    tree_sum(simple_prefix) /
                        static_cast<double>(simple_prefix.size()),
                    detail::sc_half_width(ell, done));
  }
  std::vector<double> simple, ml;
  simple.reserve(trials);
  ml.reserve(trials);
  for (const auto& t : batch.trials) {
    batch.total_hops += t.hops;
    simple.push_back(t.simple);
    ml.push_back(t.ml);
  }
  batch.sum_simple = tree_sum(simple);
  batch.sum_ml = tree_sum(ml);
  batch.stats.steps = batch.total_hops;
  batch.stats.tasks = trials;
  return batch;
}

}  // namespace overcount

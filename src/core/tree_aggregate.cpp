#include "core/tree_aggregate.hpp"

#include <limits>
#include <queue>

#include "graph/connectivity.hpp"

namespace overcount {

TreeAggregateResult tree_aggregate(const Graph& g, NodeId root,
                                   const std::function<double(NodeId)>& f) {
  OVERCOUNT_EXPECTS(root < g.num_nodes());
  const auto dist = bfs_distances(g, root);
  TreeAggregateResult out;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] == std::numeric_limits<std::size_t>::max()) continue;
    out.value += f(v);
    ++out.tree_nodes;
    out.tree_depth = std::max(out.tree_depth, dist[v]);
    if (v != root) {
      // One parent link per non-root node; the build floods every overlay
      // edge once, and the convergecast sends one message up each tree edge.
      out.messages += 1;               // convergecast
    }
    out.messages += g.degree(v);       // build flood over incident edges
  }
  return out;
}

TreeAggregateResult tree_count(const Graph& g, NodeId root) {
  return tree_aggregate(g, root, [](NodeId) { return 1.0; });
}

}  // namespace overcount

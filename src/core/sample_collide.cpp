#include "core/sample_collide.hpp"

#include <cmath>

namespace overcount {

namespace {

// Number of distinct values seen; the score and likelihood only depend on
// (samples, distinct).
std::uint64_t distinct_of(std::uint64_t samples, std::uint64_t collisions) {
  OVERCOUNT_EXPECTS(collisions >= 1);
  OVERCOUNT_EXPECTS(samples > collisions);
  return samples - collisions;
}

}  // namespace

double sc_log_likelihood(double n, std::uint64_t samples,
                         std::uint64_t collisions) {
  const auto d = distinct_of(samples, collisions);
  OVERCOUNT_EXPECTS(n >= static_cast<double>(d));
  // L(n) = prod_{j=0}^{d-1} (n - j) * n^{-samples}   (times an n-free factor
  // from the collision draws).
  double ll = -static_cast<double>(samples) * std::log(n);
  for (std::uint64_t j = 0; j < d; ++j)
    ll += std::log(n - static_cast<double>(j));
  return ll;
}

double sc_score(double n, std::uint64_t samples, std::uint64_t collisions) {
  const auto d = distinct_of(samples, collisions);
  OVERCOUNT_EXPECTS(n > static_cast<double>(d) - 1.0);
  double score = -static_cast<double>(samples) / n;
  for (std::uint64_t j = 0; j < d; ++j)
    score += 1.0 / (n - static_cast<double>(j));
  return score;
}

ScBracket sc_bracket(std::uint64_t samples, std::uint64_t collisions) {
  const auto d = static_cast<double>(distinct_of(samples, collisions));
  const auto c = static_cast<double>(samples);
  const auto ell = static_cast<double>(collisions);
  ScBracket b;
  // AM-HM:  sum_{j<d} 1/(n-j) >= d / (n - (d-1)/2). Solving the relaxed
  // score gives a lower bound for the true root (the score majorises the
  // relaxation, and both are decreasing):
  b.n_minus = c * (d - 1.0) / (2.0 * ell);
  // Trapezoid (convexity): sum <= (d/2) (1/n + 1/(n-d+1)); solving gives an
  // upper bound:
  b.n_plus = (2.0 * c - d) * (d - 1.0) / (2.0 * ell);
  if (b.n_minus < d) b.n_minus = d;
  if (b.n_plus < b.n_minus) b.n_plus = b.n_minus;
  return b;
}

double sc_ml_estimate(std::uint64_t samples, std::uint64_t collisions,
                      double tol) {
  const auto d = static_cast<double>(distinct_of(samples, collisions));
  auto f = [&](double n) { return sc_score(n, samples, collisions); };

  // The score is +infinity-like just above d-1 only if d/n terms dominate;
  // in degenerate cases (e.g. d == 1) it can be negative everywhere, in
  // which case the likelihood is maximised at the smallest admissible
  // population, n = d.
  auto bracket = sc_bracket(samples, collisions);
  double lo = std::max(d, 1.0);
  if (f(lo) <= 0.0) return lo;

  double hi = std::max(bracket.n_plus, lo + 1.0);
  int guard = 0;
  while (f(hi) > 0.0) {
    hi *= 2.0;
    OVERCOUNT_ENSURES(++guard < 200);
  }
  // Tighten with the analytic lower bracket when it is valid.
  if (bracket.n_minus > lo && f(bracket.n_minus) > 0.0) lo = bracket.n_minus;

  while (hi - lo > tol * std::max(1.0, hi)) {
    const double mid = 0.5 * (lo + hi);
    if (f(mid) > 0.0) lo = mid;
    else hi = mid;
  }
  return 0.5 * (lo + hi);
}

double sc_simple_estimate(std::uint64_t samples, std::uint64_t collisions) {
  OVERCOUNT_EXPECTS(collisions >= 1);
  const auto c = static_cast<double>(samples);
  return c * c / (2.0 * static_cast<double>(collisions));
}

ScInterval sc_confidence_interval(std::uint64_t samples,
                                  std::uint64_t collisions, double z) {
  OVERCOUNT_EXPECTS(z > 0.0);
  const double ml = sc_ml_estimate(samples, collisions);
  const double half_width =
      z / std::sqrt(static_cast<double>(collisions));
  ScInterval out;
  out.estimate = ml;
  out.lower = std::max(static_cast<double>(samples - collisions),
                       ml * (1.0 - half_width));
  out.upper = ml * (1.0 + half_width);
  return out;
}

double sc_expected_messages(double n, std::size_t ell, double timer,
                            double avg_degree) {
  OVERCOUNT_EXPECTS(n > 0.0);
  OVERCOUNT_EXPECTS(ell >= 1);
  OVERCOUNT_EXPECTS(timer > 0.0);
  OVERCOUNT_EXPECTS(avg_degree > 0.0);
  // E[C_ell] ~ sqrt(2 ell N) samples, each walking ~ timer * d_bar hops
  // (unit-mean sojourns consume 1/d_bar of the timer per hop on average).
  return std::sqrt(2.0 * static_cast<double>(ell) * n) * timer * avg_degree;
}

}  // namespace overcount

// Decentralised spectral-gap diagnostics.
//
// The Lanczos solver needs the whole adjacency structure, which no overlay
// peer has. These heuristics estimate lambda_2 from quantities a peer CAN
// measure with walks, so the sampling timer T = beta log(N)/lambda_2 can be
// budgeted in situ:
//
//  * from Random Tour dispersion: Proposition 2 gives
//    Var(N_hat) <= N^2 * 2 dbar / lambda_2 (+ lower-order terms), which
//    inverts to an UPPER bound lambda_2 <= 2 dbar N^2 / Var(N_hat). An
//    upper bound cannot budget the timer safely on its own, but a SMALL
//    value is decisive: it certifies poor expansion (the walk methods will
//    be slow/inaccurate here), and dividing it by a safety factor gives a
//    practical starting point for the Section 4.1 doubling bootstrap.
//
//  * from trajectory autocorrelation: run one long CTRW, hash the node id
//    at multiples of delta; the autocorrelation of the hashed series decays
//    as a positive mixture of e^{-lambda_k delta}, so the two-lag ratio
//    log(r(delta)/r(2*delta))/delta upper-bounds lambda_2 and converges to
//    it as delta grows.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/random_tour.hpp"
#include "util/stats.hpp"

namespace overcount {

struct GapEstimate {
  double lambda2 = 0.0;
  std::uint64_t messages = 0;  ///< walk steps spent measuring
};

/// Upper bound on lambda_2 from the empirical dispersion of `tours` Random
/// Tours launched at `origin` (Proposition 2 inverted). N, dbar and
/// Var(N_hat) all come from the same walks; nothing global is consulted.
template <OverlayTopology G>
GapEstimate gap_upper_bound_from_tour_variance(const G& g, NodeId origin,
                                   std::size_t tours, Rng& rng) {
  OVERCOUNT_EXPECTS(tours >= 10);
  RunningStats size_estimates;
  double sum_degree_estimate = 0.0;
  GapEstimate out;
  for (std::size_t t = 0; t < tours; ++t) {
    const auto d_origin = static_cast<double>(g.degree(origin));
    OVERCOUNT_EXPECTS(d_origin > 0);
    double counter_1 = 1.0 / d_origin;
    NodeId at = random_neighbor(g, origin, rng);
    std::uint64_t steps = 1;
    while (at != origin) {
      counter_1 += 1.0 / static_cast<double>(g.degree(at));
      at = random_neighbor(g, at, rng);
      ++steps;
    }
    // With f = degree every visited node contributes d(v)/d(v) = 1, so the
    // tour's estimate of Sigma d is simply d_origin * steps.
    size_estimates.add(d_origin * counter_1);
    sum_degree_estimate += d_origin * static_cast<double>(steps);
    out.messages += steps;
  }
  const double n_hat = size_estimates.mean();
  const double dbar_hat =
      sum_degree_estimate / static_cast<double>(tours) / n_hat;
  const double variance = size_estimates.variance();
  OVERCOUNT_EXPECTS(variance > 0.0);
  out.lambda2 = 2.0 * dbar_hat * n_hat * n_hat / variance;
  return out;
}

/// Spectral gap from the autocorrelation decay of one long CTRW sampled
/// every `delta` time units (`probes` samples). The two-lag ratio cancels
/// the mixture's amplitude; larger delta weights the slow (lambda_2) mode
/// more at the price of noisier correlations.
template <OverlayTopology G>
GapEstimate gap_from_autocorrelation(const G& g, NodeId origin, double delta,
                                     std::size_t probes, Rng& rng) {
  OVERCOUNT_EXPECTS(delta > 0.0);
  OVERCOUNT_EXPECTS(probes >= 100);
  GapEstimate out;
  // Generic observable with overlap on every eigenvector: a fixed hash of
  // the node id mapped to [0, 1).
  auto observe = [](NodeId v) {
    std::uint64_t s = 0x9e3779b97f4a7c15ULL ^ v;
    return static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
  };

  std::vector<double> series;
  series.reserve(probes);
  NodeId at = origin;
  double clock = 0.0;
  double next_probe = 0.0;
  while (series.size() < probes) {
    const double sojourn =
        rng.exponential(static_cast<double>(g.degree(at)));
    while (series.size() < probes && next_probe < clock + sojourn) {
      series.push_back(observe(at));
      next_probe += delta;
    }
    clock += sojourn;
    at = random_neighbor(g, at, rng);
    ++out.messages;
  }

  auto autocorrelation = [&](std::size_t lag) {
    RunningStats all;
    for (double x : series) all.add(x);
    const double mean = all.mean();
    double cov = 0.0;
    double var = 0.0;
    for (std::size_t i = 0; i + lag < series.size(); ++i) {
      cov += (series[i] - mean) * (series[i + lag] - mean);
      var += (series[i] - mean) * (series[i] - mean);
    }
    return var > 0.0 ? cov / var : 0.0;
  };
  const double r1 = autocorrelation(1);
  const double r2 = autocorrelation(2);
  if (r1 <= 0.0 || r2 <= 0.0 || r2 >= r1) {
    // Decorrelated already at one lag: the gap is at least ~1/delta.
    out.lambda2 = std::log(10.0) / delta;
    return out;
  }
  out.lambda2 = std::log(r1 / r2) / delta;
  return out;
}

}  // namespace overcount

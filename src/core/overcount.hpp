// Umbrella header: the public API of the overcount library.
//
//   #include "core/overcount.hpp"
//
// gives you graph construction/generation, the Random Tour and
// Sample & Collide estimators, the CTRW uniform peer sampler, the baseline
// estimators, and the spectral/expansion diagnostics the paper's analysis is
// phrased in.
#pragma once

#include "core/adaptive.hpp"
#include "core/aggregate.hpp"
#include "core/birthday.hpp"
#include "core/dht_density.hpp"
#include "core/gossip.hpp"
#include "core/parallel.hpp"
#include "core/polling.hpp"
#include "core/random_tour.hpp"
#include "core/sample_collide.hpp"
#include "core/sampling.hpp"
#include "core/tree_aggregate.hpp"
#include "graph/connectivity.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"
#include "spectral/conductance.hpp"
#include "spectral/laplacian.hpp"
#include "util/sliding_window.hpp"
#include "util/stats.hpp"
#include "walk/kernel.hpp"
#include "walk/metropolis.hpp"

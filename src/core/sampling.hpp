// Uniform peer sampling (paper Section 4.1) and the biased prior-art
// baseline.
//
// CtrwSampler emulates the standard continuous-time random walk whose
// sojourn at node v is Exp(d_v): a probe carries a timer T, every visited
// node subtracts -log(u)/d_v, and the node where the timer dies is the
// sample. Its distribution is exactly that of the CTRW at time T, so by
// Lemma 1 the variation distance to uniform is <= sqrt(N) e^{-lambda_2 T};
// T = beta log(N)/lambda_2 with beta = 3/2 makes the bias O(1/N).
//
// DtrwSampler is the discrete-time walk stopped after a fixed hop count —
// the previous proposals the paper improves on; its limit distribution is
// degree-biased (pi_v proportional to d_v).
#pragma once

#include <cmath>
#include <cstdint>

#include "walk/walkers.hpp"

namespace overcount {

/// Recommended timer for a target bias: T = beta * log(n_guess) /
/// lambda_2_lower_bound (Section 4.1 suggests beta = 3/2; with it the
/// variation distance is O(1/n)).
double recommended_ctrw_timer(double n_guess, double spectral_gap_lower,
                              double beta = 1.5);

/// Uniform sampler backed by the exponential-sojourn CTRW.
template <OverlayTopology G>
class CtrwSampler {
 public:
  /// `timer` is the CTRW horizon T; see recommended_ctrw_timer.
  CtrwSampler(const G& graph, double timer, Rng rng)
      : graph_(&graph), timer_(timer), rng_(rng) {
    OVERCOUNT_EXPECTS(timer > 0.0);
  }

  double timer() const noexcept { return timer_; }
  void set_timer(double t) {
    OVERCOUNT_EXPECTS(t > 0.0);
    timer_ = t;
  }
  std::uint64_t total_hops() const noexcept { return total_hops_; }
  std::uint64_t samples_drawn() const noexcept { return samples_; }

  /// Draws one (approximately uniform) sample, walking from `origin`.
  SampleResult sample(NodeId origin) { return sample(origin, NullProbe{}); }

  /// Same, observed by a walk probe (obs/probe.hpp). The probe never draws
  /// from the sampler's Rng, so probed and plain runs sample identically.
  template <WalkProbe P>
  SampleResult sample(NodeId origin, P&& probe) {
    auto r = ctrw_sample(*graph_, origin, timer_, rng_, probe);
    total_hops_ += r.hops;
    ++samples_;
    return r;
  }

 private:
  const G* graph_;
  double timer_;
  Rng rng_;
  std::uint64_t total_hops_ = 0;
  std::uint64_t samples_ = 0;
};

/// Degree-biased baseline: DTRW stopped after a fixed number of steps.
template <OverlayTopology G>
class DtrwSampler {
 public:
  DtrwSampler(const G& graph, std::uint64_t steps, Rng rng)
      : graph_(&graph), steps_(steps), rng_(rng) {
    OVERCOUNT_EXPECTS(steps > 0);
  }

  std::uint64_t total_hops() const noexcept { return total_hops_; }

  SampleResult sample(NodeId origin) {
    auto r = dtrw_sample(*graph_, origin, steps_, rng_);
    total_hops_ += r.hops;
    return r;
  }

 private:
  const G* graph_;
  std::uint64_t steps_;
  Rng rng_;
  std::uint64_t total_hops_ = 0;
};

}  // namespace overcount

// Continuous size monitoring with change detection — the operational layer
// the paper's Section 5 evaluation gestures at ("Reactivity to changes is
// an important characteristic"). A plain sliding window trades accuracy
// against reactivity; SizeMonitor keeps the window's variance reduction in
// steady state but runs a two-sided CUSUM on the standardised estimate
// deviations and RESETS the window when the cumulative evidence crosses the
// threshold — so catastrophic changes (Figures 10/13) are re-converged to
// within a few runs instead of one whole window, including shifts smaller
// than any single estimate's noise could reveal.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>

#include "util/sliding_window.hpp"

namespace overcount {

struct MonitorConfig {
  std::size_t window = 50;       ///< steady-state averaging window
  /// Relative standard deviation of ONE raw estimate (1/sqrt(ell) for
  /// Sample & Collide at accuracy ell; order 1 for single Random Tours —
  /// RT users should feed pre-averaged batches instead).
  double estimate_rel_std = 0.1;
  /// CUSUM reference drift k: deviations below k sigma are ignored; a
  /// persistent shift of s sigma accumulates at (s - k) per run.
  double cusum_k = 1.0;
  /// CUSUM decision threshold h (in sigma units). Detection delay after a
  /// shift of s sigma is ~ h / (s - k); the in-control false-alarm spacing
  /// grows exponentially in k*h.
  double cusum_h = 5.0;
  /// Standardised deviations are clamped to +/- z_clamp before entering
  /// the CUSUM, so one heavy-tailed outlier cannot fire it alone.
  double z_clamp = 3.0;
  /// How many recent raw estimates reseed the window after a detection.
  std::size_t reseed_from = 4;
};

/// Feeds raw size estimates; exposes a smoothed estimate plus a change flag.
class SizeMonitor {
 public:
  explicit SizeMonitor(MonitorConfig config = {})
      : config_(config), window_(std::max<std::size_t>(config.window, 1)) {
    OVERCOUNT_EXPECTS(config.window >= 1);
    OVERCOUNT_EXPECTS(config.estimate_rel_std > 0.0);
    OVERCOUNT_EXPECTS(config.cusum_k >= 0.0);
    OVERCOUNT_EXPECTS(config.cusum_h > 0.0);
    OVERCOUNT_EXPECTS(config.z_clamp > config.cusum_k);
    OVERCOUNT_EXPECTS(config.reseed_from >= 1);
  }

  /// Feeds one raw estimate; returns true when a population change was
  /// detected (the window has been reset onto the new level).
  bool feed(double estimate) {
    OVERCOUNT_EXPECTS(estimate > 0.0);
    recent_.push_back(estimate);
    if (recent_.size() > config_.reseed_from) recent_.pop_front();

    if (window_.size() < 3) {  // warm-up: no meaningful reference yet
      window_.push(estimate);
      return false;
    }
    const double mean = window_.mean();
    const double sigma = config_.estimate_rel_std * mean;
    const double z =
        std::clamp((estimate - mean) / sigma, -config_.z_clamp,
                   config_.z_clamp);
    cusum_up_ = std::max(0.0, cusum_up_ + z - config_.cusum_k);
    cusum_down_ = std::max(0.0, cusum_down_ - z - config_.cusum_k);
    if (cusum_up_ > config_.cusum_h || cusum_down_ > config_.cusum_h) {
      // Change confirmed: restart from the freshest evidence.
      window_.clear();
      double seed = 0.0;
      for (double r : recent_) seed += r;
      window_.push(seed / static_cast<double>(recent_.size()));
      cusum_up_ = 0.0;
      cusum_down_ = 0.0;
      ++changes_;
      return true;
    }
    window_.push(estimate);
    return false;
  }

  /// Current smoothed estimate. Requires at least one fed value.
  double value() const { return window_.mean(); }

  std::size_t changes_detected() const noexcept { return changes_; }
  std::size_t window_fill() const noexcept { return window_.size(); }

 private:
  MonitorConfig config_;
  SlidingWindowMean window_;
  std::deque<double> recent_;
  double cusum_up_ = 0.0;
  double cusum_down_ = 0.0;
  std::size_t changes_ = 0;
};

}  // namespace overcount

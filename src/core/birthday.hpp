// The "Inverted Birthday Paradox" baseline of Bawa et al. [7] (paper
// Section 2.2 / 4): draw uniform samples until the FIRST collision, at
// C_1 samples estimate N_hat = C_1^2 / 2, and average k independent
// repetitions to cut the variance. Reaching relative variance 1/ell needs
// ell repetitions costing ~ ell * sqrt(pi N / 2) samples in total, a factor
// ~ sqrt(ell) more than Sample & Collide's single run of sqrt(2 ell N)
// samples — exactly the improvement the paper claims.
#pragma once

#include "core/sample_collide.hpp"

namespace overcount {

/// One repetition-averaged birthday-paradox measurement.
struct BirthdayEstimate {
  double value = 0.0;            ///< averaged C_1^2/2 over repetitions
  std::uint64_t samples = 0;     ///< total samples across repetitions
  std::uint64_t hops = 0;        ///< total walk hops
};

/// Runs `repetitions` independent first-collision experiments and averages.
template <OverlayTopology G>
class BirthdayParadoxEstimator {
 public:
  BirthdayParadoxEstimator(const G& graph, NodeId origin, double timer,
                           std::size_t repetitions, Rng rng)
      : sampler_(graph, timer, rng), origin_(origin), reps_(repetitions) {
    OVERCOUNT_EXPECTS(repetitions >= 1);
  }

  BirthdayEstimate estimate() {
    BirthdayEstimate out;
    const std::uint64_t hops_before = sampler_.total_hops();
    double acc = 0.0;
    for (std::size_t r = 0; r < reps_; ++r) {
      CollisionTracker tracker;
      while (tracker.collisions() < 1)
        tracker.feed(sampler_.sample(origin_).node);
      acc += sc_simple_estimate(tracker.samples(), 1);
      out.samples += tracker.samples();
    }
    out.value = acc / static_cast<double>(reps_);
    out.hops = sampler_.total_hops() - hops_before;
    return out;
  }

 private:
  CtrwSampler<G> sampler_;
  NodeId origin_;
  std::size_t reps_;
};

}  // namespace overcount

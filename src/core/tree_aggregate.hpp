// Spanning-tree aggregation baseline ([9, 32, 25], paper Section 2.1):
// build a BFS tree rooted at the initiator and aggregate exact per-node
// values up the tree. Exact in the absence of failures; cost is one
// message per tree edge in each direction, i.e. Theta(N) — and the tree
// must be rebuilt under churn, which is the weakness that motivates the
// paper's stateless walks.
#pragma once

#include <functional>

#include "graph/graph.hpp"

namespace overcount {

struct TreeAggregateResult {
  double value = 0.0;             ///< exact sum over the root's component
  std::uint64_t messages = 0;     ///< build + convergecast messages
  std::size_t tree_nodes = 0;     ///< nodes reached by the tree
  std::size_t tree_depth = 0;
};

/// Builds a BFS tree from `root` and sums f over it. Exact (deterministic).
TreeAggregateResult tree_aggregate(const Graph& g, NodeId root,
                                   const std::function<double(NodeId)>& f);

/// Convenience: exact component size by tree aggregation.
TreeAggregateResult tree_count(const Graph& g, NodeId root);

}  // namespace overcount

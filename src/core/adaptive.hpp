// The paper's Section 4.1 bootstrap for choosing the sampling timer when
// neither N nor lambda_2 is known: run Sample & Collide with a small T, get
// an estimate, double T, re-run, and stop when successive estimates
// stabilise — "they should increase with T until T is sufficiently large"
// (an under-budgeted timer keeps samples near the origin, inflating
// collisions and deflating the estimate).
#pragma once

#include <cmath>
#include <vector>

#include "core/sample_collide.hpp"

namespace overcount {

struct AdaptiveScResult {
  double estimate = 0.0;           ///< final (stabilised) size estimate
  double timer = 0.0;              ///< the timer the final round used
  std::size_t rounds = 0;          ///< sampling rounds performed
  std::uint64_t total_hops = 0;    ///< messages across all rounds
  std::vector<double> trajectory;  ///< estimate after each round
  bool converged = false;          ///< stabilised before max_rounds
};

/// Doubles the timer until the estimate stops INCREASING: a round whose
/// estimate is below (1 + tolerance) x the previous round's declares
/// convergence. (Under-budgeted rounds are biased low but agree with each
/// other, so a symmetric |difference| test would stop too early; the
/// upward ramp is the reliable signature.) Two guards make this robust:
///  * `tolerance` should exceed a few times the estimator's own relative
///    noise 1/sqrt(ell);
///  * convergence is only accepted once the round saw at least 3*ell
///    DISTINCT peers — when the walk's effective support is still smaller
///    than ell, estimates flatline near ell/2 regardless of N and would
///    otherwise fake agreement (severe on slow-mixing overlays).
template <OverlayTopology G>
AdaptiveScResult adaptive_sample_collide(const G& g, NodeId origin,
                                         std::size_t ell, Rng& rng,
                                         double initial_timer = 1.0,
                                         double tolerance = 0.15,
                                         std::size_t max_rounds = 12) {
  OVERCOUNT_EXPECTS(initial_timer > 0.0);
  OVERCOUNT_EXPECTS(tolerance > 0.0);
  OVERCOUNT_EXPECTS(max_rounds >= 2);
  AdaptiveScResult out;
  double timer = initial_timer;
  double previous = 0.0;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    SampleCollideEstimator estimator(g, origin, timer, ell, rng.split());
    const auto e = estimator.estimate();
    out.total_hops += e.hops;
    out.trajectory.push_back(e.simple);
    out.rounds = round + 1;
    out.timer = timer;
    out.estimate = e.simple;
    const std::uint64_t distinct = e.samples - ell;
    if (round > 0 && previous > 0.0 && distinct >= 3 * ell &&
        e.simple <= (1.0 + tolerance) * previous) {
      out.converged = true;
      return out;
    }
    previous = e.simple;
    timer *= 2.0;
  }
  return out;
}

}  // namespace overcount

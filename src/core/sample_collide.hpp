// The Sample & Collide size estimator (paper Section 4).
//
// Draw (approximately) uniform samples with the CTRW sampler until exactly
// `ell` of them were already seen before ("collisions"); let C_ell be the
// number of samples drawn at that point. C_ell is a sufficient statistic for
// N. The maximum-likelihood estimate solves
//
//   F(N) = sum_{j=0}^{D-1} 1/(N - j)  -  C_ell / N = 0,   D = C_ell - ell
//
// (the score, eq. (9)) by bisection inside brackets [N-, N+] that are both
// asymptotic to N (eq. (10)). The asymptotically equivalent closed form
// N_hat = C_ell^2 / (2 ell) is what the paper's own evaluation uses.
// Asymptotics (Prop. 3, Cor. 1): C_ell/sqrt(N) => sqrt(2(E_1+...+E_ell)),
// so N_hat/N => Erlang(ell,1)/ell and the relative MSE tends to 1/ell
// (Table 1: 0.1 at ell=10, 0.01 at ell=100); no unbiased estimator does
// asymptotically better (Cramer-Rao, Lemma 2).
#pragma once

#include <cstdint>
#include <unordered_set>

#include "core/sampling.hpp"
#include "obs/trace.hpp"

namespace overcount {

/// Collision bookkeeping over a stream of node samples. Every sample whose
/// id has been seen before counts as one collision (so a third occurrence of
/// the same id is a second collision).
class CollisionTracker {
 public:
  /// Feeds one sample; returns true when it collided with an earlier one.
  bool feed(NodeId sample) {
    ++samples_;
    const bool collided = !seen_.insert(sample).second;
    if (collided) ++collisions_;
    return collided;
  }

  std::uint64_t samples() const noexcept { return samples_; }
  std::uint64_t collisions() const noexcept { return collisions_; }
  std::uint64_t distinct() const noexcept { return samples_ - collisions_; }
  void reset() {
    seen_.clear();
    samples_ = 0;
    collisions_ = 0;
  }

 private:
  std::unordered_set<NodeId> seen_;
  std::uint64_t samples_ = 0;
  std::uint64_t collisions_ = 0;
};

/// Log-likelihood of observing `collisions` collisions in `samples` draws
/// from a uniform population of size n (up to an N-free additive constant).
/// Requires n >= distinct = samples - collisions.
double sc_log_likelihood(double n, std::uint64_t samples,
                         std::uint64_t collisions);

/// Score F(n) = d/dn log-likelihood; strictly decreasing past the ML root.
double sc_score(double n, std::uint64_t samples, std::uint64_t collisions);

/// Deterministic bracket [n_minus, n_plus] containing the ML root; both are
/// asymptotic to N and differ by O(sqrt(N)) (cf. eq. (10) / Remark 2).
struct ScBracket {
  double n_minus = 0.0;
  double n_plus = 0.0;
};
ScBracket sc_bracket(std::uint64_t samples, std::uint64_t collisions);

/// Maximum-likelihood size estimate by bisection on the score. Requires
/// collisions >= 1 and samples > collisions.
double sc_ml_estimate(std::uint64_t samples, std::uint64_t collisions,
                      double tol = 1e-9);

/// The closed-form asymptotically-efficient estimate C^2 / (2 ell)
/// (Remark 2; used by the paper's own simulations).
double sc_simple_estimate(std::uint64_t samples, std::uint64_t collisions);

/// Asymptotic confidence interval around the ML estimate. The Fisher
/// information is I(N) ~ ell / N^2 (Lemma 2), so the estimate's standard
/// error is ~ N_hat / sqrt(ell); the interval is
/// N_hat * (1 -+ z/sqrt(ell)), clamped below at the distinct-sample count.
struct ScInterval {
  double lower = 0.0;
  double estimate = 0.0;
  double upper = 0.0;
};
ScInterval sc_confidence_interval(std::uint64_t samples,
                                  std::uint64_t collisions, double z = 1.96);

/// One Sample & Collide measurement.
struct ScEstimate {
  double ml = 0.0;              ///< ML estimate
  double simple = 0.0;          ///< C^2/(2 ell)
  double n_minus = 0.0;         ///< lower bracket
  double n_plus = 0.0;          ///< upper bracket
  std::uint64_t samples = 0;    ///< C_ell
  std::uint64_t hops = 0;       ///< total walk hops == probe messages
  std::uint64_t replies = 0;    ///< sample-report messages (== samples)
};

/// Orchestrates CTRW sampling until `ell` collisions, then estimates N.
template <OverlayTopology G>
class SampleCollideEstimator {
 public:
  /// `timer` is the CTRW horizon (see recommended_ctrw_timer); `ell` is the
  /// accuracy parameter (relative MSE ~ 1/ell).
  SampleCollideEstimator(const G& graph, NodeId origin, double timer,
                         std::size_t ell, Rng rng)
      : sampler_(graph, timer, rng), origin_(origin), ell_(ell) {
    OVERCOUNT_EXPECTS(ell >= 1);
  }

  NodeId origin() const noexcept { return origin_; }
  std::size_t ell() const noexcept { return ell_; }
  std::uint64_t total_hops() const noexcept { return sampler_.total_hops(); }

  /// Runs one full measurement (fresh collision state).
  ScEstimate estimate() { return estimate(NullProbe{}); }

  /// Same, observed by a walk probe (obs/probe.hpp): the probe sees every
  /// CTRW sampling walk plus an on_collision(gap) event per collision,
  /// where `gap` is the number of samples since the previous collision (the
  /// collision-interarrival distribution whose 1/sqrt(N) scaling is the
  /// estimator's whole signal). Probes never touch the Rng, so probed and
  /// plain measurements are bit-identical.
  template <WalkProbe P>
  ScEstimate estimate(P&& probe) {
    // One span per measurement plus an instant per collision; trace calls
    // never touch the Rng, so traced runs stay bit-identical (obs/trace.hpp).
    TraceSpan measurement_span("sc", "sc.estimate", "ell",
                               static_cast<std::uint64_t>(ell_));
    const bool tracing = trace_active();
    CollisionTracker tracker;
    const std::uint64_t hops_before = sampler_.total_hops();
    [[maybe_unused]] std::uint64_t previous_collision_at = 0;
    while (tracker.collisions() < ell_) {
      const bool collided = tracker.feed(sampler_.sample(origin_, probe).node);
      if (collided) {
        if constexpr (probe_enabled_v<P>)
          probe.on_collision(tracker.samples() - previous_collision_at);
        if (tracing)
          trace_instant("sc", "sc.collision", "gap",
                        tracker.samples() - previous_collision_at);
        previous_collision_at = tracker.samples();
      }
    }
    ScEstimate out;
    out.samples = tracker.samples();
    out.hops = sampler_.total_hops() - hops_before;
    out.replies = tracker.samples();
    out.ml = sc_ml_estimate(tracker.samples(), tracker.collisions());
    out.simple = sc_simple_estimate(tracker.samples(), tracker.collisions());
    const auto bracket = sc_bracket(tracker.samples(), tracker.collisions());
    out.n_minus = bracket.n_minus;
    out.n_plus = bracket.n_plus;
    return out;
  }

 private:
  CtrwSampler<G> sampler_;
  NodeId origin_;
  std::size_t ell_;
};

/// Expected messages for one S&C measurement (Section 4.3):
/// sqrt(2 ell N) samples, each costing about timer * d_bar hops.
double sc_expected_messages(double n, std::size_t ell, double timer,
                            double avg_degree);

}  // namespace overcount

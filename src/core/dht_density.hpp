// Architecture-specific baseline ([11], paper Section 2.1): in a structured
// (DHT) overlay, peers hold identifiers drawn uniformly from a circular id
// space, so system size can be read off the local identifier DENSITY — the
// k nearest identifiers around the initiator span an arc of expected length
// k/N. Cost is O(k) lookups irrespective of N, but the method only exists
// on DHTs, which is exactly why the paper develops topology-agnostic
// estimators.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace overcount {

/// A minimal DHT id space: every peer owns one uniform 64-bit identifier on
/// the ring [0, 2^64).
class DhtIdSpace {
 public:
  /// Assigns n uniform ids (distinct with overwhelming probability).
  DhtIdSpace(std::size_t n, Rng& rng);

  std::size_t size() const noexcept { return ids_.size(); }

  /// The `count` identifiers closest to `from` in clockwise ring order
  /// (excluding `from`'s own id when present). Requires count < size().
  std::vector<std::uint64_t> successors(std::uint64_t from,
                                        std::size_t count) const;

  /// Density-based size estimate around `from`: the arc covered by the k
  /// nearest successors has expected length k/(N+1) of the ring, so
  /// N_hat = k * 2^64 / arc - 1 ~ k / arc_fraction.
  double estimate_size(std::uint64_t from, std::size_t k) const;

 private:
  std::vector<std::uint64_t> ids_;  // sorted
};

}  // namespace overcount

// Log2-bucketed histogram of unsigned integer observations (walk steps,
// hops per sample, queue depths, collision gaps).
//
// Bucket i holds the values whose bit width is i: bucket 0 is exactly {0},
// bucket i >= 1 covers [2^(i-1), 2^i - 1]. 65 buckets therefore cover the
// whole uint64 range with no separate overflow bucket — the top bucket IS
// [2^63, 2^64-1]. Log2 bucketing is the right resolution for the paper's
// heavy-tailed quantities: a Random Tour's length is a return time whose
// distribution has geometric-scale spread (E_i[T_i] = 2|E|/d_i but the
// tail is governed by the spectral gap), so fixed-width bins either clip
// the tail or waste the head.
//
// This is the PLAIN, single-thread accumulator used by per-walk probes and
// by snapshots; the lock-free multi-thread variant (AtomicHistogram in
// obs/metrics.hpp) converts to it on read.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace overcount {

struct Log2Histogram {
  static constexpr std::size_t kBuckets = 65;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;        ///< exact sum of recorded values
  std::uint64_t min = ~0ULL;    ///< exact smallest value (~0 when empty)
  std::uint64_t max = 0;        ///< exact largest value (0 when empty)

  /// The bucket a value lands in: std::bit_width(v).
  static std::size_t bucket_index(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Smallest value of bucket i (0 for bucket 0, 2^(i-1) otherwise).
  static std::uint64_t bucket_lower(std::size_t i) noexcept {
    return i == 0 ? 0 : (std::uint64_t{1} << (i - 1));
  }
  /// Largest value of bucket i.
  static std::uint64_t bucket_upper(std::size_t i) noexcept {
    return i == 0 ? 0 : (~std::uint64_t{0} >> (64 - i));
  }

  void record(std::uint64_t v) noexcept {
    ++buckets[bucket_index(v)];
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  /// Adds another histogram's observations into this one.
  void merge(const Log2Histogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
    count += other.count;
    sum += other.sum;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }

  bool empty() const noexcept { return count == 0; }

  /// Mean of the recorded values; NaN when empty.
  double mean() const noexcept;

  /// Estimated q-quantile, q in [0, 1] (0.5 = median): linear interpolation
  /// by rank inside the containing bucket, clamped to the exact observed
  /// [min, max]. NaN when empty.
  double percentile(double q) const noexcept;
};

}  // namespace overcount

#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace overcount {

double Log2Histogram::mean() const noexcept {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(sum) / static_cast<double>(count);
}

double Log2Histogram::percentile(double q) const noexcept {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  // 1-based target rank; q = 0 means the first observation.
  const double rank =
      std::max(1.0, std::ceil(q * static_cast<double>(count)));
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(below + in_bucket) >= rank) {
      const double frac = (rank - static_cast<double>(below)) /
                          static_cast<double>(in_bucket);
      const double lo = static_cast<double>(bucket_lower(i));
      const double hi = static_cast<double>(bucket_upper(i));
      const double value = lo + frac * (hi - lo);
      return std::clamp(value, static_cast<double>(min),
                        static_cast<double>(max));
    }
    below += in_bucket;
  }
  return static_cast<double>(max);  // unreachable when counts are consistent
}

}  // namespace overcount

#include "obs/expose.hpp"

#include <unistd.h>

#include <cctype>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "net/socket.hpp"
#include "obs/cost/cost.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"

namespace overcount {

namespace {

/// Reads from `fd` until the HTTP header terminator, the buffer cap, EOF,
/// or ~2 s of client silence — a slow client trickling its request one
/// byte at a time cannot hold the serving thread hostage, and a request
/// split across packets (perfectly legal TCP) is reassembled instead of
/// being misparsed from its first fragment. EINTR handling lives in
/// net::recv_some (the shared socket helpers in src/net/socket.hpp).
std::string read_request(int fd) {
  std::string request;
  char buf[2048];
  for (int rounds = 0; rounds < 20; ++rounds) {
    const ssize_t got = net::recv_some(fd, buf, sizeof(buf), 100);
    if (got == net::kRecvTimeout) break;  // silence: parse what we have
    if (got <= 0) break;                  // EOF or error
    request.append(buf, static_cast<std::size_t>(got));
    if (request.find("\r\n\r\n") != std::string::npos) break;
    if (request.size() > 16 * 1024) break;  // header cap; answer 400 below
  }
  return request;
}

/// Sends the whole buffer via the shared helper (EINTR + partial-send
/// retries, MSG_NOSIGNAL so a client that hung up mid-response surfaces as
/// an error instead of a process-killing SIGPIPE).
bool send_all(int fd, const std::string& data) {
  return net::send_all(fd, data.data(), data.size());
}

/// Shortest round-trip decimal for a gauge value (the same contract the
/// JSON writer uses); NaN renders as Prometheus' literal "NaN".
std::string format_double(double v) {
  if (v != v) return "NaN";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc{} ? std::string(buf, ptr) : std::string("0");
}

/// `# HELP` text for a metric. Scrapers and the exposition-format linters
/// treat a TYPE without a HELP as a malformed family, so every metric gets
/// one — derived from the registry name, which is already descriptive
/// ("serve.request_latency_us", "shard.handoff_latency_us").
void append_help(std::string& out, const std::string& pname,
                 const std::string& raw_name, const char* kind) {
  out += "# HELP " + pname + " Overcount " + kind + " '" + raw_name + "'.\n";
}

void append_histogram(std::string& out, const std::string& name,
                      const std::string& raw_name, const Log2Histogram& h) {
  // Emitted even with zero observations: a registered histogram that has
  // not fired yet must still expose an empty, well-formed family (HELP,
  // TYPE, +Inf bucket, _sum, _count) so dashboards and rate() queries see
  // the series from scrape one.
  append_help(out, name, raw_name, "log2 histogram");
  out += "# TYPE " + name + " histogram\n";
  // Cumulative le-buckets over the non-empty prefix: bucket i of the log2
  // histogram holds values <= bucket_upper(i), which IS a Prometheus `le`
  // boundary. Past the last non-empty bucket every further line would
  // repeat the count, so stop there and let +Inf close the series.
  std::uint64_t cumulative = 0;
  std::size_t last = 0;
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i)
    if (h.buckets[i] != 0) last = i;
  for (std::size_t i = 0; i <= last && h.count != 0; ++i) {
    cumulative += h.buckets[i];
    out += name + "_bucket{le=\"" +
           std::to_string(Log2Histogram::bucket_upper(i)) + "\"} " +
           std::to_string(cumulative) + "\n";
  }
  out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
  out += name + "_sum " + std::to_string(h.sum) + "\n";
  out += name + "_count " + std::to_string(h.count) + "\n";
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string pname = prometheus_name(name);
    if (pname.size() < 6 || pname.compare(pname.size() - 6, 6, "_total") != 0)
      pname += "_total";
    append_help(out, pname, name, "counter");
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string pname = prometheus_name(name);
    append_help(out, pname, name, "gauge");
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + format_double(value) + "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms)
    append_histogram(out, prometheus_name(name), name, hist);
  return out;
}

MetricsHttpServer::MetricsHttpServer(const MetricsRegistry& registry,
                                     std::uint16_t port)
    : registry_(registry) {
  listen_fd_ = net::listen_loopback(port, 16);
  if (listen_fd_ < 0) {
    throw std::runtime_error("metrics: cannot bind 127.0.0.1:" +
                             std::to_string(port));
  }
  port_ = net::bound_port(listen_fd_);
  thread_ = std::thread([this] { serve_loop(); });
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::stop() {
  if (!stopping_.exchange(true) && thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::serve_loop() {
  // accept_next polls with a short timeout so stop() is observed within
  // ~100 ms even when no scraper ever connects. Its errno policy (shared
  // with the estimate front end) retries EINTR and reports fd exhaustion
  // as kTransient, so EMFILE backs off instead of spinning — the pending
  // connection stays in the kernel accept queue and is picked up once a
  // descriptor frees.
  while (!stopping_.load(std::memory_order_relaxed)) {
    const net::AcceptResult res = net::accept_next(listen_fd_, 100);
    switch (res.status) {
      case net::AcceptStatus::kAccepted:
        handle_connection(res.fd);
        ::close(res.fd);
        break;
      case net::AcceptStatus::kTimeout:
        break;
      case net::AcceptStatus::kTransient:
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        break;
      case net::AcceptStatus::kClosed:
        return;
    }
  }
}

void MetricsHttpServer::set_ready_check(std::function<bool()> ready) {
  std::lock_guard lock(ready_mutex_);
  ready_check_ = std::move(ready);
}

void MetricsHttpServer::handle_connection(int client_fd) {
  const std::string request = read_request(client_fd);
  if (request.empty()) return;
  // "GET <path> HTTP/1.x" — everything else 400s.
  std::string method, path;
  {
    std::istringstream line(request);
    line >> method >> path;
  }
  // Route = path minus the query string ("/costs?k=5" routes as /costs).
  std::string query;
  if (const std::size_t q = path.find('?'); q != std::string::npos) {
    query = path.substr(q + 1);
    path.resize(q);
  }
  std::string status = "200 OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (method != "GET") {
    status = "405 Method Not Allowed";
    body = "only GET is served\n";
  } else if (path == "/metrics") {
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = render_prometheus(registry_.snapshot());
  } else if (path == "/snapshot.json") {
    content_type = "application/json; charset=utf-8";
    std::ostringstream os;
    JsonWriter w(os);
    write_json(w, registry_.snapshot());
    os << '\n';
    body = os.str();
  } else if (path == "/costs") {
    const CostLedger* ledger = cost_ledger_.load(std::memory_order_acquire);
    if (ledger == nullptr) {
      status = "404 Not Found";
      body = "no cost ledger attached\n";
    } else {
      content_type = "application/json; charset=utf-8";
      std::size_t k = 10;
      // Accept exactly "k=<digits>" anywhere in the query; anything else
      // keeps the default rather than 400ing a dashboard.
      for (std::size_t at = 0; at < query.size();) {
        std::size_t end = query.find('&', at);
        if (end == std::string::npos) end = query.size();
        if (query.compare(at, 2, "k=") == 0) {
          unsigned long parsed = 0;
          const auto [ptr, ec] = std::from_chars(
              query.data() + at + 2, query.data() + end, parsed);
          if (ec == std::errc{} && ptr == query.data() + end && parsed > 0)
            k = static_cast<std::size_t>(parsed);
        }
        at = end + 1;
      }
      std::ostringstream os;
      JsonWriter w(os);
      write_costs_json(w, *ledger, k);
      os << '\n';
      body = os.str();
    }
  } else if (path == "/healthz") {
    body = "ok\n";
  } else if (path == "/readyz") {
    std::function<bool()> check;
    {
      std::lock_guard lock(ready_mutex_);
      check = ready_check_;
    }
    if (!check || check()) {
      body = "ready\n";
    } else {
      status = "503 Service Unavailable";
      body = "warming\n";
    }
  } else {
    status = "404 Not Found";
    body = "routes: /metrics /snapshot.json /costs /healthz /readyz\n";
  }
  // Cache-Control on EVERY route: each response is a point-in-time
  // snapshot, and a proxy replaying a cached one would freeze the counters
  // a dashboard believes are live.
  const std::string response =
      "HTTP/1.1 " + status + "\r\nContent-Type: " + content_type +
      "\r\nContent-Length: " + std::to_string(body.size()) +
      "\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n" + body;
  send_all(client_fd, response);
  served_.fetch_add(1, std::memory_order_relaxed);
}

std::unique_ptr<MetricsHttpServer> maybe_serve_metrics(
    const MetricsRegistry& registry) {
  const char* env = std::getenv("OVERCOUNT_METRICS_PORT");
  if (env == nullptr || *env == '\0') return nullptr;
  unsigned long port = 0;
  char* end = nullptr;
  port = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || port > 65535) {
    std::cerr << "# metrics: ignoring OVERCOUNT_METRICS_PORT='" << env
              << "' (not a port)\n";
    return nullptr;
  }
  try {
    auto server = std::make_unique<MetricsHttpServer>(
        registry, static_cast<std::uint16_t>(port));
    std::cerr << "# metrics: serving http://127.0.0.1:" << server->port()
              << "/metrics\n";
    return server;
  } catch (const std::exception& e) {
    std::cerr << "# metrics: " << e.what() << '\n';
    return nullptr;
  }
}

std::string http_get_response(std::uint16_t port, const std::string& path) {
  const int fd = net::connect_loopback(port);
  if (fd < 0) return {};
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  if (!send_all(fd, request)) {
    ::close(fd);
    return {};
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = net::recv_some(fd, buf, sizeof(buf), 2000);
    if (n <= 0) break;  // EOF, silence, or error: parse what we have
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get_body(std::uint16_t port, const std::string& path,
                          int* status_out) {
  if (status_out != nullptr) *status_out = 0;
  const std::string response = http_get_response(port, path);
  const std::size_t split = response.find("\r\n\r\n");
  if (split == std::string::npos) return {};
  if (status_out != nullptr) {
    // "HTTP/1.x NNN ..." — the code sits after the first space.
    const std::size_t space = response.find(' ');
    if (space != std::string::npos && space + 4 <= split)
      *status_out = std::atoi(response.c_str() + space + 1);
  }
  return response.substr(split + 4);
}

}  // namespace overcount

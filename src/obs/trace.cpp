#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <set>
#include <string>

#include "obs/json.hpp"

namespace overcount {

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  std::lock_guard lock(mutex_);
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t available = std::min<std::uint64_t>(head, capacity_);
    // Oldest surviving event first: when the ring wrapped, that is slot
    // head % capacity (the next one to be overwritten).
    for (std::uint64_t k = 0; k < available; ++k) {
      const std::uint64_t seq = head - available + k;
      out.push_back(ring->slots[seq & (capacity_ - 1)]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

namespace {

void write_event(JsonWriter& w, const TraceEvent& e) {
  w.begin_object();
  w.kv("name", e.name != nullptr ? e.name : "?");
  w.kv("cat", e.cat != nullptr ? e.cat : "overcount");
  w.kv("ph", std::string(1, e.phase));
  w.kv("pid", 1);
  w.kv("tid", e.tid);
  w.kv("ts", e.ts_us);
  if (e.phase == 'X') w.kv("dur", e.dur_us);
  if (e.phase == 'i') w.kv("s", "t");  // instant scope: thread
  if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
    w.kv("id", e.flow);
    // Bind continuing/terminating flow points to the ENCLOSING slice (the
    // hop span they were emitted inside), not the next slice to begin.
    if (e.phase != 's') w.kv("bp", "e");
  }
  if (e.arg_name != nullptr) {
    w.key("args");
    w.begin_object();
    w.kv(e.arg_name, e.arg);
    w.end_object();
  }
  w.end_object();
}

void write_metadata(JsonWriter& w, const char* name, std::uint32_t tid,
                    const std::string& value) {
  w.begin_object();
  w.kv("name", name);
  w.kv("ph", "M");
  w.kv("pid", 1);
  w.kv("tid", tid);
  w.key("args");
  w.begin_object();
  w.kv("name", value);
  w.end_object();
  w.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TraceRecorder& recorder,
                        const std::string& process_name) {
  const auto events = recorder.events();
  // Compact output: a trace of a real run is tens of thousands of events,
  // and Perfetto does not care about whitespace.
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  write_metadata(w, "process_name", 0, process_name);
  std::set<std::uint32_t> tids;
  for (const auto& e : events) tids.insert(e.tid);
  for (const std::uint32_t tid : tids)
    write_metadata(w, "thread_name", tid,
                   "worker-" + std::to_string(tid));
  for (const auto& e : events) write_event(w, e);
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.kv("dropped_events", recorder.dropped_events());
  w.kv("recording_threads",
       static_cast<std::uint64_t>(recorder.thread_count()));
  w.end_object();
  w.end_object();
  os << '\n';
}

bool write_chrome_trace_file(const std::string& path,
                             const TraceRecorder& recorder,
                             const std::string& process_name) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "# trace: cannot open " << path << '\n';
    return false;
  }
  write_chrome_trace(out, recorder, process_name);
  return true;
}

}  // namespace overcount

#include "obs/export.hpp"

#include <ostream>

namespace overcount {

void write_json(JsonWriter& w, const Log2Histogram& h) {
  w.begin_object();
  w.kv("count", h.count);
  w.kv("sum", h.sum);
  w.kv("mean", h.mean());
  if (h.empty()) {
    w.key("min");
    w.null();
    w.key("max");
    w.null();
  } else {
    w.kv("min", h.min);
    w.kv("max", h.max);
  }
  w.kv("p50", h.percentile(0.50));
  w.kv("p90", h.percentile(0.90));
  w.kv("p99", h.percentile(0.99));
  w.key("buckets");
  w.begin_array();
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    w.begin_array();
    w.value(Log2Histogram::bucket_lower(i));
    w.value(h.buckets[i]);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

void write_json(JsonWriter& w, const BatchStats& stats) {
  w.begin_object();
  w.kv("tasks", static_cast<std::uint64_t>(stats.tasks));
  w.kv("steps", stats.steps);
  w.kv("wall_s", stats.wall_seconds);
  w.kv("cpu_s", stats.cpu_seconds);
  w.kv("steps_per_s", stats.steps_per_second());
  w.kv("parallel_efficiency", stats.parallel_efficiency());
  w.kv("threads", stats.threads);
  w.end_object();
}

void write_json(JsonWriter& w, const WalkStats& walk) {
  w.begin_object();
  w.kv("walks", walk.walks);
  w.kv("visits", walk.visits);
  w.kv("revisits", walk.revisits);
  w.kv("rejects", walk.rejects);
  w.kv("tours", walk.tours);
  w.kv("completed_tours", walk.completed_tours);
  w.kv("truncated_tours", walk.truncated_tours);
  w.kv("samples", walk.samples);
  w.kv("collisions", walk.collisions);
  w.kv("sojourn_time", walk.sojourn_time);
  w.key("tour_steps");
  write_json(w, walk.tour_steps);
  w.key("sample_hops");
  write_json(w, walk.sample_hops);
  w.key("collision_gaps");
  write_json(w, walk.collision_gaps);
  w.end_object();
}

void write_json(JsonWriter& w, const MetricsSnapshot& snapshot) {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : snapshot.counters) w.kv(name, v);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : snapshot.gauges) w.kv(name, v);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : snapshot.histograms) {
    w.key(name);
    write_json(w, h);
  }
  w.end_object();
  w.end_object();
}

void print_snapshot(std::ostream& os, const MetricsSnapshot& snapshot) {
  for (const auto& [name, v] : snapshot.counters)
    os << name << ' ' << v << '\n';
  for (const auto& [name, v] : snapshot.gauges)
    os << name << ' ' << v << '\n';
  for (const auto& [name, h] : snapshot.histograms) {
    os << name << " count=" << h.count;
    // mean()/percentile() are NaN on an empty histogram (obs/histogram.hpp);
    // print nothing rather than a row of nans.
    if (!h.empty())
      os << " mean=" << h.mean() << " p50=" << h.percentile(0.5)
         << " p90=" << h.percentile(0.9) << " p99=" << h.percentile(0.99)
         << " max=" << h.max;
    os << '\n';
  }
}

}  // namespace overcount

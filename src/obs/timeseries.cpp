#include "obs/timeseries.hpp"

#include <fstream>
#include <iostream>

#include "obs/json.hpp"

namespace overcount {

void write_json(JsonWriter& w, const TimeSeriesRecorder& recorder) {
  w.begin_object();
  w.kv("schema", 1);
  w.kv("kind", recorder.kind());
  // NaN truth renders as JSON null (JsonWriter contract): "no ground truth"
  // round-trips without a sentinel value.
  w.kv("truth", recorder.truth());
  w.key("points");
  w.begin_array();
  for (const auto& p : recorder.points()) {
    w.begin_object();
    w.kv("walks", p.walks);
    w.kv("steps", p.steps);
    w.kv("estimate", p.estimate);
    w.kv("half_width", p.half_width);
    w.kv("wall_s", p.wall_seconds);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

bool write_timeseries_file(const std::string& path,
                           const TimeSeriesRecorder& recorder) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "# timeseries: cannot open " << path << '\n';
    return false;
  }
  JsonWriter w(out);
  write_json(w, recorder);
  out << '\n';
  return true;
}

}  // namespace overcount

// Metrics registry: named counters, gauges and log2 histograms shared by
// concurrent walkers, the DES simulator and the bench harness.
//
// Hot-path writes are lock-free and wait-free in the common case:
//  * Counter increments land on one of kShards cache-line-padded atomic
//    cells picked by a per-thread ordinal, so concurrent walkers on a
//    ParallelRunner pool never contend on the same line; value() merges the
//    shards on read.
//  * Gauge and AtomicHistogram use relaxed atomic RMW (a CAS loop only for
//    the double-add and min/max updates).
// Registration (registry.counter("walk.visits")) takes a mutex, so callers
// are expected to look a metric up once and keep the reference — the
// reference stays valid for the registry's lifetime.
//
// None of this touches any Rng: attaching metrics to a walk, a batch or a
// simulation NEVER changes the random streams, so instrumented runs produce
// bit-identical estimates (tested in tests/obs/).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace overcount {

namespace detail {
/// Small dense id for the calling thread (assigned on first use), used to
/// spread counter increments across shards.
std::size_t this_thread_ordinal() noexcept;
}  // namespace detail

/// Monotone event counter, sharded per thread.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t delta) noexcept {
    shards_[detail::this_thread_ordinal() % kShards].cell.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  /// Sum over all shards (safe to call while writers are active).
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_)
      total += s.cell.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> cell{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-writer-wins double value with an atomic add.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Lock-free log2 histogram; snapshot() converts to the plain accumulator.
class AtomicHistogram {
 public:
  void record(std::uint64_t v) noexcept {
    buckets_[Log2Histogram::bucket_index(v)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_min(v);
    update_max(v);
  }

  /// Merged copy of the current state. Concurrent record() calls may be
  /// partially visible (the snapshot is a consistent-enough read for
  /// monitoring, not a linearisable one).
  Log2Histogram snapshot() const noexcept {
    Log2Histogram out;
    for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i)
      out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    out.count = count_.load(std::memory_order_relaxed);
    out.sum = sum_.load(std::memory_order_relaxed);
    out.min = min_.load(std::memory_order_relaxed);
    out.max = max_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  void update_min(std::uint64_t v) noexcept {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t v) noexcept {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, Log2Histogram::kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ULL};
  std::atomic<std::uint64_t> max_{0};
};

/// Point-in-time copy of a registry, ready for rendering or JSON export.
/// Metric names are sorted, so two snapshots of the same run diff cleanly.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Log2Histogram>> histograms;

  /// Counter value by exact name; 0 when absent.
  std::uint64_t counter_or_zero(const std::string& name) const noexcept;
};

/// Owner of named metrics. Thread-safe; returned references live as long as
/// the registry.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  AtomicHistogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<AtomicHistogram>> histograms_;
};

}  // namespace overcount

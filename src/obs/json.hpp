// Minimal JSON support for the telemetry artifacts — no third-party
// dependencies.
//
// JsonWriter streams a document to an ostream with automatic separators and
// indentation; misuse (a value where a key is required, unbalanced
// end_object) trips a contract check rather than emitting malformed output.
// Doubles are rendered shortest-round-trip via std::to_chars; NaN and
// infinities become null (JSON has no spelling for them).
//
// parse_json is the matching reader: a small recursive-descent parser used
// by the tests to round-trip writer output and by tooling to validate
// emitted BENCH_*.json artifacts. It is strict (no trailing commas, no
// comments) and throws std::runtime_error with an offset on malformed
// input.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace overcount {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included): ", \ and control characters become escape sequences; other
/// bytes (including UTF-8 multibyte sequences) pass through.
std::string json_escape(std::string_view s);

/// Streaming JSON writer with separator/indent bookkeeping.
class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 emits compact single-line JSON.
  explicit JsonWriter(std::ostream& os, int indent = 2);

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Next member's name; must be inside an object.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value(bool v);
  void null();

  /// key() + value() in one call.
  template <typename T>
  void kv(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

 private:
  void before_value();
  void newline_indent();
  void raw(std::string_view text);

  struct Level {
    bool is_array = false;
    bool has_items = false;
  };

  std::ostream* os_;
  int indent_;
  std::vector<Level> stack_;
  bool key_pending_ = false;
};

/// Parsed JSON document.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;
  using Data = std::variant<std::nullptr_t, bool, double, std::string, Array,
                            Object>;

  Data data = nullptr;

  bool is_null() const noexcept;
  bool is_bool() const noexcept;
  bool is_number() const noexcept;
  bool is_string() const noexcept;
  bool is_array() const noexcept;
  bool is_object() const noexcept;

  /// Typed accessors; contract failure when the type does not match.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& k) const;
};

/// Parses one JSON document (whole input must be consumed). Throws
/// std::runtime_error on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace overcount

#include "obs/json.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "util/contracts.hpp"

namespace overcount {

// ---------------------------------------------------------------- escaping

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf;
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ------------------------------------------------------------------ writer

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(&os), indent_(indent) {
  OVERCOUNT_EXPECTS(indent >= 0);
}

void JsonWriter::raw(std::string_view text) { *os_ << text; }

void JsonWriter::newline_indent() {
  if (indent_ == 0) return;
  *os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i)
    *os_ << ' ';
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;  // top-level value
  Level& top = stack_.back();
  if (top.is_array) {
    if (top.has_items) raw(",");
    newline_indent();
  } else {
    // Inside an object a value may only follow its key.
    OVERCOUNT_EXPECTS(key_pending_);
    key_pending_ = false;
  }
  top.has_items = true;
}

void JsonWriter::begin_object() {
  before_value();
  raw("{");
  stack_.push_back({/*is_array=*/false, /*has_items=*/false});
}

void JsonWriter::end_object() {
  OVERCOUNT_EXPECTS(!stack_.empty() && !stack_.back().is_array);
  OVERCOUNT_EXPECTS(!key_pending_);
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  raw("}");
}

void JsonWriter::begin_array() {
  before_value();
  raw("[");
  stack_.push_back({/*is_array=*/true, /*has_items=*/false});
}

void JsonWriter::end_array() {
  OVERCOUNT_EXPECTS(!stack_.empty() && stack_.back().is_array);
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  raw("]");
}

void JsonWriter::key(std::string_view k) {
  OVERCOUNT_EXPECTS(!stack_.empty() && !stack_.back().is_array);
  OVERCOUNT_EXPECTS(!key_pending_);
  if (stack_.back().has_items) raw(",");
  newline_indent();
  *os_ << '"' << json_escape(k) << "\":" << (indent_ > 0 ? " " : "");
  key_pending_ = true;
}

void JsonWriter::value(std::string_view v) {
  before_value();
  *os_ << '"' << json_escape(v) << '"';
}

void JsonWriter::value(double v) {
  if (!std::isfinite(v)) {
    null();
    return;
  }
  before_value();
  std::array<char, 32> buf;
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  raw(std::string_view(buf.data(), static_cast<std::size_t>(res.ptr -
                                                            buf.data())));
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  *os_ << v;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  *os_ << v;
}

void JsonWriter::value(bool v) {
  before_value();
  raw(v ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  raw("null");
}

// ------------------------------------------------------------------ values

bool JsonValue::is_null() const noexcept {
  return std::holds_alternative<std::nullptr_t>(data);
}
bool JsonValue::is_bool() const noexcept {
  return std::holds_alternative<bool>(data);
}
bool JsonValue::is_number() const noexcept {
  return std::holds_alternative<double>(data);
}
bool JsonValue::is_string() const noexcept {
  return std::holds_alternative<std::string>(data);
}
bool JsonValue::is_array() const noexcept {
  return std::holds_alternative<Array>(data);
}
bool JsonValue::is_object() const noexcept {
  return std::holds_alternative<Object>(data);
}

bool JsonValue::as_bool() const {
  OVERCOUNT_EXPECTS(is_bool());
  return std::get<bool>(data);
}
double JsonValue::as_number() const {
  OVERCOUNT_EXPECTS(is_number());
  return std::get<double>(data);
}
const std::string& JsonValue::as_string() const {
  OVERCOUNT_EXPECTS(is_string());
  return std::get<std::string>(data);
}
const JsonValue::Array& JsonValue::as_array() const {
  OVERCOUNT_EXPECTS(is_array());
  return std::get<Array>(data);
}
const JsonValue::Object& JsonValue::as_object() const {
  OVERCOUNT_EXPECTS(is_object());
  return std::get<Object>(data);
}

const JsonValue* JsonValue::find(const std::string& k) const {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<Object>(data);
  const auto it = obj.find(k);
  return it == obj.end() ? nullptr : &it->second;
}

// ------------------------------------------------------------------ parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue{JsonValue::Data{parse_string()}};
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue{JsonValue::Data{true}};
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue{JsonValue::Data{false}};
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{JsonValue::Data{nullptr}};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{JsonValue::Data{std::move(obj)}};
    }
    for (;;) {
      skip_ws();
      std::string k = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(k), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue{JsonValue::Data{std::move(obj)}};
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{JsonValue::Data{std::move(arr)}};
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue{JsonValue::Data{std::move(arr)}};
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9')
        cp |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        fail("bad hex digit in \\u escape");
    }
    return cp;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              fail("unpaired surrogate");
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-')
        ++pos_;
      else
        break;
    }
    double v = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_ ||
        pos_ == start) {
      pos_ = start;
      fail("bad number");
    }
    return JsonValue{JsonValue::Data{v}};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace overcount

// Renderers from the observability data types to JSON (machine-readable
// telemetry) and to plain text (terminal dashboards). These are the
// functions the bench harness uses to emit BENCH_<name>.json artifacts and
// examples use to print live registry snapshots.
#pragma once

#include <iosfwd>

#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "runtime/batch_stats.hpp"

namespace overcount {

/// Histogram summary object: {count, sum, mean, min, max, p50, p90, p99,
/// buckets: [[lower, count], ...]}  (only non-empty buckets listed; empty
/// histogram renders with count 0 and null percentiles).
void write_json(JsonWriter& w, const Log2Histogram& h);

/// BatchStats object: {tasks, steps, wall_s, cpu_s, steps_per_s,
/// parallel_efficiency, threads}.
void write_json(JsonWriter& w, const BatchStats& stats);

/// WalkStats object: the counters plus one histogram summary per recorded
/// distribution (tour_steps, sample_hops, collision_gaps).
void write_json(JsonWriter& w, const WalkStats& walk);

/// Snapshot object: {counters: {...}, gauges: {...}, histograms: {...}}.
void write_json(JsonWriter& w, const MetricsSnapshot& snapshot);

/// Plain-text snapshot dump: one "name value" line per counter/gauge, one
/// summary line per histogram. The live-dashboard rendering used by
/// examples/overlay_monitor.
void print_snapshot(std::ostream& os, const MetricsSnapshot& snapshot);

}  // namespace overcount

// Walk probe hooks: compile-time-optional instrumentation for the random
// walk estimators (core/random_tour, walk/walkers, core/sample_collide,
// walk/metropolis).
//
// Every instrumented walk function takes a trailing probe parameter that
// defaults to NullProbe. NullProbe has `enabled == false` and every hook
// call in the hot loops is guarded by `if constexpr (probe_enabled_v<P>)`,
// so the default instantiation contains NO probe code at all — not even
// argument evaluation — and the uninstrumented hot path is bit-for-bit the
// pre-probe code (bench_micro's BM_RandomTour vs BM_RandomTourProbed
// quantifies the difference).
//
// Probes observe, they never draw: no hook receives the Rng, so attaching
// any probe leaves every random stream — and therefore every estimate —
// unchanged (the determinism tests in tests/obs/ assert this across thread
// counts).
//
// Hook protocol (all node ids passed as uint64 so obs stays independent of
// the graph layer):
//   walk_begin(origin)      one walk (tour / sampling probe) starts
//   on_visit(node)          the walk moved to `node`
//   on_sojourn(dt)          CTRW virtual time actually spent at a node
//   on_reject()             Metropolis proposal rejected (self-loop)
//   on_collision(gap)       S&C collision, `gap` samples after the previous
//   tour_end(steps, done)   Random Tour finished (done = returned to origin)
//   sample_end(hops)        sampling walk delivered a sample
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"

namespace overcount {

/// No-op probe: the default for every instrumented walk.
struct NullProbe {
  static constexpr bool enabled = false;
  void walk_begin(std::uint64_t) noexcept {}
  void on_visit(std::uint64_t) noexcept {}
  void on_sojourn(double) noexcept {}
  void on_reject() noexcept {}
  void on_collision(std::uint64_t) noexcept {}
  void tour_end(std::uint64_t, bool) noexcept {}
  void sample_end(std::uint64_t) noexcept {}
};

template <typename P>
concept WalkProbe = requires(std::remove_cvref_t<P>& p, std::uint64_t n,
                             double t, bool b) {
  { std::remove_cvref_t<P>::enabled } -> std::convertible_to<bool>;
  p.walk_begin(n);
  p.on_visit(n);
  p.on_sojourn(t);
  p.on_reject();
  p.on_collision(n);
  p.tour_end(n, b);
  p.sample_end(n);
};

/// True when hooks of P should be compiled in (guards every call site).
template <typename P>
inline constexpr bool probe_enabled_v = std::remove_cvref_t<P>::enabled;

/// Plain per-task walk statistics: what one WalkStatsProbe accumulates.
/// Mergeable, so a parallel batch folds one WalkStats per task into a batch
/// total in task-index order (doubles go through the runner's tree
/// reduction — see core/parallel.hpp).
struct WalkStats {
  Log2Histogram tour_steps;      ///< per-tour step counts
  Log2Histogram sample_hops;     ///< per-sample hop counts
  Log2Histogram collision_gaps;  ///< samples between successive collisions

  std::uint64_t walks = 0;            ///< walk_begin events
  std::uint64_t visits = 0;           ///< nodes visited (incl. origin)
  std::uint64_t revisits = 0;         ///< visits to a node already seen
                                      ///< within the same walk
  std::uint64_t rejects = 0;          ///< Metropolis rejections
  std::uint64_t tours = 0;            ///< finished tours
  std::uint64_t completed_tours = 0;  ///< tours that returned to the origin
  std::uint64_t truncated_tours = 0;  ///< tours aborted by max_steps
  std::uint64_t samples = 0;          ///< delivered samples
  std::uint64_t collisions = 0;       ///< S&C collisions observed
  double sojourn_time = 0.0;          ///< CTRW virtual time spent, summed

  /// Merges every integer field and histogram, but NOT sojourn_time: the
  /// floating-point fold is the caller's job (deterministic tree reduction
  /// for parallel batches, plain += for serial accumulation).
  void merge_counts(const WalkStats& other) noexcept {
    tour_steps.merge(other.tour_steps);
    sample_hops.merge(other.sample_hops);
    collision_gaps.merge(other.collision_gaps);
    walks += other.walks;
    visits += other.visits;
    revisits += other.revisits;
    rejects += other.rejects;
    tours += other.tours;
    completed_tours += other.completed_tours;
    truncated_tours += other.truncated_tours;
    samples += other.samples;
    collisions += other.collisions;
  }

  /// Full serial merge (counts plus sojourn time, left-to-right).
  void merge(const WalkStats& other) noexcept {
    merge_counts(other);
    sojourn_time += other.sojourn_time;
  }
};

/// Probe that accumulates into a caller-owned WalkStats. Single-threaded by
/// design: parallel batches give each task its own probe and fold the
/// results deterministically afterwards.
class WalkStatsProbe {
 public:
  static constexpr bool enabled = true;

  explicit WalkStatsProbe(WalkStats& out) : out_(&out) {}

  void walk_begin(std::uint64_t origin) {
    seen_.clear();
    seen_.insert(origin);
    ++out_->walks;
    ++out_->visits;
  }
  void on_visit(std::uint64_t node) {
    ++out_->visits;
    if (!seen_.insert(node).second) ++out_->revisits;
  }
  void on_sojourn(double dt) { out_->sojourn_time += dt; }
  void on_reject() { ++out_->rejects; }
  void on_collision(std::uint64_t gap) {
    ++out_->collisions;
    out_->collision_gaps.record(gap);
  }
  void tour_end(std::uint64_t steps, bool completed) {
    ++out_->tours;
    if (completed)
      ++out_->completed_tours;
    else
      ++out_->truncated_tours;
    out_->tour_steps.record(steps);
  }
  void sample_end(std::uint64_t hops) {
    ++out_->samples;
    out_->sample_hops.record(hops);
  }

 private:
  WalkStats* out_;
  std::unordered_set<std::uint64_t> seen_;
};

/// Probe that streams into a shared MetricsRegistry (live monitoring:
/// examples/overlay_monitor, DES-driven protocols). Metric references are
/// resolved once at construction; increments are the registry's lock-free
/// hot path. Revisit tracking is per-probe, so use one probe per logical
/// walker.
class RegistryProbe {
 public:
  static constexpr bool enabled = true;

  explicit RegistryProbe(MetricsRegistry& registry,
                         const std::string& prefix = "walk")
      : walks_(registry.counter(prefix + ".walks")),
        visits_(registry.counter(prefix + ".visits")),
        revisits_(registry.counter(prefix + ".revisits")),
        rejects_(registry.counter(prefix + ".rejects")),
        tours_(registry.counter(prefix + ".tours")),
        truncated_(registry.counter(prefix + ".tours_truncated")),
        samples_(registry.counter(prefix + ".samples")),
        collisions_(registry.counter(prefix + ".collisions")),
        sojourn_(registry.gauge(prefix + ".sojourn_time")),
        tour_steps_(registry.histogram(prefix + ".tour_steps")),
        sample_hops_(registry.histogram(prefix + ".sample_hops")),
        collision_gaps_(registry.histogram(prefix + ".collision_gaps")) {}

  void walk_begin(std::uint64_t origin) {
    seen_.clear();
    seen_.insert(origin);
    walks_.inc();
    visits_.inc();
  }
  void on_visit(std::uint64_t node) {
    visits_.inc();
    if (!seen_.insert(node).second) revisits_.inc();
  }
  void on_sojourn(double dt) { sojourn_.add(dt); }
  void on_reject() { rejects_.inc(); }
  void on_collision(std::uint64_t gap) {
    collisions_.inc();
    collision_gaps_.record(gap);
  }
  void tour_end(std::uint64_t steps, bool completed) {
    tours_.inc();
    if (!completed) truncated_.inc();
    tour_steps_.record(steps);
  }
  void sample_end(std::uint64_t hops) {
    samples_.inc();
    sample_hops_.record(hops);
  }

 private:
  Counter& walks_;
  Counter& visits_;
  Counter& revisits_;
  Counter& rejects_;
  Counter& tours_;
  Counter& truncated_;
  Counter& samples_;
  Counter& collisions_;
  Gauge& sojourn_;
  AtomicHistogram& tour_steps_;
  AtomicHistogram& sample_hops_;
  AtomicHistogram& collision_gaps_;
  std::unordered_set<std::uint64_t> seen_;
};

static_assert(WalkProbe<NullProbe>);
static_assert(WalkProbe<WalkStatsProbe>);
static_assert(WalkProbe<RegistryProbe>);

}  // namespace overcount

// Convergence time series: periodic snapshots of a running estimate.
//
// The paper's guarantees are asymptotic — a Random Tour batch of m tours has
// relative error eps(m) ~ sqrt(2 d_bar / (lambda2 m delta)) (Section 3,
// Chebyshev + Prop. 2) and a Sample & Collide average over k trials of
// accuracy ell has relative standard error ~ 1/sqrt(ell k) (Lemma 2, Fisher
// information I(N) ~ ell/N^2). What a practitioner actually wants to SEE is
// the trajectory: how the estimate approaches the truth as walk steps are
// spent, and whether the observed error stays inside the predicted envelope.
// TimeSeriesRecorder captures that trajectory — one ConvergencePoint per
// recording interval with the running estimate, the theory half-width, the
// cumulative step bill and the wall clock — and timeseries.cpp exports it as
// versioned JSON for scripts/report_convergence.py.
//
// Recording happens BETWEEN batch chunks (core/convergence.hpp), never
// inside a walk, and touches no Rng: a monitored run returns estimates
// bit-identical to the plain batch of the same (seed, m), pinned by
// tests/obs/timeseries_test.cpp.
#pragma once

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace overcount {

/// One snapshot of a converging estimate.
struct ConvergencePoint {
  std::uint64_t walks = 0;      ///< walks (tours / trials) folded in so far
  std::uint64_t steps = 0;      ///< cumulative walk steps / hops spent
  double estimate = 0.0;        ///< running estimate after `walks` walks
  double half_width = 0.0;      ///< predicted relative half-width (NaN if
                                ///< the theory inputs are unknown)
  double wall_seconds = 0.0;    ///< wall time since the recorder started
};

/// Accumulates ConvergencePoints for one monitored run. `kind` names the
/// estimator ("random_tour", "sample_collide", ...); `truth` is the known
/// population size when the experiment has one (NaN otherwise) and is only
/// used for reporting, never by the estimator.
class TimeSeriesRecorder {
 public:
  explicit TimeSeriesRecorder(
      std::string kind = "",
      double truth = std::numeric_limits<double>::quiet_NaN())
      : kind_(std::move(kind)),
        truth_(truth),
        start_(std::chrono::steady_clock::now()) {}

  /// Appends one point, stamping wall time since construction.
  void record(std::uint64_t walks, std::uint64_t steps, double estimate,
              double half_width) {
    points_.push_back(
        {walks, steps, estimate, half_width, elapsed_seconds()});
  }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  const std::string& kind() const noexcept { return kind_; }
  double truth() const noexcept { return truth_; }
  bool has_truth() const noexcept { return truth_ == truth_; }
  const std::vector<ConvergencePoint>& points() const noexcept {
    return points_;
  }
  bool empty() const noexcept { return points_.empty(); }

  /// Index of the first point whose estimate is within `rel_tol` of the
  /// truth AND never leaves that band again — the practical "converged at"
  /// reading of the trajectory. Returns points().size() when the run never
  /// settles (or no truth is known).
  std::size_t settled_at(double rel_tol) const noexcept {
    if (!has_truth() || truth_ == 0.0) return points_.size();
    std::size_t settled = points_.size();
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const double rel =
          std::abs(points_[i].estimate - truth_) / std::abs(truth_);
      if (rel <= rel_tol) {
        if (settled == points_.size()) settled = i;
      } else {
        settled = points_.size();
      }
    }
    return settled;
  }

 private:
  std::string kind_;
  double truth_;
  std::chrono::steady_clock::time_point start_;
  std::vector<ConvergencePoint> points_;
};

class JsonWriter;

/// Versioned JSON object for one recorded trajectory:
/// {schema: 1, kind, truth (null when unknown), points: [{walks, steps,
/// estimate, half_width, wall_s}, ...]}. Consumed by
/// scripts/report_convergence.py.
void write_json(JsonWriter& w, const TimeSeriesRecorder& recorder);

/// write_json into `path`; returns false (with a stderr note) when the file
/// cannot be opened.
bool write_timeseries_file(const std::string& path,
                           const TimeSeriesRecorder& recorder);

}  // namespace overcount

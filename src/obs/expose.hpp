// Live metrics exposition: Prometheus text format rendering plus a
// dependency-free blocking HTTP server for scraping a MetricsRegistry.
//
// The paper's estimators are built for LIVE overlays — a monitor watching a
// running network wants the current walk counters without stopping the run.
// MetricsHttpServer serves exactly that: GET /metrics renders a registry
// snapshot in the Prometheus text exposition format (counters as *_total,
// log2 histograms as cumulative le-buckets), GET /snapshot.json returns the
// same snapshot as the obs/export JSON object, and GET /healthz answers a
// liveness probe. The server binds 127.0.0.1 only and handles one request
// per connection — it is a scrape target, not a web framework.
//
// Snapshots are taken with MetricsRegistry::snapshot(), which is safe while
// walkers are writing (obs/metrics.hpp); serving never touches any Rng, so a
// scraped run produces bit-identical estimates.
//
// Opt-in wiring: maybe_serve_metrics(registry) starts a server when the
// OVERCOUNT_METRICS_PORT environment variable is a valid port (0 picks an
// ephemeral port; the bound port is printed to stderr), and returns nullptr
// otherwise. Long-running examples call this once at startup.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace overcount {

class CostLedger;

/// Renders a snapshot in the Prometheus text exposition format (version
/// 0.0.4). Metric names are sanitised to [a-zA-Z0-9_:] (dots become
/// underscores); counters get a `_total` suffix; histograms render as
/// cumulative `_bucket{le="..."}` lines over the non-empty prefix of the
/// log2 buckets plus the mandatory `+Inf` bucket, `_sum` and `_count`.
std::string render_prometheus(const MetricsSnapshot& snapshot);

/// `name` mapped into the Prometheus metric-name alphabet.
std::string prometheus_name(const std::string& name);

/// Minimal blocking HTTP/1.1 server exposing one MetricsRegistry. Routes:
///   GET /metrics        text/plain; version=0.0.4  (render_prometheus)
///   GET /snapshot.json  application/json           (obs/export write_json)
///   GET /costs          application/json — per-(tenant, query) cost
///                       attribution (obs/cost write_costs_json) when a
///                       ledger is attached via set_cost_ledger; accepts
///                       ?k=N for the top-K depth (default 10). 404 when
///                       no ledger is attached.
///   GET /healthz        "ok" — liveness: the serving thread is up
///   GET /readyz         readiness: 200 "ready" when the ready check (see
///                       set_ready_check) passes, 503 "warming" otherwise.
///                       Distinct from /healthz so a warming process (e.g.
///                       an estimate server with an empty cache) reports
///                       "loaded but not yet serving" without being killed
///                       by a liveness probe.
/// Anything else answers 404. One serving thread, one request per
/// connection; stop() (and the destructor) joins the thread within one
/// poll interval (~100 ms). Slow or misbehaving clients cannot wedge or
/// kill the server: requests are read with a bounded poll deadline, writes
/// retry on EINTR and partial sends, and every send uses MSG_NOSIGNAL so a
/// client that closes mid-response never raises SIGPIPE.
///
/// Every response carries `Cache-Control: no-store` — each GET is a live
/// snapshot, and a cached /metrics or /costs body silently freezes every
/// dashboard reading it — and every text/JSON Content-Type declares an
/// explicit charset (tests/obs/expose_test.cpp audits both on all routes).
class MetricsHttpServer {
 public:
  /// Binds 127.0.0.1:`port` (port 0 = ephemeral) and starts serving.
  /// Throws std::runtime_error when the socket cannot be bound.
  MetricsHttpServer(const MetricsRegistry& registry, std::uint16_t port);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Installs the /readyz predicate. Called from the serving thread on
  /// every /readyz request, so it must be thread-safe and cheap. Without
  /// one installed, /readyz answers ready (a server with nothing to warm
  /// is ready by definition). Install before exposing the port to probes;
  /// the handler snapshots the callback under a lock, so replacing it
  /// while serving is safe.
  void set_ready_check(std::function<bool()> ready);

  /// Attaches (or detaches, with nullptr) the cost ledger behind GET
  /// /costs. The ledger must outlive the server or the detach. Snapshots
  /// are taken with CostLedger::snapshot(), which is safe while walkers
  /// are charging.
  void set_cost_ledger(const CostLedger* ledger) noexcept {
    cost_ledger_.store(ledger, std::memory_order_release);
  }

  /// The actually bound port (differs from the constructor argument when
  /// that was 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting and joins the serving thread. Idempotent.
  void stop();

  /// Requests served so far (any route).
  std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int client_fd);

  const MetricsRegistry& registry_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
  std::mutex ready_mutex_;
  std::function<bool()> ready_check_;  // guarded by ready_mutex_
  std::atomic<const CostLedger*> cost_ledger_{nullptr};
  std::thread thread_;
};

/// Starts a MetricsHttpServer when OVERCOUNT_METRICS_PORT names a valid
/// port, printing the endpoint to stderr; returns nullptr when the variable
/// is unset, empty, or unparsable (with a stderr note when malformed).
std::unique_ptr<MetricsHttpServer> maybe_serve_metrics(
    const MetricsRegistry& registry);

/// One-shot HTTP GET against 127.0.0.1:`port` returning the response BODY
/// (status line and headers stripped), or an empty string on any error.
/// This is the client side used by examples/overlay_monitor to poll its own
/// endpoint and by tests; it speaks just enough HTTP/1.0 for that. When
/// `status_out` is non-null it receives the numeric status code (0 on
/// transport error), so callers can tell a 503 /readyz "warming" apart
/// from a 200.
std::string http_get_body(std::uint16_t port, const std::string& path,
                          int* status_out = nullptr);

/// Like http_get_body, but returns the RAW response — status line and
/// headers included — so tests can audit what the server actually sends
/// (Content-Type charsets, Cache-Control) instead of only the payload.
/// Empty string on any transport error.
std::string http_get_response(std::uint16_t port, const std::string& path);

}  // namespace overcount

#include "obs/metrics.hpp"

namespace overcount {

namespace detail {

std::size_t this_thread_ordinal() noexcept {
  static std::atomic<std::size_t> next{0};
  static thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

}  // namespace detail

namespace {

template <typename T>
T& find_or_create(std::map<std::string, std::unique_ptr<T>>& metrics,
                  const std::string& name, std::mutex& mutex) {
  std::lock_guard lock(mutex);
  auto& slot = metrics[name];
  if (!slot) slot = std::make_unique<T>();
  return *slot;
}

}  // namespace

std::uint64_t MetricsSnapshot::counter_or_zero(
    const std::string& name) const noexcept {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return find_or_create(counters_, name, mutex_);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return find_or_create(gauges_, name, mutex_);
}

AtomicHistogram& MetricsRegistry::histogram(const std::string& name) {
  return find_or_create(histograms_, name, mutex_);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    out.counters.emplace_back(name, c->value());
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    out.gauges.emplace_back(name, g->value());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    out.histograms.emplace_back(name, h->snapshot());
  return out;
}

}  // namespace overcount

// Per-query cost attribution: who burned those 40M walk steps?
//
// The paper prices its estimators in walk steps, and the distributed-walk
// line (Das Sarma et al.) treats messages — our shard handoffs — as THE
// cost metric. CostLedger makes both first-class per (tenant, query): the
// serve broker opens one QueryContext per admitted query, the context id
// rides every layer underneath (Waiter -> PendingBatch -> CostScope ->
// WalkToken.ctx across shard handoffs), and every charge site attributes
// walk steps, handoffs, stitched segments, cache hits/misses, queue wait
// and thread-CPU slices to exactly one context.
//
// Concurrency model mirrors obs/metrics.hpp: charges land on one of
// kShards cache-line-padded relaxed atomic cells picked by the caller's
// thread ordinal — lock-free, wait-free, contention-free across a
// ParallelRunner pool. Reads (snapshot/totals) fold the shards in a fixed
// order: context id ascending, shard index ascending, field index
// ascending — so two folds of a quiesced ledger are byte-identical.
//
// Bit-identity contract (the same one trace.hpp and health.hpp keep): a
// ledger NEVER touches any Rng and charge sites never branch on ledger
// state in a way that alters walk behaviour, so cost-instrumented runs
// produce bit-identical estimates. With OVERCOUNT_COST=OFF every hook
// below (cost_active / CostScope / cost_charge*) compiles to nothing; the
// CostLedger class itself stays available so servers and tests link
// unchanged.
#pragma once

#ifndef OVERCOUNT_COST_ENABLED
#define OVERCOUNT_COST_ENABLED 1
#endif

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace overcount {

class JsonWriter;

/// Everything a charge is attributed to. Plain strings on purpose: obs
/// sits below serve in the library DAG, so the broker renders its enums
/// (QueryKind, EstimateMethod, SLO class) to text at open() time.
struct QueryContext {
  std::string tenant;     ///< accounting principal ("" folds to "anonymous")
  std::uint64_t query_id = 0;  ///< broker-assigned, monotone per service
  std::string kind;       ///< estimator target, e.g. "size"
  std::string method;     ///< estimator method, e.g. "random_tour"
  std::string slo_class;  ///< "<kind>.<method>.<deadline|besteffort>"
};

/// What a charge pays for. Values index the per-context accumulator cells;
/// names match the cost.* metric families the ledger mirrors into its
/// registry.
enum class CostField : std::uint8_t {
  kSteps = 0,        ///< walk steps (the paper's price unit)
  kWalks,            ///< tours / samples / trials completed
  kHandoffs,         ///< shard migrations (Das Sarma message cost)
  kStitches,         ///< stitched tour segments
  kStitchSteps,      ///< steps inside stitched segments
  kTokens,           ///< walk tokens thawed (conservation cross-check)
  kCacheHits,
  kCacheMisses,
  kCoalesced,        ///< waiters that rode an existing batch
  kQueueWaitUs,      ///< admission -> dispatch wall time
  kCpuUs,            ///< thread-CPU consumed by the batch kernels
  kBatches,
  kRejected,         ///< load-shed at admission
  kDeadlineMisses,
  kFailures,
  kCount             // sentinel
};

inline constexpr std::size_t kCostFieldCount =
    static_cast<std::size_t>(CostField::kCount);

/// Metric-family suffix for a field ("steps", "queue_wait_us", ...).
const char* cost_field_name(CostField f) noexcept;

/// One folded row of the ledger: a context plus its field totals.
struct CostRecord {
  std::uint32_t ctx = 0;  ///< 0 is the reserved "unattributed" context
  QueryContext context;
  std::array<std::uint64_t, kCostFieldCount> v{};

  std::uint64_t get(CostField f) const noexcept {
    return v[static_cast<std::size_t>(f)];
  }
  std::uint64_t steps() const noexcept { return get(CostField::kSteps); }
  std::uint64_t handoffs() const noexcept { return get(CostField::kHandoffs); }
  std::uint64_t cpu_us() const noexcept { return get(CostField::kCpuUs); }
};

/// The ledger. One per process is typical (install()/active(), same
/// pattern as TraceRecorder / HealthCenter), but instances work standalone
/// for tests. Context 0 always exists and absorbs charges made outside any
/// CostScope — the "unattributed residue" the reconciliation tests pin to
/// zero.
class CostLedger {
 public:
  static constexpr std::size_t kShards = 8;

  /// `metrics` (optional) receives mirrored global cost.* families on
  /// every charge: cost.steps, cost.handoffs, cost.cpu_us, ... plus the
  /// cost.contexts gauge and the cost.dropped_contexts counter.
  explicit CostLedger(MetricsRegistry* metrics = nullptr);
  ~CostLedger();

  CostLedger(const CostLedger&) = delete;
  CostLedger& operator=(const CostLedger&) = delete;

  /// Makes this the process-wide ledger the cost_* hooks charge.
  void install() noexcept;
  /// Detaches (only if this instance is installed).
  void uninstall() noexcept;
  static CostLedger* active() noexcept;

  /// Registers a context and returns its id (>= 1). Lock only here — the
  /// charge path never takes it. When the table is full the charge falls
  /// back to context 0 and cost.dropped_contexts counts the loss.
  std::uint32_t open(QueryContext context);

  /// Lock-free, wait-free charge of `delta` units of `f` to `ctx`.
  /// Unknown/overflowed ids charge context 0 rather than dropping.
  void charge(std::uint32_t ctx, CostField f, std::uint64_t delta) noexcept;

  /// Contexts opened so far (including the reserved context 0).
  std::size_t contexts() const noexcept;
  std::uint64_t dropped_contexts() const noexcept;

  /// Copy of a context's identity; nullopt for out-of-range ids.
  std::optional<QueryContext> context(std::uint32_t ctx) const;

  /// Deterministic fold: rows ordered by context id, each row's fields
  /// summed shard 0..kShards-1. Safe while writers are active (relaxed
  /// reads); byte-stable once they quiesce.
  std::vector<CostRecord> snapshot() const;

  /// Fold of ONE context (same order); id out of range returns zeros.
  CostRecord fold(std::uint32_t ctx) const;

  /// Grand total over every context including context 0.
  CostRecord totals() const;

  /// Context 0's row: charges that escaped attribution.
  CostRecord unattributed() const { return fold(0); }

 private:
  struct alignas(64) Cell {
    std::array<std::atomic<std::uint64_t>, kCostFieldCount> v{};
  };
  struct Slot {
    QueryContext info;
    std::array<Cell, kShards> cells{};
  };
  // Stable-pointer growth: fixed array of lazily allocated slabs, so a
  // charge can navigate to its Slot with two relaxed/acquire loads and no
  // lock while open() appends behind the mutex.
  static constexpr std::size_t kSlabBits = 8;                 // 256 slots
  static constexpr std::size_t kSlabSize = 1u << kSlabBits;
  static constexpr std::size_t kMaxSlabs = 64;                // 16384 ctxs
  struct Slab {
    std::array<Slot, kSlabSize> slots{};
  };

  Slot* slot(std::uint32_t ctx) const noexcept;

  std::array<std::atomic<Slab*>, kMaxSlabs> slabs_{};
  std::atomic<std::uint32_t> count_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::mutex open_mutex_;

  MetricsRegistry* metrics_ = nullptr;
  std::array<Counter*, kCostFieldCount> mirror_{};
  Counter* dropped_m_ = nullptr;
  Gauge* contexts_m_ = nullptr;
};

/// Writes the /costs JSON document: ledger totals plus top-K tenants and
/// queries ranked by steps, handoffs and cpu_us, each with absolute value,
/// share of total and cumulative share.
void write_costs_json(JsonWriter& w, const CostLedger& ledger, std::size_t k);

// ---------------------------------------------------------------------------
// Hook layer. Everything below compiles away under OVERCOUNT_COST=OFF.
// ---------------------------------------------------------------------------

#if OVERCOUNT_COST_ENABLED

namespace detail {
inline std::uint32_t& cost_current_ref() noexcept {
  thread_local std::uint32_t ctx = 0;
  return ctx;
}
}  // namespace detail

/// True when a ledger is installed (one relaxed atomic load).
inline bool cost_active() noexcept { return CostLedger::active() != nullptr; }

/// The calling thread's current context id (0 outside any CostScope).
inline std::uint32_t cost_current() noexcept {
  return detail::cost_current_ref();
}

/// Charges to an explicit context (e.g. the id ridden in a WalkToken).
inline void cost_charge_ctx(std::uint32_t ctx, CostField f,
                            std::uint64_t delta) noexcept {
  if (delta == 0) return;
  if (CostLedger* ledger = CostLedger::active()) ledger->charge(ctx, f, delta);
}

/// Charges to the calling thread's current context.
inline void cost_charge(CostField f, std::uint64_t delta) noexcept {
  cost_charge_ctx(detail::cost_current_ref(), f, delta);
}

/// Batch-kernel epilogue: one call charges a finished batch's steps, walks
/// and thread-CPU slice to the current context. Called once per batch —
/// never inside a walk's step loop.
inline void cost_charge_batch(std::uint64_t steps, std::uint64_t walks,
                              double cpu_seconds) noexcept {
  CostLedger* ledger = CostLedger::active();
  if (ledger == nullptr) return;
  const std::uint32_t ctx = detail::cost_current_ref();
  if (steps != 0) ledger->charge(ctx, CostField::kSteps, steps);
  if (walks != 0) ledger->charge(ctx, CostField::kWalks, walks);
  const auto cpu_us = static_cast<std::uint64_t>(cpu_seconds * 1e6);
  if (cpu_us != 0) ledger->charge(ctx, CostField::kCpuUs, cpu_us);
}

/// RAII: makes `ctx` the calling thread's current context for the scope of
/// a batch dispatch. Nests (restores the previous id on exit).
class CostScope {
 public:
  explicit CostScope(std::uint32_t ctx) noexcept
      : prev_(detail::cost_current_ref()) {
    detail::cost_current_ref() = ctx;
  }
  ~CostScope() { detail::cost_current_ref() = prev_; }
  CostScope(const CostScope&) = delete;
  CostScope& operator=(const CostScope&) = delete;

 private:
  std::uint32_t prev_;
};

#else  // !OVERCOUNT_COST_ENABLED

inline constexpr bool cost_active() noexcept { return false; }
inline constexpr std::uint32_t cost_current() noexcept { return 0; }
inline void cost_charge_ctx(std::uint32_t, CostField, std::uint64_t) noexcept {
}
inline void cost_charge(CostField, std::uint64_t) noexcept {}
inline void cost_charge_batch(std::uint64_t, std::uint64_t, double) noexcept {}

class CostScope {
 public:
  explicit CostScope(std::uint32_t) noexcept {}
};

#endif  // OVERCOUNT_COST_ENABLED

}  // namespace overcount

#include "obs/cost/cost.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "obs/json.hpp"
#include "util/contracts.hpp"

namespace overcount {

namespace {

std::atomic<CostLedger*>& active_slot() noexcept {
  static std::atomic<CostLedger*> slot{nullptr};
  return slot;
}

constexpr const char* kFieldNames[kCostFieldCount] = {
    "steps",        "walks",     "handoffs",     "stitches",
    "stitch_steps", "tokens",    "cache_hits",   "cache_misses",
    "coalesced",    "queue_wait_us", "cpu_us",   "batches",
    "rejected",     "deadline_misses", "failures",
};

}  // namespace

const char* cost_field_name(CostField f) noexcept {
  const auto i = static_cast<std::size_t>(f);
  OVERCOUNT_EXPECTS(i < kCostFieldCount);
  return kFieldNames[i];
}

CostLedger::CostLedger(MetricsRegistry* metrics) : metrics_(metrics) {
  if (metrics_ != nullptr) {
    for (std::size_t i = 0; i < kCostFieldCount; ++i)
      mirror_[i] = &metrics_->counter(
          std::string("cost.") + kFieldNames[i]);
    dropped_m_ = &metrics_->counter("cost.dropped_contexts");
    contexts_m_ = &metrics_->gauge("cost.contexts");
  }
  // Context 0 — the unattributed sink — always exists, so charge() never
  // has to drop on the floor.
  auto* slab = new Slab();
  slab->slots[0].info.tenant = "(unattributed)";
  slabs_[0].store(slab, std::memory_order_release);
  count_.store(1, std::memory_order_release);
  if (contexts_m_ != nullptr) contexts_m_->set(1.0);
}

CostLedger::~CostLedger() {
  CostLedger* self = this;
  active_slot().compare_exchange_strong(self, nullptr,
                                        std::memory_order_acq_rel);
  for (auto& s : slabs_) delete s.load(std::memory_order_acquire);
}

void CostLedger::install() noexcept {
  active_slot().store(this, std::memory_order_release);
}

void CostLedger::uninstall() noexcept {
  CostLedger* self = this;
  active_slot().compare_exchange_strong(self, nullptr,
                                        std::memory_order_acq_rel);
}

CostLedger* CostLedger::active() noexcept {
  return active_slot().load(std::memory_order_acquire);
}

std::uint32_t CostLedger::open(QueryContext context) {
  const std::lock_guard<std::mutex> lock(open_mutex_);
  const std::uint32_t id = count_.load(std::memory_order_relaxed);
  if (id >= kMaxSlabs * kSlabSize) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (dropped_m_ != nullptr) dropped_m_->inc();
    return 0;  // table full: the query will charge the unattributed sink
  }
  const std::size_t slab_idx = id >> kSlabBits;
  Slab* slab = slabs_[slab_idx].load(std::memory_order_acquire);
  if (slab == nullptr) {
    slab = new Slab();
    slabs_[slab_idx].store(slab, std::memory_order_release);
  }
  if (context.tenant.empty()) context.tenant = "anonymous";
  slab->slots[id & (kSlabSize - 1)].info = std::move(context);
  // Publish AFTER the slot is fully written: charge() treats ids >= count_
  // as unattributed, so a racing charge can never read a half-built slot.
  count_.store(id + 1, std::memory_order_release);
  if (contexts_m_ != nullptr) contexts_m_->set(static_cast<double>(id + 1));
  return id;
}

CostLedger::Slot* CostLedger::slot(std::uint32_t ctx) const noexcept {
  Slab* slab = slabs_[ctx >> kSlabBits].load(std::memory_order_acquire);
  if (slab == nullptr) return nullptr;
  return const_cast<Slot*>(&slab->slots[ctx & (kSlabSize - 1)]);
}

void CostLedger::charge(std::uint32_t ctx, CostField f,
                        std::uint64_t delta) noexcept {
  if (ctx >= count_.load(std::memory_order_acquire)) ctx = 0;
  Slot* s = slot(ctx);
  if (s == nullptr) return;  // unreachable: slab 0 exists from construction
  const std::size_t shard = detail::this_thread_ordinal() % kShards;
  const auto field = static_cast<std::size_t>(f);
  s->cells[shard].v[field].fetch_add(delta, std::memory_order_relaxed);
  if (mirror_[field] != nullptr) mirror_[field]->add(delta);
}

std::size_t CostLedger::contexts() const noexcept {
  return count_.load(std::memory_order_acquire);
}

std::uint64_t CostLedger::dropped_contexts() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

std::optional<QueryContext> CostLedger::context(std::uint32_t ctx) const {
  if (ctx >= count_.load(std::memory_order_acquire)) return std::nullopt;
  const Slot* s = slot(ctx);
  if (s == nullptr) return std::nullopt;
  return s->info;
}

CostRecord CostLedger::fold(std::uint32_t ctx) const {
  CostRecord out;
  out.ctx = ctx;
  if (ctx >= count_.load(std::memory_order_acquire)) return out;
  const Slot* s = slot(ctx);
  if (s == nullptr) return out;
  out.context = s->info;
  // Deterministic fold order: shard index ascending, field index ascending.
  for (std::size_t shard = 0; shard < kShards; ++shard)
    for (std::size_t f = 0; f < kCostFieldCount; ++f)
      out.v[f] += s->cells[shard].v[f].load(std::memory_order_relaxed);
  return out;
}

std::vector<CostRecord> CostLedger::snapshot() const {
  const std::uint32_t n = count_.load(std::memory_order_acquire);
  std::vector<CostRecord> out;
  out.reserve(n);
  for (std::uint32_t ctx = 0; ctx < n; ++ctx) out.push_back(fold(ctx));
  return out;
}

CostRecord CostLedger::totals() const {
  CostRecord total;
  total.context.tenant = "(total)";
  for (const CostRecord& r : snapshot())
    for (std::size_t f = 0; f < kCostFieldCount; ++f) total.v[f] += r.v[f];
  return total;
}

namespace {

constexpr CostField kRankFields[] = {CostField::kSteps, CostField::kHandoffs,
                                     CostField::kCpuUs};

void write_fields(JsonWriter& w, const std::array<std::uint64_t,
                                                  kCostFieldCount>& v) {
  for (std::size_t f = 0; f < kCostFieldCount; ++f)
    w.kv(kFieldNames[f], v[f]);
}

/// Emits one "by_<metric>" ranking array: rows sorted by v[metric]
/// descending (name ascending on ties, so the order is total), truncated
/// to k, each with its share and the running cumulative share of the
/// metric's grand total.
template <typename Row, typename NameOf, typename WriteRow>
void write_ranking(JsonWriter& w, std::vector<Row> rows, CostField metric,
                   std::size_t k, std::uint64_t grand_total,
                   const NameOf& name_of, const WriteRow& write_row) {
  const auto mi = static_cast<std::size_t>(metric);
  std::stable_sort(rows.begin(), rows.end(),
                   [&](const Row& a, const Row& b) {
                     if (a.v[mi] != b.v[mi]) return a.v[mi] > b.v[mi];
                     return name_of(a) < name_of(b);
                   });
  if (rows.size() > k) rows.resize(k);
  w.key(std::string("by_") + kFieldNames[mi]);
  w.begin_array();
  std::uint64_t cum = 0;
  for (const Row& r : rows) {
    if (r.v[mi] == 0) break;  // rankings list spenders, not zeros
    cum += r.v[mi];
    const double denom =
        grand_total == 0 ? 1.0 : static_cast<double>(grand_total);
    w.begin_object();
    write_row(r);
    w.kv("share", static_cast<double>(r.v[mi]) / denom);
    w.kv("cum_share", static_cast<double>(cum) / denom);
    w.end_object();
  }
  w.end_array();
}

struct TenantRow {
  std::string tenant;
  std::array<std::uint64_t, kCostFieldCount> v{};
};

}  // namespace

void write_costs_json(JsonWriter& w, const CostLedger& ledger,
                      std::size_t k) {
  const std::vector<CostRecord> rows = ledger.snapshot();
  CostRecord total;
  for (const CostRecord& r : rows)
    for (std::size_t f = 0; f < kCostFieldCount; ++f) total.v[f] += r.v[f];

  // (tenant -> folded fields), context 0 under its "(unattributed)" name.
  std::map<std::string, TenantRow> tenants;
  for (const CostRecord& r : rows) {
    TenantRow& t = tenants[r.context.tenant];
    t.tenant = r.context.tenant;
    for (std::size_t f = 0; f < kCostFieldCount; ++f) t.v[f] += r.v[f];
  }
  std::vector<TenantRow> tenant_rows;
  tenant_rows.reserve(tenants.size());
  for (auto& [name, row] : tenants) tenant_rows.push_back(std::move(row));

  w.begin_object();
  w.kv("schema", 1);
  w.kv("contexts", static_cast<std::uint64_t>(ledger.contexts()));
  w.kv("dropped_contexts", ledger.dropped_contexts());
  w.kv("k", static_cast<std::uint64_t>(k));

  w.key("totals");
  w.begin_object();
  write_fields(w, total.v);
  w.end_object();

  w.key("unattributed");
  w.begin_object();
  write_fields(w, ledger.unattributed().v);
  w.end_object();

  // Every open context with its identity (no counters): the join table a
  // profile consumer (scripts/flamegraph.py) uses to turn the raw ctx ids
  // riding trace spans into tenant/query frames.
  w.key("context_table");
  w.begin_array();
  for (const CostRecord& r : rows) {
    w.begin_object();
    w.kv("ctx", static_cast<std::uint64_t>(r.ctx));
    w.kv("tenant", r.context.tenant);
    w.kv("query_id", r.context.query_id);
    w.kv("kind", r.context.kind);
    w.kv("method", r.context.method);
    w.kv("slo_class", r.context.slo_class);
    w.end_object();
  }
  w.end_array();

  w.key("top_tenants");
  w.begin_object();
  for (CostField metric : kRankFields) {
    write_ranking(
        w, tenant_rows, metric, k,
        total.v[static_cast<std::size_t>(metric)],
        [](const TenantRow& t) { return t.tenant; },
        [&](const TenantRow& t) {
          w.kv("tenant", t.tenant);
          write_fields(w, t.v);
        });
  }
  w.end_object();

  // Per-query rankings skip the unattributed sink: it is not a query.
  std::vector<CostRecord> query_rows(rows.begin() + (rows.empty() ? 0 : 1),
                                     rows.end());
  w.key("top_queries");
  w.begin_object();
  for (CostField metric : kRankFields) {
    write_ranking(
        w, query_rows, metric, k,
        total.v[static_cast<std::size_t>(metric)],
        [](const CostRecord& r) {
          return std::make_tuple(r.context.tenant, r.context.query_id);
        },
        [&](const CostRecord& r) {
          w.kv("tenant", r.context.tenant);
          w.kv("query_id", r.context.query_id);
          w.kv("kind", r.context.kind);
          w.kv("method", r.context.method);
          w.kv("slo_class", r.context.slo_class);
          write_fields(w, r.v);
        });
  }
  w.end_object();
  w.end_object();
}

}  // namespace overcount

#include "obs/cost/flame.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/cost/cost.hpp"

namespace overcount {

namespace {

bool is_cost_ctx_arg(const TraceEvent& e) noexcept {
  return e.arg_name != nullptr && e.arg != 0 &&
         std::strcmp(e.arg_name, "cost_ctx") == 0;
}

/// "tenant=<t>;query=<id>" for a resolvable context, "ctx=<id>" otherwise.
/// Frame separators (';') and the value separator (' ') inside a tenant
/// name would corrupt the collapsed format, so they are replaced.
std::string attribution_frames(std::uint64_t ctx, const CostLedger* ledger) {
  if (ledger != nullptr) {
    if (auto info = ledger->context(static_cast<std::uint32_t>(ctx))) {
      std::string tenant = info->tenant;
      for (char& c : tenant)
        if (c == ';' || c == ' ') c = '_';
      return "tenant=" + tenant + ";query=" + std::to_string(info->query_id);
    }
  }
  return "ctx=" + std::to_string(ctx);
}

struct Open {
  std::string path;            ///< full stack down to and including this span
  std::uint64_t end_us = 0;    ///< ts + dur
  std::uint64_t dur_us = 0;
  std::uint64_t child_us = 0;  ///< time covered by nested spans
};

void close_one(std::map<std::string, std::uint64_t>& folded, const Open& o) {
  const std::uint64_t exclusive =
      o.dur_us > o.child_us ? o.dur_us - o.child_us : 0;
  if (exclusive > 0) folded[o.path] += exclusive;
}

}  // namespace

std::string fold_collapsed_stacks(const TraceRecorder& recorder,
                                  const CostLedger* ledger) {
  // Per-thread lists of complete spans, ordered so a parent precedes its
  // children: start ascending, then duration DESCENDING (the longer of two
  // spans opening at the same microsecond encloses the shorter).
  std::map<std::uint32_t, std::vector<TraceEvent>> by_tid;
  for (const TraceEvent& e : recorder.events())
    if (e.phase == 'X') by_tid[e.tid].push_back(e);

  std::map<std::string, std::uint64_t> folded;
  for (auto& [tid, spans] : by_tid) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                       return a.dur_us > b.dur_us;
                     });
    std::vector<Open> stack;
    for (const TraceEvent& e : spans) {
      while (!stack.empty() && stack.back().end_us <= e.ts_us) {
        close_one(folded, stack.back());
        stack.pop_back();
      }
      const char* name = e.name != nullptr ? e.name : "?";
      std::string frame = is_cost_ctx_arg(e)
                              ? attribution_frames(e.arg, ledger) + ";" + name
                              : std::string(name);
      Open o;
      o.path = stack.empty() ? std::move(frame)
                             : stack.back().path + ";" + frame;
      o.end_us = e.ts_us + e.dur_us;
      o.dur_us = e.dur_us;
      if (!stack.empty()) stack.back().child_us += e.dur_us;
      stack.push_back(std::move(o));
    }
    while (!stack.empty()) {
      close_one(folded, stack.back());
      stack.pop_back();
    }
  }

  std::ostringstream os;
  for (const auto& [path, us] : folded) os << path << ' ' << us << '\n';
  return os.str();
}

bool write_collapsed_file(const std::string& path,
                          const TraceRecorder& recorder,
                          const CostLedger* ledger) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "overcount: cannot open " << path << " for writing\n";
    return false;
  }
  os << fold_collapsed_stacks(recorder, ledger);
  return static_cast<bool>(os);
}

}  // namespace overcount

// Collapsed-stack (flamegraph) export of TraceRecorder spans, attributed
// by query context.
//
// The tracer already records where wall time went as Chrome 'X' spans; a
// flamegraph is the aggregate view of the same data: one line per distinct
// span stack, weighted by EXCLUSIVE microseconds (a parent's self time,
// its children's time subtracted). The folder rebuilds each thread's span
// nesting from (ts, dur) intervals — children sort after their parents at
// equal start because longer spans open first — and merges identical
// stacks across threads.
//
// Attribution: a span whose argument key is "cost_ctx" (the serve broker
// and the sharded engine both emit one around every batch) scopes its
// whole subtree to that CostLedger context; the folder splices
// "tenant=<t>;query=<id>" frames in at that point, so the flamegraph
// answers "who's eating my cluster" the same way /costs does. Context 0
// and spans outside any cost.ctx span fold unprefixed.
//
// Output is the de-facto collapsed format consumed by flamegraph.pl,
// speedscope and inferno: `frame;frame;frame <count>\n`, lines sorted, so
// two folds of the same trace are byte-identical.
#pragma once

#include <string>

#include "obs/trace.hpp"

namespace overcount {

class CostLedger;

/// Folds `recorder`'s complete spans into collapsed-stack text. `ledger`
/// (optional) resolves context ids to tenant/query names; without it the
/// attribution frame is "ctx=<id>". Call only when tracing has quiesced
/// (same contract as TraceRecorder::events()).
std::string fold_collapsed_stacks(const TraceRecorder& recorder,
                                  const CostLedger* ledger = nullptr);

/// fold_collapsed_stacks into `path`; returns false (with a stderr note)
/// when the file cannot be opened.
bool write_collapsed_file(const std::string& path,
                          const TraceRecorder& recorder,
                          const CostLedger* ledger = nullptr);

}  // namespace overcount

// Flight recorder: one-call post-mortem capture. When a watchdog trips, an
// SLO budget burns out, or the process takes a fatal signal, dump() writes a
// self-contained bundle directory under OVERCOUNT_FLIGHT_DIR:
//
//   flight-<seq>-<reason>/
//     manifest.json          {schema, git_rev, bench_schema, reason, ts_us,
//                             seq, files}
//     metrics.json           full MetricsRegistry snapshot (obs/export.hpp)
//     trace.json             the TraceRecorder ring as Chrome/Perfetto JSON
//     health_events.jsonl    last N HealthEvents, one JSON object per line
//     timeseries_<kind>.json recent TimeSeriesRecorder windows
//     costs.json             per-(tenant, query) cost attribution when a
//                            CostLedger is attached (obs/cost/)
//     profile.folded         collapsed-stack profile of the trace ring,
//                            attributed by cost context (obs/cost/flame.hpp;
//                            render with scripts/flamegraph.py) — written
//                            when a TraceRecorder is attached
//
// Only the sources actually attached appear (manifest.files says which);
// scripts/validate_flight.py checks a bundle's integrity in CI. Dumping
// reads snapshots through the same quiesce-free paths the live /metrics
// endpoint uses, so it is safe at any time — the trace ring may be mid-write
// and simply yields its most recent surviving events.
//
// auto_dump_on() subscribes to a HealthCenter and dumps (rate-limited) for
// every event at or above a severity floor: that is the whole alarm wiring —
// watchdog trip -> HealthEvent(kCritical) -> bundle on disk.
//
// install_signal_dump() additionally hooks SIGABRT/SIGSEGV/SIGBUS. Writing
// files from a signal handler is best-effort by nature (the heap may be the
// crime scene); the handler re-raises the default disposition afterwards so
// the process still dies with the original signal.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/health/health.hpp"

namespace overcount {

class CostLedger;
class MetricsRegistry;
class TraceRecorder;
class TimeSeriesRecorder;

class FlightRecorder {
 public:
  /// Bundles land under `dir` (created on first dump). An empty dir
  /// disables the recorder: dump() becomes a no-op returning "".
  explicit FlightRecorder(std::string dir);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// $OVERCOUNT_FLIGHT_DIR, or "" when unset.
  static std::string env_dir();

  bool enabled() const noexcept { return !dir_.empty(); }

  /// Data sources; attach any subset. Attached objects must outlive the
  /// recorder (or at least every dump).
  void attach_metrics(const MetricsRegistry* metrics) { metrics_ = metrics; }
  void attach_trace(const TraceRecorder* trace) { trace_ = trace; }
  void attach_health(const HealthCenter* health) { health_ = health; }
  void attach_cost(const CostLedger* cost) { cost_ = cost; }
  void attach_timeseries(const TimeSeriesRecorder* series);

  /// Subscribes to `center`: every event with severity >= `min_severity`
  /// triggers dump(event.code), at most one bundle per `min_interval_us`
  /// (later triggers inside the window are counted but not dumped — the
  /// events themselves still land in health_events.jsonl of the next dump).
  void auto_dump_on(HealthCenter& center,
                    HealthSeverity min_severity = HealthSeverity::kCritical,
                    std::uint64_t min_interval_us = 2'000'000);

  /// Installs process signal handlers (SIGABRT/SIGSEGV/SIGBUS) that dump
  /// through this recorder and then re-raise. One recorder at a time owns
  /// the hooks; the destructor releases them.
  void install_signal_dump();

  /// Writes one bundle; returns its directory path, or "" when disabled or
  /// the directory could not be created. Thread-safe (serialised).
  std::string dump(const std::string& reason);

  std::uint64_t dumps() const noexcept {
    return dumps_.load(std::memory_order_relaxed);
  }
  std::uint64_t suppressed_dumps() const noexcept {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  const std::string dir_;
  const MetricsRegistry* metrics_ = nullptr;
  const TraceRecorder* trace_ = nullptr;
  const HealthCenter* health_ = nullptr;
  const CostLedger* cost_ = nullptr;
  std::vector<const TimeSeriesRecorder*> series_;

  std::mutex dump_mutex_;
  std::atomic<std::uint64_t> dumps_{0};
  std::atomic<std::uint64_t> suppressed_{0};
  std::atomic<std::uint64_t> last_auto_dump_us_{0};
  std::atomic<std::uint64_t> next_seq_{0};
  bool owns_signal_hooks_ = false;
};

}  // namespace overcount

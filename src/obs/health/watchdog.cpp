#include "obs/health/watchdog.hpp"

#include <chrono>
#include <utility>

namespace overcount {

std::uint64_t health_now_us() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

Watchdog::Watchdog(HealthCenter* health, WatchdogConfig config)
    : health_(health), config_(std::move(config)) {
  if (!config_.now_us) config_.now_us = [] { return health_now_us(); };
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::watch_heartbeat(std::string code, std::string subsystem,
                               const Heartbeat* hb,
                               std::uint64_t stall_after_us) {
  heartbeat_checks_.push_back(
      {std::move(code), std::move(subsystem), hb, stall_after_us, 0, false});
}

void Watchdog::watch_level(std::string code, std::string subsystem,
                           std::function<double()> value, double threshold,
                           std::uint64_t sustain_us) {
  level_checks_.push_back({std::move(code), std::move(subsystem),
                           std::move(value), threshold, sustain_us, 0, false});
}

std::size_t Watchdog::poll_once() {
  const std::uint64_t now = config_.now_us();
  std::size_t raised = 0;
  for (HeartbeatCheck& c : heartbeat_checks_) {
    if (!c.hb->armed()) {
      c.tripped = false;
      continue;
    }
    const std::uint64_t beats = c.hb->beats();
    if (c.tripped && beats != c.tripped_at_beats) c.tripped = false;
    const std::uint64_t last = c.hb->last_beat_us();
    const std::uint64_t silent = now > last ? now - last : 0;
    if (!c.tripped && silent >= c.stall_after_us) {
      c.tripped = true;
      c.tripped_at_beats = beats;
      trips_.fetch_add(1, std::memory_order_relaxed);
      ++raised;
      if (health_ != nullptr)
        health_->raise(HealthSeverity::kCritical, c.code, c.subsystem,
                       "heartbeat armed but silent",
                       static_cast<double>(silent),
                       static_cast<double>(c.stall_after_us));
    }
  }
  for (LevelCheck& c : level_checks_) {
    const double v = c.value();
    if (v < c.threshold) {
      c.exceeding_since_us = 0;
      c.tripped = false;
      continue;
    }
    if (c.exceeding_since_us == 0) c.exceeding_since_us = now;
    const std::uint64_t held =
        now > c.exceeding_since_us ? now - c.exceeding_since_us : 0;
    if (!c.tripped && held >= c.sustain_us) {
      c.tripped = true;
      trips_.fetch_add(1, std::memory_order_relaxed);
      ++raised;
      if (health_ != nullptr)
        health_->raise(HealthSeverity::kCritical, c.code, c.subsystem,
                       "level held above threshold", v, c.threshold);
    }
  }
  return raised;
}

void Watchdog::start() {
  if (thread_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = false;
  }
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    while (!stopping_) {
      lock.unlock();
      poll_once();
      lock.lock();
      stop_cv_.wait_for(lock,
                        std::chrono::microseconds(config_.poll_period_us),
                        [this] { return stopping_; });
    }
  });
}

void Watchdog::stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace overcount

// Self-consistency auditors: online checks that the system's DELIVERED
// accuracy matches the PROMISED one.
//
// The paper's estimators come with (epsilon, delta) envelopes — a Random
// Tour batch sized by eps(m) ~ sqrt(2 d_bar / (lambda2 m delta)) promises
// |estimate/truth - 1| <= eps with probability >= 1 - delta, and Sample &
// Collide's averaged trials promise a ~1/sqrt(ell k) relative standard
// error. The serve layer plans budgets from those formulas, but nothing
// checked at runtime that reality agrees. The EstimateAuditor does, with the
// only truth proxy available online: agreement of repeated estimates with
// each other.
//
// Per (kind, method) stream it keeps a window of recent estimates AT ONE
// TOPOLOGY VERSION (a churn tick changes the truth, so the window resets on
// version change) and runs three checks:
//  1. Confidence audit — each estimate promised |x/truth - 1| <= eps w.p.
//     1 - delta. Using the window mean as the truth proxy, the number of
//     window entries with |x_i - mean|/|mean| > eps_i should be Binomial(n,
//     ~delta); we trip when it exceeds mean + 3 sigma of that binomial
//     (plus 1 for proxy slop).
//  2. Split-sample variance audit — even- and odd-indexed halves of the
//     window are independent estimates of the same truth; each half-mean of
//     k entries has relative scale ~ eps_bar/sqrt(k), so
//     |m_even - m_odd| > slack * eps_bar * |mean| * sqrt(2/k) means the
//     empirical variance exceeds the promised envelope.
//  3. Method divergence — two methods ("random_tour" vs "sample_collide")
//     estimating the same quantity at the same version must agree within
//     their combined envelopes: |m_a - m_b| > slack * (eps_a + eps_b) *
//     midpoint trips audit.method_divergence.
// Trips raise kWarn HealthEvents and bump audit.* counters; per-stream
// gauges (audit.<kind>.<method>.mean / .rel_spread) expose the window state
// to /metrics. These are alarms, not proofs: thresholds carry a
// configurable slack because the truth proxy is itself noisy.
//
// SloLedger is the serving-side ledger: per request class it tracks the
// deadline-hit rate over a sliding window against a target objective and
// converts misses into error-budget burn (burn 1.0 = the whole miss
// allowance of the window is spent). Crossing burn 1.0 raises a kCritical
// serve.slo_breach event — the flight-recorder trigger for "we are now
// violating the SLO", not just "one request was late".
//
// Both classes only ever READ delivered estimates and response outcomes —
// no Rng, no feedback into planning — so audited runs stay bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/health/health.hpp"

namespace overcount {

class Counter;
class Gauge;
class MetricsRegistry;

struct AuditConfig {
  std::size_t window = 64;       ///< estimates retained per stream
  std::size_t min_samples = 8;   ///< no verdicts before this many
  double slack = 3.0;            ///< multiplier on theory envelopes
};

class EstimateAuditor {
 public:
  /// `metrics` receives the audit.* stream; `health` (nullptr = use the
  /// installed HealthCenter at trip time) receives trip events.
  explicit EstimateAuditor(MetricsRegistry* metrics = nullptr,
                           HealthCenter* health = nullptr,
                           AuditConfig config = {});

  EstimateAuditor(const EstimateAuditor&) = delete;
  EstimateAuditor& operator=(const EstimateAuditor&) = delete;

  /// Feeds one delivered estimate into the (kind, method) stream. `epsilon`
  /// and `delta` are the promise it was served under; `version` is the
  /// topology version it was computed at. Thread-safe; cold path (one call
  /// per served batch, never per walk).
  void observe(std::string_view kind, std::string_view method,
               double estimate, double epsilon, double delta,
               std::uint64_t version);

  std::uint64_t confidence_trips() const;
  std::uint64_t variance_trips() const;
  std::uint64_t divergence_trips() const;
  std::uint64_t observations() const;

 private:
  struct Entry {
    double value;
    double epsilon;
    double delta;
  };
  struct Stream {
    std::string kind;
    std::string method;
    std::uint64_t version = 0;
    std::vector<Entry> window;  ///< oldest first, bounded by config.window
    Gauge* mean_m = nullptr;
    Gauge* rel_spread_m = nullptr;
  };

  void check_stream(Stream& s);
  void check_divergence(const Stream& s);
  void trip(const char* code, const std::string& message, double value,
            double threshold);

  AuditConfig config_;
  HealthCenter* health_;
  MetricsRegistry* metrics_;

  mutable std::mutex mutex_;
  std::map<std::pair<std::string, std::string>, Stream> streams_;
  std::uint64_t observations_ = 0;
  std::uint64_t confidence_trips_ = 0;
  std::uint64_t variance_trips_ = 0;
  std::uint64_t divergence_trips_ = 0;

  Counter* observations_m_ = nullptr;
  Counter* confidence_m_ = nullptr;
  Counter* variance_m_ = nullptr;
  Counter* divergence_m_ = nullptr;
};

struct SloPolicy {
  double target = 0.99;         ///< deadline-hit-rate objective per class
  std::size_t window = 256;     ///< sliding window (requests) for burn
  std::size_t min_requests = 20;  ///< no breach verdicts before this many
};

/// How one request resolved, from the ledger's point of view.
enum class SloOutcome : std::uint8_t {
  kOk,            ///< delivered within its deadline (or had none)
  kDeadlineMiss,  ///< delivered/abandoned past its deadline
  kRejected,      ///< load-shed at admission (tracked, not budget burn)
  kFailed,        ///< batch threw
};

class SloLedger {
 public:
  explicit SloLedger(MetricsRegistry* metrics = nullptr,
                     HealthCenter* health = nullptr, SloPolicy policy = {});

  SloLedger(const SloLedger&) = delete;
  SloLedger& operator=(const SloLedger&) = delete;

  /// Records one resolved request of `cls` (e.g. "size.random_tour.deadline"
  /// — callers pick the class taxonomy). Thread-safe.
  void record(std::string_view cls, SloOutcome outcome,
              std::uint64_t latency_us);

  /// Hit rate over the class's sliding window (NaN before any request).
  /// Rejected requests are load-shedding, visible in serve.slo.*.rejected
  /// but excluded from the hit-rate denominator.
  double hit_rate(std::string_view cls) const;

  /// Fraction of the window's miss allowance consumed: window_misses /
  /// ((1 - target) * window_size). >= 1.0 means the objective is violated
  /// over the window.
  double budget_burn(std::string_view cls) const;

  std::uint64_t breaches() const;

 private:
  struct ClassState {
    Counter* requests_m = nullptr;
    Counter* ok_m = nullptr;
    Counter* miss_m = nullptr;
    Counter* rejected_m = nullptr;
    Counter* failed_m = nullptr;
    Gauge* hit_rate_m = nullptr;
    Gauge* burn_m = nullptr;
    std::vector<bool> violations;  ///< ring over counted requests
    std::size_t next = 0;
    std::size_t filled = 0;
    std::size_t window_misses = 0;
    bool breached = false;  ///< raise once per episode (hysteresis at 0.5)
  };

  ClassState& state_for(std::string_view cls);
  double burn_of(const ClassState& st) const;

  SloPolicy policy_;
  HealthCenter* health_;
  MetricsRegistry* metrics_;

  mutable std::mutex mutex_;
  std::map<std::string, ClassState, std::less<>> classes_;
  std::uint64_t breaches_ = 0;
};

}  // namespace overcount

// Watchdogs: liveness and saturation detection for the long-running parts
// of the system — BSP supersteps (ShardedWalkEngine), mailbox backlog, and
// the serve layer's DeadlineQueue.
//
// Two primitives:
//  * Heartbeat — a wait-free progress beacon the monitored code ticks
//    (`beat()` once per superstep / batch / broker dispatch). Costs two
//    relaxed stores per tick; OVERCOUNT_HEALTH=OFF compiles the ticks away.
//  * Watchdog — a cold-side poller that evaluates registered checks either
//    from its own background thread (start()) or on demand (poll_once(),
//    which tests drive with an injected clock). A check that fails raises a
//    kCritical HealthEvent through the given HealthCenter — wiring that
//    center into a FlightRecorder::auto_dump_on() turns any trip into a
//    post-mortem bundle.
//
// Checks raise ONCE per episode: a heartbeat check re-arms when a new beat
// arrives, a level check re-arms when the value drops below its threshold.
// Nothing here touches any Rng; a watched run is bit-identical to an
// unwatched one.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/health/health.hpp"

namespace overcount {

/// Microseconds on the process-wide steady clock shared by every Heartbeat
/// and Watchdog (epoch = first use).
std::uint64_t health_now_us() noexcept;

/// Progress beacon. `arm()` marks the start of a monitored activity (a
/// batch), `beat()` marks forward progress inside it (a superstep), and
/// `disarm()` marks completion — a silent heartbeat only counts as a stall
/// while armed, so an idle engine never alarms.
class Heartbeat {
 public:
#if OVERCOUNT_HEALTH_ENABLED
  void arm() noexcept {
    last_beat_us_.store(health_now_us(), std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
  }
  void disarm() noexcept { armed_.store(false, std::memory_order_release); }
  void beat() noexcept { beat_at(health_now_us()); }
  /// Test hook: a beat stamped with an explicit clock reading.
  void beat_at(std::uint64_t now_us) noexcept {
    beats_.fetch_add(1, std::memory_order_relaxed);
    last_beat_us_.store(now_us, std::memory_order_relaxed);
  }
#else
  void arm() noexcept {}
  void disarm() noexcept {}
  void beat() noexcept {}
  void beat_at(std::uint64_t) noexcept {}
#endif

  bool armed() const noexcept { return armed_.load(std::memory_order_acquire); }
  std::uint64_t beats() const noexcept {
    return beats_.load(std::memory_order_relaxed);
  }
  std::uint64_t last_beat_us() const noexcept {
    return last_beat_us_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> beats_{0};
  std::atomic<std::uint64_t> last_beat_us_{0};
};

struct WatchdogConfig {
  std::uint64_t poll_period_us = 100'000;  ///< background-thread cadence
  /// Injectable clock for deterministic tests; defaults to health_now_us.
  std::function<std::uint64_t()> now_us;
};

/// Evaluates registered checks and raises kCritical HealthEvents on trips.
/// Register every check BEFORE start(); registration is not thread-safe
/// against a running poll thread.
class Watchdog {
 public:
  explicit Watchdog(HealthCenter* health, WatchdogConfig config = {});
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Trips `code` when `hb` is armed and has not beaten for `stall_after_us`
  /// microseconds. The heartbeat must outlive the watchdog.
  void watch_heartbeat(std::string code, std::string subsystem,
                       const Heartbeat* hb, std::uint64_t stall_after_us);

  /// Trips `code` when `value()` has been >= `threshold` continuously for
  /// `sustain_us` microseconds (sustain 0 trips on first sight). Used for
  /// mailbox backlog and DeadlineQueue saturation, where a momentary spike
  /// is normal and only a sustained plateau is a problem.
  void watch_level(std::string code, std::string subsystem,
                   std::function<double()> value, double threshold,
                   std::uint64_t sustain_us);

  /// Spawns the background poll thread (idempotent).
  void start();
  /// Stops and joins the poll thread (idempotent; also run by ~Watchdog).
  void stop();

  /// Evaluates every check once at the injected clock's current reading;
  /// returns the number of events raised. start() calls this on a cadence —
  /// tests call it directly.
  std::size_t poll_once();

  std::uint64_t trips() const noexcept {
    return trips_.load(std::memory_order_relaxed);
  }

 private:
  struct HeartbeatCheck {
    std::string code;
    std::string subsystem;
    const Heartbeat* hb;
    std::uint64_t stall_after_us;
    std::uint64_t tripped_at_beats = 0;  ///< beats() when last tripped
    bool tripped = false;
  };
  struct LevelCheck {
    std::string code;
    std::string subsystem;
    std::function<double()> value;
    double threshold;
    std::uint64_t sustain_us;
    std::uint64_t exceeding_since_us = 0;  ///< 0 = currently below threshold
    bool tripped = false;
  };

  HealthCenter* health_;
  WatchdogConfig config_;
  std::vector<HeartbeatCheck> heartbeat_checks_;
  std::vector<LevelCheck> level_checks_;
  std::atomic<std::uint64_t> trips_{0};

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;  // guarded by stop_mutex_
  std::thread thread_;
};

}  // namespace overcount

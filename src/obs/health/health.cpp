#include "obs/health/health.hpp"

#include <ostream>
#include <sstream>
#include <utility>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace overcount {

const char* to_string(HealthSeverity severity) noexcept {
  switch (severity) {
    case HealthSeverity::kInfo:
      return "info";
    case HealthSeverity::kWarn:
      return "warn";
    case HealthSeverity::kCritical:
      return "critical";
  }
  return "?";
}

HealthCenter::HealthCenter(MetricsRegistry* metrics, std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {
  if (metrics != nullptr) {
    events_m_ = &metrics->counter("health.events");
    info_m_ = &metrics->counter("health.info");
    warn_m_ = &metrics->counter("health.warn");
    critical_m_ = &metrics->counter("health.critical");
  }
}

HealthCenter::~HealthCenter() {
  // An installed center must never be destroyed: raise sites could be
  // holding the pointer.
  OVERCOUNT_EXPECTS(active() != this);
}

void HealthCenter::raise(HealthEvent event) {
  event.ts_us = now_us();
  total_.fetch_add(1, std::memory_order_relaxed);
  std::uint8_t sev = static_cast<std::uint8_t>(event.severity);
  std::uint8_t cur = worst_.load(std::memory_order_relaxed);
  while (sev > cur &&
         !worst_.compare_exchange_weak(cur, sev, std::memory_order_relaxed)) {
  }
  if (events_m_ != nullptr) {
    events_m_->inc();
    switch (event.severity) {
      case HealthSeverity::kInfo:
        info_m_->inc();
        break;
      case HealthSeverity::kWarn:
        warn_m_->inc();
        break;
      case HealthSeverity::kCritical:
        critical_m_->inc();
        break;
    }
  }
  std::vector<std::function<void(const HealthEvent&)>> subscribers;
  HealthEvent copy;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    event.seq = next_seq_++;
    if (ring_.size() < capacity_) {
      ring_.push_back(event);
    } else {
      ring_[ring_next_] = event;
      ring_next_ = (ring_next_ + 1) % capacity_;
    }
    subscribers = subscribers_;
    copy = std::move(event);
  }
  for (const auto& fn : subscribers) fn(copy);
}

void HealthCenter::raise(HealthSeverity severity, std::string_view code,
                         std::string_view subsystem, std::string_view message,
                         double value, double threshold) {
  HealthEvent e;
  e.severity = severity;
  e.code = std::string(code);
  e.subsystem = std::string(subsystem);
  e.message = std::string(message);
  e.value = value;
  e.threshold = threshold;
  raise(std::move(e));
}

std::vector<HealthEvent> HealthCenter::recent() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HealthEvent> out;
  out.reserve(ring_.size());
  // ring_next_ is the oldest slot once the ring has wrapped.
  for (std::size_t k = 0; k < ring_.size(); ++k)
    out.push_back(ring_[(ring_next_ + k) % ring_.size()]);
  return out;
}

void HealthCenter::subscribe(std::function<void(const HealthEvent&)> fn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  subscribers_.push_back(std::move(fn));
}

void write_health_events_jsonl(std::ostream& os,
                               const std::vector<HealthEvent>& events) {
  for (const HealthEvent& e : events) {
    // One JsonWriter per line: JSONL lines are independent documents.
    std::ostringstream line;
    JsonWriter w(line, /*indent=*/0);
    w.begin_object();
    w.kv("seq", e.seq);
    w.kv("ts_us", e.ts_us);
    w.kv("severity", to_string(e.severity));
    w.kv("code", e.code);
    w.kv("subsystem", e.subsystem);
    w.kv("message", e.message);
    w.kv("value", e.value);
    w.kv("threshold", e.threshold);
    w.end_object();
    os << line.str() << '\n';
  }
}

}  // namespace overcount

// Health events: the alarm bus of the audit layer (obs/health/).
//
// The registry (obs/metrics.hpp) answers "what is the current value"; a
// HealthEvent answers "a promise was broken, here is which one and by how
// much". Auditors (obs/health/audit.hpp), watchdogs (obs/health/watchdog.hpp)
// and the serve-layer SLO ledger raise structured events into the installed
// HealthCenter, which keeps a bounded ring of the most recent ones (the
// flight recorder dumps that ring as JSONL post mortem), counts them in the
// health.* metrics family, and fans each event out to subscribers — the hook
// the flight recorder uses to dump a bundle the moment something critical
// trips.
//
// Cost model mirrors obs/trace.hpp: with no center installed every
// health_raise() site is one relaxed atomic load and a branch; raising an
// event takes a mutex but only ever happens on cold paths (an audit failing,
// a watchdog tripping), never per walk step. Nothing here touches any Rng,
// so monitored runs stay bit-identical to unmonitored ones — the same
// contract every other obs/ layer keeps.
//
// OVERCOUNT_HEALTH=OFF (CMake) compiles the hook helpers away, exactly like
// OVERCOUNT_TRACE=OFF does for spans: health_active() becomes constant
// false, health_raise() becomes empty, and Heartbeat ticks fold out
// (watchdog.hpp). The HealthCenter class itself stays available either way,
// like TraceRecorder does.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

// Compile-time master switch. The build defines OVERCOUNT_HEALTH_ENABLED=0
// when configured with -DOVERCOUNT_HEALTH=OFF; default is on.
#ifndef OVERCOUNT_HEALTH_ENABLED
#define OVERCOUNT_HEALTH_ENABLED 1
#endif

namespace overcount {

class Counter;
class MetricsRegistry;

enum class HealthSeverity : std::uint8_t { kInfo = 0, kWarn = 1, kCritical = 2 };

const char* to_string(HealthSeverity severity) noexcept;

/// One broken promise, machine-readable. `code` is the stable key alert
/// routing matches on ("shard.superstep_stall", "serve.slo_breach",
/// "audit.variance_envelope", ...); `value`/`threshold` say how far past the
/// envelope the observation landed.
struct HealthEvent {
  HealthSeverity severity = HealthSeverity::kInfo;
  std::string code;
  std::string subsystem;  ///< "shard", "serve", "audit", ...
  std::string message;    ///< human-readable detail
  double value = 0.0;     ///< observed value
  double threshold = 0.0; ///< the envelope it was checked against
  std::uint64_t ts_us = 0;  ///< microseconds since the center's epoch
  std::uint64_t seq = 0;    ///< monotone per-center sequence number
};

/// Bounded ring of recent HealthEvents + health.* counters + subscriber
/// fan-out. One center is "installed" process-wide at a time (the same
/// install/active pattern as TraceRecorder), so instrumentation deep in the
/// engine can raise events without plumbing a pointer through every layer.
class HealthCenter {
 public:
  /// `metrics`, when given, receives health.events plus one counter per
  /// severity; `capacity` bounds the ring of retained events (the "last N"
  /// the flight recorder dumps).
  explicit HealthCenter(MetricsRegistry* metrics = nullptr,
                        std::size_t capacity = 256);

  HealthCenter(const HealthCenter&) = delete;
  HealthCenter& operator=(const HealthCenter&) = delete;
  ~HealthCenter();

  /// Makes this the process-wide active center (replacing any previous one).
  void install() noexcept {
    active_center().store(this, std::memory_order_release);
  }
  /// Clears the active center if it is this one.
  void uninstall() noexcept {
    HealthCenter* expected = this;
    active_center().compare_exchange_strong(expected, nullptr,
                                            std::memory_order_acq_rel);
  }
  /// The currently installed center, or nullptr.
  static HealthCenter* active() noexcept {
    return active_center().load(std::memory_order_acquire);
  }

  /// Microseconds since this center's construction (steady clock).
  std::uint64_t now_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Records one event (ts_us/seq are stamped here), bumps the counters and
  /// notifies subscribers AFTER releasing the ring lock — a subscriber may
  /// itself snapshot the center (the flight recorder does).
  void raise(HealthEvent event);

  /// Convenience raise().
  void raise(HealthSeverity severity, std::string_view code,
             std::string_view subsystem, std::string_view message,
             double value = 0.0, double threshold = 0.0);

  /// The retained events, oldest first. At most `capacity` of them; earlier
  /// events are gone (total_raised() still counts them).
  std::vector<HealthEvent> recent() const;

  /// Events ever raised, including ones the ring has dropped.
  std::uint64_t total_raised() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  /// Highest severity ever raised (kInfo when none); lets an example turn
  /// "did anything critical happen" into an exit code.
  HealthSeverity worst() const noexcept {
    return static_cast<HealthSeverity>(worst_.load(std::memory_order_relaxed));
  }

  /// Registers a callback invoked (on the raising thread) for every event.
  /// Subscribers cannot be removed — register for the center's lifetime.
  void subscribe(std::function<void(const HealthEvent&)> fn);

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  static std::atomic<HealthCenter*>& active_center() noexcept {
    static std::atomic<HealthCenter*> g{nullptr};
    return g;
  }

  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint8_t> worst_{0};

  mutable std::mutex mutex_;
  std::vector<HealthEvent> ring_;     // guarded by mutex_
  std::size_t ring_next_ = 0;         // guarded by mutex_
  std::uint64_t next_seq_ = 0;        // guarded by mutex_
  std::vector<std::function<void(const HealthEvent&)>> subscribers_;

  Counter* events_m_ = nullptr;
  Counter* info_m_ = nullptr;
  Counter* warn_m_ = nullptr;
  Counter* critical_m_ = nullptr;
};

#if OVERCOUNT_HEALTH_ENABLED

/// True when a HealthCenter is installed.
inline bool health_active() noexcept { return HealthCenter::active() != nullptr; }

/// Raises an event on the installed center, if any.
inline void health_raise(HealthSeverity severity, std::string_view code,
                         std::string_view subsystem, std::string_view message,
                         double value = 0.0, double threshold = 0.0) {
  if (HealthCenter* center = HealthCenter::active(); center != nullptr)
    center->raise(severity, code, subsystem, message, value, threshold);
}

#else  // OVERCOUNT_HEALTH_ENABLED == 0: hook sites compile to nothing.

inline constexpr bool health_active() noexcept { return false; }
inline void health_raise(HealthSeverity, std::string_view, std::string_view,
                         std::string_view, double = 0.0,
                         double = 0.0) noexcept {}

#endif  // OVERCOUNT_HEALTH_ENABLED

/// One event per line as a self-contained JSON object — the JSONL stream the
/// flight recorder writes as health_events.jsonl. Keys: seq, ts_us,
/// severity, code, subsystem, message, value, threshold (non-finite
/// value/threshold render as null, matching the JsonWriter contract).
void write_health_events_jsonl(std::ostream& os,
                               const std::vector<HealthEvent>& events);

}  // namespace overcount

#include "obs/health/audit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"

namespace overcount {

namespace {

double mean_of(const std::vector<double>& xs) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

}  // namespace

EstimateAuditor::EstimateAuditor(MetricsRegistry* metrics,
                                 HealthCenter* health, AuditConfig config)
    : config_(config), health_(health), metrics_(metrics) {
  if (metrics_ != nullptr) {
    observations_m_ = &metrics_->counter("audit.observations");
    confidence_m_ = &metrics_->counter("audit.confidence_trips");
    variance_m_ = &metrics_->counter("audit.variance_trips");
    divergence_m_ = &metrics_->counter("audit.divergence_trips");
  }
}

void EstimateAuditor::observe(std::string_view kind, std::string_view method,
                              double estimate, double epsilon, double delta,
                              std::uint64_t version) {
  if (!std::isfinite(estimate)) return;  // all-truncated batches audit nothing
  const std::lock_guard<std::mutex> lock(mutex_);
  ++observations_;
  if (observations_m_ != nullptr) observations_m_->inc();

  const auto key = std::make_pair(std::string(kind), std::string(method));
  Stream& s = streams_[key];
  if (s.kind.empty()) {
    s.kind = key.first;
    s.method = key.second;
    if (metrics_ != nullptr) {
      const std::string base = "audit." + s.kind + "." + s.method;
      s.mean_m = &metrics_->gauge(base + ".mean");
      s.rel_spread_m = &metrics_->gauge(base + ".rel_spread");
    }
  }
  // A topology change moves the truth: estimates across versions are not
  // comparable, so the window restarts.
  if (s.version != version) {
    s.version = version;
    s.window.clear();
  }
  s.window.push_back({estimate, epsilon, delta});
  if (s.window.size() > config_.window) s.window.erase(s.window.begin());

  const std::size_t n = s.window.size();
  double sum = 0.0;
  for (const Entry& e : s.window) sum += e.value;
  const double mean = sum / static_cast<double>(n);
  double var = 0.0;
  for (const Entry& e : s.window) var += (e.value - mean) * (e.value - mean);
  var = n > 1 ? var / static_cast<double>(n - 1) : 0.0;
  const double rel_spread =
      mean != 0.0 ? std::sqrt(var) / std::abs(mean)
                  : std::numeric_limits<double>::quiet_NaN();
  if (s.mean_m != nullptr) {
    s.mean_m->set(mean);
    s.rel_spread_m->set(rel_spread);
  }

  if (n >= config_.min_samples && mean != 0.0) {
    check_stream(s);
    check_divergence(s);
  }
}

void EstimateAuditor::check_stream(Stream& s) {
  const std::size_t n = s.window.size();
  double sum = 0.0, eps_sum = 0.0, delta_sum = 0.0;
  for (const Entry& e : s.window) {
    sum += e.value;
    eps_sum += e.epsilon;
    delta_sum += e.delta;
  }
  const double mean = sum / static_cast<double>(n);
  const double eps_bar = eps_sum / static_cast<double>(n);
  const double delta_bar =
      std::clamp(delta_sum / static_cast<double>(n), 1e-6, 0.5);

  // Confidence audit: exceedances of the per-entry promise should be
  // Binomial(n, ~delta); mean + 3 sigma (+1 for the truth-proxy slop) is
  // the alarm line.
  std::size_t exceed = 0;
  for (const Entry& e : s.window)
    if (std::abs(e.value - mean) > e.epsilon * std::abs(mean)) ++exceed;
  const double allowance =
      static_cast<double>(n) * delta_bar +
      3.0 * std::sqrt(static_cast<double>(n) * delta_bar * (1.0 - delta_bar)) +
      1.0;
  if (static_cast<double>(exceed) > allowance) {
    ++confidence_trips_;
    if (confidence_m_ != nullptr) confidence_m_->inc();
    std::ostringstream msg;
    msg << s.kind << "/" << s.method << ": " << exceed << " of " << n
        << " window estimates exceed their promised eps (allowance "
        << allowance << ")";
    trip("audit.confidence_envelope", msg.str(), static_cast<double>(exceed),
         allowance);
    s.window.clear();  // alarm once per episode, not once per observation
    return;
  }

  // Split-sample variance audit: even/odd half-means are independent
  // estimates of the same truth with relative scale ~ eps_bar / sqrt(k).
  std::vector<double> even, odd;
  for (std::size_t i = 0; i < n; ++i)
    (i % 2 == 0 ? even : odd).push_back(s.window[i].value);
  const std::size_t k = std::min(even.size(), odd.size());
  if (k < 2) return;
  const double gap = std::abs(mean_of(even) - mean_of(odd));
  const double envelope = config_.slack * eps_bar * std::abs(mean) *
                          std::sqrt(2.0 / static_cast<double>(k));
  if (gap > envelope) {
    ++variance_trips_;
    if (variance_m_ != nullptr) variance_m_->inc();
    std::ostringstream msg;
    msg << s.kind << "/" << s.method << ": split-sample half-means differ by "
        << gap << " against a promised envelope of " << envelope
        << " (empirical variance exceeds the (eps, delta) promise)";
    trip("audit.variance_envelope", msg.str(), gap, envelope);
    s.window.clear();
  }
}

void EstimateAuditor::check_divergence(const Stream& s) {
  double sum = 0.0, eps_sum = 0.0;
  for (const Entry& e : s.window) {
    sum += e.value;
    eps_sum += e.epsilon;
  }
  const double m_a = sum / static_cast<double>(s.window.size());
  const double eps_a = eps_sum / static_cast<double>(s.window.size());

  for (auto& kv : streams_) {
    Stream& other = kv.second;
    if (&other == &s || other.kind != s.kind) continue;
    if (other.version != s.version ||
        other.window.size() < config_.min_samples)
      continue;
    double osum = 0.0, oeps = 0.0;
    for (const Entry& e : other.window) {
      osum += e.value;
      oeps += e.epsilon;
    }
    const double m_b = osum / static_cast<double>(other.window.size());
    const double eps_b = oeps / static_cast<double>(other.window.size());
    // Both window means lie within their envelope of the same truth, so
    // their gap is bounded by the summed envelopes (times slack for the
    // residual sampling noise of the means themselves).
    const double mid = 0.5 * (std::abs(m_a) + std::abs(m_b));
    const double envelope = config_.slack * (eps_a + eps_b) * mid;
    if (std::abs(m_a - m_b) > envelope) {
      ++divergence_trips_;
      if (divergence_m_ != nullptr) divergence_m_->inc();
      std::ostringstream msg;
      msg << s.kind << ": methods " << s.method << " and " << other.method
          << " disagree (" << m_a << " vs " << m_b << ", envelope "
          << envelope << ")";
      trip("audit.method_divergence", msg.str(), std::abs(m_a - m_b),
           envelope);
      // One alarm per episode: the other stream re-fills before it can
      // re-trigger the comparison.
      other.window.clear();
    }
  }
}

void EstimateAuditor::trip(const char* code, const std::string& message,
                           double value, double threshold) {
  HealthCenter* center = health_ != nullptr ? health_ : HealthCenter::active();
  if (center != nullptr)
    center->raise(HealthSeverity::kWarn, code, "audit", message, value,
                  threshold);
}

std::uint64_t EstimateAuditor::confidence_trips() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return confidence_trips_;
}
std::uint64_t EstimateAuditor::variance_trips() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return variance_trips_;
}
std::uint64_t EstimateAuditor::divergence_trips() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return divergence_trips_;
}
std::uint64_t EstimateAuditor::observations() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return observations_;
}

SloLedger::SloLedger(MetricsRegistry* metrics, HealthCenter* health,
                     SloPolicy policy)
    : policy_(policy), health_(health), metrics_(metrics) {
  if (policy_.window == 0) policy_.window = 1;
}

SloLedger::ClassState& SloLedger::state_for(std::string_view cls) {
  auto it = classes_.find(cls);
  if (it != classes_.end()) return it->second;
  ClassState st;
  if (metrics_ != nullptr) {
    const std::string base = "serve.slo." + std::string(cls);
    st.requests_m = &metrics_->counter(base + ".requests");
    st.ok_m = &metrics_->counter(base + ".ok");
    st.miss_m = &metrics_->counter(base + ".deadline_misses");
    st.rejected_m = &metrics_->counter(base + ".rejected");
    st.failed_m = &metrics_->counter(base + ".failed");
    st.hit_rate_m = &metrics_->gauge(base + ".hit_rate");
    st.burn_m = &metrics_->gauge(base + ".budget_burn");
  }
  return classes_.emplace(std::string(cls), std::move(st)).first->second;
}

double SloLedger::burn_of(const ClassState& st) const {
  // The window's miss allowance; a target of 1.0 means any miss breaches.
  const double budget = std::max(
      (1.0 - policy_.target) * static_cast<double>(policy_.window), 1e-9);
  return static_cast<double>(st.window_misses) / budget;
}

void SloLedger::record(std::string_view cls, SloOutcome outcome,
                       std::uint64_t latency_us) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ClassState& st = state_for(cls);
  if (st.requests_m != nullptr) {
    st.requests_m->inc();
    switch (outcome) {
      case SloOutcome::kOk:
        st.ok_m->inc();
        break;
      case SloOutcome::kDeadlineMiss:
        st.miss_m->inc();
        break;
      case SloOutcome::kRejected:
        st.rejected_m->inc();
        break;
      case SloOutcome::kFailed:
        st.failed_m->inc();
        break;
    }
  }
  if (metrics_ != nullptr)
    metrics_->histogram("serve.slo." + std::string(cls) + ".latency_us")
        .record(latency_us);
  // Rejections are load-shedding: visible above, but they neither hit nor
  // miss a deadline, so they stay out of the budget window.
  if (outcome == SloOutcome::kRejected) return;

  const bool violation = outcome != SloOutcome::kOk;
  if (st.violations.size() < policy_.window) {
    st.violations.push_back(violation);
    if (violation) ++st.window_misses;
  } else {
    if (st.violations[st.next]) --st.window_misses;
    st.violations[st.next] = violation;
    if (violation) ++st.window_misses;
    st.next = (st.next + 1) % policy_.window;
  }

  const std::size_t counted = st.violations.size();
  const double hit = 1.0 - static_cast<double>(st.window_misses) /
                               static_cast<double>(counted);
  const double burn = burn_of(st);
  if (st.hit_rate_m != nullptr) {
    st.hit_rate_m->set(hit);
    st.burn_m->set(burn);
  }

  if (counted >= policy_.min_requests && burn >= 1.0 && !st.breached) {
    st.breached = true;
    ++breaches_;
    HealthCenter* center =
        health_ != nullptr ? health_ : HealthCenter::active();
    if (center != nullptr) {
      std::ostringstream msg;
      msg << "class " << cls << ": error budget exhausted (hit rate " << hit
          << " against target " << policy_.target << " over the last "
          << counted << " requests)";
      center->raise(HealthSeverity::kCritical, "serve.slo_breach", "serve",
                    msg.str(), burn, 1.0);
    }
  } else if (st.breached && burn < 0.5) {
    st.breached = false;  // hysteresis: a new episode may alarm again
  }
}

double SloLedger::hit_rate(std::string_view cls) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = classes_.find(cls);
  if (it == classes_.end() || it->second.violations.empty())
    return std::numeric_limits<double>::quiet_NaN();
  return 1.0 - static_cast<double>(it->second.window_misses) /
                   static_cast<double>(it->second.violations.size());
}

double SloLedger::budget_burn(std::string_view cls) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = classes_.find(cls);
  if (it == classes_.end()) return 0.0;
  return burn_of(it->second);
}

std::uint64_t SloLedger::breaches() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return breaches_;
}

}  // namespace overcount

#include "obs/health/flight.hpp"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <utility>

#include "obs/cost/cost.hpp"
#include "obs/cost/flame.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace overcount {

namespace {

std::uint64_t steady_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string sanitize_reason(const std::string& reason) {
  std::string out;
  for (const char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
    out.push_back(ok ? c : '_');
    if (out.size() >= 48) break;
  }
  return out.empty() ? std::string("unknown") : out;
}

std::atomic<FlightRecorder*> g_signal_recorder{nullptr};
std::atomic<bool> g_in_signal_dump{false};

void fatal_signal_handler(int sig) {
  // Best-effort: one attempt, then die with the original signal either way.
  if (!g_in_signal_dump.exchange(true)) {
    if (FlightRecorder* rec =
            g_signal_recorder.load(std::memory_order_acquire);
        rec != nullptr)
      rec->dump("fatal_signal");
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

FlightRecorder::FlightRecorder(std::string dir) : dir_(std::move(dir)) {}

FlightRecorder::~FlightRecorder() {
  if (owns_signal_hooks_) {
    FlightRecorder* expected = this;
    if (g_signal_recorder.compare_exchange_strong(expected, nullptr)) {
      std::signal(SIGABRT, SIG_DFL);
      std::signal(SIGSEGV, SIG_DFL);
      std::signal(SIGBUS, SIG_DFL);
    }
  }
}

std::string FlightRecorder::env_dir() {
  const char* dir = std::getenv("OVERCOUNT_FLIGHT_DIR");
  return dir != nullptr ? std::string(dir) : std::string();
}

void FlightRecorder::attach_timeseries(const TimeSeriesRecorder* series) {
  if (series != nullptr) series_.push_back(series);
}

void FlightRecorder::auto_dump_on(HealthCenter& center,
                                  HealthSeverity min_severity,
                                  std::uint64_t min_interval_us) {
  center.subscribe([this, min_severity, min_interval_us](
                       const HealthEvent& event) {
    if (static_cast<int>(event.severity) < static_cast<int>(min_severity))
      return;
    const std::uint64_t now = steady_us();
    std::uint64_t last = last_auto_dump_us_.load(std::memory_order_relaxed);
    if (last != 0 && now - last < min_interval_us) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!last_auto_dump_us_.compare_exchange_strong(
            last, now, std::memory_order_relaxed)) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return;  // another thread's trigger is dumping concurrently
    }
    dump(event.code);
  });
}

void FlightRecorder::install_signal_dump() {
  FlightRecorder* expected = nullptr;
  if (!g_signal_recorder.compare_exchange_strong(expected, this)) return;
  owns_signal_hooks_ = true;
  std::signal(SIGABRT, fatal_signal_handler);
  std::signal(SIGSEGV, fatal_signal_handler);
  std::signal(SIGBUS, fatal_signal_handler);
}

std::string FlightRecorder::dump(const std::string& reason) {
  if (!enabled()) return {};
  const std::lock_guard<std::mutex> lock(dump_mutex_);
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::string bundle_name =
      "flight-" + std::to_string(seq) + "-" + sanitize_reason(reason);
  const std::filesystem::path bundle =
      std::filesystem::path(dir_) / bundle_name;
  std::error_code ec;
  std::filesystem::create_directories(bundle, ec);
  if (ec) {
    std::cerr << "# flight: cannot create " << bundle.string() << ": "
              << ec.message() << '\n';
    return {};
  }

  std::vector<std::string> files;

  if (metrics_ != nullptr) {
    std::ofstream out(bundle / "metrics.json");
    if (out) {
      JsonWriter w(out, /*indent=*/2);
      write_json(w, metrics_->snapshot());
      out << '\n';
      files.push_back("metrics.json");
    }
  }
  if (trace_ != nullptr) {
    if (write_chrome_trace_file((bundle / "trace.json").string(), *trace_))
      files.push_back("trace.json");
    // The same ring, folded for flamegraphs: collapsed stacks with
    // (tenant, query) frames spliced in wherever a cost.ctx span marks the
    // attribution boundary. The ledger is optional — without one the
    // contexts fold as raw ctx=<id> frames. A ring with no complete spans
    // folds to nothing; skip the file rather than ship an empty member
    // (validate_flight.py treats empty members as truncated dumps).
    const std::string folded = fold_collapsed_stacks(*trace_, cost_);
    if (!folded.empty()) {
      std::ofstream out(bundle / "profile.folded");
      if (out) {
        out << folded;
        files.push_back("profile.folded");
      }
    }
  }
  if (cost_ != nullptr) {
    std::ofstream out(bundle / "costs.json");
    if (out) {
      JsonWriter w(out, /*indent=*/2);
      write_costs_json(w, *cost_, /*k=*/10);
      out << '\n';
      files.push_back("costs.json");
    }
  }
  if (health_ != nullptr) {
    std::ofstream out(bundle / "health_events.jsonl");
    if (out) {
      write_health_events_jsonl(out, health_->recent());
      files.push_back("health_events.jsonl");
    }
  }
  for (const TimeSeriesRecorder* series : series_) {
    const std::string name =
        "timeseries_" +
        sanitize_reason(series->kind().empty() ? "run" : series->kind()) +
        ".json";
    if (write_timeseries_file((bundle / name).string(), *series))
      files.push_back(name);
  }

  {
    std::ofstream out(bundle / "manifest.json");
    if (!out) {
      std::cerr << "# flight: cannot write manifest in " << bundle.string()
                << '\n';
      return {};
    }
    JsonWriter w(out, /*indent=*/2);
    w.begin_object();
    w.kv("schema", 1);
    // Provenance: which source revision produced this bundle, and which
    // bench JSON schema its artifacts pair with — a post-mortem read weeks
    // later must not guess either. "unknown" only outside a git checkout.
#ifdef OVERCOUNT_GIT_REV
    w.kv("git_rev", OVERCOUNT_GIT_REV);
#else
    w.kv("git_rev", "unknown");
#endif
    w.kv("bench_schema", 1);
    w.kv("reason", reason);
    w.kv("seq", seq);
    w.kv("ts_us", steady_us());
    w.key("files");
    w.begin_array();
    for (const std::string& f : files) w.value(f);
    w.end_array();
    w.end_object();
    out << '\n';
  }

  dumps_.fetch_add(1, std::memory_order_relaxed);
  std::cerr << "# flight: dumped " << bundle.string() << " (" << reason
            << ")\n";
  return bundle.string();
}

}  // namespace overcount

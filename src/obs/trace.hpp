// Span tracing: lock-free per-thread ring buffers of timestamped events,
// exported as Chrome/Perfetto-compatible `trace_event` JSON (obs/trace.cpp).
//
// The estimators are long-running randomized processes; a post-hoc counter
// snapshot says what a run cost but not WHERE the time went. The tracer
// answers that: RAII TraceSpan scopes and instant events are threaded
// through the ParallelRunner dispatch, the interleaved walk kernel (one
// lifecycle span per tour / CTRW sample / S&C trial), SampleCollideEstimator
// and the DES Simulator event loop, so a recorded run opens in Perfetto as
// one lane per worker thread with every walk laid out on it.
//
// Cost model (the reason this can stay compiled-in by default):
//  * No recorder installed (the normal case): every instrumentation site is
//    one relaxed atomic load of the global recorder pointer plus a branch.
//  * Recorder installed: a site costs two steady_clock reads and one store
//    into the calling thread's OWN ring buffer — no locks, no allocation,
//    no contention. Rings overwrite their oldest events when full, so
//    recording never blocks and memory stays bounded.
//  * OVERCOUNT_TRACE=OFF (CMake) compiles every site away entirely: the
//    TraceSpan constructor is empty, trace_active() is constant false, and
//    the guarded lane bookkeeping folds out — the same pattern as NullProbe.
//
// Tracing observes wall time only. No instrumentation site touches any Rng,
// so traced and untraced runs produce BIT-IDENTICAL estimates (pinned by
// tests/obs/trace_test.cpp).
//
// Event names and categories must be STRING LITERALS (or otherwise outlive
// the recorder): events store the pointers, never copies.
//
// Threading contract: record() is wait-free and safe from any thread;
// events()/drain snapshots take the registration mutex and must only run
// when the traced work has quiesced (e.g. after ParallelRunner::run
// returned, which happens-after every worker's writes). The exporter is
// called at end of run, not concurrently with the hot path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/contracts.hpp"

// Compile-time master switch. The build defines OVERCOUNT_TRACE_ENABLED=0
// when configured with -DOVERCOUNT_TRACE=OFF; default is on.
#ifndef OVERCOUNT_TRACE_ENABLED
#define OVERCOUNT_TRACE_ENABLED 1
#endif

namespace overcount {

/// One recorded trace event. `phase` follows the Chrome trace_event format:
/// 'X' = complete span (ts + dur), 'i' = instant, and the flow triplet
/// 's'/'t'/'f' (flow start / step / end) that draws causal arrows between
/// slices on different threads — the mechanism that links one walk's hops
/// across shard handoffs. Flow events carry `flow` as their binding id.
struct TraceEvent {
  const char* name = nullptr;  ///< static string literal
  const char* cat = nullptr;   ///< static category literal
  char phase = 'X';
  std::uint32_t tid = 0;       ///< dense recorder-assigned thread id
  std::uint64_t ts_us = 0;     ///< microseconds since recorder epoch
  std::uint64_t dur_us = 0;    ///< span duration ('X' only)
  const char* arg_name = nullptr;  ///< optional argument key (static literal)
  std::uint64_t arg = 0;           ///< argument value
  std::uint64_t flow = 0;          ///< flow binding id ('s'/'t'/'f' only)
};

/// Collects TraceEvents from any number of threads into per-thread ring
/// buffers. One recorder is "installed" globally at a time; instrumentation
/// sites pick it up through TraceRecorder::active().
class TraceRecorder {
 public:
  /// `events_per_thread` is rounded up to a power of two; each thread that
  /// records gets its own ring of that many slots, overwriting the oldest
  /// event when full.
  explicit TraceRecorder(std::size_t events_per_thread = std::size_t{1} << 16)
      : capacity_(round_up_pow2(events_per_thread)),
        id_(next_instance_id().fetch_add(1, std::memory_order_relaxed) + 1),
        epoch_(std::chrono::steady_clock::now()) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  ~TraceRecorder() {
    // An installed recorder must never be destroyed: sites could be holding
    // the pointer mid-span.
    OVERCOUNT_EXPECTS(active() != this);
  }

  /// Makes this the process-wide active recorder (replacing any previous
  /// one). Sites observe the switch on their next event.
  void install() noexcept {
    active_recorder().store(this, std::memory_order_release);
  }
  /// Clears the active recorder if it is this one.
  void uninstall() noexcept {
    TraceRecorder* expected = this;
    active_recorder().compare_exchange_strong(expected, nullptr,
                                              std::memory_order_acq_rel);
  }
  /// The currently installed recorder, or nullptr.
  static TraceRecorder* active() noexcept {
    return active_recorder().load(std::memory_order_acquire);
  }

  /// Microseconds since this recorder's construction.
  std::uint64_t now_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Appends one event to the calling thread's ring (wait-free; `tid` is
  /// filled in from the thread's registration).
  void record(TraceEvent e) noexcept {
    Ring& ring = ring_for_this_thread();
    e.tid = ring.tid;
    const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
    ring.slots[head & (capacity_ - 1)] = e;
    ring.head.store(head + 1, std::memory_order_release);
  }

  /// Convenience: records a complete span that started at `start_us`.
  void record_complete(const char* cat, const char* name,
                       std::uint64_t start_us, const char* arg_name = nullptr,
                       std::uint64_t arg = 0) noexcept {
    record(TraceEvent{name, cat, 'X', 0, start_us, now_us() - start_us,
                      arg_name, arg});
  }

  /// Convenience: records an instant event stamped now.
  void record_instant(const char* cat, const char* name,
                      const char* arg_name = nullptr,
                      std::uint64_t arg = 0) noexcept {
    record(TraceEvent{name, cat, 'i', 0, now_us(), 0, arg_name, arg, 0});
  }

  /// Convenience: records a flow event stamped now. `phase` must be 's'
  /// (flow start), 't' (step) or 'f' (end); Perfetto draws an arrow between
  /// consecutive flow events sharing `flow_id`, each attaching to the slice
  /// enclosing it on its thread.
  void record_flow(const char* cat, const char* name, char phase,
                   std::uint64_t flow_id, const char* arg_name = nullptr,
                   std::uint64_t arg = 0) noexcept {
    record(TraceEvent{name, cat, phase, 0, now_us(), 0, arg_name, arg,
                      flow_id});
  }

  /// Hands out process-unique flow-id blocks: a caller seeding m walks grabs
  /// `reserve_flow_ids(m)` once and assigns base+walk to each, so ids never
  /// collide across batches, engines or recorder reinstalls. Never returns 0
  /// (0 means "untraced" in WalkToken).
  static std::uint64_t reserve_flow_ids(std::uint64_t count) noexcept {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(count, std::memory_order_relaxed);
  }

  /// Snapshot of all recorded events, oldest-first per thread, merged and
  /// sorted by timestamp. Call only when recording threads have quiesced
  /// (see file comment); the per-ring drop counts are NOT reset.
  std::vector<TraceEvent> events() const;

  /// Events lost to ring overwrites, summed over threads.
  std::uint64_t dropped_events() const noexcept {
    std::lock_guard lock(mutex_);
    std::uint64_t dropped = 0;
    for (const auto& ring : rings_) {
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      if (head > capacity_) dropped += head - capacity_;
    }
    return dropped;
  }

  /// Number of threads that have recorded at least one event.
  std::size_t thread_count() const noexcept {
    std::lock_guard lock(mutex_);
    return rings_.size();
  }

  std::size_t capacity_per_thread() const noexcept { return capacity_; }

 private:
  struct Ring {
    explicit Ring(std::size_t capacity, std::uint32_t thread_id)
        : slots(capacity), tid(thread_id) {}
    std::vector<TraceEvent> slots;
    std::atomic<std::uint64_t> head{0};  // total events ever written
    std::uint32_t tid;
  };

  static std::size_t round_up_pow2(std::size_t v) noexcept {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  static std::atomic<TraceRecorder*>& active_recorder() noexcept {
    static std::atomic<TraceRecorder*> g{nullptr};
    return g;
  }
  static std::atomic<std::uint64_t>& next_instance_id() noexcept {
    static std::atomic<std::uint64_t> g{0};
    return g;
  }

  /// The calling thread's ring, registering it on first use. The (recorder
  /// instance id, ring) pair is cached thread-locally, so the steady state
  /// is two thread-local reads; instance ids are process-unique, so a cache
  /// entry can never alias a different recorder.
  Ring& ring_for_this_thread() noexcept {
    thread_local std::uint64_t cached_id = 0;
    thread_local Ring* cached_ring = nullptr;
    if (cached_id != id_) {
      std::lock_guard lock(mutex_);
      rings_.push_back(std::make_unique<Ring>(
          capacity_, static_cast<std::uint32_t>(rings_.size())));
      cached_ring = rings_.back().get();
      cached_id = id_;
    }
    return *cached_ring;
  }

  const std::size_t capacity_;
  const std::uint64_t id_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;  // guarded by mutex_
};

#if OVERCOUNT_TRACE_ENABLED

/// True when a recorder is installed: hoist this out of hot loops to guard
/// per-item timestamping (the kernels check once per kernel call).
inline bool trace_active() noexcept {
  return TraceRecorder::active() != nullptr;
}

/// Timestamp on the active recorder's clock; 0 when none is installed.
/// Only meaningful to pass back into trace_complete().
inline std::uint64_t trace_now_us() noexcept {
  TraceRecorder* rec = TraceRecorder::active();
  return rec != nullptr ? rec->now_us() : 0;
}

/// Records a complete span [start_us, now] if a recorder is installed.
inline void trace_complete(const char* cat, const char* name,
                           std::uint64_t start_us,
                           const char* arg_name = nullptr,
                           std::uint64_t arg = 0) noexcept {
  if (TraceRecorder* rec = TraceRecorder::active(); rec != nullptr)
    rec->record_complete(cat, name, start_us, arg_name, arg);
}

/// Records an instant event if a recorder is installed.
inline void trace_instant(const char* cat, const char* name,
                          const char* arg_name = nullptr,
                          std::uint64_t arg = 0) noexcept {
  if (TraceRecorder* rec = TraceRecorder::active(); rec != nullptr)
    rec->record_instant(cat, name, arg_name, arg);
}

/// Records a flow event ('s'/'t'/'f') if a recorder is installed. No-op for
/// flow_id 0, the "untraced" sentinel, so callers can pass a token's flow id
/// through unconditionally.
inline void trace_flow(const char* cat, const char* name, char phase,
                       std::uint64_t flow_id, const char* arg_name = nullptr,
                       std::uint64_t arg = 0) noexcept {
  if (flow_id == 0) return;
  if (TraceRecorder* rec = TraceRecorder::active(); rec != nullptr)
    rec->record_flow(cat, name, phase, flow_id, arg_name, arg);
}

/// RAII complete-span scope: stamps construction, records on destruction.
/// One atomic load when no recorder is installed.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name,
            const char* arg_name = nullptr, std::uint64_t arg = 0) noexcept
      : rec_(TraceRecorder::active()),
        cat_(cat),
        name_(name),
        arg_name_(arg_name),
        arg_(arg),
        start_us_(rec_ != nullptr ? rec_->now_us() : 0) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Overrides the span argument (e.g. a result only known at scope end).
  void set_arg(std::uint64_t v) noexcept { arg_ = v; }

  ~TraceSpan() {
    if (rec_ != nullptr)
      rec_->record_complete(cat_, name_, start_us_, arg_name_, arg_);
  }

 private:
  TraceRecorder* rec_;
  const char* cat_;
  const char* name_;
  const char* arg_name_;
  std::uint64_t arg_;
  std::uint64_t start_us_;
};

#else  // OVERCOUNT_TRACE_ENABLED == 0: every site compiles to nothing.

inline constexpr bool trace_active() noexcept { return false; }
inline constexpr std::uint64_t trace_now_us() noexcept { return 0; }
inline void trace_complete(const char*, const char*, std::uint64_t,
                           const char* = nullptr, std::uint64_t = 0) noexcept {
}
inline void trace_instant(const char*, const char*, const char* = nullptr,
                          std::uint64_t = 0) noexcept {}
inline void trace_flow(const char*, const char*, char, std::uint64_t,
                       const char* = nullptr, std::uint64_t = 0) noexcept {}

class TraceSpan {
 public:
  TraceSpan(const char*, const char*, const char* = nullptr,
            std::uint64_t = 0) noexcept {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  void set_arg(std::uint64_t) noexcept {}
};

#endif  // OVERCOUNT_TRACE_ENABLED

/// Serialises a recorder's events as Chrome/Perfetto `trace_event` JSON
/// (the {"traceEvents": [...]} wrapper, 'X'/'i' and flow 's'/'t'/'f'
/// phases, metadata events naming the process and threads). Load the file
/// at ui.perfetto.dev or chrome://tracing. Uses the obs/json writer; see
/// obs/trace.cpp.
void write_chrome_trace(std::ostream& os, const TraceRecorder& recorder,
                        const std::string& process_name = "overcount");

/// write_chrome_trace into `path`; returns false (with a stderr note) when
/// the file cannot be opened.
bool write_chrome_trace_file(const std::string& path,
                             const TraceRecorder& recorder,
                             const std::string& process_name = "overcount");

}  // namespace overcount

// Sliding-window aggregation over the most recent W observations, as used by
// the paper's evaluation (Figures 2, 6, 8-10 average Random Tour estimates
// over windows of 200 or 700 samples).
#pragma once

#include <cstddef>
#include <deque>

#include "util/contracts.hpp"

namespace overcount {

/// Mean over the last `capacity` values pushed; older values are evicted.
class SlidingWindowMean {
 public:
  explicit SlidingWindowMean(std::size_t capacity) : capacity_(capacity) {
    OVERCOUNT_EXPECTS(capacity > 0);
  }

  void push(double x) {
    window_.push_back(x);
    sum_ += x;
    if (window_.size() > capacity_) {
      sum_ -= window_.front();
      window_.pop_front();
    }
  }

  /// Mean of the current window; requires at least one pushed value.
  double mean() const {
    OVERCOUNT_EXPECTS(!window_.empty());
    return sum_ / static_cast<double>(window_.size());
  }

  std::size_t size() const noexcept { return window_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool full() const noexcept { return window_.size() == capacity_; }
  void clear() noexcept {
    window_.clear();
    sum_ = 0.0;
  }

 private:
  std::size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
};

}  // namespace overcount

#include "util/options.hpp"

#include <sstream>
#include <stdexcept>

#include "util/contracts.hpp"

namespace overcount {

void Options::add(const std::string& name, const std::string& default_value,
                  const std::string& help) {
  OVERCOUNT_EXPECTS(!name.empty());
  OVERCOUNT_EXPECTS(!specs_.contains(name));
  specs_[name] = Spec{default_value, help, false};
}

void Options::add_flag(const std::string& name, const std::string& help) {
  OVERCOUNT_EXPECTS(!name.empty());
  OVERCOUNT_EXPECTS(!specs_.contains(name));
  specs_[name] = Spec{"", help, true};
}

void Options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    const auto it = specs_.find(name);
    if (it == specs_.end())
      throw std::runtime_error("unknown option --" + name);
    if (it->second.is_flag) {
      if (have_value)
        throw std::runtime_error("flag --" + name + " takes no value");
      values_[name] = "1";
      continue;
    }
    if (!have_value) {
      if (i + 1 >= argc)
        throw std::runtime_error("option --" + name + " needs a value");
      value = argv[++i];
    }
    values_[name] = std::move(value);
  }
}

bool Options::has(const std::string& name) const {
  return values_.contains(name);
}

std::string Options::get(const std::string& name) const {
  const auto spec = specs_.find(name);
  OVERCOUNT_EXPECTS(spec != specs_.end());
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : spec->second.default_value;
}

std::int64_t Options::get_int(const std::string& name) const {
  const std::string v = get(name);
  std::size_t used = 0;
  const auto out = std::stoll(v, &used);
  if (used != v.size())
    throw std::runtime_error("option --" + name + ": '" + v +
                             "' is not an integer");
  return out;
}

double Options::get_double(const std::string& name) const {
  const std::string v = get(name);
  std::size_t used = 0;
  const double out = std::stod(v, &used);
  if (used != v.size())
    throw std::runtime_error("option --" + name + ": '" + v +
                             "' is not a number");
  return out;
}

bool Options::get_flag(const std::string& name) const {
  const auto spec = specs_.find(name);
  OVERCOUNT_EXPECTS(spec != specs_.end());
  OVERCOUNT_EXPECTS(spec->second.is_flag);
  return values_.contains(name);
}

std::string Options::usage(const std::string& program) const {
  std::ostringstream ss;
  ss << "usage: " << program << " [options]\n";
  for (const auto& [name, spec] : specs_) {
    ss << "  --" << name;
    if (!spec.is_flag) ss << "=<" << spec.default_value << ">";
    ss << "  " << spec.help << '\n';
  }
  return ss.str();
}

}  // namespace overcount

#include "util/rng.hpp"

#include <cmath>

namespace overcount {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_positive() noexcept {
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return u;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  OVERCOUNT_EXPECTS(lo <= hi);
  const auto range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(uniform_below(range));
}

double Rng::exponential(double rate) {
  OVERCOUNT_EXPECTS(rate > 0.0);
  return -std::log(uniform_positive()) / rate;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::split() noexcept {
  std::uint64_t s = next();
  return Rng(splitmix64(s));
}

}  // namespace overcount

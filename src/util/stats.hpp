// Streaming and batch statistics used throughout the evaluation harness:
// Welford running moments, empirical CDFs/quantiles, and histograms.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace overcount {

/// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  /// Mean of the observations; 0 when empty.
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const noexcept;
  /// Population variance (divide by n); 0 when empty.
  double population_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Empirical cumulative distribution function over a fixed sample.
class Ecdf {
 public:
  explicit Ecdf(std::vector<double> samples);

  /// P(X <= x) under the empirical measure.
  double operator()(double x) const noexcept;

  /// Empirical quantile, q in [0,1]; q=0 -> min, q=1 -> max.
  double quantile(double q) const;

  std::size_t size() const noexcept { return sorted_.size(); }
  const std::vector<double>& sorted() const noexcept { return sorted_; }

  /// Kolmogorov-Smirnov distance to another ECDF (two-sample statistic).
  double ks_distance(const Ecdf& other) const noexcept;

 private:
  std::vector<double> sorted_;
};

/// Fixed-range equal-width histogram.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;  // out-of-range values land in edge bins
  std::size_t bin_count(std::size_t bin) const;
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Mean of the values in the span; requires non-empty.
double mean_of(std::span<const double> xs);
/// Unbiased sample variance; requires at least two values.
double variance_of(std::span<const double> xs);

}  // namespace overcount

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace overcount {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::population_variance() const noexcept {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  OVERCOUNT_EXPECTS(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  OVERCOUNT_EXPECTS(q >= 0.0 && q <= 1.0);
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[idx] * (1.0 - frac) + sorted_[idx + 1] * frac;
}

double Ecdf::ks_distance(const Ecdf& other) const noexcept {
  double d = 0.0;
  for (double x : sorted_) d = std::max(d, std::abs((*this)(x) - other(x)));
  for (double x : other.sorted_)
    d = std::max(d, std::abs((*this)(x) - other(x)));
  return d;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  OVERCOUNT_EXPECTS(bins > 0);
  OVERCOUNT_EXPECTS(lo < hi);
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(bins()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  OVERCOUNT_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  OVERCOUNT_EXPECTS(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(bins());
}

double Histogram::bin_hi(std::size_t bin) const {
  OVERCOUNT_EXPECTS(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
                   static_cast<double>(bins());
}

double mean_of(std::span<const double> xs) {
  OVERCOUNT_EXPECTS(!xs.empty());
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double variance_of(std::span<const double> xs) {
  OVERCOUNT_EXPECTS(xs.size() >= 2);
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.variance();
}

}  // namespace overcount

// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 / I.8): preconditions and postconditions are asserted at runtime and
// throw std::logic_error so that violations are testable and never silently
// corrupt a simulation.
#pragma once

#include <stdexcept>
#include <string>

namespace overcount {

/// Thrown when a precondition (Expects) is violated.
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a postcondition or internal invariant (Ensures) is violated.
class postcondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void fail_expects(const char* expr, const char* file,
                                      int line) {
  throw precondition_error(std::string("precondition failed: ") + expr +
                           " at " + file + ":" + std::to_string(line));
}
[[noreturn]] inline void fail_ensures(const char* expr, const char* file,
                                      int line) {
  throw postcondition_error(std::string("postcondition failed: ") + expr +
                            " at " + file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace overcount

#define OVERCOUNT_EXPECTS(cond)                                        \
  do {                                                                 \
    if (!(cond))                                                       \
      ::overcount::detail::fail_expects(#cond, __FILE__, __LINE__);    \
  } while (false)

#define OVERCOUNT_ENSURES(cond)                                        \
  do {                                                                 \
    if (!(cond))                                                       \
      ::overcount::detail::fail_ensures(#cond, __FILE__, __LINE__);    \
  } while (false)

// Per-step ("hot") contract checks: the preconditions asserted on EVERY walk
// step (random_neighbor's non-empty neighbour list, the CTRW inner loop's
// positive degree). They fire millions of times per second in the
// interleaved walk kernel, so plain Release builds compile them out — the
// top-level CMakeLists defines OVERCOUNT_HOT_CHECKS=0 for Release when no
// sanitizer is configured. Debug, RelWithDebInfo and every sanitizer build
// keep them on. Boundary checks at walk and batch ENTRY points (origin
// validity, positive timer, non-empty graph) are deliberately ordinary
// OVERCOUNT_EXPECTS and stay on in all builds: they run once per batch, not
// once per step.
#ifndef OVERCOUNT_HOT_CHECKS
#define OVERCOUNT_HOT_CHECKS 1
#endif

#if OVERCOUNT_HOT_CHECKS
#define OVERCOUNT_HOT_EXPECTS(cond) OVERCOUNT_EXPECTS(cond)
#else
#define OVERCOUNT_HOT_EXPECTS(cond) \
  do {                              \
  } while (false)
#endif

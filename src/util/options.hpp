// Minimal command-line option parsing for the examples and bench binaries:
// --name=value / --name value / --flag, with typed accessors, defaults, and
// a generated usage string. No external dependencies, no global state.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace overcount {

/// Parsed command line. Unknown options throw at parse time so typos fail
/// loudly; positional arguments are collected in order.
class Options {
 public:
  /// Declares an option before parsing. `help` feeds usage().
  void add(const std::string& name, const std::string& default_value,
           const std::string& help);
  /// Declares a boolean flag (present => true).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv; throws std::runtime_error on unknown/malformed options.
  void parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// "--name=<default>  help" lines, one per declared option.
  std::string usage(const std::string& program) const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace overcount

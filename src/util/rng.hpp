// Deterministic, splittable pseudo-random number generation.
//
// All randomness in the library flows through Rng so that every experiment is
// reproducible from a single 64-bit seed. The generator is xoshiro256++
// (Blackman & Vigna), seeded through splitmix64 as its authors recommend.
// Rng::split() derives an independent stream, which lets concurrent
// components (nodes, protocols, scenario drivers) draw without coupling their
// sequences.
#pragma once

#include <array>
#include <cstdint>

#include "util/contracts.hpp"

namespace overcount {

/// splitmix64 step; used for seeding and for stream derivation.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ PRNG with convenience distributions.
///
/// Satisfies std::uniform_random_bit_generator, so it can also be plugged
/// into <random> distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via splitmix64(seed).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [0, 1); never returns exactly 0 (safe for log()).
  double uniform_positive() noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (Lemire's multiply-shift with rejection).
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential variate with the given rate (mean 1/rate). Requires rate>0.
  double exponential(double rate);

  /// Bernoulli trial with success probability p in [0,1].
  bool bernoulli(double p) noexcept;

  /// Derives an independent generator; deterministic given this Rng's state.
  /// The parent's state advances, so successive split() calls yield distinct
  /// children.
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace overcount

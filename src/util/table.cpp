#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace overcount {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  OVERCOUNT_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  OVERCOUNT_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left
         << row[c] << " |";
    os << '\n';
  };

  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string format_double(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

void print_series(std::ostream& os, const std::string& title,
                  const std::vector<Series>& series) {
  os << "# figure: " << title << '\n';
  for (const auto& s : series) {
    os << "# series: " << s.name << " (" << s.xs.size() << " points)\n";
    for (std::size_t i = 0; i < s.xs.size(); ++i)
      os << s.name << ' ' << format_double(s.xs[i], 6) << ' '
         << format_double(s.ys[i], 6) << '\n';
  }
}

void ascii_plot(std::ostream& os, const Series& series, int width,
                int height) {
  OVERCOUNT_EXPECTS(width > 4 && height > 2);
  if (series.xs.empty()) {
    os << "(empty series: " << series.name << ")\n";
    return;
  }
  const auto [ymin_it, ymax_it] =
      std::minmax_element(series.ys.begin(), series.ys.end());
  double ymin = *ymin_it;
  double ymax = *ymax_it;
  if (ymax - ymin < 1e-12) {
    ymin -= 1.0;
    ymax += 1.0;
  }
  const auto [xmin_it, xmax_it] =
      std::minmax_element(series.xs.begin(), series.xs.end());
  const double xmin = *xmin_it;
  const double xmax = std::max(*xmax_it, xmin + 1e-12);

  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width),
                                              ' '));
  for (std::size_t i = 0; i < series.xs.size(); ++i) {
    const double tx = (series.xs[i] - xmin) / (xmax - xmin);
    const double ty = (series.ys[i] - ymin) / (ymax - ymin);
    auto col = static_cast<std::size_t>(tx * (width - 1));
    auto row = static_cast<std::size_t>((1.0 - ty) * (height - 1));
    canvas[row][col] = '*';
  }
  os << "## " << series.name << "  y:[" << format_double(ymin, 2) << ", "
     << format_double(ymax, 2) << "]  x:[" << format_double(xmin, 2) << ", "
     << format_double(xmax, 2) << "]\n";
  for (const auto& line : canvas) os << '|' << line << "|\n";
}

void print_counters(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& counters) {
  OVERCOUNT_EXPECTS(!counters.empty());
  std::vector<std::string> header, row;
  header.reserve(counters.size());
  row.reserve(counters.size());
  for (const auto& [name, value] : counters) {
    header.push_back(name);
    row.push_back(value);
  }
  TextTable table(std::move(header));
  table.add_row(std::move(row));
  table.print(os);
}

}  // namespace overcount

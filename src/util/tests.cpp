#include "util/tests.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace overcount {

namespace {

// Regularised incomplete gamma by series expansion (x < s+1).
double gamma_p_series(double s, double x) {
  double term = 1.0 / s;
  double sum = term;
  for (int n = 1; n < 500; ++n) {
    term *= x / (s + n);
    sum += term;
    if (term < sum * 1e-15) break;
  }
  return sum * std::exp(-x + s * std::log(x) - std::lgamma(s));
}

// Regularised complementary incomplete gamma by continued fraction (x>=s+1).
double gamma_q_cf(double s, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - s;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -i * (i - s);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return std::exp(-x + s * std::log(x) - std::lgamma(s)) * h;
}

}  // namespace

double gamma_p(double s, double x) {
  OVERCOUNT_EXPECTS(s > 0.0);
  if (x <= 0.0) return 0.0;
  return x < s + 1.0 ? gamma_p_series(s, x) : 1.0 - gamma_q_cf(s, x);
}

double erlang_cdf(int k, double rate, double x) {
  OVERCOUNT_EXPECTS(k > 0);
  OVERCOUNT_EXPECTS(rate > 0.0);
  if (x <= 0.0) return 0.0;
  return gamma_p(static_cast<double>(k), rate * x);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

ChiSquareResult chi_square_test(std::span<const double> observed,
                                std::span<const double> expected) {
  OVERCOUNT_EXPECTS(!observed.empty());
  OVERCOUNT_EXPECTS(observed.size() == expected.size());
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    OVERCOUNT_EXPECTS(expected[i] > 0.0);
    const double diff = observed[i] - expected[i];
    stat += diff * diff / expected[i];
  }
  ChiSquareResult r;
  r.statistic = stat;
  r.dof = static_cast<double>(observed.size() - 1);
  if (r.dof <= 0.0) {
    r.p_value = 1.0;
  } else {
    // p = Q(dof/2, stat/2) via the exact regularised gamma.
    r.p_value = 1.0 - gamma_p(r.dof / 2.0, stat / 2.0);
  }
  return r;
}

ChiSquareResult chi_square_uniform(std::span<const std::size_t> observed) {
  OVERCOUNT_EXPECTS(!observed.empty());
  std::size_t total = 0;
  for (auto c : observed) total += c;
  OVERCOUNT_EXPECTS(total > 0);
  std::vector<double> obs(observed.size());
  std::vector<double> exp(observed.size(),
                          static_cast<double>(total) /
                              static_cast<double>(observed.size()));
  for (std::size_t i = 0; i < observed.size(); ++i)
    obs[i] = static_cast<double>(observed[i]);
  return chi_square_test(obs, exp);
}

KsResult ks_test(std::vector<double> samples,
                 const std::function<double(double)>& cdf) {
  OVERCOUNT_EXPECTS(!samples.empty());
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(f - lo), std::abs(f - hi)});
  }
  KsResult r;
  r.statistic = d;
  // Asymptotic Kolmogorov distribution with the small-sample correction
  // suggested by Stephens: use sqrt(n) + 0.12 + 0.11/sqrt(n).
  const double sqn = std::sqrt(n);
  const double lambda = (sqn + 0.12 + 0.11 / sqn) * d;
  double p = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    p += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  r.p_value = std::clamp(2.0 * p, 0.0, 1.0);
  return r;
}

}  // namespace overcount

// Goodness-of-fit test statistics used by the property-test suites and the
// sampling-quality benches: Pearson chi-square (with Wilson-Hilferty p-value
// approximation) and one-sample Kolmogorov-Smirnov.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace overcount {

struct ChiSquareResult {
  double statistic = 0.0;
  double dof = 0.0;
  /// Approximate p-value (Wilson-Hilferty); accurate enough for
  /// accept/reject at conventional thresholds when dof >= ~5.
  double p_value = 1.0;
};

/// Pearson chi-square test of observed counts against expected counts.
/// Spans must be the same non-zero length; expected counts must be positive.
ChiSquareResult chi_square_test(std::span<const double> observed,
                                std::span<const double> expected);

/// Chi-square test of observed counts against the uniform distribution.
ChiSquareResult chi_square_uniform(std::span<const std::size_t> observed);

struct KsResult {
  double statistic = 0.0;  // sup-norm distance
  double p_value = 1.0;    // asymptotic Kolmogorov distribution
};

/// One-sample KS test of `samples` against a continuous CDF.
KsResult ks_test(std::vector<double> samples,
                 const std::function<double(double)>& cdf);

/// Standard normal CDF.
double normal_cdf(double x);

/// Regularised lower incomplete gamma P(s, x) via series/continued fraction;
/// used for exact chi-square and Erlang CDFs.
double gamma_p(double s, double x);

/// CDF of the Erlang(k, rate) distribution (sum of k exponentials).
double erlang_cdf(int k, double rate, double x);

}  // namespace overcount

// Plain-text table and data-series printers used by the bench harness to
// emit each paper table / figure in a uniform, diff-friendly format.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace overcount {

/// Column-aligned ASCII table. Cells are strings; format_cell helpers below
/// render doubles compactly.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Renders with a header underline; every row padded to the widest cell.
  void print(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision rendering of a double (default 4 significant decimals).
std::string format_double(double v, int precision = 4);

/// A named (x, y) series: one line per point, `# name` header — the exact
/// shape a plotting script or eyeball needs to compare against the paper's
/// figures.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;

  void add(double x, double y) {
    xs.push_back(x);
    ys.push_back(y);
  }
};

/// Prints `# figure: <title>` then each series as "name x y" rows.
void print_series(std::ostream& os, const std::string& title,
                  const std::vector<Series>& series);

/// Coarse ASCII plot (for quick shape checks in the terminal): y range is
/// auto-scaled, one column per x bucket.
void ascii_plot(std::ostream& os, const Series& series, int width = 72,
                int height = 16);

/// Renders "metric -> value" pairs as a one-row table (metrics as the
/// header, values as the single row). The bench harness uses this to
/// surface the per-batch runtime counters next to each figure.
void print_counters(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& counters);

}  // namespace overcount

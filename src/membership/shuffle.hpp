// Gossip-based membership management (the overlay-maintenance layer the
// paper's evaluation presumes: [16] "peer-to-peer membership management for
// gossip-based protocols", [22] "gossip-based peer sampling"). Each peer
// keeps a small partial view of c neighbour descriptors; periodically it
// picks a random view entry and the pair exchange halves of their views.
// The union of views forms exactly the kind of bounded-degree, well-mixing
// random overlay on which Random Tour and Sample & Collide are meant to
// run — so this module closes the loop from "maintain an overlay" to
// "measure it".
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace overcount {

/// Synchronous-round simulation of a view-shuffling membership protocol.
class ShuffleMembership {
 public:
  /// Bootstraps n peers with views of size `view_size`, initialised from a
  /// ring plus random entries (every deployment needs SOME seed graph).
  /// Requires n > view_size >= 2.
  ShuffleMembership(std::size_t n, std::size_t view_size, Rng rng);

  std::size_t num_peers() const noexcept { return views_.size(); }
  std::size_t view_size() const noexcept { return view_size_; }

  /// Runs `rounds` shuffle rounds: in each round every peer (in random
  /// order) exchanges floor(view_size/2) entries with a random view member.
  void run_rounds(std::size_t rounds);

  /// The current view of peer v (list of neighbour ids, no duplicates,
  /// never contains v).
  const std::vector<NodeId>& view_of(NodeId v) const {
    OVERCOUNT_EXPECTS(v < views_.size());
    return views_[v];
  }

  /// Undirected overlay induced by the views (edge iff either side holds
  /// the other in its view). This is the graph the estimators walk on.
  Graph overlay() const;

  /// In-degree distribution summary: how many views contain each peer.
  /// Healthy shuffling keeps this concentrated around view_size.
  std::vector<std::size_t> in_degree_histogram() const;

  /// A new peer joins via `contact`: it copies a shuffled half of the
  /// contact's view and is inserted into `view_size` random peers' views
  /// (subscription forwarding, SCAMP-style). Returns the new peer's id.
  NodeId join(NodeId contact);

  /// Peer `v` departs ungracefully: its own view is emptied and every
  /// stale reference to it is purged lazily on the next shuffle touch —
  /// here purged eagerly for simplicity. Ids are never reused.
  void leave(NodeId v);

  /// True while the peer participates (has not left).
  bool participating(NodeId v) const {
    OVERCOUNT_EXPECTS(v < views_.size());
    return !left_[v];
  }

  /// Checks structural invariants (sizes, no self/duplicate entries).
  bool check_invariants() const;

 private:
  std::size_t view_size_;
  std::vector<std::vector<NodeId>> views_;
  std::vector<bool> left_;
  Rng rng_;

  void insert_into_view(NodeId owner, NodeId entry);
};

}  // namespace overcount

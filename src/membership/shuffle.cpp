#include "membership/shuffle.hpp"

#include <algorithm>
#include <numeric>

namespace overcount {

ShuffleMembership::ShuffleMembership(std::size_t n, std::size_t view_size,
                                     Rng rng)
    : view_size_(view_size), views_(n), left_(n, false), rng_(rng) {
  OVERCOUNT_EXPECTS(view_size >= 2);
  OVERCOUNT_EXPECTS(n > view_size);
  // Seed views: ring successors plus random fill — connected from round 0.
  for (NodeId v = 0; v < n; ++v) {
    views_[v].push_back(static_cast<NodeId>((v + 1) % n));
    while (views_[v].size() < view_size_) {
      const auto cand = static_cast<NodeId>(rng_.uniform_below(n));
      if (cand == v) continue;
      if (std::find(views_[v].begin(), views_[v].end(), cand) !=
          views_[v].end())
        continue;
      views_[v].push_back(cand);
    }
  }
}

void ShuffleMembership::insert_into_view(NodeId owner, NodeId entry) {
  if (entry == owner || left_[owner] || left_[entry]) return;
  auto& view = views_[owner];
  if (std::find(view.begin(), view.end(), entry) != view.end()) return;
  if (view.size() < view_size_) {
    view.push_back(entry);
  } else {
    view[rng_.uniform_below(view.size())] = entry;  // replace a random slot
  }
}

void ShuffleMembership::run_rounds(std::size_t rounds) {
  const std::size_t n = views_.size();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = n; i > 1; --i)
      std::swap(order[i - 1], order[rng_.uniform_below(i)]);
    for (const NodeId v : order) {
      if (left_[v]) continue;
      auto& mine = views_[v];
      if (mine.empty()) continue;
      const NodeId partner = mine[rng_.uniform_below(mine.size())];
      auto& theirs = views_[partner];
      // Exchange floor(view/2) randomly chosen entries; each side then
      // deduplicates against itself (entries equal to the receiver or
      // already present are re-rolled into keeping the old entry).
      const std::size_t swap_count = view_size_ / 2;
      for (std::size_t k = 0; k < swap_count; ++k) {
        if (mine.empty() || theirs.empty()) break;
        const std::size_t mi = rng_.uniform_below(mine.size());
        const std::size_t ti = rng_.uniform_below(theirs.size());
        const NodeId to_them = mine[mi];
        const NodeId to_me = theirs[ti];
        const bool they_can =
            to_them != partner &&
            std::find(theirs.begin(), theirs.end(), to_them) == theirs.end();
        const bool i_can =
            to_me != v &&
            std::find(mine.begin(), mine.end(), to_me) == mine.end();
        if (they_can && i_can) {
          mine[mi] = to_me;
          theirs[ti] = to_them;
        }
      }
    }
  }
}

Graph ShuffleMembership::overlay() const {
  const std::size_t n = views_.size();
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v)
    for (NodeId u : views_[v])
      if (!b.has_edge(v, u)) b.add_edge(v, u);
  return b.build();
}

std::vector<std::size_t> ShuffleMembership::in_degree_histogram() const {
  std::vector<std::size_t> in_degree(views_.size(), 0);
  for (const auto& view : views_)
    for (NodeId u : view) ++in_degree[u];
  return in_degree;
}

NodeId ShuffleMembership::join(NodeId contact) {
  OVERCOUNT_EXPECTS(contact < views_.size());
  OVERCOUNT_EXPECTS(!left_[contact]);
  const auto me = static_cast<NodeId>(views_.size());
  views_.emplace_back();
  left_.push_back(false);
  // Copy a shuffled half of the contact's view, then the contact itself.
  auto seed_view = views_[contact];
  for (std::size_t i = seed_view.size(); i > 1; --i)
    std::swap(seed_view[i - 1], seed_view[rng_.uniform_below(i)]);
  for (std::size_t i = 0; i < seed_view.size() / 2; ++i)
    insert_into_view(me, seed_view[i]);
  insert_into_view(me, contact);
  // Subscription forwarding: place `view_size` copies of the newcomer into
  // random participating peers' views (SCAMP keeps the expected in-degree
  // ~ view size).
  std::size_t placed = 0;
  std::size_t attempts = 64 * view_size_;
  while (placed < view_size_ && attempts-- > 0) {
    const auto owner =
        static_cast<NodeId>(rng_.uniform_below(views_.size() - 1));
    if (left_[owner]) continue;
    insert_into_view(owner, me);
    ++placed;
  }
  return me;
}

void ShuffleMembership::leave(NodeId v) {
  OVERCOUNT_EXPECTS(v < views_.size());
  OVERCOUNT_EXPECTS(!left_[v]);
  left_[v] = true;
  views_[v].clear();
  views_[v].shrink_to_fit();
  for (auto& view : views_)
    view.erase(std::remove(view.begin(), view.end(), v), view.end());
}

bool ShuffleMembership::check_invariants() const {
  for (NodeId v = 0; v < views_.size(); ++v) {
    const auto& view = views_[v];
    if (left_[v] && !view.empty()) return false;
    if (view.size() > view_size_) return false;
    for (NodeId u : view)
      if (u == v || u >= views_.size() || left_[u]) return false;
    auto sorted = view;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
      return false;
  }
  return true;
}

}  // namespace overcount

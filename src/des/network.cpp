#include "des/network.hpp"

namespace overcount {

Network::Network(Simulator& sim, const DynamicGraph& graph,
                 LatencyModel latency, double loss_probability, Rng rng)
    : sim_(&sim),
      graph_(&graph),
      latency_(latency),
      loss_probability_(loss_probability),
      rng_(rng) {
  OVERCOUNT_EXPECTS(loss_probability >= 0.0 && loss_probability < 1.0);
}

void Network::send(NodeId from, NodeId to, std::any payload) {
  OVERCOUNT_EXPECTS(graph_->alive(from));
  OVERCOUNT_EXPECTS(static_cast<bool>(handler_));
  ++sent_;
  if (partition_ && partition_(from, to)) return;  // severed by a partition
  if (rng_.bernoulli(loss_probability_)) return;   // dropped in flight
  const double delay = latency_.sample(rng_);
  sim_->schedule_after(
      delay, [this, from, to, payload = std::move(payload)]() {
        if (!graph_->alive(to)) return;  // recipient departed mid-flight
        ++delivered_;
        handler_(to, from, payload);
      });
}

}  // namespace overcount

// Message-passing network layered on the discrete-event simulator.
//
// Models the overlay's communication substrate: a node may send to an
// overlay neighbour; the message arrives after a (random) latency unless it
// is lost — either dropped by the loss model or addressed to a peer that has
// meanwhile departed (the failure mode Section 5.3.1 discusses). Every send
// is counted, which is the cost metric ("overhead, specified as the number
// of messages") used in the paper's evaluation.
#pragma once

#include <any>
#include <cstdint>
#include <functional>

#include "des/simulator.hpp"
#include "graph/dynamic_graph.hpp"
#include "util/rng.hpp"

namespace overcount {

/// Per-message latency: base + Uniform[0, jitter).
struct LatencyModel {
  double base = 1.0;
  double jitter = 0.0;

  double sample(Rng& rng) const {
    OVERCOUNT_EXPECTS(base >= 0.0 && jitter >= 0.0);
    return base + (jitter > 0.0 ? rng.uniform() * jitter : 0.0);
  }
};

/// Unreliable unicast with delivery callbacks.
class Network {
 public:
  /// Handler invoked on delivery: (recipient, sender, payload).
  using Handler =
      std::function<void(NodeId to, NodeId from, const std::any& payload)>;

  Network(Simulator& sim, const DynamicGraph& graph, LatencyModel latency,
          double loss_probability, Rng rng);

  /// Installs the delivery handler (protocols dispatch on payload type).
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Sends `payload` from `from` to `to`. `from` must be alive. The message
  /// is lost (silently, after accounting) when the loss model fires or when
  /// `to` is dead at delivery time.
  void send(NodeId from, NodeId to, std::any payload);

  /// Changes the loss model mid-run (e.g. to compare protocols under
  /// different conditions on one network). Must stay in [0, 1).
  void set_loss_probability(double p) {
    OVERCOUNT_EXPECTS(p >= 0.0 && p < 1.0);
    loss_probability_ = p;
  }
  double loss_probability() const noexcept { return loss_probability_; }

  /// Installs a partition predicate: while it returns true for a (from, to)
  /// pair, messages between them are silently dropped (after accounting) —
  /// the network-split failure mode. Pass nullptr to heal.
  using PartitionFn = std::function<bool(NodeId from, NodeId to)>;
  void set_partition(PartitionFn partition) {
    partition_ = std::move(partition);
  }

  std::uint64_t messages_sent() const noexcept { return sent_; }
  std::uint64_t messages_delivered() const noexcept { return delivered_; }
  std::uint64_t messages_lost() const noexcept { return sent_ - delivered_; }

  const DynamicGraph& graph() const noexcept { return *graph_; }
  Simulator& simulator() noexcept { return *sim_; }
  Rng& rng() noexcept { return rng_; }

 private:
  Simulator* sim_;
  const DynamicGraph* graph_;
  LatencyModel latency_;
  double loss_probability_;
  Rng rng_;
  Handler handler_;
  PartitionFn partition_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace overcount

// Discrete-event simulation engine: a virtual clock plus an event queue.
// Events at equal timestamps fire in scheduling order (stable ties), so runs
// are fully deterministic given deterministic actions.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace overcount {

using SimTime = double;

/// Single-threaded discrete-event simulator.
class Simulator {
 public:
  using Action = std::function<void()>;
  using EventId = std::uint64_t;

  SimTime now() const noexcept { return now_; }
  bool empty() const noexcept { return queue_.size() == cancelled_.size(); }
  std::size_t pending() const noexcept {
    return queue_.size() - cancelled_.size();
  }
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Schedules `action` at absolute time t >= now(). Returns an id usable
  /// with cancel().
  EventId schedule_at(SimTime t, Action action);

  /// Schedules `action` `delay` time units from now (delay >= 0).
  EventId schedule_after(SimTime delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancels a pending event; cancelling an already-fired or unknown id is a
  /// harmless no-op (timers race with the messages they guard).
  void cancel(EventId id) {
    cancelled_.insert(id);
    if (cancelled_metric_ != nullptr) cancelled_metric_->inc();
  }

  /// Executes the single next event. Returns false when none remain.
  bool step();

  /// Runs until the queue drains or `max_events` have fired; returns the
  /// number of events executed by this call.
  std::uint64_t run(std::uint64_t max_events = ~0ULL);

  /// Runs events with time <= t_end and advances the clock to t_end.
  std::uint64_t run_until(SimTime t_end);

  /// Attaches an event-trace sink: from now on every fired event counts
  /// into `des.events`, every schedule into `des.scheduled`, every cancel
  /// request into `des.cancelled`, and each step records the pending-queue
  /// depth into the `des.queue_depth` log2 histogram. The registry is the
  /// same obs/metrics.hpp registry the walk probes feed, so one snapshot
  /// shows walk-level and simulator-level behaviour side by side. Pass the
  /// registry by reference; it must outlive the simulator. Detach with
  /// detach_metrics(). When no sink is attached (the default) the cost is a
  /// single null check per event.
  void attach_metrics(MetricsRegistry& registry) {
    events_ = &registry.counter("des.events");
    scheduled_ = &registry.counter("des.scheduled");
    cancelled_metric_ = &registry.counter("des.cancelled");
    queue_depth_ = &registry.histogram("des.queue_depth");
  }
  void detach_metrics() noexcept {
    events_ = nullptr;
    scheduled_ = nullptr;
    cancelled_metric_ = nullptr;
    queue_depth_ = nullptr;
  }

 private:
  struct Event {
    SimTime time;
    EventId id;
    // Ordering for the min-heap: earliest time first, then FIFO by id.
    bool operator>(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  // Actions live in a side map keyed by id so Event stays trivially movable
  // inside the heap.
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_map<EventId, Action> actions_;
  std::unordered_set<EventId> cancelled_;
  SimTime now_ = 0.0;
  EventId next_id_ = 0;
  std::uint64_t processed_ = 0;

  // Optional metrics sink (attach_metrics); null when detached.
  Counter* events_ = nullptr;
  Counter* scheduled_ = nullptr;
  Counter* cancelled_metric_ = nullptr;
  AtomicHistogram* queue_depth_ = nullptr;

  Action take_action(EventId id);
};

}  // namespace overcount

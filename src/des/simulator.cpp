#include "des/simulator.hpp"

// Header-only tracing, same layering note as runtime/parallel_runner.cpp:
// no overcount_obs symbols are referenced from the des library.
#include "obs/trace.hpp"

namespace overcount {

Simulator::EventId Simulator::schedule_at(SimTime t, Action action) {
  OVERCOUNT_EXPECTS(t >= now_);
  OVERCOUNT_EXPECTS(static_cast<bool>(action));
  const EventId id = next_id_++;
  queue_.push(Event{t, id});
  actions_.emplace(id, std::move(action));
  if (scheduled_ != nullptr) scheduled_->inc();
  return id;
}

Simulator::Action Simulator::take_action(EventId id) {
  const auto it = actions_.find(id);
  OVERCOUNT_ENSURES(it != actions_.end());
  Action a = std::move(it->second);
  actions_.erase(it);
  return a;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    if (const auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      actions_.erase(ev.id);
      continue;
    }
    OVERCOUNT_ENSURES(ev.time >= now_);
    now_ = ev.time;
    const Action action = take_action(ev.id);
    ++processed_;
    if (events_ != nullptr) {
      events_->inc();
      queue_depth_->record(pending());
    }
    if (trace_active()) {
      // Span per fired event, tagged with its id; sim-time is not wall-time,
      // so the span measures handler wall cost while `id` lets a Perfetto
      // query join against the schedule order.
      TraceSpan event_span("des", "des.event", "id", ev.id);
      action();
    } else {
      action();
    }
    return true;
  }
  return false;
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

std::uint64_t Simulator::run_until(SimTime t_end) {
  OVERCOUNT_EXPECTS(t_end >= now_);
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    if (cancelled_.contains(ev.id)) {
      queue_.pop();
      cancelled_.erase(ev.id);
      actions_.erase(ev.id);
      continue;
    }
    if (ev.time > t_end) break;
    step();
    ++executed;
  }
  now_ = t_end;
  return executed;
}

}  // namespace overcount

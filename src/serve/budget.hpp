// Accuracy-to-work translation: turns a request's (epsilon, delta) target
// into a tour/trial budget using the paper's error formulas, plus the
// graph profile (n, d_bar, lambda_2) those formulas need.
//
//  * Random Tours (Section 3.4, Chebyshev over Prop. 2's variance bound):
//    eps(m) = sqrt(2 d_bar / (lambda_2 m delta)), so the budget is the
//    inversion m = ceil(2 d_bar / (lambda_2 eps^2 delta)).
//  * Sample & Collide (Section 4, Lemma 2): one trial of accuracy ell has
//    relative MSE ~ 1/ell; the mean of k trials has variance ~ 1/(ell k),
//    and Chebyshev gives P(|err| > eps) <= 1/(ell k eps^2), so
//    k = ceil(1 / (ell eps^2 delta)).
//
// Budgets are clamped to [min_walks, max_walks] and the plan reports the
// epsilon the CLAMPED budget actually achieves — a response never claims a
// tighter half-width than the walks it ran can justify. The plan also
// carries the expected step cost (E[T_i] = 2|E| / d_i per tour, Section
// 3.2), which is what the service's admission control charges against its
// outstanding-step budget.
#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/graph.hpp"

namespace overcount {

/// The theory inputs of the error formulas for one snapshot, cached by the
/// service per topology version (the Lanczos gap is the expensive part).
struct GraphProfile {
  std::size_t nodes = 0;
  double avg_degree = 0.0;    ///< d_bar = 2|E| / n
  double lambda2 = 0.0;       ///< spectral gap of the snapshot
  std::size_t origin_degree = 0;
  std::uint64_t version = 0;  ///< topology version the profile reflects
};

/// Profiles `g` as seen at `version`. `lambda2_hint` > 0 skips the Lanczos
/// solve (a deployment that knows its topology class can pin the gap);
/// otherwise lambda_2 is estimated by spectral_gap_lanczos(g, lanczos_iters,
/// seed).
GraphProfile profile_graph(const Graph& g, NodeId origin,
                           std::uint64_t version, double lambda2_hint = 0.0,
                           std::size_t lanczos_iters = 96,
                           std::uint64_t seed = 1);

/// One planned batch: how many walks, what half-width they buy, and what
/// they are expected to cost in walk steps.
struct BudgetPlan {
  std::size_t walks = 0;        ///< tours (RT) or trials (S&C)
  double epsilon = 0.0;         ///< half-width the clamped budget achieves
  std::uint64_t expected_steps = 0;  ///< admission-control cost estimate
};

class BudgetPlanner {
 public:
  struct Limits {
    std::size_t min_walks = 8;
    std::size_t max_walks = 1 << 20;
  };

  BudgetPlanner() = default;
  explicit BudgetPlanner(Limits limits) : limits_(limits) {}

  /// Random Tour plan for a relative half-width `epsilon` at confidence
  /// 1 - `delta` on a graph shaped like `profile`.
  BudgetPlan plan_tours(const GraphProfile& profile, double epsilon,
                        double delta) const;

  /// Sample & Collide plan: k trials of accuracy `ell` each; expected cost
  /// uses the per-trial sample count ~ sqrt(2 ell n) (birthday bound) times
  /// `timer` * d_bar hops per CTRW sample.
  BudgetPlan plan_sc(const GraphProfile& profile, double epsilon,
                     double delta, std::size_t ell, double timer) const;

  /// eps(m): the half-width m tours achieve on `profile` at `delta`.
  static double tour_epsilon(const GraphProfile& profile, std::size_t m,
                             double delta);

  /// Half-width of the mean of k S&C trials of accuracy ell at `delta`.
  static double sc_epsilon(std::size_t k, std::size_t ell, double delta);

  const Limits& limits() const noexcept { return limits_; }

 private:
  std::size_t clamp(std::size_t walks) const;

  Limits limits_{};
};

}  // namespace overcount

#include "serve/budget.hpp"

#include <algorithm>
#include <cmath>

#include "spectral/laplacian.hpp"
#include "util/contracts.hpp"

namespace overcount {

GraphProfile profile_graph(const Graph& g, NodeId origin,
                           std::uint64_t version, double lambda2_hint,
                           std::size_t lanczos_iters, std::uint64_t seed) {
  OVERCOUNT_EXPECTS(g.num_nodes() > 0);
  OVERCOUNT_EXPECTS(origin < g.num_nodes());
  GraphProfile profile;
  profile.nodes = g.num_nodes();
  profile.avg_degree = static_cast<double>(g.total_degree()) /
                       static_cast<double>(g.num_nodes());
  profile.lambda2 = lambda2_hint > 0.0
                        ? lambda2_hint
                        : spectral_gap_lanczos(g, lanczos_iters, seed);
  profile.origin_degree = g.degree(origin);
  profile.version = version;
  return profile;
}

std::size_t BudgetPlanner::clamp(std::size_t walks) const {
  return std::clamp(walks, limits_.min_walks, limits_.max_walks);
}

double BudgetPlanner::tour_epsilon(const GraphProfile& profile, std::size_t m,
                                   double delta) {
  OVERCOUNT_EXPECTS(m > 0 && delta > 0.0);
  OVERCOUNT_EXPECTS(profile.lambda2 > 0.0 && profile.avg_degree > 0.0);
  return std::sqrt(2.0 * profile.avg_degree /
                   (profile.lambda2 * static_cast<double>(m) * delta));
}

double BudgetPlanner::sc_epsilon(std::size_t k, std::size_t ell,
                                 double delta) {
  OVERCOUNT_EXPECTS(k > 0 && ell > 0 && delta > 0.0);
  return std::sqrt(1.0 / (static_cast<double>(ell) *
                          static_cast<double>(k) * delta));
}

BudgetPlan BudgetPlanner::plan_tours(const GraphProfile& profile,
                                     double epsilon, double delta) const {
  OVERCOUNT_EXPECTS(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
  OVERCOUNT_EXPECTS(profile.lambda2 > 0.0 && profile.avg_degree > 0.0);
  OVERCOUNT_EXPECTS(profile.origin_degree > 0);
  // m = ceil(2 d_bar / (lambda_2 eps^2 delta)); the ceil keeps the achieved
  // half-width at or under the request even before clamping.
  const double exact = 2.0 * profile.avg_degree /
                       (profile.lambda2 * epsilon * epsilon * delta);
  const double capped = std::min(
      std::ceil(exact), static_cast<double>(limits_.max_walks));
  BudgetPlan plan;
  plan.walks = clamp(static_cast<std::size_t>(capped));
  plan.epsilon = tour_epsilon(profile, plan.walks, delta);
  // E[T_i] = 2|E| / d_i = n d_bar / d_origin steps per tour (Section 3.2).
  const double per_tour = static_cast<double>(profile.nodes) *
                          profile.avg_degree /
                          static_cast<double>(profile.origin_degree);
  plan.expected_steps = static_cast<std::uint64_t>(
      std::ceil(per_tour * static_cast<double>(plan.walks)));
  return plan;
}

BudgetPlan BudgetPlanner::plan_sc(const GraphProfile& profile, double epsilon,
                                  double delta, std::size_t ell,
                                  double timer) const {
  OVERCOUNT_EXPECTS(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
  OVERCOUNT_EXPECTS(ell > 0 && timer > 0.0);
  const double exact =
      1.0 / (static_cast<double>(ell) * epsilon * epsilon * delta);
  const double capped = std::min(
      std::ceil(exact), static_cast<double>(limits_.max_walks));
  BudgetPlan plan;
  plan.walks = clamp(static_cast<std::size_t>(capped));
  plan.epsilon = sc_epsilon(plan.walks, ell, delta);
  // Per trial: ~ sqrt(2 ell n) samples until ell collisions (birthday
  // bound), each a CTRW of ~ timer * d_bar hops (rate-d_v exponential
  // clocks spend ~1/d_v per hop).
  const double samples_per_trial =
      std::sqrt(2.0 * static_cast<double>(ell) *
                static_cast<double>(profile.nodes));
  const double hops_per_sample = timer * profile.avg_degree;
  plan.expected_steps = static_cast<std::uint64_t>(
      std::ceil(samples_per_trial * hops_per_sample *
                static_cast<double>(plan.walks)));
  return plan;
}

}  // namespace overcount

// Where the service gets the overlay from: a pair of callbacks instead of
// a graph reference, so the same EstimateService front end can serve a
// static Graph, a churning DynamicGraph, or (eventually) a remote overlay
// behind an RPC snapshot.
//
// The `version` callback is the cheap staleness probe — it backs cache
// invalidation and the churn-rate TTL scaling and is called on every
// query. The `snapshot` callback is the expensive one — it materialises a
// compacted static Graph for a batch and is only called when the broker
// actually dispatches one. Both are invoked from service threads
// concurrently with whoever mutates the underlying graph, so sources over
// mutable graphs MUST lock: the DynamicGraph helper below takes the
// caller's mutex for exactly that reason, and pairs every snapshot with
// the version observed under the SAME critical section (a snapshot
// without its version is unusable for invalidation — the serve cache
// would have nothing to compare against).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

#include "graph/dynamic_graph.hpp"
#include "graph/graph.hpp"
#include "serve/types.hpp"

namespace overcount {

/// One batch-ready view of the overlay: a compacted static graph, the
/// probing origin within it, and the topology version it reflects.
struct GraphSnapshot {
  Graph graph;
  NodeId origin = 0;
  std::uint64_t version = 0;
};

struct GraphSource {
  /// Materialises a snapshot; called on the broker thread per batch.
  std::function<GraphSnapshot()> snapshot;
  /// Current topology version; cheap, called on every query.
  std::function<std::uint64_t()> version;
};

/// Source over an immutable Graph: version is constant 0, snapshots are
/// copies. `origin` must have positive degree.
GraphSource static_graph_source(const Graph& g, NodeId origin = 0);

/// Source over a live DynamicGraph, synchronised by `mutex`: every access
/// (snapshot AND version) locks it, so the owner must take the same mutex
/// around churn. Snapshots compact the alive nodes and map
/// `preferred_origin` through; when it has died or lost all its edges the
/// lowest-id alive node with positive degree (deterministic for a given
/// churn history) stands in.
GraphSource dynamic_graph_source(const DynamicGraph& g, std::mutex& mutex,
                                 NodeId preferred_origin = 0);

}  // namespace overcount

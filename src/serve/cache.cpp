#include "serve/cache.hpp"

#include <algorithm>
#include <cmath>

namespace overcount {

void EstimateCache::observe_version(std::uint64_t version,
                                    std::uint64_t now_us) {
  if (!observed_) {
    observed_ = true;
    last_version_ = version;
    last_observation_us_ = now_us;
    return;
  }
  const std::uint64_t bumps =
      version >= last_version_ ? version - last_version_ : 0;
  const std::uint64_t dt_us =
      now_us >= last_observation_us_ ? now_us - last_observation_us_ : 0;
  last_version_ = version;
  last_observation_us_ = now_us;
  if (dt_us == 0) {
    // Same-instant observations (deterministic test clocks advance in
    // jumps) still count their bumps: fold them in as if dt were one tick.
    if (bumps > 0) churn_per_sec_ += static_cast<double>(bumps);
    return;
  }
  const double dt_s = static_cast<double>(dt_us) * 1e-6;
  const double instant_rate = static_cast<double>(bumps) / dt_s;
  const double window_s =
      static_cast<double>(std::max<std::uint64_t>(policy_.churn_window_us, 1))
      * 1e-6;
  // Irregular-interval EWMA: weight decays with the time actually elapsed.
  const double alpha = 1.0 - std::exp(-dt_s / window_s);
  churn_per_sec_ += alpha * (instant_rate - churn_per_sec_);
}

std::uint64_t EstimateCache::current_ttl_us() const {
  const double scale = 1.0 + churn_per_sec_ * policy_.churn_sensitivity;
  const double ttl = static_cast<double>(policy_.base_ttl_us) / scale;
  return std::max(policy_.min_ttl_us,
                  static_cast<std::uint64_t>(std::llround(ttl)));
}

EstimateCache::Lookup EstimateCache::find(const CacheKey& key, double epsilon,
                                          double delta,
                                          std::uint64_t current_version,
                                          std::uint64_t now_us) {
  Lookup result;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    result.outcome = CacheOutcome::kMissEmpty;
    return result;
  }
  const CacheEntry& entry = it->second;
  if (entry.graph_version != current_version) {
    entries_.erase(it);  // can never become valid again: version is monotone
    result.outcome = CacheOutcome::kMissStaleVersion;
    return result;
  }
  const std::uint64_t age_us =
      now_us >= entry.computed_at_us ? now_us - entry.computed_at_us : 0;
  if (age_us > current_ttl_us()) {
    result.outcome = CacheOutcome::kMissExpired;
    return result;  // kept: a refresh may supersede it under the same key
  }
  if (entry.epsilon > epsilon || entry.delta > delta) {
    result.outcome = CacheOutcome::kMissEpsilon;
    return result;  // kept: looser requests can still ride it
  }
  result.outcome = CacheOutcome::kHit;
  result.entry = entry;
  result.age_us = age_us;
  return result;
}

void EstimateCache::insert(const CacheKey& key, const CacheEntry& entry) {
  entries_[key] = entry;
}

const CacheEntry* EstimateCache::peek(const CacheKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::pair<CacheKey, CacheEntry>> EstimateCache::items() const {
  std::vector<std::pair<CacheKey, CacheEntry>> out;
  out.reserve(entries_.size());
  for (const auto& kv : entries_) out.push_back(kv);
  return out;
}

}  // namespace overcount

// Confidence-aware result cache for the estimate service.
//
// An entry is served only while THREE conditions hold at once:
//  * accuracy — the entry's half-width is at or under the request's
//    epsilon (and its delta at or under the request's): a looser request
//    can ride a tighter batch, never the reverse;
//  * version — the entry was computed at the CURRENT topology version; a
//    version bump (graph/dynamic_graph.hpp) invalidates it outright;
//  * freshness — the entry's age is within the TTL, which shrinks as
//    observed churn grows. The cache tracks an EWMA of version bumps per
//    second and scales the TTL by 1 / (1 + rate * sensitivity): a quiet
//    overlay serves entries for base_ttl_us, a churning one re-estimates
//    sooner even between the version checks (an estimate of a graph that
//    churned THROUGH version v back to v is stale even though the version
//    matches — the TTL is the backstop for what versions cannot see).
//
// Lookups classify the miss (empty slot / stale version / expired /
// epsilon too loose) so the service can count invalidations separately
// from cold misses. The cache is NOT thread-safe: the service accesses it
// only under its own mutex (single-threaded broker determinism).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "serve/types.hpp"

namespace overcount {

/// One cache slot per (kind, method): different estimators answer the same
/// question with different statistics, so their results never alias.
struct CacheKey {
  QueryKind kind = QueryKind::kSize;
  EstimateMethod method = EstimateMethod::kRandomTour;

  friend bool operator<(const CacheKey& a, const CacheKey& b) noexcept {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.method < b.method;
  }
  friend bool operator==(const CacheKey& a, const CacheKey& b) noexcept {
    return a.kind == b.kind && a.method == b.method;
  }
};

struct CacheEntry {
  double value = 0.0;
  double epsilon = 0.0;  ///< half-width the stored batch achieved
  double delta = 0.0;    ///< confidence failure prob it was planned for
  std::uint64_t walks = 0;
  std::uint64_t graph_version = 0;
  std::uint64_t computed_at_us = 0;
  std::uint64_t seed = 0;  ///< batch seed, for bit-identical replay checks
};

enum class CacheOutcome : std::uint8_t {
  kHit,
  kMissEmpty,         ///< nothing cached under the key
  kMissStaleVersion,  ///< topology moved on; the entry was evicted
  kMissExpired,       ///< TTL ran out under the current churn rate
  kMissEpsilon,       ///< cached batch is looser than the request
};

struct FreshnessPolicy {
  std::uint64_t base_ttl_us = 5'000'000;  ///< TTL on a churn-free overlay
  std::uint64_t min_ttl_us = 50'000;      ///< floor under heavy churn
  /// TTL = max(min, base / (1 + churn_per_sec * sensitivity)): one bump
  /// per second with sensitivity 1 halves the TTL.
  double churn_sensitivity = 1.0;
  /// EWMA smoothing window for the churn rate, in microseconds.
  std::uint64_t churn_window_us = 10'000'000;
};

class EstimateCache {
 public:
  explicit EstimateCache(FreshnessPolicy policy = {}) : policy_(policy) {}

  struct Lookup {
    CacheOutcome outcome = CacheOutcome::kMissEmpty;
    std::optional<CacheEntry> entry;  ///< set only on kHit
    std::uint64_t age_us = 0;         ///< set only on kHit
    bool hit() const noexcept { return outcome == CacheOutcome::kHit; }
  };

  /// Feeds one observation of the topology version into the churn EWMA.
  /// Call on every query (and refresh tick) BEFORE find(): the TTL used by
  /// the lookup reflects churn up to and including this observation.
  void observe_version(std::uint64_t version, std::uint64_t now_us);

  /// Serves `key` if a stored entry satisfies (epsilon, delta) at
  /// `current_version` within the churn-scaled TTL. Stale-version entries
  /// are evicted as a side effect (and reported as kMissStaleVersion).
  Lookup find(const CacheKey& key, double epsilon, double delta,
              std::uint64_t current_version, std::uint64_t now_us);

  void insert(const CacheKey& key, const CacheEntry& entry);

  /// Peeks at the stored entry without freshness checks (refresher uses
  /// this to decide whether an entry is nearing expiry).
  const CacheEntry* peek(const CacheKey& key) const;

  /// Copy of every stored (key, entry) pair, key order; the refresher
  /// sweeps this to find entries nearing expiry.
  std::vector<std::pair<CacheKey, CacheEntry>> items() const;

  /// Current churn-scaled TTL, exported as a gauge.
  std::uint64_t current_ttl_us() const;

  /// Smoothed version bumps per second, exported as a gauge.
  double churn_per_sec() const noexcept { return churn_per_sec_; }

  std::size_t size() const noexcept { return entries_.size(); }
  const FreshnessPolicy& policy() const noexcept { return policy_; }

 private:
  FreshnessPolicy policy_;
  std::map<CacheKey, CacheEntry> entries_;
  std::uint64_t last_version_ = 0;
  std::uint64_t last_observation_us_ = 0;
  bool observed_ = false;
  double churn_per_sec_ = 0.0;
};

}  // namespace overcount

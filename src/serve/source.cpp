#include "serve/source.hpp"

#include "util/contracts.hpp"

namespace overcount {

GraphSource static_graph_source(const Graph& g, NodeId origin) {
  OVERCOUNT_EXPECTS(origin < g.num_nodes());
  OVERCOUNT_EXPECTS(g.degree(origin) > 0);
  GraphSource source;
  source.snapshot = [&g, origin] { return GraphSnapshot{g, origin, 0}; };
  source.version = [] { return std::uint64_t{0}; };
  return source;
}

GraphSource dynamic_graph_source(const DynamicGraph& g, std::mutex& mutex,
                                 NodeId preferred_origin) {
  GraphSource source;
  source.snapshot = [&g, &mutex, preferred_origin] {
    std::lock_guard lock(mutex);
    std::vector<NodeId> old_to_new;
    GraphSnapshot snap;
    // Version and topology are read under one critical section: a snapshot
    // stamped with a version from a different instant would defeat the
    // cache's staleness comparison.
    snap.version = g.version();
    snap.graph = g.snapshot(&old_to_new);
    NodeId origin = preferred_origin;
    if (origin >= g.num_slots() || !g.alive(origin) || g.degree(origin) == 0) {
      origin = NodeId(~0u);
      for (NodeId v : g.alive_nodes()) {
        if (g.degree(v) > 0 && (origin == NodeId(~0u) || v < origin))
          origin = v;
      }
      OVERCOUNT_ENSURES(origin != NodeId(~0u));  // graph must have an edge
    }
    snap.origin = old_to_new[origin];
    return snap;
  };
  source.version = [&g, &mutex] {
    std::lock_guard lock(mutex);
    return g.version();
  };
  return source;
}

}  // namespace overcount

// EstimateService: the in-process query broker of the serving subsystem.
//
// Callers submit EstimateRequests (serve/types.hpp) from any number of
// threads and get a std::future<EstimateResponse>. The service:
//
//  * translates each (epsilon, delta) target into a walk budget via the
//    paper's error formulas (serve/budget.hpp);
//  * serves from the freshness-aware cache (serve/cache.hpp) when a stored
//    estimate still satisfies the target at the current topology version;
//  * coalesces concurrent identical misses into ONE batch (single-flight:
//    N callers asking the same (kind, method, epsilon, delta) while a
//    batch is queued all ride that batch — exactly one runs);
//  * admits the rest onto a bounded earliest-deadline-first queue
//    (runtime/deadline_queue.hpp) and load-sheds when it is full or the
//    outstanding-step budget is exceeded: the caller gets kRejected with a
//    retry_after_us hint instead of unbounded queueing;
//  * optionally refreshes cached entries in the background before they
//    expire, so steady-state queries keep hitting the cache under churn.
//
// Threading: submit() is safe from any thread; ONE broker thread pops the
// queue and runs batches on the service's ParallelRunner. Determinism
// contract: with a fixed config.seed, an injected deterministic clock and
// a fixed submission order, every response value is bit-identical across
// runs and across runner thread counts — batch seeds are drawn from one
// master Rng on the broker thread in dispatch order, and the batches
// themselves carry the core/parallel.hpp reproducibility contract. The
// cache stores the exact batch mean, so a cache hit is bit-identical to
// the batch result it came from (tests/serve/service_test.cpp).
//
// Lock ordering: the service mutex may be held while the graph source
// takes the graph lock (submit reads version()), and the broker takes the
// graph lock only while NOT holding the service mutex (snapshot before
// publish) — so service -> graph is the one and only order.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/health/audit.hpp"
#include "obs/metrics.hpp"
#include "runtime/deadline_queue.hpp"
#include "runtime/parallel_runner.hpp"
#include "serve/budget.hpp"
#include "serve/cache.hpp"
#include "serve/source.hpp"
#include "serve/types.hpp"
#include "util/rng.hpp"

namespace overcount {

struct ServiceConfig {
  /// Runner shape for the batches (0 threads = hardware concurrency;
  /// kernel_width as in runtime/parallel_runner.hpp).
  unsigned threads = 0;
  std::size_t kernel_width = 0;

  /// Bounded broker queue: submissions beyond this depth are load-shed.
  std::size_t queue_capacity = 64;
  /// Admission budget on the SUM of planned walk steps across queued +
  /// running batches; 0 = unlimited. Uses the planner's expected tour cost
  /// E[T] = n d_bar / d_origin, so a saturated service rejects cheap-to-ask
  /// expensive-to-answer queries instead of queueing them.
  std::uint64_t max_outstanding_steps = 0;

  FreshnessPolicy freshness;
  /// Background refresh fires when an entry's age exceeds this fraction of
  /// the churn-scaled TTL (or its version went stale).
  double refresh_at_fraction = 0.8;
  /// Period of the background refresher thread; 0 = no thread (tests call
  /// refresh_once() by hand for determinism).
  std::uint64_t refresh_period_us = 0;

  /// Sample & Collide shape: per-trial accuracy ell, and the CTRW timer
  /// (0 = derive via recommended_ctrw_timer from the snapshot size and the
  /// profiled spectral gap).
  std::size_t sc_ell = 16;
  double sc_timer = 0.0;

  /// Truncation bound for Random Tours (~0 = none).
  std::uint64_t max_tour_steps = ~0ULL;

  BudgetPlanner::Limits budget;

  /// Spectral-gap profiling: a positive hint pins lambda_2 (no Lanczos);
  /// otherwise it is estimated per snapshot and re-used while the topology
  /// version moved by at most reprofile_version_lag since the estimate.
  double lambda2_hint = 0.0;
  std::size_t lanczos_iters = 96;
  std::uint64_t reprofile_version_lag = 0;

  /// Master seed: batch seeds are its Rng stream, drawn in dispatch order.
  std::uint64_t seed = 1;

  /// Injectable microsecond clock for deterministic tests; null = steady
  /// clock since service construction.
  std::function<std::uint64_t()> now_us;

  /// Registry for the serve.* family; null = a registry owned by the
  /// service (reachable via metrics()).
  MetricsRegistry* metrics = nullptr;

  /// Optional accuracy auditor: every landed batch feeds its delivered
  /// (value, epsilon, delta, version) into the (kind, method) stream. The
  /// auditor only READS results — bit-identity is untouched. Null = off.
  EstimateAuditor* auditor = nullptr;

  /// Deadline objective for the per-class SLO ledger (serve.slo.* family;
  /// classes are "<kind>.<method>.<deadline|besteffort>").
  SloPolicy slo;

  /// Cost-ledger context granularity. false (default): one context per
  /// admitted query — full per-query drill-down, but the ledger's context
  /// table holds ~16k entries, so long-running services overflow it and
  /// the overflow bills to the unattributed sink. true: one REUSED context
  /// per (tenant, SLO class) — per-tenant accounting stays exact at any
  /// request volume (million-request soaks), per-query granularity is
  /// given up. Attribution totals reconcile to zero residue either way.
  bool cost_aggregate_contexts = false;
};

class EstimateService {
 public:
  EstimateService(GraphSource source, ServiceConfig config = {});
  ~EstimateService();

  EstimateService(const EstimateService&) = delete;
  EstimateService& operator=(const EstimateService&) = delete;

  /// Admits (or load-sheds) one request. The future is always eventually
  /// fulfilled: cache hits, rejections and expired deadlines resolve
  /// immediately; admitted requests resolve when their batch lands (or the
  /// service stops, which fails them).
  std::future<EstimateResponse> submit(const EstimateRequest& request);

  /// submit + get.
  EstimateResponse query(const EstimateRequest& request);

  /// Pauses / resumes the broker (queued batches wait; submissions are
  /// still admitted). Tests use this to build a known queue state.
  void set_paused(bool paused);

  /// One refresher sweep: enqueues waiter-less refresh batches for cached
  /// entries that went version-stale or aged past refresh_at_fraction of
  /// the TTL. Returns how many batches were enqueued. Skips (and counts
  /// serve.refresh_skipped) when an equivalent batch is already pending or
  /// the queue is full.
  std::size_t refresh_once();

  /// True once at least one batch has completed — the /readyz criterion
  /// ("loaded but not warmed" responds 503 until the first estimate).
  bool warmed() const noexcept;

  std::size_t queue_depth() const;

  /// Bound of the broker queue (the saturation reference for watchdogs
  /// polling queue_depth()).
  std::size_t queue_capacity() const noexcept { return config_.queue_capacity; }

  /// Microseconds on the service clock (config.now_us or steady).
  std::uint64_t now_us() const;

  MetricsRegistry& metrics() noexcept { return *metrics_; }

  /// Per-class deadline SLO ledger; every resolved request is recorded here
  /// (serve.slo.* family in metrics()).
  const SloLedger& slo() const noexcept { return slo_; }

  /// Stops broker + refresher, fails all queued waiters. Idempotent;
  /// called by the destructor. Further submissions are rejected.
  void stop();

 private:
  struct Waiter {
    std::promise<EstimateResponse> promise;
    EstimateRequest request;
    std::uint64_t admitted_us = 0;
    bool coalesced = false;  ///< attached to an already-pending batch
    std::uint32_t cost_ctx = 0;  ///< cost-ledger context (0 = unattributed)
  };

  /// One queued unit of work: a planned batch plus everyone riding it.
  struct PendingBatch {
    CacheKey key;
    double epsilon = 0.0;
    double delta = 0.0;
    std::vector<Waiter> waiters;       ///< empty for refresh batches
    std::uint64_t deadline_us = kNoDeadline;
    std::uint64_t planned_steps = 0;   ///< admission charge (released on land)
    bool refresh_only = false;
    bool bypass_cache = false;         ///< some waiter set allow_cached=false
    /// Cost-ledger context the batch's walks are charged to: the initiating
    /// waiter's context (coalesced riders keep their own for per-request
    /// charges), or a "(refresh)" system context for refresh batches.
    std::uint32_t cost_ctx = 0;
  };
  using BatchPtr = std::shared_ptr<PendingBatch>;

  /// Single-flight identity: requests coalesce only when they ask the same
  /// question to the same accuracy.
  struct CoalesceKey {
    QueryKind kind;
    EstimateMethod method;
    double epsilon;
    double delta;
    friend bool operator<(const CoalesceKey& a,
                          const CoalesceKey& b) noexcept {
      if (a.kind != b.kind) return a.kind < b.kind;
      if (a.method != b.method) return a.method < b.method;
      if (a.epsilon != b.epsilon) return a.epsilon < b.epsilon;
      return a.delta < b.delta;
    }
  };

  struct Metrics;  // resolved metric handles (serve.* family)

  void broker_loop();
  void refresher_loop();
  void process_batch(const BatchPtr& batch);
  void run_and_deliver(const BatchPtr& batch);
  EstimateResponse hit_response(const CacheEntry& entry, std::uint64_t age_us,
                                std::uint64_t admitted_us, bool coalesced);
  /// The one funnel every response leaves through: records the request's
  /// class outcome in the SLO ledger, then fulfils the promise. Never call
  /// set_value directly on a request promise.
  void resolve(std::promise<EstimateResponse>& promise,
               const EstimateRequest& request, EstimateResponse resp);
  static std::string slo_class(const EstimateRequest& request);
  /// Opens a cost-ledger context for an admitted request (0 when no ledger
  /// is installed or the hooks are compiled out).
  std::uint32_t cost_open(const EstimateRequest& request);
  /// Aggregated-context lookup (cost_aggregate_contexts): returns the one
  /// reused context for (tenant, slo class), opening it on first sight.
  std::uint32_t cost_open_aggregate(const std::string& tenant,
                                    QueryKind kind, EstimateMethod method,
                                    const std::string& cls);
  std::uint64_t retry_hint_locked() const;
  void release_steps_locked(const BatchPtr& batch);
  void update_gauges_locked();

  GraphSource source_;
  ServiceConfig config_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  std::unique_ptr<Metrics> m_;
  SloLedger slo_;
  ParallelRunner runner_;
  BudgetPlanner planner_;
  DeadlineQueue<BatchPtr> queue_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  EstimateCache cache_;                       // guarded by mutex_
  std::map<CoalesceKey, BatchPtr> pending_;   // guarded by mutex_
  std::uint64_t outstanding_steps_ = 0;       // guarded by mutex_
  std::uint64_t next_seq_ = 0;                // guarded by mutex_
  double ewma_batch_us_ = 0.0;                // guarded by mutex_
  std::optional<GraphProfile> profile_;       // broker thread + mutex_
  bool stopping_ = false;                     // guarded by mutex_

  std::atomic<bool> warmed_{false};
  std::atomic<std::uint64_t> next_query_id_{1};  // cost-ledger query ids
  std::mutex cost_agg_mutex_;  // guards cost_agg_ (aggregated contexts)
  std::unordered_map<std::string, std::uint32_t> cost_agg_;
  Rng batch_seed_rng_;  // broker thread only (dispatch-order draws)

  std::condition_variable refresher_cv_;  // waits on mutex_
  std::thread broker_;
  std::thread refresher_;
};

}  // namespace overcount

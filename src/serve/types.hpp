// Request/response vocabulary of the estimate-serving subsystem.
//
// An EstimateRequest states WHAT the caller wants to know (a size or
// degree-sum estimate), HOW SURE they need to be (the paper's (epsilon,
// delta) pair: relative error at most epsilon with probability at least
// 1 - delta), and BY WHEN (an absolute deadline on the service clock). The
// service translates the accuracy target into a walk budget via the
// paper's error formula (serve/budget.hpp), serves from its
// freshness-aware cache when a cached estimate already satisfies the
// target, and otherwise schedules a batch — or refuses with a retry hint
// when saturated. The response carries the estimate together with the
// provenance a caller needs to reason about it: the theory half-width it
// satisfies, the graph version it was computed against, its age, and
// whether it came from the cache or a fresh batch.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace overcount {

/// "No deadline": sorts after every real deadline in the EDF queue.
inline constexpr std::uint64_t kNoDeadline = ~std::uint64_t{0};

/// What is being estimated. Both are Random Tour sums sum_j f(j); Sample &
/// Collide supports only kSize (its statistic is a collision count, not a
/// per-node sum).
enum class QueryKind : std::uint8_t {
  kSize,       ///< f = 1: the number of peers
  kDegreeSum,  ///< f = degree: sum of degrees (= 2 |E|)
};

/// Which of the paper's estimators answers the query.
enum class EstimateMethod : std::uint8_t {
  kRandomTour,     ///< Section 3: return-time tours
  kSampleCollide,  ///< Section 4: CTRW sampling to ell collisions
};

enum class ServeStatus : std::uint8_t {
  kOk,            ///< estimate delivered
  kRejected,      ///< load-shed at admission; retry after retry_after_us
  kDeadlineMiss,  ///< the deadline passed before the result could be served
  kFailed,        ///< the batch could not produce an estimate
};

struct EstimateRequest {
  QueryKind kind = QueryKind::kSize;
  EstimateMethod method = EstimateMethod::kRandomTour;
  /// Target relative error (half-width) and confidence failure
  /// probability: P(|estimate/truth - 1| > epsilon) <= delta.
  double epsilon = 0.2;
  double delta = 0.05;
  /// Absolute deadline on the service clock (EstimateService::now_us);
  /// kNoDeadline = best effort. An expired deadline is answered with
  /// kDeadlineMiss instead of a stale-by-construction estimate.
  std::uint64_t deadline_us = kNoDeadline;
  /// When false, bypasses the cache (and single-flight coalescing) and
  /// forces a fresh batch; the result still lands in the cache.
  bool allow_cached = true;
  /// Accounting principal for the cost ledger (obs/cost/): every walk
  /// step, handoff, cache hit and queue wait this request causes is
  /// charged to (tenant, query). Empty = "anonymous". Does not influence
  /// caching, coalescing or scheduling — two tenants asking the same
  /// question still share one batch.
  std::string tenant;
};

struct EstimateResponse {
  ServeStatus status = ServeStatus::kFailed;
  double value = std::numeric_limits<double>::quiet_NaN();
  /// Theory half-width the served estimate satisfies (<= the requested
  /// epsilon for kOk responses).
  double epsilon = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t walks = 0;          ///< tours/trials behind the estimate
  std::uint64_t graph_version = 0;  ///< topology version it was computed at
  bool cache_hit = false;           ///< served from cache, no new walks
  bool coalesced = false;           ///< rode another request's batch
  std::uint64_t age_us = 0;         ///< age of the serving entry
  std::uint64_t retry_after_us = 0; ///< backoff hint for kRejected
  std::uint64_t latency_us = 0;     ///< admission-to-delivery time
  bool ok() const noexcept { return status == ServeStatus::kOk; }
};

inline const char* to_string(ServeStatus s) noexcept {
  switch (s) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kRejected: return "rejected";
    case ServeStatus::kDeadlineMiss: return "deadline_miss";
    case ServeStatus::kFailed: return "failed";
  }
  return "?";
}

inline const char* to_string(QueryKind k) noexcept {
  switch (k) {
    case QueryKind::kSize: return "size";
    case QueryKind::kDegreeSum: return "degree_sum";
  }
  return "?";
}

inline const char* to_string(EstimateMethod m) noexcept {
  switch (m) {
    case EstimateMethod::kRandomTour: return "random_tour";
    case EstimateMethod::kSampleCollide: return "sample_collide";
  }
  return "?";
}

}  // namespace overcount

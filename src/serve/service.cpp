#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/parallel.hpp"
#include "core/sampling.hpp"
#include "obs/cost/cost.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace overcount {

/// Resolved handles into the serve.* metrics family. Counters:
///   serve.requests            every submit()
///   serve.cache_hits          responses served from the cache
///   serve.cache_misses        lookups that fell through to a batch path
///   serve.coalesced           requests that rode an already-pending batch
///   serve.admission_rejects   load-shed submissions (kRejected)
///   serve.deadline_misses     kDeadlineMiss responses
///   serve.batches             batches actually run
///   serve.refreshes           background refresh batches enqueued
///   serve.refresh_skipped     refresh candidates skipped (pending/full)
///   serve.walks / serve.steps work performed by the batches
///   walk.steps                same steps, in the repo-wide walk.* family
///                             (the cost ledger's reconciliation anchor)
///   serve.cache_invalidations entries evicted by a version bump
///   serve.failures            kFailed responses
/// Gauges: serve.queue_depth, serve.outstanding_steps, serve.cache_entries,
/// serve.churn_per_sec, serve.ttl_us. Histograms:
/// serve.request_latency_us (delivered responses), serve.batch_wall_us,
/// serve.hit_age_us.
struct EstimateService::Metrics {
  Counter& requests;
  Counter& cache_hits;
  Counter& cache_misses;
  Counter& coalesced;
  Counter& admission_rejects;
  Counter& deadline_misses;
  Counter& batches;
  Counter& refreshes;
  Counter& refresh_skipped;
  Counter& walks;
  Counter& steps;
  Counter& walk_steps;
  Counter& invalidations;
  Counter& failures;
  Gauge& queue_depth;
  Gauge& outstanding_steps;
  Gauge& cache_entries;
  Gauge& churn_per_sec;
  Gauge& ttl_us;
  AtomicHistogram& request_latency_us;
  AtomicHistogram& batch_wall_us;
  AtomicHistogram& hit_age_us;

  explicit Metrics(MetricsRegistry& r)
      : requests(r.counter("serve.requests")),
        cache_hits(r.counter("serve.cache_hits")),
        cache_misses(r.counter("serve.cache_misses")),
        coalesced(r.counter("serve.coalesced")),
        admission_rejects(r.counter("serve.admission_rejects")),
        deadline_misses(r.counter("serve.deadline_misses")),
        batches(r.counter("serve.batches")),
        refreshes(r.counter("serve.refreshes")),
        refresh_skipped(r.counter("serve.refresh_skipped")),
        walks(r.counter("serve.walks")),
        steps(r.counter("serve.steps")),
        walk_steps(r.counter("walk.steps")),
        invalidations(r.counter("serve.cache_invalidations")),
        failures(r.counter("serve.failures")),
        queue_depth(r.gauge("serve.queue_depth")),
        outstanding_steps(r.gauge("serve.outstanding_steps")),
        cache_entries(r.gauge("serve.cache_entries")),
        churn_per_sec(r.gauge("serve.churn_per_sec")),
        ttl_us(r.gauge("serve.ttl_us")),
        request_latency_us(r.histogram("serve.request_latency_us")),
        batch_wall_us(r.histogram("serve.batch_wall_us")),
        hit_age_us(r.histogram("serve.hit_age_us")) {}
};

namespace {

bool valid_request(const EstimateRequest& req) {
  if (!(req.epsilon > 0.0) || !(req.delta > 0.0) || req.delta >= 1.0)
    return false;
  // Sample & Collide estimates a size from collision counts; it has no
  // per-node sum to generalise to degree sums.
  if (req.method == EstimateMethod::kSampleCollide &&
      req.kind != QueryKind::kSize)
    return false;
  return true;
}

std::uint64_t version_gap(std::uint64_t a, std::uint64_t b) noexcept {
  return a >= b ? a - b : b - a;
}

}  // namespace

EstimateService::EstimateService(GraphSource source, ServiceConfig config)
    : source_(std::move(source)),
      config_(std::move(config)),
      owned_metrics_(config_.metrics != nullptr
                         ? nullptr
                         : std::make_unique<MetricsRegistry>()),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : owned_metrics_.get()),
      m_(std::make_unique<Metrics>(*metrics_)),
      slo_(metrics_, nullptr, config_.slo),
      runner_(config_.threads, config_.kernel_width),
      planner_(config_.budget),
      queue_(config_.queue_capacity),
      epoch_(std::chrono::steady_clock::now()),
      cache_(config_.freshness),
      batch_seed_rng_(config_.seed) {
  OVERCOUNT_EXPECTS(source_.snapshot != nullptr);
  OVERCOUNT_EXPECTS(source_.version != nullptr);
  OVERCOUNT_EXPECTS(config_.refresh_at_fraction > 0.0 &&
                    config_.refresh_at_fraction <= 1.0);
  broker_ = std::thread([this] { broker_loop(); });
  if (config_.refresh_period_us > 0)
    refresher_ = std::thread([this] { refresher_loop(); });
}

EstimateService::~EstimateService() { stop(); }

std::uint64_t EstimateService::now_us() const {
  if (config_.now_us) return config_.now_us();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

bool EstimateService::warmed() const noexcept {
  return warmed_.load(std::memory_order_acquire);
}

std::size_t EstimateService::queue_depth() const { return queue_.size(); }

void EstimateService::set_paused(bool paused) { queue_.set_paused(paused); }

EstimateResponse EstimateService::query(const EstimateRequest& request) {
  return submit(request).get();
}

std::uint64_t EstimateService::retry_hint_locked() const {
  // Rough time-to-drain: one smoothed batch wall time per queued batch
  // ahead, plus one for the batch the rejected caller would have become.
  const double per_batch = ewma_batch_us_ > 0.0 ? ewma_batch_us_ : 10'000.0;
  const double hint =
      per_batch * static_cast<double>(queue_.size() + 1);
  return static_cast<std::uint64_t>(std::llround(hint));
}

void EstimateService::release_steps_locked(const BatchPtr& batch) {
  outstanding_steps_ -= std::min(outstanding_steps_, batch->planned_steps);
}

void EstimateService::update_gauges_locked() {
  m_->queue_depth.set(static_cast<double>(queue_.size()));
  m_->outstanding_steps.set(static_cast<double>(outstanding_steps_));
  m_->cache_entries.set(static_cast<double>(cache_.size()));
  m_->churn_per_sec.set(cache_.churn_per_sec());
  m_->ttl_us.set(static_cast<double>(cache_.current_ttl_us()));
}

std::string EstimateService::slo_class(const EstimateRequest& request) {
  std::string cls = to_string(request.kind);
  cls += '.';
  cls += to_string(request.method);
  cls += request.deadline_us != kNoDeadline ? ".deadline" : ".besteffort";
  return cls;
}

std::uint32_t EstimateService::cost_open(const EstimateRequest& request) {
  if (cost_active()) {
    CostLedger* ledger = CostLedger::active();
    if (ledger != nullptr) {
      if (config_.cost_aggregate_contexts) {
        return cost_open_aggregate(request.tenant, request.kind,
                                   request.method, slo_class(request));
      }
      QueryContext qc;
      qc.tenant = request.tenant;
      qc.query_id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
      qc.kind = to_string(request.kind);
      qc.method = to_string(request.method);
      qc.slo_class = slo_class(request);
      return ledger->open(std::move(qc));
    }
  }
  return 0;
}

std::uint32_t EstimateService::cost_open_aggregate(const std::string& tenant,
                                                   QueryKind kind,
                                                   EstimateMethod method,
                                                   const std::string& cls) {
  CostLedger* ledger = CostLedger::active();
  if (ledger == nullptr) return 0;
  // The table is bounded by tenants x classes x shapes regardless of
  // request volume (kind/method ride along for callers like the refresher
  // whose cls does not already encode them).
  std::string key = tenant;
  key += '\x1f';
  key += cls;
  key += '\x1f';
  key += to_string(kind);
  key += to_string(method);
  std::lock_guard<std::mutex> lock(cost_agg_mutex_);
  const auto it = cost_agg_.find(key);
  if (it != cost_agg_.end()) return it->second;
  QueryContext qc;
  qc.tenant = tenant;
  qc.query_id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  qc.kind = to_string(kind);
  qc.method = to_string(method);
  qc.slo_class = cls;
  const std::uint32_t ctx = ledger->open(std::move(qc));
  cost_agg_.emplace(std::move(key), ctx);
  return ctx;
}

void EstimateService::resolve(std::promise<EstimateResponse>& promise,
                              const EstimateRequest& request,
                              EstimateResponse resp) {
  SloOutcome outcome = SloOutcome::kOk;
  switch (resp.status) {
    case ServeStatus::kOk: outcome = SloOutcome::kOk; break;
    case ServeStatus::kDeadlineMiss: outcome = SloOutcome::kDeadlineMiss; break;
    case ServeStatus::kRejected: outcome = SloOutcome::kRejected; break;
    case ServeStatus::kFailed: outcome = SloOutcome::kFailed; break;
  }
  slo_.record(slo_class(request), outcome, resp.latency_us);
  promise.set_value(std::move(resp));
}

EstimateResponse EstimateService::hit_response(const CacheEntry& entry,
                                               std::uint64_t age_us,
                                               std::uint64_t admitted_us,
                                               bool coalesced) {
  EstimateResponse resp;
  resp.status = ServeStatus::kOk;
  resp.value = entry.value;
  resp.epsilon = entry.epsilon;
  resp.walks = entry.walks;
  resp.graph_version = entry.graph_version;
  resp.cache_hit = true;
  resp.coalesced = coalesced;
  resp.age_us = age_us;
  const std::uint64_t now = now_us();
  resp.latency_us = now >= admitted_us ? now - admitted_us : 0;
  m_->request_latency_us.record(resp.latency_us);
  return resp;
}

std::future<EstimateResponse> EstimateService::submit(
    const EstimateRequest& request) {
  m_->requests.inc();
  std::promise<EstimateResponse> promise;
  std::future<EstimateResponse> future = promise.get_future();
  const std::uint64_t now = now_us();

  if (!valid_request(request)) {
    m_->failures.inc();
    EstimateResponse resp;
    resp.status = ServeStatus::kFailed;
    resolve(promise, request, std::move(resp));
    return future;
  }

  // One ledger context per admitted query: every charge this request
  // causes anywhere below lands on this id.
  const std::uint32_t ctx = cost_open(request);

  std::unique_lock lock(mutex_);
  if (stopping_) {
    m_->admission_rejects.inc();
    cost_charge_ctx(ctx, CostField::kRejected, 1);
    EstimateResponse resp;
    resp.status = ServeStatus::kRejected;
    lock.unlock();
    resolve(promise, request, std::move(resp));
    return future;
  }

  const std::uint64_t version = source_.version();
  cache_.observe_version(version, now);
  const CacheKey key{request.kind, request.method};

  if (request.allow_cached) {
    auto lookup =
        cache_.find(key, request.epsilon, request.delta, version, now);
    if (lookup.outcome == CacheOutcome::kMissStaleVersion)
      m_->invalidations.inc();
    if (lookup.hit()) {
      m_->cache_hits.inc();
      cost_charge_ctx(ctx, CostField::kCacheHits, 1);
      m_->hit_age_us.record(lookup.age_us);
      update_gauges_locked();
      const CacheEntry entry = *lookup.entry;
      const std::uint64_t age = lookup.age_us;
      lock.unlock();
      resolve(promise, request, hit_response(entry, age, now, false));
      return future;
    }
    m_->cache_misses.inc();
    cost_charge_ctx(ctx, CostField::kCacheMisses, 1);
  }

  if (request.deadline_us != kNoDeadline && now >= request.deadline_us) {
    m_->deadline_misses.inc();
    cost_charge_ctx(ctx, CostField::kDeadlineMisses, 1);
    lock.unlock();
    EstimateResponse resp;
    resp.status = ServeStatus::kDeadlineMiss;
    resolve(promise, request, std::move(resp));
    return future;
  }

  const CoalesceKey ckey{request.kind, request.method, request.epsilon,
                         request.delta};
  if (request.allow_cached) {
    auto it = pending_.find(ckey);
    if (it != pending_.end()) {
      // Single-flight: ride the batch that is already queued. Its queue
      // position keeps the FIRST requester's deadline; later riders with
      // tighter deadlines are still deadline-checked at delivery.
      m_->coalesced.inc();
      cost_charge_ctx(ctx, CostField::kCoalesced, 1);
      it->second->waiters.push_back(
          Waiter{std::move(promise), request, now, true, ctx});
      return future;
    }
  }

  // Admission control. The step charge needs a graph profile; before the
  // first batch established one, admission falls back to queue depth only.
  std::uint64_t planned_steps = 0;
  if (profile_.has_value() && profile_->lambda2 > 0.0 &&
      profile_->origin_degree > 0) {
    if (request.method == EstimateMethod::kRandomTour) {
      planned_steps =
          planner_.plan_tours(*profile_, request.epsilon, request.delta)
              .expected_steps;
    } else {
      const double timer =
          config_.sc_timer > 0.0
              ? config_.sc_timer
              : recommended_ctrw_timer(
                    static_cast<double>(std::max<std::size_t>(
                        profile_->nodes, 2)),
                    profile_->lambda2);
      planned_steps = planner_
                          .plan_sc(*profile_, request.epsilon, request.delta,
                                   config_.sc_ell, timer)
                          .expected_steps;
    }
  }
  if (config_.max_outstanding_steps > 0 &&
      outstanding_steps_ + planned_steps > config_.max_outstanding_steps) {
    m_->admission_rejects.inc();
    cost_charge_ctx(ctx, CostField::kRejected, 1);
    EstimateResponse resp;
    resp.status = ServeStatus::kRejected;
    resp.retry_after_us = retry_hint_locked();
    lock.unlock();
    resolve(promise, request, std::move(resp));
    return future;
  }

  auto batch = std::make_shared<PendingBatch>();
  batch->key = key;
  batch->epsilon = request.epsilon;
  batch->delta = request.delta;
  batch->deadline_us = request.deadline_us;
  batch->planned_steps = planned_steps;
  batch->bypass_cache = !request.allow_cached;
  batch->cost_ctx = ctx;
  batch->waiters.push_back(
      Waiter{std::move(promise), request, now, false, ctx});

  const std::uint64_t seq = next_seq_++;
  if (!queue_.try_push(batch, request.deadline_us, seq)) {
    m_->admission_rejects.inc();
    cost_charge_ctx(ctx, CostField::kRejected, 1);
    EstimateResponse resp;
    resp.status = ServeStatus::kRejected;
    resp.retry_after_us = retry_hint_locked();
    lock.unlock();
    resolve(batch->waiters.front().promise, request, std::move(resp));
    return future;
  }
  outstanding_steps_ += planned_steps;
  if (request.allow_cached) pending_[ckey] = batch;
  update_gauges_locked();
  return future;
}

void EstimateService::broker_loop() {
  while (auto item = queue_.pop_earliest()) process_batch(*item);
}

void EstimateService::process_batch(const BatchPtr& batch) {
  {
    // Detach from the single-flight map FIRST: from here on, identical
    // requests start a fresh batch instead of riding one mid-run. After
    // this critical section the batch is unreachable from submit(), so the
    // broker owns its waiters without further locking.
    std::lock_guard lock(mutex_);
    const CoalesceKey ckey{batch->key.kind, batch->key.method, batch->epsilon,
                           batch->delta};
    auto it = pending_.find(ckey);
    if (it != pending_.end() && it->second == batch) pending_.erase(it);
  }
  run_and_deliver(batch);
  {
    std::lock_guard lock(mutex_);
    release_steps_locked(batch);
    update_gauges_locked();
  }
}

void EstimateService::run_and_deliver(const BatchPtr& batch) {
  TraceSpan batch_span("serve", "serve.batch", "waiters",
                       batch->waiters.size());
  const std::uint64_t dispatch_now = now_us();

  // Scrub waiters whose deadline already passed: they get kDeadlineMiss
  // now instead of paying for a batch they can no longer use. Everyone —
  // scrubbed or live — is charged the queue wait they actually sat out.
  {
    std::vector<Waiter> live;
    live.reserve(batch->waiters.size());
    for (auto& w : batch->waiters) {
      cost_charge_ctx(w.cost_ctx, CostField::kQueueWaitUs,
                      dispatch_now >= w.admitted_us
                          ? dispatch_now - w.admitted_us
                          : 0);
      if (w.request.deadline_us != kNoDeadline &&
          dispatch_now >= w.request.deadline_us) {
        m_->deadline_misses.inc();
        cost_charge_ctx(w.cost_ctx, CostField::kDeadlineMisses, 1);
        EstimateResponse resp;
        resp.status = ServeStatus::kDeadlineMiss;
        resp.latency_us = dispatch_now - w.admitted_us;
        resolve(w.promise, w.request, std::move(resp));
      } else {
        live.push_back(std::move(w));
      }
    }
    batch->waiters = std::move(live);
  }
  if (batch->waiters.empty() && !batch->refresh_only) return;

  // A batch that sat in the queue may have been satisfied meanwhile by an
  // earlier batch under the same key: re-check the cache at dispatch.
  // Refresh batches skip this — their purpose is a fresh entry.
  if (!batch->refresh_only && !batch->bypass_cache) {
    const std::uint64_t version = source_.version();  // graph lock only
    std::unique_lock lock(mutex_);
    cache_.observe_version(version, dispatch_now);
    auto lookup = cache_.find(batch->key, batch->epsilon, batch->delta,
                              version, dispatch_now);
    if (lookup.outcome == CacheOutcome::kMissStaleVersion)
      m_->invalidations.inc();
    if (lookup.hit()) {
      const CacheEntry entry = *lookup.entry;
      const std::uint64_t age = lookup.age_us;
      lock.unlock();
      m_->cache_hits.add(batch->waiters.size());
      for (auto& w : batch->waiters) {
        cost_charge_ctx(w.cost_ctx, CostField::kCacheHits, 1);
        m_->hit_age_us.record(age);
        resolve(w.promise, w.request,
                hit_response(entry, age, w.admitted_us, w.coalesced));
      }
      return;
    }
  }

  GraphSnapshot snap;
  {
    TraceSpan span("serve", "serve.snapshot");
    snap = source_.snapshot();
  }

  // Profile the snapshot; the Lanczos gap is re-used while the topology
  // version stayed within reprofile_version_lag of the profiled one.
  double lambda2 = config_.lambda2_hint;
  if (lambda2 <= 0.0) {
    std::lock_guard lock(mutex_);
    if (profile_.has_value() &&
        version_gap(profile_->version, snap.version) <=
            config_.reprofile_version_lag)
      lambda2 = profile_->lambda2;
  }
  GraphProfile profile;
  {
    TraceSpan span("serve", "serve.profile", "version", snap.version);
    profile = profile_graph(snap.graph, snap.origin, snap.version, lambda2,
                            config_.lanczos_iters, config_.seed);
  }
  {
    std::lock_guard lock(mutex_);
    profile_ = profile;
  }

  auto fail_all = [&](const char* why) {
    trace_instant("serve", why);
    for (auto& w : batch->waiters) {
      m_->failures.inc();
      cost_charge_ctx(w.cost_ctx, CostField::kFailures, 1);
      EstimateResponse resp;
      resp.status = ServeStatus::kFailed;
      resp.graph_version = snap.version;
      resp.latency_us = now_us() - w.admitted_us;
      resolve(w.promise, w.request, std::move(resp));
    }
    if (batch->refresh_only && batch->waiters.empty()) m_->failures.inc();
  };

  if (profile.lambda2 <= 0.0 || profile.origin_degree == 0) {
    // Disconnected (or degenerate) snapshot: the error formulas have no
    // finite budget, so the batch cannot promise anything.
    fail_all("serve.unprofilable");
    return;
  }

  BudgetPlan plan;
  double timer = 0.0;
  if (batch->key.method == EstimateMethod::kRandomTour) {
    plan = planner_.plan_tours(profile, batch->epsilon, batch->delta);
  } else {
    timer = config_.sc_timer > 0.0
                ? config_.sc_timer
                : recommended_ctrw_timer(
                      static_cast<double>(
                          std::max<std::size_t>(profile.nodes, 2)),
                      profile.lambda2);
    plan = planner_.plan_sc(profile, batch->epsilon, batch->delta,
                            config_.sc_ell, timer);
  }

  // Dispatch-order seed draw on the (single) broker thread: the i-th batch
  // of a run always gets the i-th seed, so a fixed submission order replays
  // bit-identically.
  const std::uint64_t seed = batch_seed_rng_.next();

  const std::uint64_t t0 = now_us();
  double value = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t steps = 0;
  bool ok = false;
  {
    // The walk kernels charge their steps/walks/cpu to the thread's current
    // context — scope it to this batch's. The cost.ctx span is the
    // attribution boundary the flamegraph folder keys on.
    CostScope cost_scope(batch->cost_ctx);
    TraceSpan cost_span("cost", "cost.ctx", "cost_ctx", batch->cost_ctx);
    TraceSpan span("serve", "serve.walks", "walks", plan.walks);
    if (batch->key.method == EstimateMethod::kRandomTour) {
      TourBatch tours =
          batch->key.kind == QueryKind::kSize
              ? run_tours_size(snap.graph, snap.origin, plan.walks, seed,
                               runner_, config_.max_tour_steps)
              : run_tours(
                    snap.graph, snap.origin, plan.walks,
                    [&g = snap.graph](NodeId v) {
                      return static_cast<double>(g.degree(v));
                    },
                    seed, runner_, config_.max_tour_steps);
      ok = tours.ok();
      value = tours.mean();
      steps = tours.total_steps;
    } else {
      ScBatch trials = run_sc_trials(snap.graph, snap.origin, plan.walks,
                                     timer, config_.sc_ell, seed, runner_);
      ok = !trials.trials.empty();
      value = trials.mean_simple();
      steps = trials.total_hops;
    }
  }
  const std::uint64_t t1 = now_us();

  m_->batches.inc();
  cost_charge_ctx(batch->cost_ctx, CostField::kBatches, 1);
  m_->walks.add(plan.walks);
  m_->steps.add(steps);
  // Ledger-independent reconciliation anchor: walk.steps counts actual
  // batch steps from the batch result, so cost.steps (ledger-mirrored)
  // must match it exactly — the zero-residue audit in tests/cost/.
  m_->walk_steps.add(steps);
  m_->batch_wall_us.record(t1 >= t0 ? t1 - t0 : 0);
  if (batch->refresh_only) m_->refreshes.inc();

  if (!ok) {
    fail_all("serve.batch_failed");
    return;
  }

  CacheEntry entry;
  entry.value = value;
  entry.epsilon = plan.epsilon;
  entry.delta = batch->delta;
  entry.walks = plan.walks;
  entry.graph_version = snap.version;
  entry.computed_at_us = t1;
  entry.seed = seed;
  {
    std::lock_guard lock(mutex_);
    cache_.insert(batch->key, entry);
    const double wall = static_cast<double>(t1 >= t0 ? t1 - t0 : 0);
    ewma_batch_us_ =
        ewma_batch_us_ > 0.0 ? 0.8 * ewma_batch_us_ + 0.2 * wall : wall;
  }
  warmed_.store(true, std::memory_order_release);

  // Feed the accuracy auditor AFTER the result is final: it only reads the
  // delivered (value, promise, version) triple, never influences it.
  if (config_.auditor != nullptr)
    config_.auditor->observe(to_string(batch->key.kind),
                             to_string(batch->key.method), value, plan.epsilon,
                             batch->delta, snap.version);

  for (auto& w : batch->waiters) {
    EstimateResponse resp;
    // A result that lands after the deadline is still delivered (the walks
    // are spent either way) but flagged kDeadlineMiss, so ok() is false.
    resp.status = (w.request.deadline_us != kNoDeadline &&
                   t1 > w.request.deadline_us)
                      ? ServeStatus::kDeadlineMiss
                      : ServeStatus::kOk;
    if (resp.status == ServeStatus::kDeadlineMiss) {
      m_->deadline_misses.inc();
      cost_charge_ctx(w.cost_ctx, CostField::kDeadlineMisses, 1);
    }
    resp.value = value;
    resp.epsilon = plan.epsilon;
    resp.walks = plan.walks;
    resp.graph_version = snap.version;
    resp.cache_hit = false;
    resp.coalesced = w.coalesced;
    resp.age_us = 0;
    resp.latency_us = t1 >= w.admitted_us ? t1 - w.admitted_us : 0;
    m_->request_latency_us.record(resp.latency_us);
    resolve(w.promise, w.request, std::move(resp));
  }
}

std::size_t EstimateService::refresh_once() {
  const std::uint64_t now = now_us();
  std::size_t enqueued = 0;
  std::unique_lock lock(mutex_);
  if (stopping_) return 0;
  const std::uint64_t version = source_.version();
  cache_.observe_version(version, now);
  const std::uint64_t ttl = cache_.current_ttl_us();
  const auto threshold = static_cast<std::uint64_t>(
      config_.refresh_at_fraction * static_cast<double>(ttl));

  for (const auto& [key, entry] : cache_.items()) {
    const bool stale = entry.graph_version != version;
    const std::uint64_t age =
        now >= entry.computed_at_us ? now - entry.computed_at_us : 0;
    if (!stale && age < threshold) continue;

    // Skip when any pending batch already covers the key — whatever it
    // computes supersedes this entry anyway.
    bool covered = false;
    for (const auto& [ckey, pending] : pending_) {
      if (pending->key == key) {
        covered = true;
        break;
      }
    }
    if (covered) {
      m_->refresh_skipped.inc();
      continue;
    }

    auto batch = std::make_shared<PendingBatch>();
    batch->key = key;
    batch->epsilon = entry.epsilon;
    batch->delta = entry.delta;
    batch->refresh_only = true;
    if (cost_active()) {
      // Refresh walks have no requesting tenant; they bill to a system
      // context so the ledger still reconciles to zero residue.
      CostLedger* ledger = CostLedger::active();
      if (ledger != nullptr) {
        if (config_.cost_aggregate_contexts) {
          batch->cost_ctx = cost_open_aggregate("(refresh)", key.kind,
                                                key.method, "refresh");
        } else {
          QueryContext qc;
          qc.tenant = "(refresh)";
          qc.query_id =
              next_query_id_.fetch_add(1, std::memory_order_relaxed);
          qc.kind = to_string(key.kind);
          qc.method = to_string(key.method);
          qc.slo_class = "refresh";
          batch->cost_ctx = ledger->open(std::move(qc));
        }
      }
    }
    const std::uint64_t seq = next_seq_++;
    if (!queue_.try_push(batch, kNoDeadline, seq)) {
      m_->refresh_skipped.inc();
      continue;
    }
    pending_[CoalesceKey{key.kind, key.method, entry.epsilon, entry.delta}] =
        batch;
    ++enqueued;
  }
  update_gauges_locked();
  return enqueued;
}

void EstimateService::refresher_loop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    refresher_cv_.wait_for(
        lock, std::chrono::microseconds(config_.refresh_period_us),
        [&] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    refresh_once();
    lock.lock();
  }
}

void EstimateService::stop() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  refresher_cv_.notify_all();
  queue_.close();
  if (refresher_.joinable()) refresher_.join();
  if (broker_.joinable()) broker_.join();
  for (auto& batch : queue_.drain()) {
    for (auto& w : batch->waiters) {
      m_->failures.inc();
      cost_charge_ctx(w.cost_ctx, CostField::kFailures, 1);
      EstimateResponse resp;
      resp.status = ServeStatus::kFailed;
      resolve(w.promise, w.request, std::move(resp));
    }
  }
  std::lock_guard lock(mutex_);
  pending_.clear();
  update_gauges_locked();
}

}  // namespace overcount

#include "net/tenant.hpp"

#include <algorithm>
#include <cmath>

#include "net/protocol.hpp"

namespace overcount::net {

std::vector<SloClassSpec> default_slo_classes() {
  return {
      {"gold", 0.3, 0.2, 2'000'000, 2000.0, 400.0},
      {"silver", 0.4, 0.2, 4'000'000, 1000.0, 200.0},
      {"bronze", 0.5, 0.3, 0, 500.0, 100.0},
  };
}

double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // nobody got anything: vacuously fair.
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

TenantRegistry::TenantRegistry(std::vector<SloClassSpec> classes,
                               DrrConfig drr)
    : classes_(std::move(classes)), drr_(drr) {}

std::uint32_t TenantRegistry::hello(const std::string& name,
                                    std::uint8_t class_id,
                                    std::uint64_t now_us) {
  if (class_id >= classes_.size() || name.empty() ||
      name.size() > kMaxTenantNameBytes) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    TenantState& t = tenants_[it->second];
    t.class_id = class_id;  // re-Hello rebinds the class, keeps the budget.
    return it->second;
  }
  const std::uint32_t id = next_id_++;
  ids_.emplace(name, id);
  TenantState t;
  t.name = name;
  t.class_id = class_id;
  t.tokens = classes_[class_id].burst;  // start with a full bucket
  t.bucket_us = now_us;
  t.deficit = drr_.quantum;  // and one round of fair-share credit.
  t.drr_round = now_us / drr_.round_us;
  tenants_.emplace(id, t);
  return id;
}

void TenantRegistry::refill_locked(TenantState& t, const SloClassSpec& spec,
                                   std::uint64_t now_us) {
  if (now_us > t.bucket_us) {
    const double elapsed_s =
        static_cast<double>(now_us - t.bucket_us) * 1e-6;
    t.tokens = std::min(spec.burst, t.tokens + elapsed_s * spec.rate_per_sec);
    t.bucket_us = now_us;
  }
  const std::uint64_t round = now_us / drr_.round_us;
  if (round > t.drr_round) {
    const double rounds = std::min<double>(
        static_cast<double>(round - t.drr_round), drr_.deficit_cap_rounds);
    t.deficit = std::min(t.deficit + rounds * drr_.quantum,
                         drr_.deficit_cap_rounds * drr_.quantum);
    t.drr_round = round;
  }
}

AdmitDecision TenantRegistry::admit(std::uint32_t tenant_id,
                                    std::uint64_t now_us, bool saturated) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    return {AdmitResult::kUnknownTenant, 0};
  }
  TenantState& t = it->second;
  const SloClassSpec& spec = classes_[t.class_id];
  refill_locked(t, spec, now_us);

  // The epsilon absorbs float refill rounding (elapsed_us * 1e-6 * rate is
  // not exact), so a bucket refilled for exactly one token's worth of time
  // admits instead of demanding one more microsecond.
  constexpr double kTokenEps = 1e-9;
  if (t.tokens + kTokenEps < 1.0) {
    // Exact time until the next token matures at rate_per_sec.
    const double missing = 1.0 - t.tokens;
    const auto wait_us = static_cast<std::uint64_t>(
        std::ceil(missing / spec.rate_per_sec * 1e6));
    return {AdmitResult::kRateLimited, std::max<std::uint64_t>(wait_us, 1)};
  }

  if (saturated && t.deficit < 1.0) {
    // Deferred to the next DRR round; tell the client exactly how long.
    const std::uint64_t next_round_us = (t.drr_round + 1) * drr_.round_us;
    const std::uint64_t wait_us =
        next_round_us > now_us ? next_round_us - now_us : drr_.round_us;
    return {AdmitResult::kFairShare, wait_us};
  }

  t.tokens = std::max(0.0, t.tokens - 1.0);
  // Debit the deficit even when unsaturated (clamped at zero): a tenant
  // that floods during calm weather arrives at the overload already broke.
  t.deficit = std::max(0.0, t.deficit - 1.0);
  return {AdmitResult::kAdmit, 0};
}

const SloClassSpec* TenantRegistry::spec_for(std::uint32_t tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return nullptr;
  return &classes_[it->second.class_id];
}

std::string TenantRegistry::name_for(std::uint32_t tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return {};
  return it->second.name;
}

std::size_t TenantRegistry::tenant_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

}  // namespace overcount::net

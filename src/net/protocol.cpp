#include "net/protocol.hpp"

#include <bit>
#include <cstring>

namespace overcount::net {
namespace {

// Little-endian byte writer. Frames are small (<= a few hundred bytes), so
// a std::string with amortised growth is plenty.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(const std::string& s) { out_.append(s); }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

// Bounds-checked little-endian reader over a frame payload. Every getter
// fails (ok_ = false) instead of over-reading; callers check ok() once.
class ByteReader {
 public:
  explicit ByteReader(const std::string& data) : data_(data) {}

  std::uint8_t u8() {
    if (pos_ + 1 > data_.size()) return fail8();
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    const std::uint16_t hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    const std::uint32_t hi = u16();
    return lo | (hi << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string bytes(std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return {};
    }
    std::string out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }
  bool ok() const { return ok_; }
  bool exhausted() const { return ok_ && pos_ == data_.size(); }

 private:
  std::uint8_t fail8() {
    ok_ = false;
    return 0;
  }
  const std::string& data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::string with_header(FrameType type, std::uint16_t flags,
                        std::string payload) {
  ByteWriter w;
  w.u32(kMagic);
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(flags);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload);
  return w.take();
}

}  // namespace

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kUnknownTenant: return "unknown_tenant";
    case RejectReason::kRateLimited: return "rate_limited";
    case RejectReason::kFairShare: return "fair_share";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kShuttingDown: return "shutting_down";
    case RejectReason::kBadRequest: return "bad_request";
  }
  return "unknown";
}

std::string encode_hello(const HelloMsg& msg) {
  ByteWriter w;
  w.u8(msg.class_id);
  w.u16(static_cast<std::uint16_t>(msg.tenant.size()));
  w.bytes(msg.tenant);
  return with_header(FrameType::kHello, 0, w.take());
}

std::string encode_welcome(const WelcomeMsg& msg) {
  ByteWriter w;
  w.u32(msg.tenant_id);
  w.u8(msg.class_id);
  w.f64(msg.epsilon);
  w.f64(msg.delta);
  w.u64(msg.deadline_us);
  w.f64(msg.rate_per_sec);
  w.f64(msg.burst);
  return with_header(FrameType::kWelcome, 0, w.take());
}

std::string encode_request(const RequestMsg& msg) {
  ByteWriter w;
  w.u64(msg.request_id);
  w.u32(msg.tenant_id);
  w.u8(msg.kind);
  w.u8(msg.method);
  w.f64(msg.epsilon);
  w.f64(msg.delta);
  w.u64(msg.deadline_rel_us);
  return with_header(FrameType::kRequest, msg.flags, w.take());
}

std::string encode_response(const ResponseMsg& msg) {
  ByteWriter w;
  w.u64(msg.request_id);
  w.u8(msg.status);
  w.f64(msg.value);
  w.f64(msg.epsilon);
  w.u64(msg.walks);
  w.u64(msg.graph_version);
  w.u64(msg.age_us);
  w.u64(msg.latency_us);
  w.u64(msg.retry_after_us);
  return with_header(FrameType::kResponse, msg.flags, w.take());
}

std::string encode_reject(const RejectMsg& msg) {
  ByteWriter w;
  w.u64(msg.request_id);
  w.u8(msg.reason);
  w.u64(msg.retry_after_us);
  return with_header(FrameType::kReject, 0, w.take());
}

std::string encode_error(const ErrorMsg& msg) {
  ByteWriter w;
  w.u16(msg.code);
  w.u16(static_cast<std::uint16_t>(msg.message.size()));
  w.bytes(msg.message);
  return with_header(FrameType::kError, 0, w.take());
}

std::string encode_ping(const PingMsg& msg, bool pong) {
  ByteWriter w;
  w.u64(msg.nonce);
  return with_header(pong ? FrameType::kPong : FrameType::kPing, 0, w.take());
}

std::optional<HelloMsg> decode_hello(const Frame& frame) {
  ByteReader r(frame.payload);
  HelloMsg msg;
  msg.class_id = r.u8();
  const std::uint16_t len = r.u16();
  if (len > kMaxTenantNameBytes) return std::nullopt;
  msg.tenant = r.bytes(len);
  if (!r.exhausted() || msg.tenant.empty()) return std::nullopt;
  return msg;
}

std::optional<WelcomeMsg> decode_welcome(const Frame& frame) {
  ByteReader r(frame.payload);
  WelcomeMsg msg;
  msg.tenant_id = r.u32();
  msg.class_id = r.u8();
  msg.epsilon = r.f64();
  msg.delta = r.f64();
  msg.deadline_us = r.u64();
  msg.rate_per_sec = r.f64();
  msg.burst = r.f64();
  if (!r.exhausted()) return std::nullopt;
  return msg;
}

std::optional<RequestMsg> decode_request(const Frame& frame) {
  ByteReader r(frame.payload);
  RequestMsg msg;
  msg.flags = frame.header.flags;
  msg.request_id = r.u64();
  msg.tenant_id = r.u32();
  msg.kind = r.u8();
  msg.method = r.u8();
  msg.epsilon = r.f64();
  msg.delta = r.f64();
  msg.deadline_rel_us = r.u64();
  if (!r.exhausted()) return std::nullopt;
  return msg;
}

std::optional<ResponseMsg> decode_response(const Frame& frame) {
  ByteReader r(frame.payload);
  ResponseMsg msg;
  msg.flags = frame.header.flags;
  msg.request_id = r.u64();
  msg.status = r.u8();
  msg.value = r.f64();
  msg.epsilon = r.f64();
  msg.walks = r.u64();
  msg.graph_version = r.u64();
  msg.age_us = r.u64();
  msg.latency_us = r.u64();
  msg.retry_after_us = r.u64();
  if (!r.exhausted()) return std::nullopt;
  return msg;
}

std::optional<RejectMsg> decode_reject(const Frame& frame) {
  ByteReader r(frame.payload);
  RejectMsg msg;
  msg.request_id = r.u64();
  msg.reason = r.u8();
  msg.retry_after_us = r.u64();
  if (!r.exhausted()) return std::nullopt;
  return msg;
}

std::optional<ErrorMsg> decode_error(const Frame& frame) {
  ByteReader r(frame.payload);
  ErrorMsg msg;
  msg.code = r.u16();
  const std::uint16_t len = r.u16();
  msg.message = r.bytes(len);
  if (!r.exhausted()) return std::nullopt;
  return msg;
}

std::optional<PingMsg> decode_ping(const Frame& frame) {
  ByteReader r(frame.payload);
  PingMsg msg;
  msg.nonce = r.u64();
  if (!r.exhausted()) return std::nullopt;
  return msg;
}

void FrameReader::append(const char* data, std::size_t n) {
  if (broken_) return;  // corrupt streams accept no more bytes.
  // Compact lazily so long-lived connections do not grow without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

DecodeStatus FrameReader::next(Frame& out, std::string* error) {
  if (broken_) {
    if (error != nullptr) *error = error_;
    return DecodeStatus::kError;
  }
  if (buffered() < kHeaderBytes) return DecodeStatus::kNeedMore;
  const auto* p =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const std::uint32_t magic = static_cast<std::uint32_t>(p[0]) |
                              (static_cast<std::uint32_t>(p[1]) << 8) |
                              (static_cast<std::uint32_t>(p[2]) << 16) |
                              (static_cast<std::uint32_t>(p[3]) << 24);
  FrameHeader header;
  header.version = p[4];
  header.type = p[5];
  header.flags =
      static_cast<std::uint16_t>(p[6] | (static_cast<std::uint16_t>(p[7]) << 8));
  header.length = static_cast<std::uint32_t>(p[8]) |
                  (static_cast<std::uint32_t>(p[9]) << 8) |
                  (static_cast<std::uint32_t>(p[10]) << 16) |
                  (static_cast<std::uint32_t>(p[11]) << 24);
  // Header validation happens before any payload is buffered or allocated:
  // an adversarial length field can never drive memory growth.
  if (magic != kMagic) {
    broken_ = true;
    error_ = "bad magic";
  } else if (header.version != kProtocolVersion) {
    broken_ = true;
    error_ = "unsupported protocol version";
  } else if (header.length > kMaxPayloadBytes) {
    broken_ = true;
    error_ = "payload exceeds 64 KiB cap";
  } else if (header.type < static_cast<std::uint8_t>(FrameType::kHello) ||
             header.type > static_cast<std::uint8_t>(FrameType::kPong)) {
    broken_ = true;
    error_ = "unknown frame type";
  }
  if (broken_) {
    if (error != nullptr) *error = error_;
    return DecodeStatus::kError;
  }
  if (buffered() < kHeaderBytes + header.length) return DecodeStatus::kNeedMore;
  out.header = header;
  out.payload = buffer_.substr(consumed_ + kHeaderBytes, header.length);
  consumed_ += kHeaderBytes + header.length;
  return DecodeStatus::kFrame;
}

}  // namespace overcount::net

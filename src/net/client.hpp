// Minimal blocking client for the overcount wire protocol. Used by the
// soak bench, the examples, and the tests; kept dependency-light (socket +
// protocol + Rng only) so anything can link it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/protocol.hpp"
#include "util/rng.hpp"

namespace overcount::net {

/// Jittered honor of a server-supplied retry_after_us hint. Returns a wait
/// in [0.75, 1.25) * hint, capped at `cap_us`. Jitter desynchronises
/// rejected clients so they do not re-arrive as a thundering herd exactly
/// when the hint expires.
std::uint64_t jittered_backoff_us(std::uint64_t retry_after_us, Rng& rng,
                                  std::uint64_t cap_us = 2'000'000);

/// One blocking connection to an EstimateNetServer. Not thread-safe; use
/// one client per thread (the server multiplexes tenants per connection,
/// so one connection can speak for many tenants).
class NetClient {
 public:
  NetClient() = default;
  ~NetClient() { close(); }
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connects to 127.0.0.1:port. False on failure.
  bool connect(std::uint16_t port);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Registers a tenant; returns the Welcome (with the wire tenant id) or
  /// nullopt on transport/protocol failure.
  std::optional<WelcomeMsg> hello(const std::string& tenant,
                                  std::uint8_t class_id,
                                  int timeout_ms = 10'000);

  /// Fire-and-forget send for pipelined use; pair with read_frame().
  bool send_request(const RequestMsg& req);

  /// Reads the next complete frame, polling up to `timeout_ms` total.
  std::optional<Frame> read_frame(int timeout_ms = 10'000);

  /// Outcome of a synchronous round trip.
  struct Result {
    bool rejected = false;
    ResponseMsg response;  ///< valid when !rejected.
    RejectMsg reject;      ///< valid when rejected.
  };

  /// Synchronous request: send + wait for the matching Response/Reject.
  /// nullopt on transport or protocol failure.
  std::optional<Result> request(const RequestMsg& req,
                                int timeout_ms = 30'000);

  /// Liveness probe; true iff the echoed nonce matches.
  bool ping(std::uint64_t nonce, int timeout_ms = 10'000);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace overcount::net

// EstimateNetServer: the multi-tenant socket front end that promotes
// EstimateService to a real network service.
//
//   client ──TCP──▶ acceptor pool ──▶ admission ──▶ shard pool (round robin)
//                    (N threads,       (tenant        (replicated
//                     frame codec)      registry:      EstimateService
//                                       token bucket   brokers, each with
//                                       + DRR)         its own EDF queue)
//
// Shape:
//  * `acceptors` threads each accept one connection at a time and serve it
//    inline until EOF — the pool size bounds concurrent connections, and
//    connections beyond it wait in the kernel backlog. Each connection
//    speaks the length-prefixed protocol (net/protocol.hpp) and may
//    pipeline up to `max_inflight_per_conn` requests; responses are
//    written back in request order (FIFO per connection).
//  * admission: Hello binds a tenant to an SLO class; every request then
//    passes the tenant's token bucket and — while the chosen shard's EDF
//    queue is near capacity — the DRR fair-share layer (net/tenant.hpp).
//    Refusals are kReject frames carrying retry_after_us, including the
//    broker's own load-shed rejections (the shard's queue-depth-derived
//    hint is forwarded onto the wire).
//  * `shards` replicated EstimateService brokers behind a round-robin
//    counter. All shards share one MetricsRegistry (counters merge by
//    name) and the same master seed. Determinism contract: with one
//    shard, one connection and sequential requests, responses are
//    bit-identical to in-process EstimateService calls with the same
//    (seed, graph, submission order) — the socket adds transport, not
//    arithmetic (tests/net/net_identity_test.cpp pins this).
//
// Observability: the net.* metric family (connections, frames, bytes,
// rejects by reason, per-class latency histograms), TraceSpans under the
// "net" category, a server-side SloLedger keyed by SLO-class name, and
// per-tenant cost attribution via EstimateRequest.tenant riding the
// existing CostLedger plumbing.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "net/tenant.hpp"
#include "obs/health/audit.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"
#include "serve/source.hpp"

namespace overcount::net {

struct NetServerConfig {
  std::uint16_t port = 0;  ///< 0 = kernel-assigned; read back via port().
  unsigned acceptors = 4;  ///< concurrent connections served.
  unsigned shards = 2;     ///< replicated broker shards.
  std::size_t max_inflight_per_conn = 64;  ///< pipelining window.

  /// SLO classes tenants may Hello into; empty = default_slo_classes().
  std::vector<SloClassSpec> classes;
  DrrConfig drr;
  /// DRR bites when the chosen shard's queue depth reaches this fraction
  /// of its capacity.
  double saturation_fraction = 0.75;

  /// Server-side per-class deadline objective (SloLedger keyed by class
  /// name, on top of each shard's own per-(kind,method) ledger).
  SloPolicy slo;

  /// Registry for net.* and every shard's serve.*; null = owned.
  MetricsRegistry* metrics = nullptr;

  /// Template for every shard (seed, cache, budget, clock...). `metrics`
  /// inside is overridden to the shared registry.
  ServiceConfig service;
};

class EstimateNetServer {
 public:
  /// Binds, spawns shards and acceptors. Throws std::runtime_error if the
  /// listener cannot be created.
  EstimateNetServer(GraphSource source, NetServerConfig config = {});
  ~EstimateNetServer();

  EstimateNetServer(const EstimateNetServer&) = delete;
  EstimateNetServer& operator=(const EstimateNetServer&) = delete;

  std::uint16_t port() const { return port_; }
  MetricsRegistry& metrics() noexcept { return *metrics_; }
  const SloLedger& slo() const noexcept { return slo_; }
  TenantRegistry& tenants() noexcept { return tenants_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  EstimateService& shard(std::size_t i) noexcept { return *shards_[i]; }

  /// Microseconds on the admission clock (config.service.now_us, or steady
  /// time since construction).
  std::uint64_t now_us() const;

  /// Stops accepting, drains in-flight requests, stops the shards.
  /// Idempotent; called by the destructor.
  void stop();

 private:
  struct PendingReply {
    std::uint64_t request_id = 0;
    std::future<EstimateResponse> future;
    std::string cls;  ///< SLO class name (ledger + metrics key).
    std::uint64_t t0_us = 0;
  };

  void accept_loop();
  void handle_connection(int fd);
  /// Returns false when the connection must close.
  bool handle_frame(int fd, const Frame& frame,
                    std::deque<PendingReply>& inflight);
  bool handle_request(int fd, const Frame& frame,
                      std::deque<PendingReply>& inflight);
  /// Blocking: waits for the oldest in-flight future and writes its frame.
  bool write_reply(int fd, PendingReply& pending);
  bool send_reject(int fd, std::uint64_t request_id, RejectReason reason,
                   std::uint64_t retry_after_us, const std::string& cls);
  bool send_frame(int fd, const std::string& frame);

  NetServerConfig config_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  TenantRegistry tenants_;
  SloLedger slo_;
  std::vector<std::unique_ptr<EstimateService>> shards_;
  std::atomic<std::size_t> next_shard_{0};
  std::chrono::steady_clock::time_point epoch_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> acceptors_;
};

}  // namespace overcount::net

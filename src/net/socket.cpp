#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace overcount::net {
namespace {

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// poll() one fd for POLLIN, retrying EINTR without extending the window.
/// Returns >0 readable, 0 timeout, <0 hard error.
int poll_readable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0 && errno == EINTR) continue;
    return ready;
  }
}

}  // namespace

int listen_loopback(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

std::uint16_t bound_port(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

AcceptResult accept_next(int listen_fd, int timeout_ms) {
  AcceptResult out;
  const int ready = poll_readable(listen_fd, timeout_ms);
  if (ready == 0) return out;  // kTimeout
  if (ready < 0) {
    out.status = AcceptStatus::kClosed;
    out.error = errno;
    return out;
  }
  for (;;) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client >= 0) {
      set_nodelay(client);
      out.fd = client;
      out.status = AcceptStatus::kAccepted;
      return out;
    }
    switch (errno) {
      case EINTR:
        continue;
      case EAGAIN:
#if EAGAIN != EWOULDBLOCK
      case EWOULDBLOCK:
#endif
      case ECONNABORTED:
#ifdef EPROTO
      case EPROTO:
#endif
        // The connection evaporated between poll() and accept(); nothing
        // to do but wait for the next one.
        return out;  // kTimeout
      case EMFILE:
      case ENFILE:
      case ENOBUFS:
      case ENOMEM:
        out.status = AcceptStatus::kTransient;
        out.error = errno;
        return out;
      default:
        out.status = AcceptStatus::kClosed;
        out.error = errno;
        return out;
    }
  }
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

bool send_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(rc);
  }
  return true;
}

ssize_t recv_some(int fd, void* buf, std::size_t cap, int timeout_ms) {
  const int ready = poll_readable(fd, timeout_ms);
  if (ready == 0) return kRecvTimeout;
  if (ready < 0) return kRecvError;
  for (;;) {
    const ssize_t rc = ::recv(fd, buf, cap, 0);
    if (rc > 0) return rc;
    if (rc == 0) return kRecvEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kRecvTimeout;
    return kRecvError;
  }
}

}  // namespace overcount::net

// overcount wire protocol v1: dependency-free length-prefixed binary frames.
//
// Every frame is a fixed 12-byte header followed by `length` payload bytes:
//
//   offset  size  field
//        0     4  magic   0x4F564331 ("OVC1"), little-endian
//        4     1  version (currently 1)
//        5     1  type    (FrameType)
//        6     2  flags   (per-type bitset, little-endian)
//        8     4  length  payload byte count, little-endian, <= 64 KiB
//
// All multi-byte integers are little-endian and encoded with explicit byte
// shifts (no struct punning), so the format is identical across hosts.
// Doubles travel as the little-endian bytes of their IEEE-754 bit pattern —
// bit-exact, which the tests/net/ identity test relies on.
//
// Decoding is incremental and bounds-checked: FrameReader accepts arbitrary
// byte chunks and yields complete frames; a malformed header (bad magic /
// version / oversized length) is a terminal kError *before* any payload
// allocation, so a garbage or adversarial stream cannot make the server
// allocate, crash, or over-read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace overcount::net {

inline constexpr std::uint32_t kMagic = 0x4F564331u;  // "OVC1"
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 12;
inline constexpr std::uint32_t kMaxPayloadBytes = 64 * 1024;
inline constexpr std::size_t kMaxTenantNameBytes = 256;

enum class FrameType : std::uint8_t {
  kHello = 1,    ///< client -> server: register/attach a tenant.
  kWelcome = 2,  ///< server -> client: tenant id + resolved class spec.
  kRequest = 3,  ///< client -> server: one estimate query.
  kResponse = 4, ///< server -> client: completed estimate.
  kReject = 5,   ///< server -> client: admission refusal + retry_after_us.
  kError = 6,    ///< server -> client: protocol-level failure (then close).
  kPing = 7,     ///< either direction: liveness probe.
  kPong = 8,     ///< echo of kPing.
};

enum class RejectReason : std::uint8_t {
  kUnknownTenant = 1,  ///< request named a tenant id never issued by Hello.
  kRateLimited = 2,    ///< token bucket empty for this tenant.
  kFairShare = 3,      ///< DRR deficit exhausted while the shard is saturated.
  kQueueFull = 4,      ///< broker shard shed the request (EDF queue full).
  kShuttingDown = 5,   ///< server is stopping.
  kBadRequest = 6,     ///< request failed validation (epsilon/delta/kind).
};

const char* to_string(RejectReason reason);

/// Protocol error codes carried by kError frames.
inline constexpr std::uint16_t kErrBadFrame = 1;
inline constexpr std::uint16_t kErrBadHello = 2;
inline constexpr std::uint16_t kErrUnexpectedType = 3;

struct FrameHeader {
  std::uint8_t version = kProtocolVersion;
  std::uint8_t type = 0;
  std::uint16_t flags = 0;
  std::uint32_t length = 0;
};

/// One complete decoded frame (header + raw payload bytes).
struct Frame {
  FrameHeader header;
  std::string payload;
  FrameType type() const { return static_cast<FrameType>(header.type); }
};

// ---------------------------------------------------------------- messages

struct HelloMsg {
  std::string tenant;       ///< UTF-8 name, <= kMaxTenantNameBytes.
  std::uint8_t class_id = 0;
};

struct WelcomeMsg {
  std::uint32_t tenant_id = 0;
  std::uint8_t class_id = 0;
  double epsilon = 0.0;
  double delta = 0.0;
  std::uint64_t deadline_us = 0;  ///< 0 = best effort.
  double rate_per_sec = 0.0;
  double burst = 0.0;
};

/// RequestMsg.flags bits.
inline constexpr std::uint16_t kReqAllowCached = 1u << 0;
inline constexpr std::uint16_t kReqHasDeadline = 1u << 1;
inline constexpr std::uint16_t kReqExplicitTarget = 1u << 2;

struct RequestMsg {
  std::uint64_t request_id = 0;
  std::uint32_t tenant_id = 0;
  std::uint8_t kind = 0;    ///< serve::QueryKind on the wire.
  std::uint8_t method = 0;  ///< serve::EstimateMethod on the wire.
  std::uint16_t flags = kReqAllowCached;
  double epsilon = 0.0;     ///< used when kReqExplicitTarget, else class spec.
  double delta = 0.0;
  std::uint64_t deadline_rel_us = 0;  ///< relative; used when kReqHasDeadline,
                                      ///< else the class deadline applies.
};

/// ResponseMsg.flags bits.
inline constexpr std::uint16_t kRespCacheHit = 1u << 0;
inline constexpr std::uint16_t kRespCoalesced = 1u << 1;

struct ResponseMsg {
  std::uint64_t request_id = 0;
  std::uint8_t status = 0;  ///< serve::ServeStatus on the wire.
  std::uint16_t flags = 0;
  double value = 0.0;
  double epsilon = 0.0;
  std::uint64_t walks = 0;
  std::uint64_t graph_version = 0;
  std::uint64_t age_us = 0;
  std::uint64_t latency_us = 0;
  std::uint64_t retry_after_us = 0;
};

struct RejectMsg {
  std::uint64_t request_id = 0;
  std::uint8_t reason = 0;  ///< RejectReason.
  std::uint64_t retry_after_us = 0;
};

struct ErrorMsg {
  std::uint16_t code = 0;
  std::string message;
};

struct PingMsg {
  std::uint64_t nonce = 0;
};

// ---------------------------------------------------------------- encoding

std::string encode_hello(const HelloMsg& msg);
std::string encode_welcome(const WelcomeMsg& msg);
std::string encode_request(const RequestMsg& msg);
std::string encode_response(const ResponseMsg& msg);
std::string encode_reject(const RejectMsg& msg);
std::string encode_error(const ErrorMsg& msg);
std::string encode_ping(const PingMsg& msg, bool pong = false);

// ---------------------------------------------------------------- decoding

/// Per-type payload decoders. nullopt = malformed payload (wrong size,
/// name too long, ...). They never throw and never read out of bounds.
std::optional<HelloMsg> decode_hello(const Frame& frame);
std::optional<WelcomeMsg> decode_welcome(const Frame& frame);
std::optional<RequestMsg> decode_request(const Frame& frame);
std::optional<ResponseMsg> decode_response(const Frame& frame);
std::optional<RejectMsg> decode_reject(const Frame& frame);
std::optional<ErrorMsg> decode_error(const Frame& frame);
std::optional<PingMsg> decode_ping(const Frame& frame);

enum class DecodeStatus : std::uint8_t {
  kNeedMore,  ///< not enough buffered bytes for the next frame yet.
  kFrame,     ///< `out` holds a complete frame.
  kError,     ///< stream is corrupt; the connection must be closed.
};

/// Incremental frame decoder. Feed bytes with append(); pull frames with
/// next(). After kError the reader stays in the error state (a corrupt
/// stream has no recoverable frame boundary).
class FrameReader {
 public:
  void append(const char* data, std::size_t n);
  DecodeStatus next(Frame& out, std::string* error = nullptr);
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
  bool broken_ = false;
  std::string error_;
};

}  // namespace overcount::net

// Shared loopback socket plumbing for every in-process network surface
// (the estimate front end in src/net/ and the metrics HTTP exporter in
// src/obs/expose.cpp).  One place owns the errno policy:
//
//   * EINTR is always retried, never surfaced;
//   * transient accept failures (EMFILE/ENFILE/ENOBUFS/ENOMEM) are reported
//     as kTransient so callers back off instead of spinning — on Linux the
//     pending connection stays in the accept queue, so backing off and
//     retrying is lossless;
//   * per-connection races (ECONNABORTED/EPROTO) look like "no connection
//     arrived" (kTimeout) because that is what they mean;
//   * EBADF/EINVAL mean the listener is gone (kClosed) and the loop should
//     exit.
//
// All helpers are IPv4-loopback only on purpose: the front end is a
// same-host service surface, not an internet daemon.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>

namespace overcount::net {

/// Outcome of one bounded accept attempt.
enum class AcceptStatus : std::uint8_t {
  kAccepted,   ///< `fd` holds a connected socket (TCP_NODELAY already set).
  kTimeout,    ///< nothing arrived within the poll window (or the peer
               ///< aborted the handshake) — call again.
  kTransient,  ///< resource exhaustion (EMFILE & friends): back off briefly,
               ///< then call again; the connection is still queued.
  kClosed,     ///< the listening socket is dead; stop the loop.
};

struct AcceptResult {
  int fd = -1;
  AcceptStatus status = AcceptStatus::kTimeout;
  int error = 0;  ///< errno for kTransient/kClosed, 0 otherwise.
};

/// Creates a loopback listener bound to `port` (0 = kernel-assigned).
/// Returns the listening fd, or -1 with errno set.
int listen_loopback(std::uint16_t port, int backlog = 64);

/// Port a listener returned by listen_loopback() is actually bound to.
std::uint16_t bound_port(int listen_fd);

/// Polls `listen_fd` for up to `timeout_ms`, then tries one accept().
/// Never blocks longer than the timeout; never spins on EMFILE.
AcceptResult accept_next(int listen_fd, int timeout_ms);

/// Blocking connect to 127.0.0.1:`port` (TCP_NODELAY set). -1 on failure.
int connect_loopback(std::uint16_t port);

/// Writes all `n` bytes, retrying EINTR and partial sends, with
/// MSG_NOSIGNAL so a dead peer surfaces as an error instead of SIGPIPE.
bool send_all(int fd, const void* data, std::size_t n);

/// recv_some() sentinel return values (any value > 0 is a byte count).
inline constexpr ssize_t kRecvEof = 0;
inline constexpr ssize_t kRecvTimeout = -1;
inline constexpr ssize_t kRecvError = -2;

/// Polls for up to `timeout_ms` then reads at most `cap` bytes.
/// Returns bytes read, or kRecvEof / kRecvTimeout / kRecvError.
ssize_t recv_some(int fd, void* buf, std::size_t cap, int timeout_ms);

}  // namespace overcount::net

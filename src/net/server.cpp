#include "net/server.hpp"

#include <unistd.h>

#include <chrono>
#include <stdexcept>

#include "net/socket.hpp"
#include "obs/trace.hpp"

namespace overcount::net {
namespace {

constexpr int kAcceptPollMs = 100;
constexpr int kRecvPollMs = 100;
constexpr int kTransientBackoffMs = 10;

SloOutcome outcome_of(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return SloOutcome::kOk;
    case ServeStatus::kRejected: return SloOutcome::kRejected;
    case ServeStatus::kDeadlineMiss: return SloOutcome::kDeadlineMiss;
    case ServeStatus::kFailed: return SloOutcome::kFailed;
  }
  return SloOutcome::kFailed;
}

}  // namespace

EstimateNetServer::EstimateNetServer(GraphSource source,
                                     NetServerConfig config)
    : config_(std::move(config)),
      owned_metrics_(config_.metrics != nullptr
                         ? nullptr
                         : std::make_unique<MetricsRegistry>()),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : owned_metrics_.get()),
      tenants_(config_.classes.empty() ? default_slo_classes()
                                       : config_.classes,
               config_.drr),
      slo_(metrics_, nullptr, config_.slo),
      epoch_(std::chrono::steady_clock::now()) {
  if (config_.acceptors == 0) config_.acceptors = 1;
  if (config_.shards == 0) config_.shards = 1;
  if (config_.max_inflight_per_conn == 0) config_.max_inflight_per_conn = 1;

  listen_fd_ = listen_loopback(config_.port,
                               static_cast<int>(config_.acceptors) * 16);
  if (listen_fd_ < 0) {
    throw std::runtime_error("EstimateNetServer: cannot bind loopback port");
  }
  port_ = bound_port(listen_fd_);

  ServiceConfig shard_config = config_.service;
  shard_config.metrics = metrics_;  // all shards merge into one registry.
  for (unsigned i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<EstimateService>(source, shard_config));
  }

  acceptors_.reserve(config_.acceptors);
  for (unsigned i = 0; i < config_.acceptors; ++i) {
    acceptors_.emplace_back([this] { accept_loop(); });
  }
}

EstimateNetServer::~EstimateNetServer() { stop(); }

std::uint64_t EstimateNetServer::now_us() const {
  if (config_.service.now_us) return config_.service.now_us();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void EstimateNetServer::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  for (auto& t : acceptors_) {
    if (t.joinable()) t.join();
  }
  acceptors_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Shards stop AFTER the handlers drained their in-flight futures, so
  // every admitted request still resolves normally during shutdown.
  for (auto& s : shards_) s->stop();
}

void EstimateNetServer::accept_loop() {
  Counter& connections = metrics_->counter("net.connections");
  Counter& transient = metrics_->counter("net.accept_transient");
  Gauge& active = metrics_->gauge("net.conn_active");
  while (!stopping_.load(std::memory_order_relaxed)) {
    const AcceptResult res = accept_next(listen_fd_, kAcceptPollMs);
    switch (res.status) {
      case AcceptStatus::kAccepted: {
        connections.inc();
        active.add(1.0);
        TraceSpan span("net", "net.connection");
        handle_connection(res.fd);
        ::close(res.fd);
        active.add(-1.0);
        break;
      }
      case AcceptStatus::kTimeout:
        break;
      case AcceptStatus::kTransient:
        // fd exhaustion: the pending connection stays queued in the
        // kernel; back off instead of spinning on EMFILE.
        transient.inc();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kTransientBackoffMs));
        break;
      case AcceptStatus::kClosed:
        return;
    }
  }
}

void EstimateNetServer::handle_connection(int fd) {
  FrameReader reader;
  std::deque<PendingReply> inflight;
  Counter& bytes_rx = metrics_->counter("net.bytes_rx");
  Counter& frames_rx = metrics_->counter("net.frames_rx");
  Counter& protocol_errors = metrics_->counter("net.protocol_errors");
  char buf[16 * 1024];
  bool alive = true;
  while (alive && !stopping_.load(std::memory_order_relaxed)) {
    // Opportunistically flush responses that are already done, in FIFO
    // order so the wire order matches the submission order.
    while (!inflight.empty() &&
           inflight.front().future.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready) {
      if (!write_reply(fd, inflight.front())) {
        alive = false;
        break;
      }
      inflight.pop_front();
    }
    if (!alive) break;
    if (inflight.size() >= config_.max_inflight_per_conn) {
      // Window full: block on the oldest response before reading more.
      if (!write_reply(fd, inflight.front())) break;
      inflight.pop_front();
      continue;
    }
    // With replies pending, poll at 1 ms so a ready front future reaches a
    // blocked client promptly (a window-limited client sends nothing while
    // it waits, so a long recv timeout would add its full length to every
    // pipelined round trip). The long poll is only for idle connections.
    const int poll_ms = inflight.empty() ? kRecvPollMs : 1;
    const ssize_t n = recv_some(fd, buf, sizeof(buf), poll_ms);
    if (n == kRecvTimeout) continue;
    if (n <= 0) break;  // EOF or hard error.
    bytes_rx.add(static_cast<std::uint64_t>(n));
    reader.append(buf, static_cast<std::size_t>(n));
    Frame frame;
    std::string error;
    for (;;) {
      const DecodeStatus st = reader.next(frame, &error);
      if (st == DecodeStatus::kNeedMore) break;
      if (st == DecodeStatus::kError) {
        protocol_errors.inc();
        trace_instant("net", "net.protocol_error");
        send_frame(fd, encode_error({kErrBadFrame, error}));
        alive = false;
        break;
      }
      frames_rx.inc();
      if (!handle_frame(fd, frame, inflight)) {
        alive = false;
        break;
      }
    }
  }
  // Drain whatever is still in flight so admitted requests get answers
  // even on shutdown (shards are stopped only after handlers exit).
  while (!inflight.empty()) {
    if (!write_reply(fd, inflight.front())) break;
    inflight.pop_front();
  }
}

bool EstimateNetServer::handle_frame(int fd, const Frame& frame,
                                     std::deque<PendingReply>& inflight) {
  switch (frame.type()) {
    case FrameType::kHello: {
      auto msg = decode_hello(frame);
      if (!msg) {
        metrics_->counter("net.protocol_errors").inc();
        send_frame(fd, encode_error({kErrBadHello, "malformed hello"}));
        return false;
      }
      const std::uint32_t id = tenants_.hello(msg->tenant, msg->class_id,
                                              now_us());
      if (id == 0) {
        send_frame(fd, encode_error({kErrBadHello, "unknown class"}));
        return false;
      }
      metrics_->counter("net.hellos").inc();
      metrics_->gauge("net.tenants")
          .set(static_cast<double>(tenants_.tenant_count()));
      const SloClassSpec& spec = tenants_.classes()[msg->class_id];
      WelcomeMsg welcome;
      welcome.tenant_id = id;
      welcome.class_id = msg->class_id;
      welcome.epsilon = spec.epsilon;
      welcome.delta = spec.delta;
      welcome.deadline_us = spec.deadline_us;
      welcome.rate_per_sec = spec.rate_per_sec;
      welcome.burst = spec.burst;
      return send_frame(fd, encode_welcome(welcome));
    }
    case FrameType::kRequest:
      return handle_request(fd, frame, inflight);
    case FrameType::kPing: {
      auto msg = decode_ping(frame);
      if (!msg) return false;
      return send_frame(fd, encode_ping(*msg, /*pong=*/true));
    }
    default:
      // kWelcome/kResponse/kReject/kError/kPong are server->client only.
      metrics_->counter("net.protocol_errors").inc();
      send_frame(fd,
                 encode_error({kErrUnexpectedType, "unexpected frame type"}));
      return false;
  }
}

bool EstimateNetServer::handle_request(int fd, const Frame& frame,
                                       std::deque<PendingReply>& inflight) {
  auto msg = decode_request(frame);
  if (!msg) {
    metrics_->counter("net.protocol_errors").inc();
    send_frame(fd, encode_error({kErrBadFrame, "malformed request"}));
    return false;
  }
  metrics_->counter("net.requests").inc();
  const SloClassSpec* spec = tenants_.spec_for(msg->tenant_id);
  if (spec == nullptr) {
    return send_reject(fd, msg->request_id, RejectReason::kUnknownTenant, 0,
                       "unregistered");
  }
  TraceSpan span("net", "net.request", "tenant", msg->tenant_id);

  if (stopping_.load(std::memory_order_relaxed)) {
    return send_reject(fd, msg->request_id, RejectReason::kShuttingDown,
                       100'000, spec->name);
  }
  if (msg->kind > 1 || msg->method > 1) {
    return send_reject(fd, msg->request_id, RejectReason::kBadRequest, 0,
                       spec->name);
  }
  double epsilon = spec->epsilon;
  double delta = spec->delta;
  if ((msg->flags & kReqExplicitTarget) != 0) {
    epsilon = msg->epsilon;
    delta = msg->delta;
    if (!(epsilon > 0.0 && epsilon < 1.0) || !(delta > 0.0 && delta < 1.0)) {
      return send_reject(fd, msg->request_id, RejectReason::kBadRequest, 0,
                         spec->name);
    }
  }

  // Round-robin shard choice first: saturation (and thus fair share) is
  // judged against the queue the request would actually land on.
  EstimateService& shard =
      *shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) %
               shards_.size()];
  const bool saturated =
      shard.queue_depth() >=
      static_cast<std::size_t>(config_.saturation_fraction *
                               static_cast<double>(shard.queue_capacity()));
  const AdmitDecision decision =
      tenants_.admit(msg->tenant_id, now_us(), saturated);
  switch (decision.result) {
    case AdmitResult::kAdmit:
      break;
    case AdmitResult::kUnknownTenant:
      return send_reject(fd, msg->request_id, RejectReason::kUnknownTenant, 0,
                         spec->name);
    case AdmitResult::kRateLimited:
      return send_reject(fd, msg->request_id, RejectReason::kRateLimited,
                         decision.retry_after_us, spec->name);
    case AdmitResult::kFairShare:
      return send_reject(fd, msg->request_id, RejectReason::kFairShare,
                         decision.retry_after_us, spec->name);
  }

  EstimateRequest req;
  req.kind = static_cast<QueryKind>(msg->kind);
  req.method = static_cast<EstimateMethod>(msg->method);
  req.epsilon = epsilon;
  req.delta = delta;
  req.allow_cached = (msg->flags & kReqAllowCached) != 0;
  req.tenant = tenants_.name_for(msg->tenant_id);
  std::uint64_t deadline_rel = spec->deadline_us;
  if ((msg->flags & kReqHasDeadline) != 0) deadline_rel = msg->deadline_rel_us;
  // Deadlines travel relative on the wire and become absolute on the
  // clock of the shard that will enforce them.
  req.deadline_us =
      deadline_rel == 0 ? kNoDeadline : shard.now_us() + deadline_rel;

  PendingReply pending;
  pending.request_id = msg->request_id;
  pending.cls = spec->name;
  pending.t0_us = now_us();
  pending.future = shard.submit(req);
  inflight.push_back(std::move(pending));
  return true;
}

bool EstimateNetServer::write_reply(int fd, PendingReply& pending) {
  const EstimateResponse resp = pending.future.get();
  const std::uint64_t latency =
      now_us() > pending.t0_us ? now_us() - pending.t0_us : 0;
  slo_.record(pending.cls, outcome_of(resp.status), latency);
  metrics_->histogram("net.class." + pending.cls + ".latency_us")
      .record(latency);
  if (resp.status == ServeStatus::kRejected) {
    // The broker load-shed after admission (queue full / step budget):
    // forward its retry hint onto the wire as a first-class reject frame.
    metrics_->counter("net.rejects.queue_full").inc();
    RejectMsg reject;
    reject.request_id = pending.request_id;
    reject.reason = static_cast<std::uint8_t>(RejectReason::kQueueFull);
    reject.retry_after_us = resp.retry_after_us;
    return send_frame(fd, encode_reject(reject));
  }
  metrics_->counter("net.responses").inc();
  metrics_->counter("net.class." + pending.cls + ".responses").inc();
  ResponseMsg out;
  out.request_id = pending.request_id;
  out.status = static_cast<std::uint8_t>(resp.status);
  out.flags = static_cast<std::uint16_t>(
      (resp.cache_hit ? kRespCacheHit : 0) |
      (resp.coalesced ? kRespCoalesced : 0));
  out.value = resp.value;
  out.epsilon = resp.epsilon;
  out.walks = resp.walks;
  out.graph_version = resp.graph_version;
  out.age_us = resp.age_us;
  out.latency_us = resp.latency_us;
  out.retry_after_us = resp.retry_after_us;
  return send_frame(fd, encode_response(out));
}

bool EstimateNetServer::send_reject(int fd, std::uint64_t request_id,
                                    RejectReason reason,
                                    std::uint64_t retry_after_us,
                                    const std::string& cls) {
  metrics_->counter(std::string("net.rejects.") + to_string(reason)).inc();
  slo_.record(cls, SloOutcome::kRejected, 0);
  trace_instant("net", "net.reject", "retry_after_us", retry_after_us);
  RejectMsg reject;
  reject.request_id = request_id;
  reject.reason = static_cast<std::uint8_t>(reason);
  reject.retry_after_us = retry_after_us;
  return send_frame(fd, encode_reject(reject));
}

bool EstimateNetServer::send_frame(int fd, const std::string& frame) {
  if (!send_all(fd, frame.data(), frame.size())) return false;
  metrics_->counter("net.frames_tx").inc();
  metrics_->counter("net.bytes_tx").add(frame.size());
  return true;
}

}  // namespace overcount::net

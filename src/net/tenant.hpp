// Per-tenant admission control for the estimate front end.
//
// Three layers, cheapest first, all driven by an injected microsecond clock
// so tests are deterministic:
//
//   1. registration — a tenant must Hello before sending requests; the
//      Hello binds it to an SLO class (epsilon, delta, deadline) and the
//      class's rate limits.
//   2. token bucket  — per-tenant average-rate + burst cap. Refusals carry
//      the exact retry_after_us until the next token matures.
//   3. deficit round robin — a fair-share layer that only bites while the
//      broker shard behind the connection is saturated. Each tenant earns
//      `quantum` request credits per `round_us`; a flooding tenant exhausts
//      its deficit and is deferred to its next round while polite tenants'
//      credits keep them admitted. Under light load the deficit is still
//      debited (clamped at zero) so a tenant that floods *before* overload
//      arrives hits the fair-share wall already drained.
//
// The DRR layer sits in front of the EDF DeadlineQueue: EDF orders admitted
// work by urgency; DRR decides *whose* work is admitted when there is not
// room for everyone. Jain's fairness index over per-tenant admitted counts
// is the pinned metric (tests/net/tenant_test.cpp).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace overcount::net {

/// An SLO class: accuracy target, deadline, and rate envelope shared by all
/// tenants registered under it.
struct SloClassSpec {
  std::string name;
  double epsilon = 0.3;
  double delta = 0.2;
  std::uint64_t deadline_us = 0;  ///< 0 = best effort (no deadline).
  double rate_per_sec = 1000.0;   ///< token bucket refill rate.
  double burst = 100.0;           ///< token bucket capacity.
};

/// Gold/silver/bronze defaults used by the server, the soak bench, and the
/// examples when the caller does not supply its own classes.
std::vector<SloClassSpec> default_slo_classes();

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1.0 = perfectly fair,
/// 1/n = one tenant got everything. Empty input yields 0.
double jain_index(const std::vector<double>& xs);

enum class AdmitResult : std::uint8_t {
  kAdmit,
  kUnknownTenant,
  kRateLimited,
  kFairShare,
};

struct AdmitDecision {
  AdmitResult result = AdmitResult::kAdmit;
  std::uint64_t retry_after_us = 0;
};

struct DrrConfig {
  double quantum = 16.0;          ///< request credits earned per round.
  std::uint64_t round_us = 10'000;
  double deficit_cap_rounds = 4;  ///< idle tenants bank at most this many
                                  ///< rounds of quantum.
};

/// Registry of tenants and their admission state. Thread-safe; all time is
/// caller-supplied microseconds so behaviour is replayable.
class TenantRegistry {
 public:
  TenantRegistry(std::vector<SloClassSpec> classes, DrrConfig drr);

  const std::vector<SloClassSpec>& classes() const { return classes_; }

  /// Registers (or re-attaches) `name` under `class_id`. Returns the wire
  /// tenant id, or 0 if class_id is out of range. Re-Hello with a
  /// different class rebinds the tenant.
  std::uint32_t hello(const std::string& name, std::uint8_t class_id,
                      std::uint64_t now_us);

  /// Full admission decision for one request. `saturated` tells the DRR
  /// layer whether the target shard is near queue capacity.
  AdmitDecision admit(std::uint32_t tenant_id, std::uint64_t now_us,
                      bool saturated);

  /// Class spec for a registered tenant (nullptr if unknown).
  const SloClassSpec* spec_for(std::uint32_t tenant_id) const;
  /// Tenant name for a registered id (empty if unknown).
  std::string name_for(std::uint32_t tenant_id) const;

  std::size_t tenant_count() const;

 private:
  struct TenantState {
    std::string name;
    std::uint8_t class_id = 0;
    double tokens = 0.0;             ///< token bucket level.
    std::uint64_t bucket_us = 0;     ///< last bucket refill time.
    double deficit = 0.0;            ///< DRR credit.
    std::uint64_t drr_round = 0;     ///< last round the deficit was topped up.
  };

  void refill_locked(TenantState& t, const SloClassSpec& spec,
                     std::uint64_t now_us);

  std::vector<SloClassSpec> classes_;
  DrrConfig drr_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::unordered_map<std::uint32_t, TenantState> tenants_;
  std::uint32_t next_id_ = 1;
};

}  // namespace overcount::net

#include "net/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "net/socket.hpp"

namespace overcount::net {

std::uint64_t jittered_backoff_us(std::uint64_t retry_after_us, Rng& rng,
                                  std::uint64_t cap_us) {
  const double jitter = 0.75 + 0.5 * rng.uniform();  // [0.75, 1.25)
  const auto wait =
      static_cast<std::uint64_t>(static_cast<double>(retry_after_us) * jitter);
  return std::min(wait, cap_us);
}

bool NetClient::connect(std::uint16_t port) {
  close();
  fd_ = connect_loopback(port);
  return fd_ >= 0;
}

void NetClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_ = FrameReader();
}

bool NetClient::send_request(const RequestMsg& req) {
  if (fd_ < 0) return false;
  const std::string frame = encode_request(req);
  return send_all(fd_, frame.data(), frame.size());
}

std::optional<Frame> NetClient::read_frame(int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  char buf[16 * 1024];
  Frame frame;
  for (;;) {
    switch (reader_.next(frame)) {
      case DecodeStatus::kFrame:
        return frame;
      case DecodeStatus::kError:
        return std::nullopt;
      case DecodeStatus::kNeedMore:
        break;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    const int slice = static_cast<int>(std::min<std::int64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count(),
        200));
    const ssize_t n = recv_some(fd_, buf, sizeof(buf), std::max(slice, 1));
    if (n == kRecvTimeout) continue;
    if (n <= 0) return std::nullopt;  // EOF or error.
    reader_.append(buf, static_cast<std::size_t>(n));
  }
}

std::optional<WelcomeMsg> NetClient::hello(const std::string& tenant,
                                           std::uint8_t class_id,
                                           int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  const std::string frame = encode_hello({tenant, class_id});
  if (!send_all(fd_, frame.data(), frame.size())) return std::nullopt;
  auto reply = read_frame(timeout_ms);
  if (!reply || reply->type() != FrameType::kWelcome) return std::nullopt;
  return decode_welcome(*reply);
}

std::optional<NetClient::Result> NetClient::request(const RequestMsg& req,
                                                    int timeout_ms) {
  if (!send_request(req)) return std::nullopt;
  // Responses on one connection are FIFO, but skip unrelated Pongs.
  for (;;) {
    auto frame = read_frame(timeout_ms);
    if (!frame) return std::nullopt;
    if (frame->type() == FrameType::kPong) continue;
    if (frame->type() == FrameType::kResponse) {
      auto msg = decode_response(*frame);
      if (!msg || msg->request_id != req.request_id) return std::nullopt;
      Result out;
      out.response = *msg;
      return out;
    }
    if (frame->type() == FrameType::kReject) {
      auto msg = decode_reject(*frame);
      if (!msg || msg->request_id != req.request_id) return std::nullopt;
      Result out;
      out.rejected = true;
      out.reject = *msg;
      return out;
    }
    return std::nullopt;  // kError or anything else: give up.
  }
}

bool NetClient::ping(std::uint64_t nonce, int timeout_ms) {
  if (fd_ < 0) return false;
  const std::string frame = encode_ping({nonce});
  if (!send_all(fd_, frame.data(), frame.size())) return false;
  auto reply = read_frame(timeout_ms);
  if (!reply || reply->type() != FrameType::kPong) return false;
  auto msg = decode_ping(*reply);
  return msg && msg->nonce == nonce;
}

}  // namespace overcount::net

#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace overcount {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << "# overcount edge list\n";
  os << "nodes " << g.num_nodes() << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (NodeId u : g.neighbors(v))
      if (v < u) os << v << ' ' << u << '\n';
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  std::size_t n = 0;
  bool have_header = false;
  GraphBuilder builder(0);
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ss(line);
    if (!have_header) {
      std::string keyword;
      ss >> keyword >> n;
      if (keyword != "nodes" || ss.fail())
        throw std::runtime_error("edge list line " + std::to_string(line_no) +
                                 ": expected 'nodes <count>' header");
      builder = GraphBuilder(n);
      have_header = true;
      continue;
    }
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    ss >> u >> v;
    if (ss.fail())
      throw std::runtime_error("edge list line " + std::to_string(line_no) +
                               ": expected 'u v'");
    if (u >= n || v >= n || u == v)
      throw std::runtime_error("edge list line " + std::to_string(line_no) +
                               ": invalid edge " + std::to_string(u) + " " +
                               std::to_string(v));
    if (builder.has_edge(static_cast<NodeId>(u), static_cast<NodeId>(v)))
      throw std::runtime_error("edge list line " + std::to_string(line_no) +
                               ": duplicate edge");
    builder.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  if (!have_header)
    throw std::runtime_error("edge list: missing 'nodes <count>' header");
  return builder.build();
}

void save_graph(const std::string& path, const Graph& g) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open for writing: " + path);
  write_edge_list(file, g);
  if (!file) throw std::runtime_error("write failed: " + path);
}

Graph load_graph(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open for reading: " + path);
  return read_edge_list(file);
}

void write_dot(std::ostream& os, const Graph& g, const std::string& name) {
  os << "graph " << name << " {\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) == 0) os << "  " << v << ";\n";
    for (NodeId u : g.neighbors(v))
      if (v < u) os << "  " << v << " -- " << u << ";\n";
  }
  os << "}\n";
}

}  // namespace overcount

#include "graph/graph.hpp"

#include <algorithm>

namespace overcount {

bool Graph::has_edge(NodeId u, NodeId v) const {
  OVERCOUNT_EXPECTS(u < num_nodes());
  OVERCOUNT_EXPECTS(v < num_nodes());
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::size_t Graph::max_degree() const noexcept {
  std::size_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v)
    best = std::max(best, degree(v));
  return best;
}

std::size_t Graph::min_degree() const noexcept {
  if (num_nodes() == 0) return 0;
  std::size_t best = degree(0);
  for (NodeId v = 1; v < num_nodes(); ++v)
    best = std::min(best, degree(v));
  return best;
}

double Graph::average_degree() const noexcept {
  if (num_nodes() == 0) return 0.0;
  return static_cast<double>(total_degree()) /
         static_cast<double>(num_nodes());
}

GraphBuilder::GraphBuilder(std::size_t num_nodes) : adjacency_(num_nodes) {}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  OVERCOUNT_EXPECTS(u < adjacency_.size());
  OVERCOUNT_EXPECTS(v < adjacency_.size());
  OVERCOUNT_EXPECTS(u != v);
  OVERCOUNT_EXPECTS(!has_edge(u, v));
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
}

bool GraphBuilder::has_edge(NodeId u, NodeId v) const {
  OVERCOUNT_EXPECTS(u < adjacency_.size());
  OVERCOUNT_EXPECTS(v < adjacency_.size());
  // Search the shorter list.
  const auto& a = adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u]
                                                               : adjacency_[v];
  const NodeId needle = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(a.begin(), a.end(), needle) != a.end();
}

Graph GraphBuilder::build() const {
  Graph g;
  g.offsets_.resize(adjacency_.size() + 1, 0);
  for (std::size_t v = 0; v < adjacency_.size(); ++v)
    g.offsets_[v + 1] = g.offsets_[v] + adjacency_[v].size();
  g.adjacency_.resize(g.offsets_.back());
  for (std::size_t v = 0; v < adjacency_.size(); ++v) {
    auto out = g.adjacency_.begin() +
               static_cast<std::ptrdiff_t>(g.offsets_[v]);
    std::copy(adjacency_[v].begin(), adjacency_[v].end(), out);
    std::sort(out, out + static_cast<std::ptrdiff_t>(adjacency_[v].size()));
  }
  return g;
}

}  // namespace overcount

// Connectivity queries on static graphs: BFS components, largest component
// extraction. Estimators only ever see the component of the probing node
// (paper Section 3: "each node will only be able to estimate the size of its
// connected component").
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace overcount {

/// Component label per node (labels are 0-based, dense) plus component count.
struct ComponentLabels {
  std::vector<NodeId> label;   // size n
  std::size_t num_components = 0;
};

/// Labels every node with its connected-component id (BFS).
ComponentLabels connected_components(const Graph& g);

/// True when the graph is non-empty and has a single component.
bool is_connected(const Graph& g);

/// Size of the component containing v.
std::size_t component_size(const Graph& g, NodeId v);

/// Induced subgraph of the largest component. `old_of_new[i]` maps each new
/// node id back to the original id (optional out-parameter).
Graph largest_component(const Graph& g,
                        std::vector<NodeId>* old_of_new = nullptr);

/// BFS distances from `source`; unreachable nodes get SIZE_MAX.
std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source);

}  // namespace overcount

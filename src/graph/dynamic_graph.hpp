// Mutable overlay graph supporting node churn (joins, departures) as in the
// paper's Section 5.3 dynamic scenarios. Departing nodes take their edges
// with them; surviving neighbours do not seek replacements (paper §5.1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace overcount {

/// Adjacency-list graph with an alive/dead flag per slot. NodeIds are stable
/// for the lifetime of a node; removed slots are never reused, so an id seen
/// by an in-flight probe is never silently rebound to a different peer.
class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// Copies a static graph; every node starts alive.
  explicit DynamicGraph(const Graph& g);

  /// Total slots ever allocated (alive + dead).
  std::size_t num_slots() const noexcept { return adjacency_.size(); }
  /// Currently alive nodes.
  std::size_t num_alive() const noexcept { return alive_list_.size(); }
  /// Current undirected edge count.
  std::size_t num_edges() const noexcept { return num_edges_; }
  std::size_t total_degree() const noexcept { return 2 * num_edges_; }

  bool alive(NodeId v) const {
    OVERCOUNT_EXPECTS(v < adjacency_.size());
    return alive_[v];
  }

  std::size_t degree(NodeId v) const {
    OVERCOUNT_EXPECTS(v < adjacency_.size());
    return adjacency_[v].size();
  }

  std::span<const NodeId> neighbors(NodeId v) const {
    OVERCOUNT_EXPECTS(v < adjacency_.size());
    return adjacency_[v];
  }

  bool has_edge(NodeId u, NodeId v) const;

  /// Monotonically increasing topology version: bumped once by every
  /// mutation (add_node counts its edges too — one bump per add_edge it
  /// performs plus one for the node). Two equal versions therefore mean
  /// the topology is unchanged, so a consumer that snapshots the graph can
  /// detect staleness by comparing versions (the serve-layer cache keys its
  /// invalidation on exactly this).
  std::uint64_t version() const noexcept { return version_; }

  /// Adds an alive node connected to `targets` (all must be alive, distinct,
  /// and not equal to the new node). Returns the new node's id.
  NodeId add_node(std::span<const NodeId> targets);

  /// Adds edge {u, v}; both alive, distinct, edge absent.
  void add_edge(NodeId u, NodeId v);

  /// Removes edge {u, v}; must exist.
  void remove_edge(NodeId u, NodeId v);

  /// Removes node v and all its edges. Neighbours simply lose the link.
  void remove_node(NodeId v);

  /// Uniformly random alive node. Requires at least one alive node.
  NodeId random_alive_node(Rng& rng) const;

  /// List of alive node ids (unspecified order, O(1) access).
  std::span<const NodeId> alive_nodes() const noexcept { return alive_list_; }

  /// Size of the connected component containing v (alive nodes only).
  std::size_t component_size(NodeId v) const;

  /// All nodes in v's connected component.
  std::vector<NodeId> component_nodes(NodeId v) const;

  /// Compacts alive nodes into a static Graph. `old_to_new[v]` gives each
  /// alive node's id in the snapshot (and is left untouched for dead nodes).
  Graph snapshot(std::vector<NodeId>* old_to_new = nullptr) const;

  /// Internal-consistency check (symmetry, aliveness, edge count); used by
  /// the property tests. Returns true when all invariants hold.
  bool check_invariants() const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<bool> alive_;
  std::vector<NodeId> alive_list_;      // ids of alive nodes
  std::vector<std::size_t> alive_pos_;  // v -> index in alive_list_
  std::size_t num_edges_ = 0;
  std::uint64_t version_ = 0;

  void erase_directed(NodeId from, NodeId to);
};

}  // namespace overcount

// Overlay-topology generators.
//
// The paper evaluates on two families (Section 5.1): "balanced random
// graphs" (sequential construction with degree targets uniform in 1..10,
// degrees capped at 10) and Barabasi-Albert scale-free graphs. The remaining
// generators support the analysis-side experiments: expander-like families
// (Erdos-Renyi, k-out), low-expansion families (ring, path, grid), exactly
// solvable spectra (complete, star, cycle), bipartite counterexamples
// (Remark 1), and random geometric graphs (gossip cost discussion, [10]).
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace overcount {

/// The paper's Section 5.1 construction. Sequentially, each node draws a
/// target count uniform in [1, max_degree] and connects to that many random
/// distinct nodes whose degree is still below max_degree (capping its own
/// degree at max_degree too). The result has degrees in [1, max_degree] and
/// average degree 7-8 when max_degree = 10.
Graph balanced_random_graph(std::size_t n, Rng& rng,
                            std::size_t max_degree = 10);

/// Barabasi-Albert preferential attachment; each arriving node links to
/// `m` distinct existing nodes chosen with probability proportional to
/// degree. Seed is an (m+1)-clique. Requires n > m >= 1.
Graph barabasi_albert(std::size_t n, std::size_t m, Rng& rng);

/// Erdos-Renyi G(n, p): every pair independently an edge with probability p.
/// Implemented with geometric skipping, O(n + |E|).
Graph erdos_renyi_gnp(std::size_t n, double p, Rng& rng);

/// Erdos-Renyi G(n, M): exactly m_edges distinct uniform edges.
Graph erdos_renyi_gnm(std::size_t n, std::size_t m_edges, Rng& rng);

/// k-out random graph: each node selects k distinct random targets; the
/// union of selections forms the undirected edge set ([18]: expansion >=
/// Omega(1) for k >= 2). Requires n > k.
Graph k_out_graph(std::size_t n, std::size_t k, Rng& rng);

/// Cycle C_n (n >= 3).
Graph ring(std::size_t n);

/// Path P_n (n >= 2).
Graph path_graph(std::size_t n);

/// Complete graph K_n (n >= 2).
Graph complete(std::size_t n);

/// Star: node 0 is the hub, nodes 1..n-1 are leaves (n >= 2).
Graph star(std::size_t n);

/// rows x cols grid; when `torus`, rows and columns wrap (degrees all 4).
Graph grid_2d(std::size_t rows, std::size_t cols, bool torus = false);

/// Complete bipartite K_{a,b}.
Graph complete_bipartite(std::size_t a, std::size_t b);

/// Random d-regular bipartite graph on 2*half nodes (left: 0..half-1,
/// right: half..2*half-1), built as a union of d disjoint perfect matchings.
/// Used for the Remark 1 deterministic-sojourn counterexample. Requires
/// 1 <= d <= half.
Graph bipartite_regular(std::size_t half, std::size_t d, Rng& rng);

/// Random geometric graph: n points uniform in the unit square, edge when
/// Euclidean distance <= radius. Grid-bucketed, O(n + |E|) expected.
Graph random_geometric(std::size_t n, double radius, Rng& rng);

/// Watts-Strogatz small world: ring lattice where each node links to its k
/// nearest neighbours (k even), then every edge's far endpoint is rewired
/// with probability beta to a uniform non-duplicate target. beta = 0 is the
/// lattice (poor expansion, high clustering); beta = 1 is ER-like.
Graph watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng);

/// Random d-regular graph by the configuration model (pairing stubs) with
/// rejection of self-loops/multi-edges and bounded retries. Requires
/// n*d even, d < n.
Graph random_regular(std::size_t n, std::size_t d, Rng& rng);

/// Boolean hypercube Q_d: 2^d nodes, edge when ids differ in one bit.
/// d-regular with Laplacian spectrum {2k with multiplicity C(d,k)} — an
/// exactly solvable expander used by the spectral test suite. Requires
/// 1 <= dimensions <= 20.
Graph hypercube(std::size_t dimensions);

/// Degree-preserving randomisation: `swaps` double-edge swaps
/// ({a,b},{c,d} -> {a,d},{c,b}) applied by MCMC, rejecting swaps that would
/// create self-loops or parallel edges. Preserves every node's degree while
/// destroying higher-order structure (clustering, assortativity) — the
/// standard null model for "is this effect driven by the degree sequence
/// alone?" questions. Requires at least 2 edges.
Graph degree_preserving_rewire(const Graph& g, std::size_t swaps, Rng& rng);

}  // namespace overcount

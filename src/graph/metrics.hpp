// Topology diagnostics: degree distributions, clustering, distances and
// degree assortativity. Used by the expansion-properties bench (the paper's
// Section 3.4 discussion) and for sanity-checking generated overlays.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace overcount {

/// Histogram of node degrees: result[d] = number of nodes of degree d.
std::vector<std::size_t> degree_histogram(const Graph& g);

/// Exponent fit for a power-law degree tail P(d) ~ d^-alpha via the
/// discrete maximum-likelihood (Hill) estimator over degrees >= d_min.
/// Returns 0 when fewer than 10 nodes qualify.
double power_law_exponent(const Graph& g, std::size_t d_min = 3);

/// Local clustering coefficient of node v: triangles / possible pairs.
/// 0 for degree < 2.
double local_clustering(const Graph& g, NodeId v);

/// Average of local clustering over all nodes (Watts-Strogatz style).
double average_clustering(const Graph& g);

/// Exact number of triangles in the graph.
std::size_t triangle_count(const Graph& g);

struct DistanceStats {
  double average = 0.0;      ///< mean shortest-path distance over pairs
  std::size_t diameter = 0;  ///< max eccentricity among sampled sources
  std::size_t sources = 0;   ///< BFS sources used
};

/// BFS from `samples` random sources (or every node if samples >= n);
/// unreachable pairs are skipped. Requires at least one reachable pair.
DistanceStats distance_stats(const Graph& g, std::size_t samples, Rng& rng);

/// Pearson correlation of degrees across edge endpoints (Newman's degree
/// assortativity, in [-1, 1]). Requires at least one edge and degree
/// variance > 0; returns 0 for degree-regular graphs.
double degree_assortativity(const Graph& g);

}  // namespace overcount

// Graph serialisation: a plain edge-list text format (one "u v" pair per
// line, '#' comments, header with node count) and Graphviz DOT export for
// visual inspection of small overlays.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace overcount {

/// Writes `g` as:
///   # overcount edge list
///   nodes <n>
///   <u> <v>        (one line per undirected edge, u < v)
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses the write_edge_list format. Throws std::runtime_error on
/// malformed input (missing header, out-of-range ids, duplicate edges).
Graph read_edge_list(std::istream& is);

/// Convenience: file-path overloads. Throw std::runtime_error when the file
/// cannot be opened.
void save_graph(const std::string& path, const Graph& g);
Graph load_graph(const std::string& path);

/// Graphviz DOT (undirected). Intended for small graphs.
void write_dot(std::ostream& os, const Graph& g,
               const std::string& name = "overlay");

}  // namespace overcount

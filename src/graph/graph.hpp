// Immutable undirected overlay graph in compressed-sparse-row layout, and the
// builder that assembles one from an edge list.
//
// The overlay model follows the paper's Section 3: peers form an undirected
// graph; node v knows only its neighbour list; the degree d_v is the number
// of neighbours. All random-walk machinery operates on this interface.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/contracts.hpp"

namespace overcount {

using NodeId = std::uint32_t;

/// Immutable undirected graph (CSR adjacency). Parallel edges and self-loops
/// are rejected at build time: an overlay link either exists or it does not.
class Graph {
 public:
  Graph() = default;

  std::size_t num_nodes() const noexcept { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_edges() const noexcept { return adjacency_.size() / 2; }

  /// Degree of node v.
  std::size_t degree(NodeId v) const {
    OVERCOUNT_EXPECTS(v < num_nodes());
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbour list of node v (sorted ascending).
  std::span<const NodeId> neighbors(NodeId v) const {
    OVERCOUNT_EXPECTS(v < num_nodes());
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Sum of all degrees = 2|E|.
  std::size_t total_degree() const noexcept { return adjacency_.size(); }

  /// Hints the CPU to pull node v's CSR offset pair into cache ahead of a
  /// degree()/neighbors() call. Used by the interleaved walk kernel
  /// (walk/kernel.hpp) to overlap the offset load of one walk with the work
  /// of the other lanes; harmless (not even a memory access) when v is
  /// out of range, so deliberately unchecked.
  void prefetch(NodeId v) const noexcept {
    __builtin_prefetch(offsets_.data() + v);
    __builtin_prefetch(offsets_.data() + v + 1);
  }

  /// True if {u, v} is an edge (binary search in v's neighbour list).
  bool has_edge(NodeId u, NodeId v) const;

  /// Maximum degree over all nodes; 0 for the empty graph.
  std::size_t max_degree() const noexcept;
  /// Minimum degree over all nodes; 0 for the empty graph.
  std::size_t min_degree() const noexcept;
  /// Average degree = 2|E|/n; 0 for the empty graph.
  double average_degree() const noexcept;

 private:
  friend class GraphBuilder;
  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;     // size 2|E|
};

/// Accumulates undirected edges, then produces a Graph. Duplicate insertions
/// of the same edge and self-loops throw.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_nodes);

  /// Adds undirected edge {u, v}. Requires u != v, both < num_nodes, and the
  /// edge not already present.
  void add_edge(NodeId u, NodeId v);

  /// True if {u, v} was already added.
  bool has_edge(NodeId u, NodeId v) const;

  std::size_t num_nodes() const noexcept { return adjacency_.size(); }
  std::size_t num_edges() const noexcept { return num_edges_; }
  std::size_t degree(NodeId v) const {
    OVERCOUNT_EXPECTS(v < adjacency_.size());
    return adjacency_[v].size();
  }

  /// Finalises into CSR form (neighbour lists sorted). The builder may be
  /// reused afterwards; its contents are unchanged.
  Graph build() const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t num_edges_ = 0;
};

}  // namespace overcount

#include "graph/dynamic_graph.hpp"

#include <algorithm>
#include <queue>

namespace overcount {

DynamicGraph::DynamicGraph(const Graph& g) {
  const std::size_t n = g.num_nodes();
  adjacency_.resize(n);
  alive_.assign(n, true);
  alive_list_.resize(n);
  alive_pos_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    adjacency_[v].assign(nbrs.begin(), nbrs.end());
    alive_list_[v] = v;
    alive_pos_[v] = v;
  }
  num_edges_ = g.num_edges();
}

bool DynamicGraph::has_edge(NodeId u, NodeId v) const {
  OVERCOUNT_EXPECTS(u < adjacency_.size());
  OVERCOUNT_EXPECTS(v < adjacency_.size());
  const auto& a =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u]
                                                   : adjacency_[v];
  const NodeId needle =
      adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(a.begin(), a.end(), needle) != a.end();
}

NodeId DynamicGraph::add_node(std::span<const NodeId> targets) {
  const auto v = static_cast<NodeId>(adjacency_.size());
  for (NodeId t : targets) {
    OVERCOUNT_EXPECTS(t < adjacency_.size());
    OVERCOUNT_EXPECTS(alive_[t]);
  }
  adjacency_.emplace_back();
  alive_.push_back(true);
  alive_pos_.push_back(alive_list_.size());
  alive_list_.push_back(v);
  ++version_;
  for (NodeId t : targets) add_edge(v, t);
  return v;
}

void DynamicGraph::add_edge(NodeId u, NodeId v) {
  OVERCOUNT_EXPECTS(u != v);
  OVERCOUNT_EXPECTS(alive(u) && alive(v));
  OVERCOUNT_EXPECTS(!has_edge(u, v));
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
  ++version_;
}

void DynamicGraph::erase_directed(NodeId from, NodeId to) {
  auto& list = adjacency_[from];
  const auto it = std::find(list.begin(), list.end(), to);
  OVERCOUNT_ENSURES(it != list.end());
  *it = list.back();
  list.pop_back();
}

void DynamicGraph::remove_edge(NodeId u, NodeId v) {
  OVERCOUNT_EXPECTS(has_edge(u, v));
  erase_directed(u, v);
  erase_directed(v, u);
  --num_edges_;
  ++version_;
}

void DynamicGraph::remove_node(NodeId v) {
  OVERCOUNT_EXPECTS(alive(v));
  for (NodeId u : adjacency_[v]) erase_directed(u, v);
  num_edges_ -= adjacency_[v].size();
  adjacency_[v].clear();
  adjacency_[v].shrink_to_fit();
  alive_[v] = false;
  // Swap-remove from the alive list, keeping positions consistent.
  const std::size_t pos = alive_pos_[v];
  const NodeId last = alive_list_.back();
  alive_list_[pos] = last;
  alive_pos_[last] = pos;
  alive_list_.pop_back();
  ++version_;
}

NodeId DynamicGraph::random_alive_node(Rng& rng) const {
  OVERCOUNT_EXPECTS(!alive_list_.empty());
  return alive_list_[rng.uniform_below(alive_list_.size())];
}

std::size_t DynamicGraph::component_size(NodeId v) const {
  return component_nodes(v).size();
}

std::vector<NodeId> DynamicGraph::component_nodes(NodeId v) const {
  OVERCOUNT_EXPECTS(alive(v));
  std::vector<NodeId> out;
  std::vector<bool> seen(adjacency_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(v);
  seen[v] = true;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    out.push_back(u);
    for (NodeId w : adjacency_[u]) {
      if (!seen[w]) {
        seen[w] = true;
        frontier.push(w);
      }
    }
  }
  return out;
}

Graph DynamicGraph::snapshot(std::vector<NodeId>* old_to_new) const {
  std::vector<NodeId> map(adjacency_.size(), 0);
  NodeId next = 0;
  for (NodeId v = 0; v < adjacency_.size(); ++v)
    if (alive_[v]) map[v] = next++;
  GraphBuilder b(next);
  for (NodeId v = 0; v < adjacency_.size(); ++v) {
    if (!alive_[v]) continue;
    for (NodeId u : adjacency_[v])
      if (v < u) b.add_edge(map[v], map[u]);
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return b.build();
}

bool DynamicGraph::check_invariants() const {
  std::size_t alive_count = 0;
  std::size_t degree_sum = 0;
  for (NodeId v = 0; v < adjacency_.size(); ++v) {
    if (alive_[v]) {
      ++alive_count;
      if (alive_pos_[v] >= alive_list_.size() ||
          alive_list_[alive_pos_[v]] != v)
        return false;
    } else if (!adjacency_[v].empty()) {
      return false;  // dead node retained edges
    }
    degree_sum += adjacency_[v].size();
    for (NodeId u : adjacency_[v]) {
      if (u >= adjacency_.size() || !alive_[u]) return false;
      const auto& back = adjacency_[u];
      if (std::find(back.begin(), back.end(), v) == back.end()) return false;
      if (u == v) return false;
    }
    // No parallel edges.
    auto sorted = adjacency_[v];
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
      return false;
  }
  return alive_count == alive_list_.size() && degree_sum == 2 * num_edges_;
}

}  // namespace overcount

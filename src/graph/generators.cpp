#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace overcount {

namespace {

/// Maintains the set of nodes with degree < cap, supporting O(1) uniform
/// sampling and O(1) removal.
class EligibleSet {
 public:
  explicit EligibleSet(std::size_t n) : pos_(n), members_(n) {
    std::iota(members_.begin(), members_.end(), NodeId{0});
    std::iota(pos_.begin(), pos_.end(), std::size_t{0});
  }

  bool empty() const noexcept { return members_.empty(); }
  std::size_t size() const noexcept { return members_.size(); }

  NodeId sample(Rng& rng) const {
    return members_[rng.uniform_below(members_.size())];
  }

  bool contains(NodeId v) const noexcept {
    return pos_[v] < members_.size() && members_[pos_[v]] == v;
  }

  void remove(NodeId v) {
    if (!contains(v)) return;
    const std::size_t p = pos_[v];
    const NodeId last = members_.back();
    members_[p] = last;
    pos_[last] = p;
    members_.pop_back();
  }

 private:
  std::vector<std::size_t> pos_;
  std::vector<NodeId> members_;
};

}  // namespace

Graph balanced_random_graph(std::size_t n, Rng& rng,
                            std::size_t max_degree) {
  OVERCOUNT_EXPECTS(n >= 2);
  OVERCOUNT_EXPECTS(max_degree >= 1);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    const auto want = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(max_degree)));
    // k_i uniform candidate draws over the whole population; a draw landing
    // on the node itself, an existing neighbour, or a degree-saturated
    // target is discarded without retry. The wasted draws late in the
    // sequence are what keep the average degree in the 7-8 range the paper
    // reports (a retrying variant saturates near max_degree instead).
    for (std::size_t attempt = 0;
         attempt < want && b.degree(i) < max_degree; ++attempt) {
      const auto t = static_cast<NodeId>(rng.uniform_below(n));
      if (t == i || b.degree(t) >= max_degree || b.has_edge(i, t)) continue;
      b.add_edge(i, t);
    }
    // The construction guarantees degrees >= 1: a node whose draws all
    // failed keeps retrying for its first link.
    std::size_t rescue_attempts = 64 * n;
    while (b.degree(i) == 0 && rescue_attempts-- > 0) {
      const auto t = static_cast<NodeId>(rng.uniform_below(n));
      if (t == i || b.degree(t) >= max_degree) continue;
      b.add_edge(i, t);
    }
  }
  return b.build();
}

Graph barabasi_albert(std::size_t n, std::size_t m, Rng& rng) {
  OVERCOUNT_EXPECTS(m >= 1);
  OVERCOUNT_EXPECTS(n > m);
  GraphBuilder b(n);
  // Endpoint multiset: each node appears once per incident edge, so uniform
  // sampling from it is degree-proportional sampling.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * m * n);
  const std::size_t seed_size = m + 1;
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) {
      b.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId v = static_cast<NodeId>(seed_size); v < n; ++v) {
    std::vector<NodeId> chosen;
    chosen.reserve(m);
    while (chosen.size() < m) {
      const NodeId t = endpoints[rng.uniform_below(endpoints.size())];
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end())
        chosen.push_back(t);
    }
    for (NodeId t : chosen) {
      b.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return b.build();
}

Graph erdos_renyi_gnp(std::size_t n, double p, Rng& rng) {
  OVERCOUNT_EXPECTS(n >= 2);
  OVERCOUNT_EXPECTS(p >= 0.0 && p <= 1.0);
  GraphBuilder b(n);
  if (p <= 0.0) return b.build();
  if (p >= 1.0) return complete(n);
  // Iterate candidate pair index with geometric skips (Batagelj-Brandes).
  const double log_q = std::log1p(-p);
  const auto total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t idx = 0;
  // First skip.
  auto advance = [&]() {
    const double u = rng.uniform_positive();
    idx += 1 + static_cast<std::uint64_t>(std::floor(std::log(u) / log_q));
  };
  advance();
  while (idx <= total) {
    // Map linear index (1-based) to pair (u, v), u < v.
    const std::uint64_t k = idx - 1;
    const auto u = static_cast<NodeId>(
        n - 2 -
        static_cast<std::uint64_t>(
            std::floor(std::sqrt(-8.0 * static_cast<double>(k) +
                                 4.0 * static_cast<double>(n) *
                                     (static_cast<double>(n) - 1) -
                                 7.0) /
                           2.0 -
                       0.5)));
    const auto v = static_cast<NodeId>(
        k + u + 1 -
        static_cast<std::uint64_t>(n) * (n - 1) / 2 +
        (static_cast<std::uint64_t>(n) - u) *
            ((static_cast<std::uint64_t>(n) - u) - 1) / 2);
    b.add_edge(u, v);
    advance();
  }
  return b.build();
}

Graph erdos_renyi_gnm(std::size_t n, std::size_t m_edges, Rng& rng) {
  OVERCOUNT_EXPECTS(n >= 2);
  const auto total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  OVERCOUNT_EXPECTS(m_edges <= total);
  GraphBuilder b(n);
  while (b.num_edges() < m_edges) {
    const auto u = static_cast<NodeId>(rng.uniform_below(n));
    const auto v = static_cast<NodeId>(rng.uniform_below(n));
    if (u == v || b.has_edge(u, v)) continue;
    b.add_edge(u, v);
  }
  return b.build();
}

Graph k_out_graph(std::size_t n, std::size_t k, Rng& rng) {
  OVERCOUNT_EXPECTS(k >= 1);
  OVERCOUNT_EXPECTS(n > k);
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) {
    std::size_t added = 0;
    std::unordered_set<NodeId> chosen;
    while (added < k) {
      const auto t = static_cast<NodeId>(rng.uniform_below(n));
      if (t == v || !chosen.insert(t).second) continue;
      ++added;
      if (!b.has_edge(v, t)) b.add_edge(v, t);
    }
  }
  return b.build();
}

Graph ring(std::size_t n) {
  OVERCOUNT_EXPECTS(n >= 3);
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v)
    b.add_edge(v, static_cast<NodeId>((v + 1) % n));
  return b.build();
}

Graph path_graph(std::size_t n) {
  OVERCOUNT_EXPECTS(n >= 2);
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph complete(std::size_t n) {
  OVERCOUNT_EXPECTS(n >= 2);
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return b.build();
}

Graph star(std::size_t n) {
  OVERCOUNT_EXPECTS(n >= 2);
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph grid_2d(std::size_t rows, std::size_t cols, bool torus) {
  OVERCOUNT_EXPECTS(rows >= 2 && cols >= 2);
  if (torus) OVERCOUNT_EXPECTS(rows >= 3 && cols >= 3);
  GraphBuilder b(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      else if (torus) b.add_edge(id(r, c), id(r, 0));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
      else if (torus) b.add_edge(id(r, c), id(0, c));
    }
  }
  return b.build();
}

Graph complete_bipartite(std::size_t a, std::size_t b_count) {
  OVERCOUNT_EXPECTS(a >= 1 && b_count >= 1);
  GraphBuilder b(a + b_count);
  for (NodeId u = 0; u < a; ++u)
    for (std::size_t v = 0; v < b_count; ++v)
      b.add_edge(u, static_cast<NodeId>(a + v));
  return b.build();
}

Graph bipartite_regular(std::size_t half, std::size_t d, Rng& rng) {
  OVERCOUNT_EXPECTS(half >= 1);
  OVERCOUNT_EXPECTS(d >= 1 && d <= half);
  GraphBuilder b(2 * half);
  std::vector<NodeId> perm(half);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  auto collides = [&](std::size_t i) {
    return b.has_edge(static_cast<NodeId>(i),
                      static_cast<NodeId>(half + perm[i]));
  };
  for (std::size_t round = 0; round < d; ++round) {
    // Shuffle a candidate matching, then repair collisions with already
    // placed matchings via pairwise swaps; reshuffle if repair stalls.
    bool ok = false;
    for (int attempt = 0; attempt < 1000 && !ok; ++attempt) {
      for (std::size_t i = half; i > 1; --i)
        std::swap(perm[i - 1], perm[rng.uniform_below(i)]);
      ok = true;
      for (std::size_t i = 0; i < half; ++i) {
        if (!collides(i)) continue;
        bool fixed = false;
        for (int tries = 0; tries < 64 && !fixed; ++tries) {
          const std::size_t j = rng.uniform_below(half);
          if (j == i) continue;
          std::swap(perm[i], perm[j]);
          if (!collides(i) && !collides(j)) fixed = true;
          else std::swap(perm[i], perm[j]);
        }
        if (!fixed) {
          ok = false;
          break;
        }
      }
    }
    OVERCOUNT_ENSURES(ok);
    for (std::size_t i = 0; i < half; ++i)
      b.add_edge(static_cast<NodeId>(i),
                 static_cast<NodeId>(half + perm[i]));
  }
  return b.build();
}

Graph watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng) {
  OVERCOUNT_EXPECTS(n >= 4);
  OVERCOUNT_EXPECTS(k >= 2 && k % 2 == 0);
  OVERCOUNT_EXPECTS(k < n - 1);
  OVERCOUNT_EXPECTS(beta >= 0.0 && beta <= 1.0);
  GraphBuilder b(n);
  // Ring lattice: node v connects to v+1 .. v+k/2 (mod n).
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      const auto u = static_cast<NodeId>((v + j) % n);
      // Rewire the far endpoint with probability beta.
      if (rng.bernoulli(beta)) {
        std::size_t attempts = 64;
        NodeId t = u;
        do {
          t = static_cast<NodeId>(rng.uniform_below(n));
        } while ((t == v || b.has_edge(v, t)) && attempts-- > 0);
        if (t != v && !b.has_edge(v, t)) {
          b.add_edge(v, t);
          continue;
        }
        // Rewiring failed (dense corner case): keep the lattice edge if
        // still free.
      }
      if (!b.has_edge(v, u)) b.add_edge(v, u);
    }
  }
  return b.build();
}

Graph random_regular(std::size_t n, std::size_t d, Rng& rng) {
  OVERCOUNT_EXPECTS(n >= 2);
  OVERCOUNT_EXPECTS(d >= 1 && d < n);
  OVERCOUNT_EXPECTS((n * d) % 2 == 0);
  // Configuration model: shuffle the multiset of d stubs per node and pair
  // consecutive entries; restart on self-loop or duplicate. For d << n the
  // per-attempt success probability is bounded below, so a few hundred
  // restarts suffice with overwhelming probability.
  std::vector<NodeId> stubs(n * d);
  for (std::size_t i = 0; i < stubs.size(); ++i)
    stubs[i] = static_cast<NodeId>(i / d);
  for (int attempt = 0; attempt < 200; ++attempt) {
    for (std::size_t i = stubs.size(); i > 1; --i)
      std::swap(stubs[i - 1], stubs[rng.uniform_below(i)]);
    GraphBuilder b(n);
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size() && ok; i += 2) {
      // Local repair beats whole-pairing rejection: on a bad pair, swap the
      // second stub with a random not-yet-paired one and retry (the naive
      // restart succeeds with probability ~exp(-(d^2-1)/4), hopeless past
      // d ~ 5).
      std::size_t tries = 256;
      while ((stubs[i] == stubs[i + 1] ||
              b.has_edge(stubs[i], stubs[i + 1])) &&
             tries-- > 0) {
        if (i + 2 >= stubs.size()) break;  // nothing left to swap with
        const std::size_t j =
            i + 2 + rng.uniform_below(stubs.size() - i - 2);
        std::swap(stubs[i + 1], stubs[j]);
      }
      if (stubs[i] == stubs[i + 1] || b.has_edge(stubs[i], stubs[i + 1]))
        ok = false;
      else
        b.add_edge(stubs[i], stubs[i + 1]);
    }
    if (ok) return b.build();
  }
  throw std::runtime_error(
      "random_regular: pairing failed repeatedly (d too close to n?)");
}

Graph hypercube(std::size_t dimensions) {
  OVERCOUNT_EXPECTS(dimensions >= 1 && dimensions <= 20);
  const std::size_t n = std::size_t{1} << dimensions;
  GraphBuilder b(n);
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t bit = 0; bit < dimensions; ++bit) {
      const std::size_t u = v ^ (std::size_t{1} << bit);
      if (v < u) b.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(u));
    }
  return b.build();
}

Graph degree_preserving_rewire(const Graph& g, std::size_t swaps,
                               Rng& rng) {
  OVERCOUNT_EXPECTS(g.num_edges() >= 2);
  // Work on a flat edge list plus an adjacency-set view for O(1)-ish
  // duplicate checks (via GraphBuilder::has_edge on the evolving builder we
  // can't mutate, so keep our own sets).
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.num_edges());
  std::vector<std::unordered_set<NodeId>> adj(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      adj[v].insert(u);
      if (v < u) edges.emplace_back(v, u);
    }
  }
  auto connected = [&](NodeId a, NodeId b) { return adj[a].contains(b); };
  for (std::size_t s = 0; s < swaps; ++s) {
    auto& e1 = edges[rng.uniform_below(edges.size())];
    auto& e2 = edges[rng.uniform_below(edges.size())];
    if (&e1 == &e2) continue;
    NodeId a = e1.first;
    NodeId b = e1.second;
    NodeId c = e2.first;
    NodeId d = e2.second;
    // Randomly orient the second edge so both pairings are reachable.
    if (rng.bernoulli(0.5)) std::swap(c, d);
    // Proposed: {a,d} and {c,b}.
    if (a == d || c == b || connected(a, d) || connected(c, b)) continue;
    adj[a].erase(b);
    adj[b].erase(a);
    adj[c].erase(d);
    adj[d].erase(c);
    adj[a].insert(d);
    adj[d].insert(a);
    adj[c].insert(b);
    adj[b].insert(c);
    e1 = {a, d};
    e2 = {std::min(c, b), std::max(c, b)};
    e1 = {std::min(e1.first, e1.second), std::max(e1.first, e1.second)};
  }
  GraphBuilder b(g.num_nodes());
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

Graph random_geometric(std::size_t n, double radius, Rng& rng) {
  OVERCOUNT_EXPECTS(n >= 2);
  OVERCOUNT_EXPECTS(radius > 0.0);
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  GraphBuilder b(n);
  const double r2 = radius * radius;
  const auto cells =
      std::max<std::size_t>(1, static_cast<std::size_t>(1.0 / radius));
  std::vector<std::vector<NodeId>> grid(cells * cells);
  auto cell_of = [&](double v) {
    auto c = static_cast<std::size_t>(v * static_cast<double>(cells));
    return std::min(c, cells - 1);
  };
  for (NodeId i = 0; i < n; ++i)
    grid[cell_of(x[i]) * cells + cell_of(y[i])].push_back(i);
  for (NodeId i = 0; i < n; ++i) {
    const std::size_t cx = cell_of(x[i]);
    const std::size_t cy = cell_of(y[i]);
    for (std::size_t dx = cx == 0 ? 0 : cx - 1;
         dx <= std::min(cx + 1, cells - 1); ++dx) {
      for (std::size_t dy = cy == 0 ? 0 : cy - 1;
           dy <= std::min(cy + 1, cells - 1); ++dy) {
        for (NodeId j : grid[dx * cells + dy]) {
          if (j <= i) continue;
          const double ddx = x[i] - x[j];
          const double ddy = y[i] - y[j];
          if (ddx * ddx + ddy * ddy <= r2) b.add_edge(i, j);
        }
      }
    }
  }
  return b.build();
}

}  // namespace overcount

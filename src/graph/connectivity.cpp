#include "graph/connectivity.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace overcount {

ComponentLabels connected_components(const Graph& g) {
  const std::size_t n = g.num_nodes();
  ComponentLabels out;
  out.label.assign(n, std::numeric_limits<NodeId>::max());
  NodeId next = 0;
  std::queue<NodeId> frontier;
  for (NodeId start = 0; start < n; ++start) {
    if (out.label[start] != std::numeric_limits<NodeId>::max()) continue;
    out.label[start] = next;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : g.neighbors(u)) {
        if (out.label[v] == std::numeric_limits<NodeId>::max()) {
          out.label[v] = next;
          frontier.push(v);
        }
      }
    }
    ++next;
  }
  out.num_components = next;
  return out;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return false;
  return connected_components(g).num_components == 1;
}

std::size_t component_size(const Graph& g, NodeId v) {
  const auto labels = connected_components(g);
  OVERCOUNT_EXPECTS(v < g.num_nodes());
  return static_cast<std::size_t>(
      std::count(labels.label.begin(), labels.label.end(), labels.label[v]));
}

Graph largest_component(const Graph& g, std::vector<NodeId>* old_of_new) {
  OVERCOUNT_EXPECTS(g.num_nodes() > 0);
  const auto labels = connected_components(g);
  std::vector<std::size_t> sizes(labels.num_components, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++sizes[labels.label[v]];
  const auto best = static_cast<NodeId>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());

  std::vector<NodeId> new_id(g.num_nodes(), 0);
  std::vector<NodeId> back;
  NodeId next = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (labels.label[v] == best) {
      new_id[v] = next++;
      back.push_back(v);
    }
  }
  GraphBuilder b(next);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (labels.label[v] != best) continue;
    for (NodeId u : g.neighbors(v))
      if (v < u) b.add_edge(new_id[v], new_id[u]);
  }
  if (old_of_new != nullptr) *old_of_new = std::move(back);
  return b.build();
}

std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source) {
  OVERCOUNT_EXPECTS(source < g.num_nodes());
  std::vector<std::size_t> dist(g.num_nodes(),
                                std::numeric_limits<std::size_t>::max());
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == std::numeric_limits<std::size_t>::max()) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

}  // namespace overcount

#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/connectivity.hpp"

namespace overcount {

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> hist(g.max_degree() + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++hist[g.degree(v)];
  return hist;
}

double power_law_exponent(const Graph& g, std::size_t d_min) {
  OVERCOUNT_EXPECTS(d_min >= 1);
  // Hill estimator: alpha = 1 + n / sum(log(d_i / (d_min - 1/2))).
  double log_sum = 0.0;
  std::size_t count = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto d = g.degree(v);
    if (d < d_min) continue;
    log_sum += std::log(static_cast<double>(d) /
                        (static_cast<double>(d_min) - 0.5));
    ++count;
  }
  if (count < 10 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(count) / log_sum;
}

double local_clustering(const Graph& g, NodeId v) {
  const auto nbrs = g.neighbors(v);
  if (nbrs.size() < 2) return 0.0;
  std::size_t closed = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i)
    for (std::size_t j = i + 1; j < nbrs.size(); ++j)
      if (g.has_edge(nbrs[i], nbrs[j])) ++closed;
  const double pairs =
      static_cast<double>(nbrs.size()) * (nbrs.size() - 1) / 2.0;
  return static_cast<double>(closed) / pairs;
}

double average_clustering(const Graph& g) {
  OVERCOUNT_EXPECTS(g.num_nodes() > 0);
  double acc = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) acc += local_clustering(g, v);
  return acc / static_cast<double>(g.num_nodes());
}

std::size_t triangle_count(const Graph& g) {
  // Count ordered v < u < w with all three edges present; neighbour lists
  // are sorted, so scan u's neighbours above u.
  std::size_t triangles = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nv = g.neighbors(v);
    for (NodeId u : nv) {
      if (u <= v) continue;
      for (NodeId w : g.neighbors(u)) {
        if (w <= u) continue;
        if (std::binary_search(nv.begin(), nv.end(), w)) ++triangles;
      }
    }
  }
  return triangles;
}

DistanceStats distance_stats(const Graph& g, std::size_t samples, Rng& rng) {
  OVERCOUNT_EXPECTS(g.num_nodes() >= 2);
  DistanceStats out;
  double total = 0.0;
  std::size_t pairs = 0;
  const bool exhaustive = samples >= g.num_nodes();
  const std::size_t count = exhaustive ? g.num_nodes() : samples;
  for (std::size_t s = 0; s < count; ++s) {
    const NodeId source =
        exhaustive ? static_cast<NodeId>(s)
                   : static_cast<NodeId>(rng.uniform_below(g.num_nodes()));
    const auto dist = bfs_distances(g, source);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == source ||
          dist[v] == std::numeric_limits<std::size_t>::max())
        continue;
      total += static_cast<double>(dist[v]);
      ++pairs;
      out.diameter = std::max(out.diameter, dist[v]);
    }
    ++out.sources;
  }
  OVERCOUNT_EXPECTS(pairs > 0);
  out.average = total / static_cast<double>(pairs);
  return out;
}

double degree_assortativity(const Graph& g) {
  OVERCOUNT_EXPECTS(g.num_edges() > 0);
  // Pearson correlation over directed edge endpoints (each undirected edge
  // contributes both orientations, which symmetrises the estimator).
  double sum_x = 0.0;
  double sum_xx = 0.0;
  double sum_xy = 0.0;
  const double m = static_cast<double>(g.total_degree());  // 2|E| endpoints
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto dv = static_cast<double>(g.degree(v));
    for (NodeId u : g.neighbors(v)) {
      const auto du = static_cast<double>(g.degree(u));
      sum_x += dv;
      sum_xx += dv * dv;
      sum_xy += dv * du;
    }
  }
  const double mean = sum_x / m;
  const double var = sum_xx / m - mean * mean;
  if (var <= 1e-12) return 0.0;  // regular graph: correlation undefined
  const double cov = sum_xy / m - mean * mean;
  return cov / var;
}

}  // namespace overcount

// Interleaved multi-walk kernel: the memory-latency answer to the paper's
// step bill.
//
// Every estimator guarantee is bought with walk steps — m Random Tours cost
// m * 2|E|/d_i steps (Section 3.4) and each Sample & Collide sample burns a
// full CTRW timer — and at scale those steps are DRAM-latency-bound pointer
// chasing through the CSR arrays: load offsets[v], load adjacency[offset+k],
// repeat. One walk serialises on that chain; the hardware sits idle waiting
// on memory. Das Sarma et al. (PAPERS.md) break the chain in the distributed
// setting by running many short walks concurrently and stitching them; the
// single-machine analogue implemented here interleaves a width-W band of
// INDEPENDENT walks in one thread, round-robin, so W loads are in flight at
// once instead of one.
//
// Each lane alternates two phases per step, giving every potentially-missing
// load a full rotation (W-1 other lane turns) between prefetch and use:
//
//   read phase     at = *ptr            adjacency element, prefetched one
//                                       rotation ago when ptr was drawn
//                  prefetch offsets[at] via kernel_prefetch / G::prefetch
//   process phase  nbrs = neighbors(at) offsets now (likely) cached
//                  draw k; ptr = &nbrs[k]; __builtin_prefetch(ptr)
//
// Determinism contract: lane w draws ONLY from streams[w], in exactly the
// order the scalar code (core/random_tour.hpp random_tour, walk/walkers.hpp
// ctrw_sample, core/sample_collide.hpp SampleCollideEstimator) draws, and
// every floating-point accumulation runs in the same per-walk order — so
// each per-walk result is BIT-IDENTICAL to the scalar path at any width,
// and batches built on the kernel are bit-identical at any thread count
// (tests/walk/kernel_equivalence_test.cpp pins this). Probes are per-walk:
// lane w only ever touches probes[w], so per-probe event order matches the
// scalar path too, even though events of different walks interleave in time.
//
// Per-step degree checks compile to OVERCOUNT_HOT_EXPECTS (off in plain
// Release); origin validity is checked unconditionally once per kernel call.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

// TourEstimate and SampleResult are header-only result structs; including
// them here adds no link dependency, so the walk library stays below core.
#include "core/random_tour.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "walk/topology.hpp"
#include "walk/walkers.hpp"

namespace overcount {

/// Default interleave width: enough in-flight loads to cover DRAM latency
/// without spilling the lane state out of registers/L1.
inline constexpr std::size_t kDefaultKernelWidth = 16;

/// The width the batch APIs actually use: `configured` when non-zero, else
/// the OVERCOUNT_KERNEL_WIDTH environment variable when set to a positive
/// integer, else kDefaultKernelWidth. Width 1 disables the kernel (batches
/// take the scalar path).
std::size_t resolved_kernel_width(std::size_t configured) noexcept;

/// Issues a prefetch for the topology state behind degree(v)/neighbors(v)
/// when the graph type offers one (Graph prefetches its CSR offset pair);
/// silently a no-op for topologies without a prefetch hint (DynamicGraph).
template <OverlayTopology G>
inline void kernel_prefetch(const G& g, NodeId v) noexcept {
  if constexpr (requires { g.prefetch(v); }) g.prefetch(v);
}

/// Raw outcome of one Sample & Collide trial run by sc_kernel: the
/// sufficient statistic C_ell plus the message bill. The estimator math
/// (ML root, closed form, brackets) lives in core/sample_collide.hpp and is
/// applied by the batch layer, keeping walk/ below core/ in the layering.
struct ScTrialRaw {
  std::uint64_t samples = 0;  ///< C_ell: samples drawn until ell collisions
  std::uint64_t hops = 0;     ///< total CTRW hops across those samples
};

namespace kernel_detail {

/// Start-of-walk draw shared by tour lanes: pick the first step out of the
/// origin on the lane's own stream and prefetch the adjacency element.
inline const NodeId* draw_step(std::span<const NodeId> nbrs, Rng& rng) {
  const NodeId* p = nbrs.data() + rng.uniform_below(nbrs.size());
  __builtin_prefetch(p);
  return p;
}

}  // namespace kernel_detail

/// Interleaved Random Tours: walk w of `out.size()` runs from `origin` on
/// `streams[w]`, estimating sum_j f(j), bit-identical to
/// `random_tour(g, origin, f, streams[w], max_steps, probes[w])`. At most
/// `width` walks are in flight per call; the batch layer slices a batch into
/// width-sized chunks, so callers normally pass spans of exactly `width`
/// walks. When P is an enabled probe type, `probes` must have one probe per
/// walk (probes[w] observes walk w only).
template <OverlayTopology G, typename F, WalkProbe P = NullProbe>
void tour_kernel(const G& g, NodeId origin, F&& f, std::span<Rng> streams,
                 std::span<TourEstimate> out, std::size_t width,
                 std::uint64_t max_steps = ~0ULL, std::span<P> probes = {}) {
  OVERCOUNT_EXPECTS(streams.size() == out.size());
  OVERCOUNT_EXPECTS(width >= 1);
  if constexpr (probe_enabled_v<P>)
    OVERCOUNT_EXPECTS(probes.size() == out.size());
  if (out.empty()) return;
  const auto origin_nbrs = g.neighbors(origin);
  OVERCOUNT_EXPECTS(!origin_nbrs.empty());
  const double d_origin = static_cast<double>(origin_nbrs.size());
  const double counter0 = f(origin) / d_origin;

  struct Lane {
    std::size_t walk;      // index into streams/out/probes
    NodeId at;             // node being processed (process phase)
    double counter;        // scalar random_tour's X accumulator
    std::uint64_t steps;
    std::uint64_t trace_t0;  // span start (only written when tracing)
    const NodeId* ptr;     // adjacency element the next read phase loads
    bool read_phase;
  };

  // Tracing is checked ONCE per kernel call: lane lifecycle spans cost two
  // clock reads per WALK when a recorder is installed, and a dead branch
  // otherwise. No trace call touches any stream, so traced batches stay
  // bit-identical (obs/trace.hpp).
  const bool tracing = trace_active();
  std::size_t next_walk = 0;
  auto start = [&](Lane& lane) {
    lane.walk = next_walk++;
    if (tracing) lane.trace_t0 = trace_now_us();
    if constexpr (probe_enabled_v<P>) probes[lane.walk].walk_begin(origin);
    lane.counter = counter0;
    lane.ptr = kernel_detail::draw_step(origin_nbrs, streams[lane.walk]);
    lane.steps = 1;
    lane.read_phase = true;
  };

  std::vector<Lane> lanes(std::min(width, out.size()));
  for (auto& lane : lanes) start(lane);

  std::size_t li = 0;
  while (!lanes.empty()) {
    if (li >= lanes.size()) li = 0;
    Lane& lane = lanes[li];
    if (lane.read_phase) {
      const NodeId at = *lane.ptr;
      if (at == origin || lane.steps >= max_steps) {
        const bool completed = at == origin;
        if constexpr (probe_enabled_v<P>)
          probes[lane.walk].tour_end(lane.steps, completed);
        if (tracing)
          trace_complete("walk", "tour", lane.trace_t0, "steps", lane.steps);
        out[lane.walk] = {d_origin * lane.counter, lane.steps, completed};
        if (next_walk < out.size()) {
          start(lane);
        } else {
          lanes[li] = lanes.back();
          lanes.pop_back();
        }
        continue;  // the refilled (or swapped-in) lane takes this turn next
      }
      if constexpr (probe_enabled_v<P>) probes[lane.walk].on_visit(at);
      lane.at = at;
      kernel_prefetch(g, at);
      lane.read_phase = false;
    } else {
      const auto nbrs = g.neighbors(lane.at);
      OVERCOUNT_HOT_EXPECTS(!nbrs.empty());
      lane.counter += f(lane.at) / static_cast<double>(nbrs.size());
      lane.ptr = kernel_detail::draw_step(nbrs, streams[lane.walk]);
      ++lane.steps;
      lane.read_phase = true;
    }
    ++li;
  }
}

/// Interleaved CTRW sampling walks: walk w runs from `origin` with horizon
/// `timer` on `streams[w]`, bit-identical to
/// `ctrw_sample(g, origin, timer, streams[w], probes[w])`.
template <OverlayTopology G, WalkProbe P = NullProbe>
void ctrw_kernel(const G& g, NodeId origin, double timer,
                 std::span<Rng> streams, std::span<SampleResult> out,
                 std::size_t width, std::span<P> probes = {}) {
  OVERCOUNT_EXPECTS(streams.size() == out.size());
  OVERCOUNT_EXPECTS(width >= 1);
  OVERCOUNT_EXPECTS(timer > 0.0);
  if constexpr (probe_enabled_v<P>)
    OVERCOUNT_EXPECTS(probes.size() == out.size());
  if (out.empty()) return;
  OVERCOUNT_EXPECTS(g.degree(origin) > 0);

  struct Lane {
    std::size_t walk;
    NodeId at;
    double remaining;
    std::uint64_t hops;
    std::uint64_t trace_t0;  // span start (only written when tracing)
    const NodeId* ptr;
    bool read_phase;
  };

  // One active-recorder check per kernel call; spans are per WALK, never per
  // step, and touch no stream (see tour_kernel).
  const bool tracing = trace_active();
  std::size_t next_walk = 0;
  auto start = [&](Lane& lane) {
    lane.walk = next_walk++;
    if (tracing) lane.trace_t0 = trace_now_us();
    if constexpr (probe_enabled_v<P>) probes[lane.walk].walk_begin(origin);
    lane.at = origin;
    lane.remaining = timer;
    lane.hops = 0;
    lane.read_phase = false;  // scalar ctrw_sample processes the origin first
  };

  std::vector<Lane> lanes(std::min(width, out.size()));
  for (auto& lane : lanes) start(lane);

  std::size_t li = 0;
  while (!lanes.empty()) {
    if (li >= lanes.size()) li = 0;
    Lane& lane = lanes[li];
    if (lane.read_phase) {
      lane.at = *lane.ptr;
      if constexpr (probe_enabled_v<P>) probes[lane.walk].on_visit(lane.at);
      kernel_prefetch(g, lane.at);
      lane.read_phase = false;
    } else {
      const auto nbrs = g.neighbors(lane.at);
      const std::size_t degree = nbrs.size();
      OVERCOUNT_HOT_EXPECTS(degree > 0);
      Rng& rng = streams[lane.walk];
      const double sojourn = rng.exponential(static_cast<double>(degree));
      if constexpr (probe_enabled_v<P>)
        probes[lane.walk].on_sojourn(std::min(sojourn, lane.remaining));
      lane.remaining -= sojourn;
      if (lane.remaining <= 0.0) {
        if constexpr (probe_enabled_v<P>)
          probes[lane.walk].sample_end(lane.hops);
        if (tracing)
          trace_complete("walk", "ctrw_sample", lane.trace_t0, "hops",
                         lane.hops);
        out[lane.walk] = {lane.at, lane.hops};
        if (next_walk < out.size()) {
          start(lane);
        } else {
          lanes[li] = lanes.back();
          lanes.pop_back();
        }
        continue;
      }
      lane.ptr = kernel_detail::draw_step(nbrs, rng);
      ++lane.hops;
      lane.read_phase = true;
    }
    ++li;
  }
}

/// Interleaved Sample & Collide trials: trial t of `out.size()` runs its
/// whole sample-until-ell-collisions loop on `streams[t]`, CTRW walks
/// back-to-back, with the same draw and probe-event order as
/// `SampleCollideEstimator(g, origin, timer, ell, streams[t]).estimate(
/// probes[t])`. Returns the raw (C_ell, hops) statistic per trial; the batch
/// layer applies the Section 4 estimator math. Collision bookkeeping mirrors
/// core/sample_collide.hpp CollisionTracker: every sample whose node was
/// already seen within the SAME trial counts one collision.
template <OverlayTopology G, WalkProbe P = NullProbe>
void sc_kernel(const G& g, NodeId origin, double timer, std::size_t ell,
               std::span<Rng> streams, std::span<ScTrialRaw> out,
               std::size_t width, std::span<P> probes = {}) {
  OVERCOUNT_EXPECTS(streams.size() == out.size());
  OVERCOUNT_EXPECTS(width >= 1);
  OVERCOUNT_EXPECTS(timer > 0.0);
  OVERCOUNT_EXPECTS(ell >= 1);
  if constexpr (probe_enabled_v<P>)
    OVERCOUNT_EXPECTS(probes.size() == out.size());
  if (out.empty()) return;
  OVERCOUNT_EXPECTS(g.degree(origin) > 0);

  struct Lane {
    std::size_t trial;
    // trial-level state
    std::unordered_set<NodeId> seen;
    std::uint64_t samples;
    std::uint64_t collisions;
    std::uint64_t trial_hops;
    std::uint64_t prev_collision_at;
    std::uint64_t trace_t0;  // trial span start (only written when tracing)
    // current sampling walk
    NodeId at;
    double remaining;
    std::uint64_t walk_hops;
    const NodeId* ptr;
    bool read_phase;
  };

  // One active-recorder check per kernel call; one span per TRIAL plus an
  // instant per collision — never per step (see tour_kernel).
  const bool tracing = trace_active();
  std::size_t next_trial = 0;
  auto start_walk = [&](Lane& lane) {
    if constexpr (probe_enabled_v<P>) probes[lane.trial].walk_begin(origin);
    lane.at = origin;
    lane.remaining = timer;
    lane.walk_hops = 0;
    lane.read_phase = false;
  };
  auto start_trial = [&](Lane& lane) {
    lane.trial = next_trial++;
    if (tracing) lane.trace_t0 = trace_now_us();
    lane.seen.clear();
    lane.samples = 0;
    lane.collisions = 0;
    lane.trial_hops = 0;
    lane.prev_collision_at = 0;
    start_walk(lane);
  };

  std::vector<Lane> lanes(std::min(width, out.size()));
  for (auto& lane : lanes) start_trial(lane);

  std::size_t li = 0;
  while (!lanes.empty()) {
    if (li >= lanes.size()) li = 0;
    Lane& lane = lanes[li];
    if (lane.read_phase) {
      lane.at = *lane.ptr;
      if constexpr (probe_enabled_v<P>) probes[lane.trial].on_visit(lane.at);
      kernel_prefetch(g, lane.at);
      lane.read_phase = false;
    } else {
      const auto nbrs = g.neighbors(lane.at);
      const std::size_t degree = nbrs.size();
      OVERCOUNT_HOT_EXPECTS(degree > 0);
      Rng& rng = streams[lane.trial];
      const double sojourn = rng.exponential(static_cast<double>(degree));
      if constexpr (probe_enabled_v<P>)
        probes[lane.trial].on_sojourn(std::min(sojourn, lane.remaining));
      lane.remaining -= sojourn;
      if (lane.remaining <= 0.0) {
        // the timer died at lane.at: one sample delivered
        if constexpr (probe_enabled_v<P>)
          probes[lane.trial].sample_end(lane.walk_hops);
        lane.trial_hops += lane.walk_hops;
        ++lane.samples;
        if (!lane.seen.insert(lane.at).second) {
          ++lane.collisions;
          if constexpr (probe_enabled_v<P>)
            probes[lane.trial].on_collision(lane.samples -
                                            lane.prev_collision_at);
          if (tracing)
            trace_instant("walk", "sc.collision", "gap",
                          lane.samples - lane.prev_collision_at);
          lane.prev_collision_at = lane.samples;
        }
        if (lane.collisions >= ell) {
          if (tracing)
            trace_complete("walk", "sc.trial", lane.trace_t0, "samples",
                           lane.samples);
          out[lane.trial] = {lane.samples, lane.trial_hops};
          if (next_trial < out.size()) {
            start_trial(lane);
          } else {
            lanes[li] = std::move(lanes.back());
            lanes.pop_back();
          }
        } else {
          start_walk(lane);
        }
        continue;
      }
      lane.ptr = kernel_detail::draw_step(nbrs, rng);
      ++lane.walk_hops;
      lane.read_phase = true;
    }
    ++li;
  }
}

}  // namespace overcount

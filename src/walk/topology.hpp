// The minimal interface a walker needs from an overlay: degree and
// neighbour-list access. Both the static CSR Graph and the churn-capable
// DynamicGraph satisfy it, so every walk/estimator template runs unchanged
// on static and dynamic overlays.
#pragma once

#include <concepts>
#include <span>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace overcount {

template <typename G>
concept OverlayTopology = requires(const G& g, NodeId v) {
  { g.degree(v) } -> std::convertible_to<std::size_t>;
  { g.neighbors(v) } -> std::convertible_to<std::span<const NodeId>>;
};

/// Uniformly random neighbour of v. Requires degree(v) > 0 — checked per
/// step only when OVERCOUNT_HOT_CHECKS is on (Debug/RelWithDebInfo/
/// sanitizers); batch entry points validate origins unconditionally.
template <OverlayTopology G>
NodeId random_neighbor(const G& g, NodeId v, Rng& rng) {
  const auto nbrs = g.neighbors(v);
  OVERCOUNT_HOT_EXPECTS(!nbrs.empty());
  return nbrs[rng.uniform_below(nbrs.size())];
}

}  // namespace overcount

// Exact mixing-time computations on small graphs, tying Lemma 1's spectral
// bound to ground truth: t_mix(eps) is the smallest t with worst-case
// variation distance to the stationary/uniform distribution below eps.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"

namespace overcount {

/// Smallest t (found by doubling + bisection to `resolution`) such that the
/// exponential-sojourn CTRW started from the WORST origin is within eps of
/// uniform in variation distance. Requires a connected graph and eps in
/// (0, 1).
double ctrw_mixing_time(const Graph& g, double eps,
                        double resolution = 1e-3);

/// Variation distance to uniform at time t from the worst-case origin.
double ctrw_worst_case_distance(const Graph& g, double t);

/// Lemma 1's spectral upper bound on the mixing time:
/// t <= (log(sqrt(n)) + log(1/eps)) / lambda_2.
double lemma1_mixing_bound(std::size_t n, double spectral_gap, double eps);

}  // namespace overcount

// Exact first-passage quantities for the DTRW on small graphs, by solving
// the linear systems they satisfy. Ground truth for everything the Random
// Tour analysis rests on: Kac's formula E_i[T_i] = 2|E|/d_i, expected
// hitting times, and the exact variance of the tour's counter.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace overcount {

/// Expected hitting times h[v] = E_v[steps to reach target]; h[target] = 0.
/// Solves (I - P_restricted) h = 1 by Gaussian elimination; O(n^3).
/// Requires target's component to contain all of the graph (connected).
std::vector<double> exact_hitting_times(const Graph& g, NodeId target);

/// Exact expected return time E_i[T_i] = 1 + average of h over i's
/// neighbours; equals 2|E|/d_i (Kac) — exposed so tests can confirm the
/// linear-solve path agrees with the closed form.
double exact_return_time(const Graph& g, NodeId origin);

/// Exact mean and variance of the Random Tour SIZE estimate launched at
/// `origin`, from first principles: solves for E[counter] and E[counter^2]
/// accumulated until absorption at the origin. O(n^3); small graphs only.
struct TourMoments {
  double mean = 0.0;      ///< E[d_origin * counter]  (= N, Prop. 1)
  double variance = 0.0;  ///< Var(d_origin * counter)
};
TourMoments exact_tour_moments(const Graph& g, NodeId origin);

}  // namespace overcount

#include "walk/kernel.hpp"

#include <cstdlib>

namespace overcount {

std::size_t resolved_kernel_width(std::size_t configured) noexcept {
  if (configured != 0) return configured;
  if (const char* env = std::getenv("OVERCOUNT_KERNEL_WIDTH")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v > 0)
      return static_cast<std::size_t>(v);
  }
  return kDefaultKernelWidth;
}

}  // namespace overcount

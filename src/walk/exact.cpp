#include "walk/exact.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace overcount {

namespace {

// q = p * P where P is the DTRW transition matrix.
std::vector<double> dtrw_step(const Graph& g, const std::vector<double>& p) {
  std::vector<double> q(p.size(), 0.0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (p[v] == 0.0) continue;
    const auto nbrs = g.neighbors(v);
    OVERCOUNT_EXPECTS(!nbrs.empty());
    const double share = p[v] / static_cast<double>(nbrs.size());
    for (NodeId u : nbrs) q[u] += share;
  }
  return q;
}

}  // namespace

std::vector<double> dtrw_distribution(const Graph& g, NodeId origin,
                                      std::size_t steps) {
  OVERCOUNT_EXPECTS(origin < g.num_nodes());
  std::vector<double> p(g.num_nodes(), 0.0);
  p[origin] = 1.0;
  for (std::size_t k = 0; k < steps; ++k) p = dtrw_step(g, p);
  return p;
}

std::vector<double> ctrw_distribution(const Graph& g, NodeId origin, double t,
                                      double tol) {
  OVERCOUNT_EXPECTS(origin < g.num_nodes());
  OVERCOUNT_EXPECTS(t >= 0.0);
  const std::size_t n = g.num_nodes();
  // Uniformisation: -L = c (P_tilde - I) with c = d_max and
  // P_tilde = I - L/c (stochastic). Then
  //   exp(-tL) = sum_k Poisson(ct; k) P_tilde^k.
  const double c = static_cast<double>(g.max_degree());
  if (c == 0.0 || t == 0.0) {
    std::vector<double> p(n, 0.0);
    p[origin] = 1.0;
    return p;
  }
  auto uniformised_step = [&](const std::vector<double>& p) {
    // q = p * P_tilde; P_tilde(v,v) = 1 - d_v/c, P_tilde(v,u) = 1/c per edge.
    std::vector<double> q(n, 0.0);
    for (NodeId v = 0; v < n; ++v) {
      if (p[v] == 0.0) continue;
      const auto nbrs = g.neighbors(v);
      q[v] += p[v] * (1.0 - static_cast<double>(nbrs.size()) / c);
      const double share = p[v] / c;
      for (NodeId u : nbrs) q[u] += share;
    }
    return q;
  };

  const double rate = c * t;
  std::vector<double> term(n, 0.0);
  term[origin] = 1.0;
  std::vector<double> result(n, 0.0);
  // Accumulate Poisson-weighted powers until the tail mass drops below tol.
  double log_weight = -rate;  // log Poisson(rate; 0)
  double cumulative = 0.0;
  const std::size_t k_max =
      static_cast<std::size_t>(rate + 12.0 * std::sqrt(rate + 1.0) + 60.0);
  for (std::size_t k = 0; k <= k_max; ++k) {
    const double w = std::exp(log_weight);
    for (std::size_t i = 0; i < n; ++i) result[i] += w * term[i];
    cumulative += w;
    if (1.0 - cumulative < tol) break;
    term = uniformised_step(term);
    log_weight += std::log(rate) - std::log(static_cast<double>(k + 1));
  }
  // Renormalise away the truncated tail.
  double total = 0.0;
  for (double x : result) total += x;
  for (double& x : result) x /= total;
  return result;
}

std::vector<double> deterministic_ctrw_distribution_regular(const Graph& g,
                                                            NodeId origin,
                                                            double t) {
  OVERCOUNT_EXPECTS(g.num_nodes() >= 2);
  const std::size_t d = g.degree(0);
  for (NodeId v = 1; v < g.num_nodes(); ++v)
    OVERCOUNT_EXPECTS(g.degree(v) == d);
  OVERCOUNT_EXPECTS(t >= 0.0);
  const auto steps =
      static_cast<std::size_t>(std::floor(t * static_cast<double>(d)));
  return dtrw_distribution(g, origin, steps);
}

double variation_distance(const std::vector<double>& p,
                          const std::vector<double>& q) {
  OVERCOUNT_EXPECTS(p.size() == q.size());
  double l1 = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) l1 += std::abs(p[i] - q[i]);
  return 0.5 * l1;
}

double variation_distance_to_uniform(const std::vector<double>& p) {
  OVERCOUNT_EXPECTS(!p.empty());
  const double u = 1.0 / static_cast<double>(p.size());
  double l1 = 0.0;
  for (double x : p) l1 += std::abs(x - u);
  return 0.5 * l1;
}

std::vector<double> dtrw_stationary(const Graph& g) {
  OVERCOUNT_EXPECTS(g.num_nodes() > 0);
  OVERCOUNT_EXPECTS(g.total_degree() > 0);
  std::vector<double> pi(g.num_nodes());
  const double total = static_cast<double>(g.total_degree());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    pi[v] = static_cast<double>(g.degree(v)) / total;
  return pi;
}

}  // namespace overcount

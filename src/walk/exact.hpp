// Exact walk-distribution evolution on small graphs. Used to verify the
// mixing analysis (Lemma 1) against ground truth: DTRW distributions by
// transition-matrix powers, CTRW distributions by uniformisation of
// exp(-tL), and total-variation distances to uniform.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace overcount {

/// Distribution of the DTRW after `steps` steps from `origin` (size n).
std::vector<double> dtrw_distribution(const Graph& g, NodeId origin,
                                      std::size_t steps);

/// Distribution of the exponential-sojourn CTRW at time `t` from `origin`,
/// i.e. the `origin` row of exp(-tL), computed by uniformisation (exact up
/// to a truncation error below `tol`).
std::vector<double> ctrw_distribution(const Graph& g, NodeId origin, double t,
                                      double tol = 1e-12);

/// Distribution of the *deterministic-sojourn* CTRW at time `t` from
/// `origin`, exact for regular graphs (where the walk position at time t is
/// the DTRW after floor(t*d) steps). Requires a regular graph.
std::vector<double> deterministic_ctrw_distribution_regular(const Graph& g,
                                                            NodeId origin,
                                                            double t);

/// Total-variation distance max_A |p(A) - q(A)| = (1/2) * ||p - q||_1.
double variation_distance(const std::vector<double>& p,
                          const std::vector<double>& q);

/// Total-variation distance of `p` to the uniform distribution on n points.
double variation_distance_to_uniform(const std::vector<double>& p);

/// Stationary distribution of the DTRW: pi_v = d_v / (2|E|).
std::vector<double> dtrw_stationary(const Graph& g);

}  // namespace overcount

#include "walk/hitting.hpp"

#include <cmath>

#include "graph/connectivity.hpp"

namespace overcount {

namespace {

// Solves A x = b in place by Gaussian elimination with partial pivoting.
// A is row-major k x k; b holds the solution on return.
void solve_dense(std::vector<double>& a, std::vector<double>& b,
                 std::size_t k) {
  for (std::size_t col = 0; col < k; ++col) {
    // Pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < k; ++row)
      if (std::abs(a[row * k + col]) > std::abs(a[pivot * k + col]))
        pivot = row;
    OVERCOUNT_ENSURES(std::abs(a[pivot * k + col]) > 1e-12);
    if (pivot != col) {
      for (std::size_t j = 0; j < k; ++j)
        std::swap(a[col * k + j], a[pivot * k + j]);
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    const double inv = 1.0 / a[col * k + col];
    for (std::size_t row = col + 1; row < k; ++row) {
      const double factor = a[row * k + col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < k; ++j)
        a[row * k + j] -= factor * a[col * k + j];
      b[row] -= factor * b[col];
    }
  }
  // Back-substitute.
  for (std::size_t col = k; col-- > 0;) {
    double acc = b[col];
    for (std::size_t j = col + 1; j < k; ++j)
      acc -= a[col * k + j] * b[j];
    b[col] = acc / a[col * k + col];
  }
}

// Builds (I - Q) where Q is the DTRW transition matrix restricted to the
// non-`excluded` nodes, along with the index maps.
struct RestrictedSystem {
  std::vector<double> matrix;       // k x k
  std::vector<std::size_t> index;   // node -> row (or SIZE_MAX)
  std::vector<NodeId> node;         // row -> node
  std::size_t k = 0;
};

RestrictedSystem build_restricted(const Graph& g, NodeId excluded) {
  RestrictedSystem sys;
  const std::size_t n = g.num_nodes();
  sys.index.assign(n, static_cast<std::size_t>(-1));
  for (NodeId v = 0; v < n; ++v) {
    if (v == excluded) continue;
    sys.index[v] = sys.node.size();
    sys.node.push_back(v);
  }
  sys.k = sys.node.size();
  sys.matrix.assign(sys.k * sys.k, 0.0);
  for (std::size_t row = 0; row < sys.k; ++row) {
    const NodeId v = sys.node[row];
    sys.matrix[row * sys.k + row] = 1.0;
    const double p = 1.0 / static_cast<double>(g.degree(v));
    for (NodeId u : g.neighbors(v)) {
      if (u == excluded) continue;
      sys.matrix[row * sys.k + sys.index[u]] -= p;
    }
  }
  return sys;
}

}  // namespace

std::vector<double> exact_hitting_times(const Graph& g, NodeId target) {
  OVERCOUNT_EXPECTS(target < g.num_nodes());
  OVERCOUNT_EXPECTS(is_connected(g));
  auto sys = build_restricted(g, target);
  std::vector<double> rhs(sys.k, 1.0);
  auto matrix = sys.matrix;  // solve_dense destroys its inputs
  solve_dense(matrix, rhs, sys.k);
  std::vector<double> h(g.num_nodes(), 0.0);
  for (std::size_t row = 0; row < sys.k; ++row) h[sys.node[row]] = rhs[row];
  return h;
}

double exact_return_time(const Graph& g, NodeId origin) {
  OVERCOUNT_EXPECTS(g.degree(origin) > 0);
  const auto h = exact_hitting_times(g, origin);
  double acc = 0.0;
  for (NodeId u : g.neighbors(origin)) acc += h[u];
  return 1.0 + acc / static_cast<double>(g.degree(origin));
}

TourMoments exact_tour_moments(const Graph& g, NodeId origin) {
  OVERCOUNT_EXPECTS(origin < g.num_nodes());
  OVERCOUNT_EXPECTS(is_connected(g));
  const auto d_origin = static_cast<double>(g.degree(origin));
  auto sys = build_restricted(g, origin);

  // M1[v] = 1/d_v + sum_u P(v,u) M1[u]  (v != origin, M1[origin] = 0).
  std::vector<double> m1(sys.k);
  for (std::size_t row = 0; row < sys.k; ++row)
    m1[row] = 1.0 / static_cast<double>(g.degree(sys.node[row]));
  {
    auto matrix = sys.matrix;
    solve_dense(matrix, m1, sys.k);
  }
  // M2[v] = 1/d_v^2 + (2/d_v) sum_u P(v,u) M1[u] + sum_u P(v,u) M2[u].
  std::vector<double> m2(sys.k);
  for (std::size_t row = 0; row < sys.k; ++row) {
    const NodeId v = sys.node[row];
    const double inv_d = 1.0 / static_cast<double>(g.degree(v));
    double next_m1 = 0.0;
    for (NodeId u : g.neighbors(v))
      if (u != origin) next_m1 += m1[sys.index[u]];
    next_m1 *= inv_d;
    m2[row] = inv_d * inv_d + 2.0 * inv_d * next_m1;
  }
  {
    auto matrix = sys.matrix;
    solve_dense(matrix, m2, sys.k);
  }

  // Counter = 1/d_origin + S_{V1}, V1 uniform over origin's neighbours.
  double avg_m1 = 0.0;
  double avg_m2 = 0.0;
  for (NodeId u : g.neighbors(origin)) {
    avg_m1 += m1[sys.index[u]];
    avg_m2 += m2[sys.index[u]];
  }
  avg_m1 /= d_origin;
  avg_m2 /= d_origin;
  const double inv_d = 1.0 / d_origin;
  const double mean_counter = inv_d + avg_m1;
  const double second_counter =
      inv_d * inv_d + 2.0 * inv_d * avg_m1 + avg_m2;

  TourMoments out;
  out.mean = d_origin * mean_counter;
  out.variance =
      d_origin * d_origin * (second_counter - mean_counter * mean_counter);
  return out;
}

}  // namespace overcount

// Metropolis-Hastings random walk: the standard DISCRETE-time construction
// whose stationary distribution is uniform. From node v, propose a uniform
// neighbour u and move there with probability min(1, d_v/d_u); otherwise
// stay. Included as the natural competitor to the paper's CTRW sampler —
// it also removes degree bias, but pays for it with self-loops (wasted
// steps at low-degree nodes next to hubs), whereas the CTRW spends real
// time, not messages, at high-degree nodes. The ablation bench quantifies
// the message-cost difference.
#pragma once

#include "obs/probe.hpp"
#include "walk/topology.hpp"
#include "walk/walkers.hpp"

namespace overcount {

/// One Metropolis-Hastings transition from `at`; returns the next node
/// (possibly `at` itself on rejection).
template <OverlayTopology G>
NodeId metropolis_step(const G& g, NodeId at, Rng& rng) {
  const NodeId proposal = random_neighbor(g, at, rng);
  const auto d_at = static_cast<double>(g.degree(at));
  const auto d_prop = static_cast<double>(g.degree(proposal));
  if (d_prop <= d_at || rng.uniform() < d_at / d_prop) return proposal;
  return at;
}

/// Metropolis-Hastings sample after a fixed number of steps. `hops` in the
/// result counts only ACCEPTED moves (messages actually sent); rejected
/// proposals still consume a probe round-trip in a real deployment, which
/// `probes_sent` below accounts for.
template <OverlayTopology G>
struct MetropolisSampler {
  MetropolisSampler(const G& graph, std::uint64_t steps, Rng rng)
      : graph_(&graph), steps_(steps), rng_(rng) {
    OVERCOUNT_EXPECTS(steps > 0);
  }

  SampleResult sample(NodeId origin) { return sample(origin, NullProbe{}); }

  /// Same, observed by a walk probe (obs/probe.hpp): accepted moves fire
  /// on_visit, rejections fire on_reject (the wasted-message count the
  /// ablation bench studies). Probes never draw from the Rng.
  template <WalkProbe P>
  SampleResult sample(NodeId origin, P&& probe) {
    NodeId at = origin;
    if constexpr (probe_enabled_v<P>) probe.walk_begin(origin);
    SampleResult out;
    for (std::uint64_t k = 0; k < steps_; ++k) {
      // A proposal costs one probe exchange whether or not it is accepted:
      // the walker must learn d_u from the proposed neighbour.
      ++probes_sent_;
      const NodeId next = metropolis_step(*graph_, at, rng_);
      if (next != at) {
        ++out.hops;
        if constexpr (probe_enabled_v<P>) probe.on_visit(next);
      } else {
        if constexpr (probe_enabled_v<P>) probe.on_reject();
      }
      at = next;
    }
    out.node = at;
    if constexpr (probe_enabled_v<P>) probe.sample_end(out.hops);
    total_hops_ += out.hops;
    return out;
  }

  std::uint64_t probes_sent() const noexcept { return probes_sent_; }
  std::uint64_t total_hops() const noexcept { return total_hops_; }

 private:
  const G* graph_;
  std::uint64_t steps_;
  Rng rng_;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t total_hops_ = 0;
};

}  // namespace overcount

#include "walk/mixing.hpp"

#include <cmath>

#include "walk/exact.hpp"

namespace overcount {

double ctrw_worst_case_distance(const Graph& g, double t) {
  OVERCOUNT_EXPECTS(g.num_nodes() >= 2);
  double worst = 0.0;
  for (NodeId origin = 0; origin < g.num_nodes(); ++origin)
    worst = std::max(worst, variation_distance_to_uniform(
                                ctrw_distribution(g, origin, t)));
  return worst;
}

double ctrw_mixing_time(const Graph& g, double eps, double resolution) {
  OVERCOUNT_EXPECTS(eps > 0.0 && eps < 1.0);
  OVERCOUNT_EXPECTS(resolution > 0.0);
  // Variation distance is non-increasing in t for the CTRW (complete
  // monotonicity, cf. the Lemma 1 proof), so bisection is valid.
  double hi = 1.0;
  int guard = 0;
  while (ctrw_worst_case_distance(g, hi) > eps) {
    hi *= 2.0;
    OVERCOUNT_ENSURES(++guard < 64);
  }
  double lo = hi / 2.0;
  if (hi == 1.0) lo = 0.0;
  while (hi - lo > resolution) {
    const double mid = 0.5 * (lo + hi);
    if (ctrw_worst_case_distance(g, mid) > eps) lo = mid;
    else hi = mid;
  }
  return hi;
}

double lemma1_mixing_bound(std::size_t n, double spectral_gap, double eps) {
  OVERCOUNT_EXPECTS(n >= 2);
  OVERCOUNT_EXPECTS(spectral_gap > 0.0);
  OVERCOUNT_EXPECTS(eps > 0.0 && eps < 1.0);
  return (0.5 * std::log(static_cast<double>(n)) + std::log(1.0 / eps)) /
         spectral_gap;
}

}  // namespace overcount

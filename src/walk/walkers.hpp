// Random-walk primitives on overlay graphs.
//
// * DTRW: the discrete-time simple random walk; stationary distribution is
//   proportional to degree (hence biased as a sampler — Section 4.1).
// * CTRW with exponential sojourns: mean sojourn 1/d_v at node v; uniform
//   stationary distribution. The paper's sampling sub-routine simulates it
//   by decrementing a timer with -log(u)/d_v per visit.
// * CTRW with deterministic sojourns (exactly 1/d_v per visit): the variant
//   used by the Random Tour accounting (Section 3.3), but NOT safe for
//   sampling (Remark 1's bipartite parity counterexample).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>

#include "obs/probe.hpp"
#include "walk/topology.hpp"

namespace overcount {

/// Outcome of a timer-driven sampling walk.
struct SampleResult {
  NodeId node = 0;        ///< the sampled peer
  std::uint64_t hops = 0; ///< messages spent (walk steps until timer death)
};

/// Discrete-time random walk stepper.
template <OverlayTopology G>
class DtrwWalker {
 public:
  DtrwWalker(const G& graph, NodeId start) : graph_(&graph), at_(start) {}

  NodeId position() const noexcept { return at_; }
  std::uint64_t steps() const noexcept { return steps_; }

  /// Moves to a uniformly random neighbour; returns the new position.
  NodeId step(Rng& rng) {
    at_ = random_neighbor(*graph_, at_, rng);
    ++steps_;
    return at_;
  }

 private:
  const G* graph_;
  NodeId at_;
  std::uint64_t steps_ = 0;
};

/// Number of DTRW steps from `origin` until first return to `origin`.
template <OverlayTopology G>
std::uint64_t measure_return_time(const G& g, NodeId origin, Rng& rng,
                                  std::uint64_t max_steps = ~0ULL) {
  DtrwWalker walker(g, origin);
  while (walker.steps() < max_steps)
    if (walker.step(rng) == origin) return walker.steps();
  return max_steps;
}

/// CTRW sample with exponential sojourns (paper Section 4.1): start a timer
/// at T; each visited node v (including the origin) decrements the timer by
/// an Exp(d_v) variate; the node where the timer dies is the sample.
/// Unbiased in the T -> infinity limit: variation distance to uniform is at
/// most sqrt(N) * exp(-lambda_2 T) (Lemma 1).
///
/// `probe` (obs/probe.hpp) observes visits and the virtual time actually
/// spent at each node; the default NullProbe compiles to the bare walk and
/// no probe ever touches `rng`.
template <OverlayTopology G, WalkProbe P = NullProbe>
SampleResult ctrw_sample(const G& g, NodeId origin, double timer, Rng& rng,
                         P&& probe = P{}) {
  OVERCOUNT_EXPECTS(timer > 0.0);
  SampleResult out;
  NodeId at = origin;
  double remaining = timer;
  if constexpr (probe_enabled_v<P>) probe.walk_begin(origin);
  for (;;) {
    const auto degree = g.degree(at);
    OVERCOUNT_HOT_EXPECTS(degree > 0);
    const double sojourn = rng.exponential(static_cast<double>(degree));
    if constexpr (probe_enabled_v<P>)
      probe.on_sojourn(std::min(sojourn, remaining));
    remaining -= sojourn;
    if (remaining <= 0.0) {
      out.node = at;
      if constexpr (probe_enabled_v<P>) probe.sample_end(out.hops);
      return out;
    }
    at = random_neighbor(g, at, rng);
    ++out.hops;
    if constexpr (probe_enabled_v<P>) probe.on_visit(at);
  }
}

/// CTRW sample with *deterministic* sojourns of exactly 1/d_v. Cheaper (no
/// per-hop exponential draw) but lacks the Lemma 1 guarantee: on bipartite
/// regular graphs the sampled side is a deterministic function of T
/// (Remark 1). Provided for the ablation study and tests.
template <OverlayTopology G>
SampleResult deterministic_ctrw_sample(const G& g, NodeId origin,
                                       double timer, Rng& rng) {
  OVERCOUNT_EXPECTS(timer > 0.0);
  SampleResult out;
  NodeId at = origin;
  double remaining = timer;
  for (;;) {
    const auto degree = g.degree(at);
    OVERCOUNT_HOT_EXPECTS(degree > 0);
    remaining -= 1.0 / static_cast<double>(degree);
    if (remaining <= 0.0) {
      out.node = at;
      return out;
    }
    at = random_neighbor(g, at, rng);
    ++out.hops;
  }
}

/// DTRW-based sampler stopped after a fixed number of steps — the prior-art
/// baseline the paper improves on; biased towards high-degree nodes.
template <OverlayTopology G>
SampleResult dtrw_sample(const G& g, NodeId origin, std::uint64_t steps,
                         Rng& rng) {
  DtrwWalker walker(g, origin);
  while (walker.steps() < steps) walker.step(rng);
  return {walker.position(), walker.steps()};
}

}  // namespace overcount

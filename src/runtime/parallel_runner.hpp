// Deterministic fan-out of independent estimator tasks over a fixed-size
// thread pool.
//
// The paper's experiments are thousands of independent Random Tours, CTRW
// samples and Sample & Collide trials; each draws from its own RNG stream
// and touches nothing shared, so they are embarrassingly parallel (the same
// observation Das Sarma et al. exploit for distributed walks). The runner
// preserves the library's reproducibility contract under that parallelism:
//
//  * Each task `i` draws from a stream derived by the i-th `Rng::split()`
//    of a master generator seeded from the batch seed — a pure function of
//    (seed, i), never of scheduling.
//  * Results land in slot `i` of the result vector, so the returned batch
//    is BIT-IDENTICAL for any thread count, including 1.
//  * Floating-point accumulation over a batch goes through a fixed pairwise
//    tree reduction (tree_sum below), never a scheduling-ordered sum.
//
// The pool is deliberately work-stealing-free: workers pull task indices
// from a single atomic counter. Tours on the same graph have similar cost,
// so a shared counter load-balances fine and keeps the dispatch auditable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "runtime/batch_stats.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace overcount {

/// The per-task RNG streams for a batch of `n` tasks: the i-th split() of a
/// master Rng seeded with `seed`. Pure in (seed, n) — this is the whole
/// determinism story, so batch APIs must derive streams ONLY through here.
std::vector<Rng> derive_streams(std::uint64_t seed, std::size_t n);

/// Deterministic pairwise tree reduction of `xs` with a binary `op`:
/// combines adjacent pairs, then pairs of pairs, and so on. For
/// floating-point `op` the association order is fixed by the input order
/// alone, so the result is reproducible across thread counts and (unlike a
/// left fold) accumulates error in O(log n) depth.
template <typename T, typename Op>
T tree_reduce(std::span<const T> xs, T identity, Op op) {
  if (xs.empty()) return identity;
  std::vector<T> level(xs.begin(), xs.end());
  while (level.size() > 1) {
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      level[out++] = op(level[i], level[i + 1]);
    if (level.size() % 2 == 1) level[out++] = level.back();
    level.resize(out);
  }
  return level.front();
}

/// Pairwise-tree sum of doubles (the reduction every batch mean uses).
double tree_sum(std::span<const double> xs);

/// Fixed-size thread pool for batches of independent indexed tasks.
///
/// One runner owns `thread_count()` worker threads for its whole lifetime;
/// run() dispatches a batch and blocks until every task finished. run() may
/// only be called from one thread at a time (the pool is not reentrant).
class ParallelRunner {
 public:
  /// `n_threads == 0` means std::thread::hardware_concurrency().
  /// `kernel_width` configures the interleaved walk kernel the batch APIs
  /// (core/parallel.hpp) run per worker: 0 defers to the
  /// OVERCOUNT_KERNEL_WIDTH environment variable and then the library
  /// default (walk/kernel.hpp), 1 forces the scalar path, W >= 2 interleaves
  /// W walks per task. The runner only stores the setting — resolution and
  /// use live in the walk/core layers, so the runtime layer stays free of
  /// walk dependencies.
  explicit ParallelRunner(unsigned n_threads = 0,
                          std::size_t kernel_width = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Configured interleave width (0 = resolve from environment/default).
  std::size_t kernel_width() const noexcept { return kernel_width_; }
  void set_kernel_width(std::size_t width) noexcept {
    kernel_width_ = width;
  }

  /// Runs tasks 0..n_tasks-1, `task(i)` exactly once each, and returns the
  /// results in task-index order. T must be default-constructible. If tasks
  /// throw, the exception of the LOWEST task index is rethrown to the
  /// caller after the batch drains (deterministic regardless of which
  /// worker hit it first). `stats`, when non-null, receives the batch
  /// counters (tasks, wall/cpu time, threads; `steps` is left to the caller
  /// because only it knows the domain work units).
  template <typename T, typename Task>
  std::vector<T> run(std::size_t n_tasks, Task&& task,
                     BatchStats* stats = nullptr) {
    std::vector<T> results(n_tasks);
    std::vector<std::exception_ptr> errors(n_tasks);
    dispatch(n_tasks, [&](std::size_t i) {
      try {
        results[i] = task(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }, stats);
    for (auto& e : errors)
      if (e) std::rethrow_exception(e);
    return results;
  }

 private:
  /// Runs fn(0..n-1) on the pool, times the batch, blocks until done.
  void dispatch(std::size_t n, const std::function<void(std::size_t)>& fn,
                BatchStats* stats);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::size_t kernel_width_ = 0;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;  // guarded by mutex_
  std::size_t job_size_ = 0;                               // guarded by mutex_
  std::atomic<std::size_t> next_index_{0};
  std::size_t active_workers_ = 0;  // guarded by mutex_
  std::uint64_t generation_ = 0;    // guarded by mutex_
  bool stopping_ = false;           // guarded by mutex_
};

}  // namespace overcount

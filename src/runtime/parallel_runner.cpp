#include "runtime/parallel_runner.hpp"

#include <chrono>
#include <ctime>

// Header-only span tracing (obs/trace.hpp): the runtime layer stays below
// obs in the link graph — TraceSpan and the active-recorder check are all
// inline, so no overcount_obs symbols are referenced from here.
#include "obs/trace.hpp"

namespace overcount {

std::vector<Rng> derive_streams(std::uint64_t seed, std::size_t n) {
  Rng master(seed);
  std::vector<Rng> streams;
  streams.reserve(n);
  for (std::size_t i = 0; i < n; ++i) streams.push_back(master.split());
  return streams;
}

double tree_sum(std::span<const double> xs) {
  return tree_reduce(xs, 0.0, [](double a, double b) { return a + b; });
}

ParallelRunner::ParallelRunner(unsigned n_threads, std::size_t kernel_width)
    : kernel_width_(kernel_width) {
  if (n_threads == 0) n_threads = std::thread::hardware_concurrency();
  if (n_threads == 0) n_threads = 1;  // hardware_concurrency may report 0
  workers_.reserve(n_threads);
  for (unsigned t = 0; t < n_threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ParallelRunner::dispatch(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              BatchStats* stats) {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::clock_t cpu_start = std::clock();
  TraceSpan batch_span("runner", "runner.dispatch", "tasks",
                       static_cast<std::uint64_t>(n));
  if (n > 0) {
    {
      std::lock_guard lock(mutex_);
      job_ = &fn;
      job_size_ = n;
      next_index_.store(0, std::memory_order_relaxed);
      active_workers_ = workers_.size();
      ++generation_;
    }
    work_cv_.notify_all();
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
    job_ = nullptr;
  }
  if (stats != nullptr) {
    stats->tasks = n;
    stats->threads = thread_count();
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    stats->cpu_seconds = static_cast<double>(std::clock() - cpu_start) /
                         static_cast<double>(CLOCKS_PER_SEC);
  }
}

void ParallelRunner::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t size = 0;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      job = job_;
      size = job_size_;
    }
    // Per-task spans only when a recorder is live: the check is hoisted out
    // of the pull loop, so the untraced path stays one atomic load per
    // BATCH, not per task.
    const bool tracing = trace_active();
    for (std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
         i < size;
         i = next_index_.fetch_add(1, std::memory_order_relaxed)) {
      if (tracing) {
        TraceSpan task_span("runner", "runner.task", "index",
                            static_cast<std::uint64_t>(i));
        (*job)(i);
      } else {
        (*job)(i);
      }
    }
    {
      std::lock_guard lock(mutex_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace overcount

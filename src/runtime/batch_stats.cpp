#include "runtime/batch_stats.hpp"

#include <ostream>

#include "util/table.hpp"

namespace overcount {

double BatchStats::steps_per_second() const noexcept {
  if (wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(steps) / wall_seconds;
}

double BatchStats::parallel_efficiency() const noexcept {
  if (wall_seconds <= 0.0 || threads == 0) return 0.0;
  return cpu_seconds / (wall_seconds * static_cast<double>(threads));
}

std::vector<std::pair<std::string, std::string>> BatchStats::counter_rows()
    const {
  return {
      {"tasks", std::to_string(tasks)},
      {"steps", std::to_string(steps)},
      {"wall_s", format_double(wall_seconds, 4)},
      {"cpu_s", format_double(cpu_seconds, 4)},
      {"steps/s", format_double(steps_per_second(), 0)},
      {"par_eff", format_double(parallel_efficiency(), 2)},
      {"threads", std::to_string(threads)},
  };
}

void print_batch_stats(std::ostream& os, const BatchStats& stats) {
  print_counters(os, stats.counter_rows());
}

}  // namespace overcount

// Per-batch runtime counters reported by every ParallelRunner batch and the
// core batch estimator APIs built on it: how many tasks ran, how much
// domain-level work they did (walk steps / hops), and how long the batch
// took in wall-clock and process-CPU time. The counters are what the bench
// harness surfaces next to each figure so speedups are visible in the
// output, not just in a stopwatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace overcount {

/// Counters for one batch of estimator tasks.
struct BatchStats {
  std::size_t tasks = 0;         ///< tasks executed in the batch
  std::uint64_t steps = 0;       ///< domain work units (walk steps / hops)
  double wall_seconds = 0.0;     ///< elapsed wall-clock time
  double cpu_seconds = 0.0;      ///< process CPU time (sums across threads)
  unsigned threads = 1;          ///< pool size the batch ran on

  /// Aggregate throughput; 0 when no time elapsed.
  double steps_per_second() const noexcept;

  /// CPU utilisation relative to a perfect `threads`-way parallel run
  /// (cpu / (wall * threads)); 0 when no time elapsed.
  double parallel_efficiency() const noexcept;

  /// "metric -> rendered value" rows for util/table.hpp's print_counters.
  std::vector<std::pair<std::string, std::string>> counter_rows() const;
};

/// Prints the counters as a one-row table (delegates to print_counters).
void print_batch_stats(std::ostream& os, const BatchStats& stats);

}  // namespace overcount

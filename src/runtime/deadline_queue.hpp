// Bounded earliest-deadline-first work queue: the admission-control and
// scheduling primitive under the estimate-serving broker (src/serve/).
//
// Semantics:
//  * try_push never blocks: a full (or closed) queue refuses the item and
//    the CALLER load-sheds (reject-with-retry-after at the serve layer).
//    Bounding the queue is the whole point — under overload the queue
//    depth, and with it the tail latency, must not grow without bound.
//  * pop_earliest returns the item with the smallest (deadline, sequence)
//    pair: earliest-deadline-first, with the admission sequence number
//    breaking ties so two items with the same deadline (including the
//    common "no deadline" case) leave in FIFO order. Ordering is a pure
//    function of the pushed (deadline, seq) pairs — never of timing — so a
//    single consumer drains a given admission history in one deterministic
//    order.
//  * set_paused(true) keeps pop_earliest blocked even when items are
//    queued; tests use this to build a known queue state before letting
//    the broker run.
//  * close() wakes every blocked pop_earliest with nullopt and makes all
//    further pushes fail; drain() then hands the still-queued items back
//    to the owner (the serve layer fails their waiters instead of silently
//    dropping them).
//
// The queue stores items in admission order and scans for the minimum on
// pop: capacities are small (tens of batches), so O(n) pop with zero
// allocation beats a heap's bookkeeping, and the scan makes the tie-break
// rule obvious.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace overcount {

template <typename T>
class DeadlineQueue {
 public:
  explicit DeadlineQueue(std::size_t capacity) : capacity_(capacity) {
    OVERCOUNT_EXPECTS(capacity > 0);
    entries_.reserve(capacity);
  }

  DeadlineQueue(const DeadlineQueue&) = delete;
  DeadlineQueue& operator=(const DeadlineQueue&) = delete;

  /// Admits `item` unless the queue is full or closed. Never blocks.
  bool try_push(T item, std::uint64_t deadline_us, std::uint64_t seq) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || entries_.size() >= capacity_) return false;
      entries_.push_back(Entry{deadline_us, seq, std::move(item)});
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available and the queue is unpaused, then
  /// returns the earliest-(deadline, seq) item. Returns nullopt once the
  /// queue is closed (queued items are then the owner's to drain()).
  std::optional<T> pop_earliest() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || (!paused_ && !entries_.empty()); });
    if (closed_) return std::nullopt;
    std::size_t best = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      const Entry& b = entries_[best];
      if (e.deadline_us < b.deadline_us ||
          (e.deadline_us == b.deadline_us && e.seq < b.seq))
        best = i;
    }
    T out = std::move(entries_[best].item);
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(best));
    return out;
  }

  /// Removes and returns everything still queued, in admission order.
  std::vector<T> drain() {
    std::lock_guard lock(mutex_);
    std::vector<T> out;
    out.reserve(entries_.size());
    for (Entry& e : entries_) out.push_back(std::move(e.item));
    entries_.clear();
    return out;
  }

  /// While paused, pop_earliest blocks even when items are available.
  void set_paused(bool paused) {
    {
      std::lock_guard lock(mutex_);
      paused_ = paused;
    }
    cv_.notify_all();
  }

  /// Fails all further pushes and wakes every blocked pop with nullopt.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return entries_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    std::uint64_t deadline_us;
    std::uint64_t seq;
    T item;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;  // guarded by mutex_
  bool paused_ = false;         // guarded by mutex_
  bool closed_ = false;         // guarded by mutex_
};

}  // namespace overcount

// Scenario result persistence: CSV export/import of the per-run series so
// that external plotting tools can redraw the paper's figures, and result
// sets can be diffed across runs.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/scenario.hpp"

namespace overcount {

/// Writes `run,actual_size,estimate,windowed,messages` rows with a header.
void write_scenario_csv(std::ostream& os, const ScenarioResult& result);

/// Parses the write_scenario_csv format; throws std::runtime_error on
/// malformed input. total_messages is recomputed from the rows.
ScenarioResult read_scenario_csv(std::istream& is);

/// File-path convenience wrappers; throw std::runtime_error on I/O errors.
void save_scenario_csv(const std::string& path, const ScenarioResult& r);
ScenarioResult load_scenario_csv(const std::string& path);

}  // namespace overcount

#include "sim/trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace overcount {

namespace {
constexpr const char* kHeader = "run,actual_size,estimate,windowed,messages";
}

void write_scenario_csv(std::ostream& os, const ScenarioResult& result) {
  os << kHeader << '\n';
  for (const auto& p : result.points) {
    os << p.run << ',' << p.actual_size << ',' << p.estimate << ','
       << p.windowed << ',' << p.messages << '\n';
  }
}

ScenarioResult read_scenario_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader)
    throw std::runtime_error("scenario csv: bad or missing header");
  ScenarioResult out;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ss(line);
    ScenarioPoint p;
    char c1 = 0;
    char c2 = 0;
    char c3 = 0;
    char c4 = 0;
    ss >> p.run >> c1 >> p.actual_size >> c2 >> p.estimate >> c3 >>
        p.windowed >> c4 >> p.messages;
    if (ss.fail() || c1 != ',' || c2 != ',' || c3 != ',' || c4 != ',')
      throw std::runtime_error("scenario csv: malformed line " +
                               std::to_string(line_no));
    out.total_messages += p.messages;
    out.points.push_back(p);
  }
  return out;
}

void save_scenario_csv(const std::string& path, const ScenarioResult& r) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open for writing: " + path);
  write_scenario_csv(file, r);
  if (!file) throw std::runtime_error("write failed: " + path);
}

ScenarioResult load_scenario_csv(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open for reading: " + path);
  return read_scenario_csv(file);
}

}  // namespace overcount

// Dynamic-environment scenario engine (paper Section 5.3).
//
// A scenario interleaves estimation runs with population churn: gradual
// growth/shrink phases (a fixed number of joins/departures between
// consecutive runs) and sudden "catastrophic" events (a block of departures
// or a flash crowd applied at once). Joins follow the topology's attachment
// rule; departures remove uniformly random peers, and survivors do not
// re-wire (Section 5.1). The reported "actual size" is the size of the
// probing node's connected component.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"

namespace overcount {

enum class TopologyKind {
  kBalanced,   ///< Section 5.1 balanced random graph (degrees 1..10)
  kScaleFree,  ///< Barabasi-Albert preferential attachment
};

/// Node-count change spread uniformly over runs [from_run, to_run).
struct GradualChange {
  std::size_t from_run = 0;
  std::size_t to_run = 0;
  std::ptrdiff_t delta = 0;  ///< total joins (+) or departures (-)
};

/// Node-count change applied at once, just before `at_run`.
struct SuddenChange {
  std::size_t at_run = 0;
  std::ptrdiff_t delta = 0;
};

struct ScenarioSpec {
  std::size_t initial_nodes = 0;
  std::size_t runs = 0;  ///< number of estimation runs
  TopologyKind topology = TopologyKind::kBalanced;
  std::vector<GradualChange> gradual;
  std::vector<SuddenChange> sudden;
  std::size_t ba_attachment = 3;        ///< m for scale-free joins/creation
  std::size_t balanced_max_degree = 10;
  /// Recompute the (BFS) actual component size every this many runs; the
  /// value is carried forward in between. 1 = exact every run.
  std::size_t actual_size_every = 10;
};

/// One estimation run: returns the estimate and its message cost.
struct EstimateSample {
  double value = 0.0;
  std::uint64_t messages = 0;
};
using EstimateFn =
    std::function<EstimateSample(const DynamicGraph&, NodeId origin, Rng&)>;

/// Ready-made estimate functions for the two methods under test.
EstimateFn random_tour_estimate_fn();
EstimateFn sample_collide_estimate_fn(double timer, std::size_t ell);

struct ScenarioPoint {
  std::size_t run = 0;
  double actual_size = 0.0;   ///< probing node's component (possibly stale)
  double estimate = 0.0;      ///< raw per-run estimate
  double windowed = 0.0;      ///< sliding-window mean (window = spec window)
  std::uint64_t messages = 0;
};

struct ScenarioResult {
  std::vector<ScenarioPoint> points;
  std::uint64_t total_messages = 0;
};

/// Builds the initial topology, then alternates churn and estimation for
/// spec.runs runs. `window` is the sliding-window size applied to estimates
/// (1 = no averaging).
ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const EstimateFn& estimate, std::size_t window,
                            std::uint64_t seed);

/// Applies one join according to the topology's attachment rule.
void churn_join(DynamicGraph& g, TopologyKind topology, Rng& rng,
                std::size_t ba_attachment, std::size_t balanced_max_degree);

/// Removes one uniformly random alive node.
void churn_leave(DynamicGraph& g, Rng& rng);

/// The paper's three dynamic scenarios, parameterised by scale so they can
/// be run at reduced size with the same shape (run counts and change
/// fractions match the paper's 100k-node setups).
ScenarioSpec gradual_decrease_spec(std::size_t n, std::size_t runs,
                                   TopologyKind topology);
ScenarioSpec gradual_increase_spec(std::size_t n, std::size_t runs,
                                   TopologyKind topology);
ScenarioSpec catastrophic_spec(std::size_t n, std::size_t runs,
                               TopologyKind topology);

}  // namespace overcount

#include "sim/scenario.hpp"

#include <algorithm>

#include "core/random_tour.hpp"
#include "core/sample_collide.hpp"
#include "util/sliding_window.hpp"

namespace overcount {

EstimateFn random_tour_estimate_fn() {
  return [](const DynamicGraph& g, NodeId origin, Rng& rng) {
    const auto tour = random_tour_size(g, origin, rng);
    return EstimateSample{tour.value, tour.steps};
  };
}

EstimateFn sample_collide_estimate_fn(double timer, std::size_t ell) {
  return [timer, ell](const DynamicGraph& g, NodeId origin, Rng& rng) {
    SampleCollideEstimator estimator(g, origin, timer, ell, rng.split());
    const auto e = estimator.estimate();
    return EstimateSample{e.simple, e.hops};
  };
}

void churn_join(DynamicGraph& g, TopologyKind topology, Rng& rng,
                std::size_t ba_attachment, std::size_t balanced_max_degree) {
  OVERCOUNT_EXPECTS(g.num_alive() >= 2);
  std::vector<NodeId> targets;
  switch (topology) {
    case TopologyKind::kBalanced: {
      const auto want = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(balanced_max_degree)));
      std::size_t attempts = 16 * want + 64;
      while (targets.size() < want && attempts-- > 0) {
        const NodeId t = g.random_alive_node(rng);
        if (g.degree(t) >= balanced_max_degree) continue;
        if (std::find(targets.begin(), targets.end(), t) != targets.end())
          continue;
        targets.push_back(t);
      }
      break;
    }
    case TopologyKind::kScaleFree: {
      const std::size_t want = std::min(ba_attachment, g.num_alive());
      // Preferential attachment by rejection: accept a uniform candidate
      // with probability degree / (current max degree estimate).
      std::size_t max_deg = 1;
      for (std::size_t probe = 0; probe < 64; ++probe)
        max_deg = std::max(max_deg, g.degree(g.random_alive_node(rng)));
      std::size_t attempts = 1024 * want;
      while (targets.size() < want && attempts-- > 0) {
        const NodeId t = g.random_alive_node(rng);
        const auto deg = g.degree(t);
        if (deg == 0) continue;
        max_deg = std::max(max_deg, deg);
        if (!rng.bernoulli(static_cast<double>(deg) /
                           static_cast<double>(max_deg)))
          continue;
        if (std::find(targets.begin(), targets.end(), t) != targets.end())
          continue;
        targets.push_back(t);
      }
      break;
    }
  }
  // A joining peer that found no targets still joins (isolated); this can
  // only happen when the whole system is saturated or tiny.
  g.add_node(targets);
}

void churn_leave(DynamicGraph& g, Rng& rng) {
  OVERCOUNT_EXPECTS(g.num_alive() > 0);
  g.remove_node(g.random_alive_node(rng));
}

namespace {

Graph make_topology(TopologyKind topology, std::size_t n, Rng& rng,
                    std::size_t ba_attachment,
                    std::size_t balanced_max_degree) {
  switch (topology) {
    case TopologyKind::kBalanced:
      return balanced_random_graph(n, rng, balanced_max_degree);
    case TopologyKind::kScaleFree:
      return barabasi_albert(n, ba_attachment, rng);
  }
  OVERCOUNT_ENSURES(false);
  return {};
}

// Number of churn operations (joins if delta > 0, departures if < 0) to
// apply just before run `run`.
std::ptrdiff_t churn_due(const ScenarioSpec& spec, std::size_t run) {
  std::ptrdiff_t due = 0;
  for (const auto& g : spec.gradual) {
    if (run < g.from_run || run >= g.to_run || g.from_run >= g.to_run)
      continue;
    const auto span = static_cast<std::ptrdiff_t>(g.to_run - g.from_run);
    const auto idx = static_cast<std::ptrdiff_t>(run - g.from_run);
    // Cumulative-quota scheme so rounding never loses nodes.
    due += g.delta * (idx + 1) / span - g.delta * idx / span;
  }
  for (const auto& s : spec.sudden)
    if (s.at_run == run) due += s.delta;
  return due;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const EstimateFn& estimate, std::size_t window,
                            std::uint64_t seed) {
  OVERCOUNT_EXPECTS(spec.initial_nodes >= 2);
  OVERCOUNT_EXPECTS(spec.runs > 0);
  OVERCOUNT_EXPECTS(window >= 1);
  Rng rng(seed);
  Rng churn_rng = rng.split();
  Rng estimate_rng = rng.split();

  DynamicGraph g(make_topology(spec.topology, spec.initial_nodes, rng,
                               spec.ba_attachment, spec.balanced_max_degree));

  NodeId probe = g.random_alive_node(rng);
  SlidingWindowMean window_mean(window);
  ScenarioResult out;
  out.points.reserve(spec.runs);
  double actual = 0.0;
  bool actual_stale = true;

  for (std::size_t run = 0; run < spec.runs; ++run) {
    const std::ptrdiff_t due = churn_due(spec, run);
    for (std::ptrdiff_t k = 0; k < due; ++k)
      churn_join(g, spec.topology, churn_rng, spec.ba_attachment,
                 spec.balanced_max_degree);
    for (std::ptrdiff_t k = 0; k > due; --k) churn_leave(g, churn_rng);
    if (due != 0) actual_stale = true;

    // The probing peer itself may have departed or been isolated by churn.
    if (probe >= g.num_slots() || !g.alive(probe) || g.degree(probe) == 0) {
      std::size_t guard = g.num_alive() + 8;
      do {
        probe = g.random_alive_node(rng);
        OVERCOUNT_ENSURES(guard-- > 0);
      } while (g.degree(probe) == 0);
      actual_stale = true;
    }

    // Refresh the (BFS-priced) ground truth on the configured cadence, and
    // on the first run; between refreshes a stale value is carried forward.
    const bool never_computed = run == 0;
    if (never_computed ||
        (actual_stale && run % spec.actual_size_every == 0)) {
      actual = static_cast<double>(g.component_size(probe));
      actual_stale = false;
    }

    const auto sample = estimate(g, probe, estimate_rng);
    window_mean.push(sample.value);
    out.total_messages += sample.messages;
    out.points.push_back(ScenarioPoint{run, actual, sample.value,
                                       window_mean.mean(), sample.messages});
  }
  return out;
}

ScenarioSpec gradual_decrease_spec(std::size_t n, std::size_t runs,
                                   TopologyKind topology) {
  // Paper Fig. 8 / 11: 50% departures between 30% and 80% of the run span.
  ScenarioSpec spec;
  spec.initial_nodes = n;
  spec.runs = runs;
  spec.topology = topology;
  spec.gradual.push_back(GradualChange{
      runs * 3 / 10, runs * 8 / 10, -static_cast<std::ptrdiff_t>(n / 2)});
  return spec;
}

ScenarioSpec gradual_increase_spec(std::size_t n, std::size_t runs,
                                   TopologyKind topology) {
  // Paper Fig. 9 / 12: 50% joins between 30% and 80% of the run span.
  ScenarioSpec spec;
  spec.initial_nodes = n;
  spec.runs = runs;
  spec.topology = topology;
  spec.gradual.push_back(GradualChange{
      runs * 3 / 10, runs * 8 / 10, static_cast<std::ptrdiff_t>(n / 2)});
  return spec;
}

ScenarioSpec catastrophic_spec(std::size_t n, std::size_t runs,
                               TopologyKind topology) {
  // Paper Fig. 10 / 13: -25% at 10% and 50% of the span, +25% at 70%.
  ScenarioSpec spec;
  spec.initial_nodes = n;
  spec.runs = runs;
  spec.topology = topology;
  const auto quarter = static_cast<std::ptrdiff_t>(n / 4);
  spec.sudden.push_back(SuddenChange{runs / 10, -quarter});
  spec.sudden.push_back(SuddenChange{runs / 2, -quarter});
  spec.sudden.push_back(SuddenChange{runs * 7 / 10, quarter});
  return spec;
}

}  // namespace overcount

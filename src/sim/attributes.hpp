// Synthetic per-peer attributes for the paper's "counting peers with given
// characteristics" use cases (Section 1/3: broadband vs dial-up viewers,
// upload capacity above a threshold, ...). Deterministic given a seed, and
// stable under churn: a node's attributes are a pure function of (seed,
// node id), so joins get fresh draws and departures change nothing.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace overcount {

/// Connection classes used by the live-streaming examples.
enum class LinkClass : std::uint8_t { kDialup, kDsl, kFibre };

struct PeerProfile {
  LinkClass link = LinkClass::kDialup;
  double upload_mbps = 0.0;
  double uptime_hours = 0.0;
  std::uint8_t region = 0;  ///< 0..num_regions-1
};

/// Deterministic attribute source.
class PeerAttributes {
 public:
  struct Mix {
    double dialup_fraction = 0.3;
    double dsl_fraction = 0.5;  // remainder is fibre
    double dialup_mbps = 0.05;
    double dsl_mbps_min = 1.0;
    double dsl_mbps_max = 10.0;
    double fibre_mbps_min = 20.0;
    double fibre_mbps_max = 100.0;
    double mean_uptime_hours = 6.0;  // exponential
    std::uint8_t num_regions = 4;
  };

  explicit PeerAttributes(std::uint64_t seed) : PeerAttributes(seed, Mix{}) {}

  PeerAttributes(std::uint64_t seed, Mix mix) : seed_(seed), mix_(mix) {
    OVERCOUNT_EXPECTS(mix.dialup_fraction >= 0.0);
    OVERCOUNT_EXPECTS(mix.dsl_fraction >= 0.0);
    OVERCOUNT_EXPECTS(mix.dialup_fraction + mix.dsl_fraction <= 1.0);
    OVERCOUNT_EXPECTS(mix.num_regions >= 1);
  }

  /// The profile of peer v; identical across calls.
  PeerProfile of(NodeId v) const {
    std::uint64_t state = seed_ ^ (0x9e3779b97f4a7c15ULL * (v + 1));
    Rng rng(splitmix64(state));
    PeerProfile p;
    const double roll = rng.uniform();
    if (roll < mix_.dialup_fraction) {
      p.link = LinkClass::kDialup;
      p.upload_mbps = mix_.dialup_mbps;
    } else if (roll < mix_.dialup_fraction + mix_.dsl_fraction) {
      p.link = LinkClass::kDsl;
      p.upload_mbps = mix_.dsl_mbps_min +
                      (mix_.dsl_mbps_max - mix_.dsl_mbps_min) * rng.uniform();
    } else {
      p.link = LinkClass::kFibre;
      p.upload_mbps =
          mix_.fibre_mbps_min +
          (mix_.fibre_mbps_max - mix_.fibre_mbps_min) * rng.uniform();
    }
    p.uptime_hours = rng.exponential(1.0 / mix_.mean_uptime_hours);
    p.region = static_cast<std::uint8_t>(
        rng.uniform_below(mix_.num_regions));
    return p;
  }

  const Mix& mix() const noexcept { return mix_; }

 private:
  std::uint64_t seed_;
  Mix mix_;
};

}  // namespace overcount

// Precomputed walk segments for stitched cross-shard walks (Das Sarma et
// al., Distributed Random Walks: complete a length-L walk in ~sqrt(L)
// handoffs by splicing short precomputed sub-walks instead of stepping one
// edge per message).
//
// Every handoff delivers a walk to a node that has at least one neighbour
// in the sending shard — i.e. a BOUNDARY node of the receiving shard. The
// store therefore pools segments exactly at boundary nodes: on arrival the
// engine consumes a whole lambda-step segment in one go, so a walk pays at
// most one handoff per lambda steps instead of one per crossing edge.
//
// Randomness discipline: segment draws come from per-NODE streams — the
// v-th Rng::split of a master seeded with the stitch seed, the same
// derive_streams discipline as the kernel. The stream is a pure function of
// (seed, v), independent of the shard count, and every take() consumes
// fresh randomness (pools refill on demand from the node's persisted
// stream), so stitched walks follow the exact simple-random-walk law —
// uniform neighbour choice and Exp(d) sojourns — just not the token path's
// draw ORDER. Stitching is consequently an opt-in fast path verified
// statistically (tests/shard/shard_statistical_test.cpp), while the token
// path stays the bit-identical reference.
//
// Staleness: a store snapshots a ShardedGraph, which snapshots a
// DynamicGraph version. Segments walk the snapshot topology; the engine
// refuses to stitch when its graph's source_version() differs from the
// store's (see ShardedWalkEngine::enable_stitching).
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "shard/shard_graph.hpp"
#include "util/rng.hpp"

namespace overcount {

/// A precomputed sub-walk: lambda steps starting at nodes[0] (so
/// nodes.size() == lambda + 1). sojourns[i] is the Exp(degree(nodes[i]))
/// sojourn drawn at nodes[i]; tours ignore sojourns, CTRW consumes them.
struct WalkSegment {
  std::vector<NodeId> nodes;
  std::vector<double> sojourns;
};

/// Stitching parameters. `segment_length` is lambda — the handoff
/// amortisation factor; `segments_per_node` only sizes the precomputed
/// pool (exhausted pools refill on demand, so it is a warm-up knob, not a
/// budget).
struct StitchConfig {
  std::uint64_t seed = 0x5e95e9;
  std::size_t segment_length = 16;
  std::size_t segments_per_node = 4;
};

/// Per-boundary-node pools of precomputed segments with on-demand refill.
///
/// Concurrency: the pool map is built entirely in the constructor and never
/// rehashed afterwards. A pool for node v is only ever touched by the worker
/// of v's owning shard (the engine stitches only at owned nodes), so pool
/// mutation needs no locks; the generated-segments counter is the one
/// cross-worker cell and is atomic.
class SegmentStore {
 public:
  SegmentStore(const ShardedGraph& g, StitchConfig cfg);

  /// Consumes one fresh segment starting at `v`, or nullptr when v has no
  /// pool (not a boundary node). The returned segment is valid until the
  /// next take() for the same node. Must only be called by the worker
  /// owning v's shard.
  const WalkSegment* take(NodeId v);

  const StitchConfig& config() const noexcept { return cfg_; }
  std::size_t pooled_nodes() const noexcept { return pools_.size(); }
  /// ShardedGraph::source_version() of the snapshot the segments walk.
  std::uint64_t source_version() const noexcept {
    return graph_->source_version();
  }
  /// Total segments drawn (precomputed + on-demand refills).
  std::uint64_t segments_generated() const noexcept {
    return generated_.load(std::memory_order_relaxed);
  }

 private:
  struct Pool {
    std::vector<WalkSegment> ready;  ///< precomputed, consumed front-to-back
    std::size_t next = 0;
    Rng stream{0};        ///< the node's persisted stream, for refills
    WalkSegment scratch;  ///< refill target once `ready` is exhausted
  };

  void fill(WalkSegment& seg, NodeId v, Rng& stream) const;

  const ShardedGraph* graph_;
  StitchConfig cfg_;
  std::unordered_map<NodeId, Pool> pools_;
  mutable std::atomic<std::uint64_t> generated_{0};
};

}  // namespace overcount

// Sharded CSR view of an overlay graph: each shard owns a CSR slice of its
// nodes' rows plus a ghost table resolving boundary out-edges to their
// owner's (shard, local-id) coordinates.
//
// The adjacency rows are copied VERBATIM from the source topology (same
// neighbour order), which is what makes the sharded engine bit-identical to
// the flat kernel: a walk that draws neighbour index k at node v lands on
// exactly the node the flat walk lands on, whether or not that node is in
// the same shard. Sharding here reorders WHERE a step executes, never WHICH
// step it is.
//
// ShardedGraph is a snapshot: built once from a Graph or a DynamicGraph and
// immutable afterwards. For DynamicGraph sources the snapshot records
// `source_version()` so downstream consumers (segment stores, engines) can
// detect staleness against the live graph's DynamicGraph::version().
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "graph/graph.hpp"
#include "shard/partition.hpp"

namespace overcount {

/// A resolved cross-shard reference: where a non-owned node lives.
struct GhostRef {
  std::uint32_t shard = 0;
  std::uint32_t local = 0;
};

class ShardedGraph {
 public:
  /// One shard's slice of the graph.
  struct Shard {
    std::vector<NodeId> nodes;        ///< owned globals, local-id order
    std::vector<std::size_t> offsets; ///< local CSR offsets, nodes.size()+1
    std::vector<NodeId> adjacency;    ///< global targets, source row order
    std::vector<NodeId> boundary;     ///< owned nodes with >=1 ghost edge
    /// Boundary out-edges: every non-owned target appearing in `adjacency`,
    /// resolved to its owner's coordinates.
    std::unordered_map<NodeId, GhostRef> ghosts;

    std::size_t degree(std::uint32_t local) const {
      OVERCOUNT_EXPECTS(local + 1 < offsets.size());
      return offsets[local + 1] - offsets[local];
    }
    std::span<const NodeId> neighbors(std::uint32_t local) const {
      OVERCOUNT_EXPECTS(local + 1 < offsets.size());
      return {adjacency.data() + offsets[local],
              offsets[local + 1] - offsets[local]};
    }
  };

  ShardedGraph(const Graph& g, ShardPlan plan);
  /// DynamicGraph snapshot: copies the CURRENT adjacency (alive rows; dead
  /// slots become empty rows) and records the source's version() so later
  /// consumers can detect churn-induced staleness.
  ShardedGraph(const DynamicGraph& g, ShardPlan plan);

  const ShardPlan& plan() const noexcept { return plan_; }
  std::uint32_t num_shards() const noexcept { return plan_.num_shards(); }
  std::size_t num_nodes() const noexcept { return plan_.num_nodes(); }

  /// DynamicGraph::version() at snapshot time; 0 for static Graph sources.
  std::uint64_t source_version() const noexcept { return source_version_; }

  const Shard& shard(std::uint32_t s) const {
    OVERCOUNT_EXPECTS(s < shards_.size());
    return shards_[s];
  }

  std::uint32_t owner(NodeId v) const { return plan_.shard_of(v); }

  /// Resolves `target` as seen from `from_shard`: through the shard's ghost
  /// table when the edge-local entry exists (every adjacency target has
  /// one), else through the plan (stitched jumps can land on nodes no edge
  /// of `from_shard` points at).
  GhostRef resolve(std::uint32_t from_shard, NodeId target) const {
    const auto& ghosts = shard(from_shard).ghosts;
    if (const auto it = ghosts.find(target); it != ghosts.end())
      return it->second;
    return {plan_.shard_of(target), plan_.local_id(target)};
  }

  // OverlayTopology interface over global ids, routed through the owning
  // shard's CSR slice. Row order is the source's row order, so walks on
  // the sharded view draw the same neighbours as walks on the source.
  std::size_t degree(NodeId v) const {
    return shards_[plan_.shard_of(v)].degree(plan_.local_id(v));
  }
  std::span<const NodeId> neighbors(NodeId v) const {
    return shards_[plan_.shard_of(v)].neighbors(plan_.local_id(v));
  }

  /// Total adjacency entries across all shards (== 2|E| of the source).
  std::size_t total_degree() const noexcept;

 private:
  template <typename G>
  void build(const G& g);

  ShardPlan plan_;
  std::vector<Shard> shards_;
  std::uint64_t source_version_ = 0;
};

}  // namespace overcount

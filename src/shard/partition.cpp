#include "shard/partition.hpp"

#include <numeric>

namespace overcount {

ShardPlan::ShardPlan(std::vector<std::uint32_t> owner,
                     std::uint32_t num_shards)
    : owner_(std::move(owner)) {
  OVERCOUNT_EXPECTS(num_shards >= 1);
  local_.resize(owner_.size());
  nodes_.resize(num_shards);
  // Ascending global-id scan assigns local ids in sorted order per shard.
  for (NodeId v = 0; v < owner_.size(); ++v) {
    const std::uint32_t s = owner_[v];
    OVERCOUNT_EXPECTS(s < num_shards);
    local_[v] = static_cast<std::uint32_t>(nodes_[s].size());
    nodes_[s].push_back(v);
  }
}

ShardPlan ShardPlan::contiguous(std::size_t num_nodes, std::uint32_t shards) {
  OVERCOUNT_EXPECTS(shards >= 1);
  std::vector<std::uint32_t> owner(num_nodes);
  const std::size_t base = num_nodes / shards;
  const std::size_t extra = num_nodes % shards;
  std::size_t v = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::size_t len = base + (s < extra ? 1 : 0);
    for (std::size_t i = 0; i < len; ++i) owner[v++] = s;
  }
  return ShardPlan(std::move(owner), shards);
}

ShardPlan ContiguousRangePartitioner::partition(
    std::size_t num_nodes, const std::function<std::size_t(NodeId)>&,
    std::uint32_t shards) const {
  return ShardPlan::contiguous(num_nodes, shards);
}

ShardPlan DegreeBalancedPartitioner::partition(
    std::size_t num_nodes, const std::function<std::size_t(NodeId)>& degree,
    std::uint32_t shards) const {
  OVERCOUNT_EXPECTS(shards >= 1);
  std::vector<std::uint32_t> owner(num_nodes, 0);
  std::size_t total = 0;
  for (NodeId v = 0; v < num_nodes; ++v) total += degree(v);
  // Greedy prefix cut: close the current shard once its degree share meets
  // the remaining-average target, always leaving at least one node per
  // remaining shard so every shard is non-empty when num_nodes >= shards.
  std::uint32_t s = 0;
  std::size_t carried = 0;
  std::size_t remaining_total = total;
  for (NodeId v = 0; v < num_nodes; ++v) {
    const std::size_t d = degree(v);
    owner[v] = s;
    carried += d;
    remaining_total -= d;
    const std::uint32_t shards_left = shards - s - 1;
    const std::size_t nodes_left = num_nodes - v - 1;
    if (shards_left == 0) continue;
    const double target = static_cast<double>(carried + remaining_total) /
                          static_cast<double>(shards_left + 1);
    if (static_cast<double>(carried) >= target ||
        nodes_left <= shards_left) {
      ++s;
      carried = 0;
    }
  }
  return ShardPlan(std::move(owner), shards);
}

namespace {

ShardPlan plan_with(std::size_t num_nodes,
                    const std::function<std::size_t(NodeId)>& degree,
                    std::uint32_t shards, const Partitioner& policy) {
  return policy.partition(num_nodes, degree, shards);
}

}  // namespace

ShardPlan make_shard_plan(const Graph& g, std::uint32_t shards,
                          const Partitioner& policy) {
  return plan_with(
      g.num_nodes(), [&](NodeId v) { return g.degree(v); }, shards, policy);
}

ShardPlan make_shard_plan(const Graph& g, std::uint32_t shards) {
  return make_shard_plan(g, shards, ContiguousRangePartitioner{});
}

ShardPlan make_shard_plan(const DynamicGraph& g, std::uint32_t shards,
                          const Partitioner& policy) {
  return plan_with(
      g.num_slots(), [&](NodeId v) { return g.degree(v); }, shards, policy);
}

ShardPlan make_shard_plan(const DynamicGraph& g, std::uint32_t shards) {
  return make_shard_plan(g, shards, ContiguousRangePartitioner{});
}

}  // namespace overcount

#include "shard/segment.hpp"

#include "runtime/parallel_runner.hpp"

namespace overcount {

SegmentStore::SegmentStore(const ShardedGraph& g, StitchConfig cfg)
    : graph_(&g), cfg_(cfg) {
  OVERCOUNT_EXPECTS(cfg_.segment_length >= 1);
  // Per-node streams: the v-th split of the stitch master, a pure function
  // of (seed, v). Deriving over ALL nodes (not just boundary ones) keeps a
  // node's stream stable across shard counts and partition policies.
  auto streams = derive_streams(cfg_.seed, g.num_nodes());
  for (std::uint32_t s = 0; s < g.num_shards(); ++s) {
    for (const NodeId v : g.shard(s).boundary) {
      Pool& pool = pools_[v];
      pool.stream = streams[v];
      pool.ready.resize(cfg_.segments_per_node);
      for (auto& seg : pool.ready) fill(seg, v, pool.stream);
    }
  }
}

void SegmentStore::fill(WalkSegment& seg, NodeId v, Rng& stream) const {
  const std::size_t lambda = cfg_.segment_length;
  seg.nodes.resize(lambda + 1);
  seg.sojourns.resize(lambda);
  seg.nodes[0] = v;
  NodeId at = v;
  for (std::size_t i = 0; i < lambda; ++i) {
    const auto d = graph_->degree(at);
    OVERCOUNT_EXPECTS(d > 0);
    seg.sojourns[i] = stream.exponential(static_cast<double>(d));
    const auto nbrs = graph_->neighbors(at);
    at = nbrs[stream.uniform_below(nbrs.size())];
    seg.nodes[i + 1] = at;
  }
  generated_.fetch_add(1, std::memory_order_relaxed);
}

const WalkSegment* SegmentStore::take(NodeId v) {
  const auto it = pools_.find(v);
  if (it == pools_.end()) return nullptr;
  Pool& pool = it->second;
  if (pool.next < pool.ready.size()) return &pool.ready[pool.next++];
  // Pool exhausted: synthesize a fresh segment from the node's persisted
  // stream. Every take() returns previously unconsumed randomness, so
  // segment reuse can never correlate walks.
  fill(pool.scratch, v, pool.stream);
  return &pool.scratch;
}

}  // namespace overcount

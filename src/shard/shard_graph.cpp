#include "shard/shard_graph.hpp"

namespace overcount {

template <typename G>
void ShardedGraph::build(const G& g) {
  shards_.resize(plan_.num_shards());
  for (std::uint32_t s = 0; s < plan_.num_shards(); ++s) {
    Shard& shard = shards_[s];
    const auto owned = plan_.nodes_of(s);
    shard.nodes.assign(owned.begin(), owned.end());
    shard.offsets.reserve(owned.size() + 1);
    shard.offsets.push_back(0);
    for (const NodeId v : owned) {
      const auto row = g.neighbors(v);
      // Verbatim row copy: same targets, same order, as the source. The
      // engine's bit-identity to the flat kernel rests on this line.
      shard.adjacency.insert(shard.adjacency.end(), row.begin(), row.end());
      shard.offsets.push_back(shard.adjacency.size());
      bool crosses = false;
      for (const NodeId t : row) {
        if (plan_.shard_of(t) == s) continue;
        crosses = true;
        shard.ghosts.emplace(
            t, GhostRef{plan_.shard_of(t), plan_.local_id(t)});
      }
      if (crosses) shard.boundary.push_back(v);
    }
  }
}

ShardedGraph::ShardedGraph(const Graph& g, ShardPlan plan)
    : plan_(std::move(plan)) {
  OVERCOUNT_EXPECTS(plan_.num_nodes() == g.num_nodes());
  build(g);
}

ShardedGraph::ShardedGraph(const DynamicGraph& g, ShardPlan plan)
    : plan_(std::move(plan)), source_version_(g.version()) {
  OVERCOUNT_EXPECTS(plan_.num_nodes() == g.num_slots());
  build(g);
}

std::size_t ShardedGraph::total_degree() const noexcept {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s.adjacency.size();
  return total;
}

}  // namespace overcount

// Graph partitioning for the sharded walk engine: which shard owns which
// node, and the (shard, local-id) coordinate system walk tokens travel in.
//
// A ShardPlan is an owner assignment node -> shard plus the induced local-id
// numbering (ascending global id within each shard). Partitioners are
// pluggable: the contiguous node-range partitioner is the first (and
// cheapest) policy, a degree-balanced variant shows the interface carries
// real alternatives, and a future METIS-style min-cut policy slots in
// without touching the engine. Das Sarma et al. (PAPERS.md) only require
// that every node has exactly one owner; the quality of the cut shows up as
// the handoff rate, not as correctness.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "graph/graph.hpp"

namespace overcount {

/// Immutable node -> shard assignment with per-shard local-id numbering.
/// Local ids are assigned in ascending global-id order within each shard,
/// so (shard, local) <-> global is a bijection over the whole node set.
class ShardPlan {
 public:
  ShardPlan() = default;

  /// From an explicit owner assignment: owner[v] is the shard of node v and
  /// every value must be < num_shards. Shards may be empty.
  ShardPlan(std::vector<std::uint32_t> owner, std::uint32_t num_shards);

  /// Contiguous node-range plan over `num_nodes` nodes split into `shards`
  /// near-equal ranges (the first num_nodes % shards ranges are one longer).
  static ShardPlan contiguous(std::size_t num_nodes, std::uint32_t shards);

  std::uint32_t num_shards() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  std::size_t num_nodes() const noexcept { return owner_.size(); }

  /// Shard owning global node v.
  std::uint32_t shard_of(NodeId v) const {
    OVERCOUNT_EXPECTS(v < owner_.size());
    return owner_[v];
  }

  /// v's index inside its owning shard (dense, 0-based).
  std::uint32_t local_id(NodeId v) const {
    OVERCOUNT_EXPECTS(v < local_.size());
    return local_[v];
  }

  /// Inverse of (shard_of, local_id).
  NodeId global_id(std::uint32_t shard, std::uint32_t local) const {
    OVERCOUNT_EXPECTS(shard < nodes_.size());
    OVERCOUNT_EXPECTS(local < nodes_[shard].size());
    return nodes_[shard][local];
  }

  /// Global ids owned by `shard`, in local-id order (ascending).
  std::span<const NodeId> nodes_of(std::uint32_t shard) const {
    OVERCOUNT_EXPECTS(shard < nodes_.size());
    return nodes_[shard];
  }

 private:
  std::vector<std::uint32_t> owner_;       // node -> shard
  std::vector<std::uint32_t> local_;       // node -> local id
  std::vector<std::vector<NodeId>> nodes_; // shard -> owned globals, sorted
};

/// Pluggable partition policy. `degree(v)` exposes the topology's degree so
/// policies can balance load without depending on a concrete graph type
/// (Graph and DynamicGraph both route through it).
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual ShardPlan partition(
      std::size_t num_nodes,
      const std::function<std::size_t(NodeId)>& degree,
      std::uint32_t shards) const = 0;
};

/// Splits [0, n) into `shards` near-equal contiguous node ranges. Ignores
/// degrees entirely; the default policy.
class ContiguousRangePartitioner final : public Partitioner {
 public:
  ShardPlan partition(std::size_t num_nodes,
                      const std::function<std::size_t(NodeId)>& degree,
                      std::uint32_t shards) const override;
};

/// Contiguous ranges whose boundaries are chosen so each shard carries a
/// near-equal share of the total degree (greedy prefix cut). On skewed
/// degree sequences this evens out per-shard walk traffic, since a simple
/// random walk visits nodes proportionally to degree.
class DegreeBalancedPartitioner final : public Partitioner {
 public:
  ShardPlan partition(std::size_t num_nodes,
                      const std::function<std::size_t(NodeId)>& degree,
                      std::uint32_t shards) const override;
};

/// Plans `g` into `shards` shards under `policy` (default: contiguous
/// node ranges).
ShardPlan make_shard_plan(const Graph& g, std::uint32_t shards,
                          const Partitioner& policy);
ShardPlan make_shard_plan(const Graph& g, std::uint32_t shards);

/// DynamicGraph variant: plans over every slot ever allocated (dead slots
/// are owned too — they just never see a walk).
ShardPlan make_shard_plan(const DynamicGraph& g, std::uint32_t shards,
                          const Partitioner& policy);
ShardPlan make_shard_plan(const DynamicGraph& g, std::uint32_t shards);

}  // namespace overcount

// ShardedWalkEngine: the paper's estimators (Random Tour, CTRW sampling,
// Sample & Collide) executed by message passing between S graph shards
// instead of shared random access to one flat CSR.
//
// Execution model — BSP supersteps over the existing ParallelRunner:
// each round dispatches one task per shard; a shard's task drains its
// mailbox, advances every delivered walk through its own CSR slice until
// the walk retires or steps onto a non-owned node, and pushes the frozen
// walks (WalkToken bundles) to their owners' mailboxes. Tokens pushed in
// round r are processed in round r+1, so the loop is deadlock-free at any
// pool size (a round needs no shard to wait on another) and ParallelRunner's
// batch barrier gives the happens-before edge that makes per-walk state
// (probes, trial trackers, result slots) safely migrate between workers.
//
// Bit-identity contract (the repo's correctness pillar, PRs 1-5): the token
// path replays the scalar walk EXACTLY — every draw comes from the walk's
// own carried Rng in scalar order, adjacency rows are verbatim copies
// (shard_graph.hpp), accumulators add in scalar order, probe hooks fire in
// scalar per-walk order, and results land in task-index slots feeding the
// same finish_tour_batch / tree_sum / finalize_sc_trial reductions as
// core/parallel.hpp. Hence a sharded batch is bit-identical to the
// single-shard scalar/kernel batch for ANY (shard count, thread count,
// kernel width) — proven by tests/shard/shard_equivalence_test.cpp.
//
// Segment stitching (opt-in, enable_stitching): on arrival at a boundary
// node the engine splices a precomputed lambda-step segment
// (shard/segment.hpp) instead of stepping edge by edge, completing an
// L-step tour in ~L/lambda handoffs (Das Sarma et al.). Stitched walks
// consume the segment store's per-node streams, not the token's stream, so
// they are NOT bit-identical to the scalar path — they are deterministic
// for a fixed (plan, stitch seed) at any thread count, and preserve the
// walk law exactly (uniform neighbour choice, Exp(d) sojourns), which
// tests/shard/shard_statistical_test.cpp verifies with the chi-square/KS
// layer. A store is only accepted when its snapshot version matches the
// engine's graph (staleness rule w.r.t. DynamicGraph::version()).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/parallel.hpp"
#include "obs/cost/cost.hpp"
#include "obs/health/watchdog.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_runner.hpp"
#include "shard/segment.hpp"
#include "shard/shard_graph.hpp"
#include "shard/token.hpp"

namespace overcount {

/// Message-passing counters for the engine's most recent batch. Mirrors the
/// shard.* registry metrics so tests and benches can assert on a run
/// without wiring a MetricsRegistry.
struct ShardRunStats {
  std::uint64_t walks = 0;             ///< walks (tours/samples/trials) run
  std::uint64_t rounds = 0;            ///< BSP supersteps executed
  std::uint64_t handoffs = 0;          ///< mid-walk cross-shard migrations
  std::uint64_t reports = 0;           ///< S&C sample reports pushed home
  std::uint64_t stitches = 0;          ///< precomputed segments consumed
  std::uint64_t stitch_steps = 0;      ///< walk steps covered by segments
  std::uint64_t tokens_issued = 0;     ///< pushes (seeds+handoffs+reports)
  std::uint64_t tokens_consumed = 0;   ///< tokens drained and processed
  std::uint64_t total_steps = 0;       ///< walk steps / hops in the batch
  std::uint64_t max_mailbox_depth = 0; ///< largest single drain
};

class ShardedWalkEngine {
 public:
  /// The engine walks `g` on `runner`; `metrics`, when given, receives the
  /// shard.* counter/gauge/histogram stream.
  ShardedWalkEngine(const ShardedGraph& g, ParallelRunner& runner,
                    MetricsRegistry* metrics = nullptr)
      : graph_(&g),
        runner_(&runner),
        epoch_(std::chrono::steady_clock::now()) {
    if (metrics != nullptr) {
      steps_m_ = &metrics->counter("walk.steps");
      handoffs_m_ = &metrics->counter("shard.handoffs");
      stitches_m_ = &metrics->counter("shard.stitches");
      stitch_steps_m_ = &metrics->counter("shard.stitch_steps");
      rounds_m_ = &metrics->counter("shard.rounds");
      issued_m_ = &metrics->counter("shard.tokens_issued");
      consumed_m_ = &metrics->counter("shard.tokens_consumed");
      in_flight_m_ = &metrics->gauge("shard.tokens_in_flight");
      depth_m_ = &metrics->histogram("shard.mailbox_depth");
      latency_m_ = &metrics->histogram("shard.handoff_latency_us");
    }
    // Fault-injection hook for the watchdog/flight-recorder drills (CI
    // health-smoke, EXPERIMENTS walkthrough): sleep this long per superstep
    // so a stall detector has something real to catch. Never touches the
    // walks themselves — estimates stay bit-identical under injection.
    if (const char* delay = std::getenv("OVERCOUNT_INJECT_SUPERSTEP_DELAY_US");
        delay != nullptr)
      inject_delay_us_ = std::strtoull(delay, nullptr, 10);
  }

  ShardedWalkEngine(const ShardedWalkEngine&) = delete;
  ShardedWalkEngine& operator=(const ShardedWalkEngine&) = delete;

  const ShardedGraph& graph() const noexcept { return *graph_; }

  /// Turns on the stitched fast path. The store must have been built from
  /// a snapshot of the SAME topology version as this engine's graph —
  /// stitching stale segments over a churned DynamicGraph would silently
  /// walk edges that no longer exist.
  void enable_stitching(SegmentStore& store) {
    OVERCOUNT_EXPECTS(store.source_version() == graph_->source_version());
    store_ = &store;
  }
  void disable_stitching() noexcept { store_ = nullptr; }
  bool stitching_enabled() const noexcept { return store_ != nullptr; }

  /// Wires a liveness beacon for the BSP loop: armed while a batch runs,
  /// one beat per superstep. Watch it with Watchdog::watch_heartbeat to
  /// turn a stalled superstep into a HealthEvent (obs/health/watchdog.hpp).
  void set_heartbeat(Heartbeat* hb) noexcept { heartbeat_ = hb; }

  /// Counters of the most recent run_* batch.
  const ShardRunStats& last_run_stats() const noexcept { return stats_; }

  /// m Random Tours from `origin` estimating sum_j f(j); bit-identical to
  /// core/parallel.hpp's run_tours of the same (seed, m) when stitching is
  /// off.
  template <typename F>
  TourBatch run_tours(NodeId origin, std::size_t m, F f, std::uint64_t seed,
                      std::uint64_t max_steps = ~0ULL) {
    std::span<NullProbe> no_probes;
    return run_tours(origin, m, f, seed, max_steps, no_probes);
  }

  /// Probed variant: `probes`, when non-empty, must hold one probe per walk
  /// (probes[i] observes walk i, with scalar per-walk event order).
  template <typename F, WalkProbe P>
  TourBatch run_tours(NodeId origin, std::size_t m, F f, std::uint64_t seed,
                      std::uint64_t max_steps, std::span<P> probes) {
    OVERCOUNT_EXPECTS(graph_->degree(origin) > 0);
    if constexpr (probe_enabled_v<P>)
      OVERCOUNT_EXPECTS(probes.size() == m);
    // Attribution boundary: the whole batch — every step, handoff and
    // token — is charged to the caller's cost context (obs/cost/), and the
    // enclosing cost.ctx span is what the flamegraph folder keys on to
    // splice (tenant, query) frames above the batch.
    const std::uint32_t cost_ctx = cost_current();
    TraceSpan cost_span("cost", "cost.ctx", "cost_ctx",
                        static_cast<std::uint64_t>(cost_ctx));
    TraceSpan batch_span("shard", "shard.run_tours", "m",
                         static_cast<std::uint64_t>(m));
    const BatchTimer timer;
    TourBatch batch;
    batch.tours.resize(m);
    auto streams = derive_streams(seed, m);
    BatchContext ctx(graph_->num_shards());
    ctx.cost_ctx = cost_ctx;

    const auto d0 = graph_->degree(origin);
    const double dd0 = static_cast<double>(d0);
    const auto origin_row = graph_->neighbors(origin);
    // Seed serially on the driver thread: replay the scalar prologue
    // (walk_begin, counter init, first draw, loop-condition check) so every
    // token enters the round loop at the scalar loop top.
    const std::uint64_t flow_base = reserve_flows(m);
    std::vector<std::vector<WalkToken>> seeds(graph_->num_shards());
    for (std::size_t i = 0; i < m; ++i) {
      if constexpr (probe_enabled_v<P>) probes[i].walk_begin(origin);
      Rng rng = streams[i];
      const double acc = f(origin) / dd0;
      const NodeId at = origin_row[rng.uniform_below(d0)];
      constexpr std::uint64_t kFirstStep = 1;
      if (at == origin || kFirstStep >= max_steps) {
        const bool completed = at == origin;
        if constexpr (probe_enabled_v<P>)
          probes[i].tour_end(kFirstStep, completed);
        batch.tours[i] = {dd0 * acc, kFirstStep, completed};
        ++ctx.retired;
      } else {
        if constexpr (probe_enabled_v<P>) probes[i].on_visit(at);
        seeds[graph_->owner(at)].push_back(
            seed_token({static_cast<std::uint32_t>(i), WalkKind::kTour, at,
                        kFirstStep, acc, rng},
                       flow_base, i, cost_ctx));
      }
    }
    push_seeds(ctx, seeds);

    run_rounds(ctx, m, [&](std::uint32_t s, WalkToken& tk, Cell& cell,
                           std::vector<std::vector<WalkToken>>& outs) {
      // Token invariant: tk.at passed the loop condition and was visited,
      // but not yet accumulated.
      NodeId at = tk.at;
      double acc = tk.acc;
      std::uint64_t steps = tk.steps;
      Rng rng = tk.rng;
      for (;;) {
        if (store_ != nullptr) {
          if (const WalkSegment* seg = store_->take(at)) {
            ++cell.stitches;
            const std::size_t len = seg->nodes.size() - 1;
            trace_flow("shard", "walk.stitch", 't', tk.flow, "len",
                       static_cast<std::uint64_t>(len));
            for (std::size_t k = 0; k < len; ++k) {
              acc += f(seg->nodes[k]) /
                     static_cast<double>(graph_->degree(seg->nodes[k]));
              at = seg->nodes[k + 1];
              ++steps;
              ++cell.stitch_steps;
              if (at == origin || steps >= max_steps) {
                retire_tour(batch, probes, tk.walk, dd0 * acc, steps,
                            at == origin, cell, tk.flow);
                return;
              }
              if constexpr (probe_enabled_v<P>) probes[tk.walk].on_visit(at);
            }
            if (graph_->owner(at) != s) {
              ++cell.handoffs;
              outs[graph_->owner(at)].push_back(
                  frozen({tk.walk, WalkKind::kTour, at, steps, acc, rng},
                         tk.flow, tk.ctx));
              return;
            }
            continue;
          }
        }
        acc += f(at) / static_cast<double>(graph_->degree(at));
        const auto row = graph_->neighbors(at);
        at = row[rng.uniform_below(row.size())];
        ++steps;
        if (at == origin || steps >= max_steps) {
          retire_tour(batch, probes, tk.walk, dd0 * acc, steps, at == origin,
                      cell, tk.flow);
          return;
        }
        if constexpr (probe_enabled_v<P>) probes[tk.walk].on_visit(at);
        if (graph_->owner(at) != s) {
          ++cell.handoffs;
          outs[graph_->owner(at)].push_back(
              frozen({tk.walk, WalkKind::kTour, at, steps, acc, rng},
                     tk.flow, tk.ctx));
          return;
        }
      }
    });

    detail::finish_tour_batch(batch);
    finalize(ctx, m, batch.total_steps, batch.stats, timer);
    return batch;
  }

  /// m CTRW samples from `origin`; bit-identical to run_samples of
  /// core/parallel.hpp when stitching is off.
  SampleBatch run_samples(NodeId origin, std::size_t m, double timer_horizon,
                          std::uint64_t seed) {
    std::span<NullProbe> no_probes;
    return run_samples(origin, m, timer_horizon, seed, no_probes);
  }

  template <WalkProbe P>
  SampleBatch run_samples(NodeId origin, std::size_t m, double timer_horizon,
                          std::uint64_t seed, std::span<P> probes) {
    OVERCOUNT_EXPECTS(graph_->degree(origin) > 0);
    OVERCOUNT_EXPECTS(timer_horizon > 0.0);
    if constexpr (probe_enabled_v<P>)
      OVERCOUNT_EXPECTS(probes.size() == m);
    const std::uint32_t cost_ctx = cost_current();
    TraceSpan cost_span("cost", "cost.ctx", "cost_ctx",
                        static_cast<std::uint64_t>(cost_ctx));
    TraceSpan batch_span("shard", "shard.run_samples", "m",
                         static_cast<std::uint64_t>(m));
    const BatchTimer timer;
    SampleBatch batch;
    batch.samples.resize(m);
    auto streams = derive_streams(seed, m);
    BatchContext ctx(graph_->num_shards());
    ctx.cost_ctx = cost_ctx;

    // A CTRW walk starts with the sojourn draw at the origin, so every walk
    // seeds as a token AT the origin (walk_begin emitted, no draw yet).
    const std::uint64_t flow_base = reserve_flows(m);
    std::vector<std::vector<WalkToken>> seeds(graph_->num_shards());
    const std::uint32_t home = graph_->owner(origin);
    for (std::size_t i = 0; i < m; ++i) {
      if constexpr (probe_enabled_v<P>) probes[i].walk_begin(origin);
      seeds[home].push_back(seed_token(
          {static_cast<std::uint32_t>(i), WalkKind::kSample, origin, 0,
           timer_horizon, streams[i]},
          flow_base, i, cost_ctx));
    }
    push_seeds(ctx, seeds);

    run_rounds(ctx, m, [&](std::uint32_t s, WalkToken& tk, Cell& cell,
                           std::vector<std::vector<WalkToken>>& outs) {
      // Token invariant: tk.at visited, its sojourn not yet drawn;
      // tk.acc = remaining timer, tk.steps = hops so far.
      const auto status =
          advance_ctrw(s, tk, cell, outs, WalkKind::kSample, probes);
      if (status.finished) {
        trace_flow("shard", "walk.flow", 'f', tk.flow);
        batch.samples[tk.walk] = {status.node, status.hops};
        ++cell.retired;
      }
    });

    for (const auto& r : batch.samples) batch.total_hops += r.hops;
    finalize(ctx, m, batch.total_hops, batch.stats, timer);
    return batch;
  }

  /// `trials` Sample & Collide measurements from `origin`, each stopping at
  /// `ell` collisions; bit-identical to run_sc_trials of core/parallel.hpp
  /// when stitching is off. Each trial's sequential CTRW walks complete via
  /// message passing: a finished walk reports its sample to the trial's
  /// home shard (the origin's owner), which feeds the collision tracker and
  /// launches the next walk on the SAME stream — preserving the scalar draw
  /// order exactly.
  ScBatch run_sc_trials(NodeId origin, std::size_t trials,
                        double timer_horizon, std::size_t ell,
                        std::uint64_t seed) {
    std::span<NullProbe> no_probes;
    return run_sc_trials(origin, trials, timer_horizon, ell, seed, no_probes);
  }

  template <WalkProbe P>
  ScBatch run_sc_trials(NodeId origin, std::size_t trials,
                        double timer_horizon, std::size_t ell,
                        std::uint64_t seed, std::span<P> probes) {
    OVERCOUNT_EXPECTS(graph_->degree(origin) > 0);
    OVERCOUNT_EXPECTS(timer_horizon > 0.0);
    OVERCOUNT_EXPECTS(ell >= 1);
    if constexpr (probe_enabled_v<P>)
      OVERCOUNT_EXPECTS(probes.size() == trials);
    const std::uint32_t cost_ctx = cost_current();
    TraceSpan cost_span("cost", "cost.ctx", "cost_ctx",
                        static_cast<std::uint64_t>(cost_ctx));
    TraceSpan batch_span("shard", "shard.run_sc_trials", "trials",
                         static_cast<std::uint64_t>(trials));
    const BatchTimer timer;
    ScBatch batch;
    batch.trials.resize(trials);
    auto streams = derive_streams(seed, trials);
    BatchContext ctx(graph_->num_shards());
    ctx.cost_ctx = cost_ctx;

    struct TrialState {
      CollisionTracker tracker;
      std::uint64_t hops = 0;
      std::uint64_t prev_collision_at = 0;
    };
    // Only the home shard's worker touches trial state (all trials share
    // the origin, hence the home), so no synchronization is needed beyond
    // the round barrier.
    std::vector<TrialState> trial_state(trials);
    const std::uint32_t home = graph_->owner(origin);

    const std::uint64_t flow_base = reserve_flows(trials);
    std::vector<std::vector<WalkToken>> seeds(graph_->num_shards());
    for (std::size_t t = 0; t < trials; ++t) {
      if constexpr (probe_enabled_v<P>) probes[t].walk_begin(origin);
      seeds[home].push_back(seed_token(
          {static_cast<std::uint32_t>(t), WalkKind::kScWalk, origin, 0,
           timer_horizon, streams[t]},
          flow_base, t, cost_ctx));
    }
    push_seeds(ctx, seeds);

    run_rounds(ctx, trials, [&](std::uint32_t s, WalkToken& token, Cell& cell,
                                std::vector<std::vector<WalkToken>>& outs) {
      WalkToken tk = token;
      for (;;) {
        if (tk.kind == WalkKind::kScReport) {
          // At home: fold the sampled node into the trial, then either
          // finalize or launch the next walk on the reported stream.
          TrialState& st = trial_state[tk.walk];
          st.hops += tk.steps;
          const bool collided = st.tracker.feed(tk.at);
          if (collided) {
            if constexpr (probe_enabled_v<P>)
              probes[tk.walk].on_collision(st.tracker.samples() -
                                           st.prev_collision_at);
            st.prev_collision_at = st.tracker.samples();
          }
          if (st.tracker.collisions() >= ell) {
            trace_flow("shard", "walk.flow", 'f', tk.flow);
            batch.trials[tk.walk] = detail::finalize_sc_trial(
                ScTrialRaw{st.tracker.samples(), st.hops}, ell);
            ++cell.retired;
            return;
          }
          if constexpr (probe_enabled_v<P>) probes[tk.walk].walk_begin(origin);
          const std::uint64_t flow = tk.flow;  // trial-long causal chain
          const std::uint32_t cctx = tk.ctx;   // trial-long accounting
          tk = {tk.walk, WalkKind::kScWalk, origin, 0, timer_horizon, tk.rng};
          tk.flow = flow;
          tk.ctx = cctx;
          continue;  // fall through into the walk phase
        }
        const auto status =
            advance_ctrw(s, tk, cell, outs, WalkKind::kScWalk, probes);
        if (!status.finished) return;  // walk handed off mid-flight
        // Walk died at status.node: report home. When this worker IS home,
        // process the report inline — same round, same deterministic order.
        WalkToken report{tk.walk, WalkKind::kScReport, status.node,
                         status.hops, 0.0, status.rng};
        report.flow = tk.flow;
        report.ctx = tk.ctx;
        if (s == home) {
          tk = report;
          continue;
        }
        ++cell.reports;
        outs[home].push_back(frozen(report, tk.flow, tk.ctx));
        return;
      }
    });

    std::vector<double> simple, ml;
    simple.reserve(trials);
    ml.reserve(trials);
    for (const auto& t : batch.trials) {
      batch.total_hops += t.hops;
      simple.push_back(t.simple);
      ml.push_back(t.ml);
    }
    batch.sum_simple = tree_sum(simple);
    batch.sum_ml = tree_sum(ml);
    finalize(ctx, trials, batch.total_hops, batch.stats, timer);
    return batch;
  }

 private:
  /// Per-shard per-round counters; slot s is written only by shard s's
  /// worker during a round and folded (then reset) by the driver thread
  /// between rounds. Cache-line-sized to keep neighbouring workers off each
  /// other's lines.
  struct alignas(64) Cell {
    std::uint64_t processed = 0;
    std::uint64_t retired = 0;
    std::uint64_t handoffs = 0;
    std::uint64_t reports = 0;
    std::uint64_t issued = 0;
    std::uint64_t stitches = 0;
    std::uint64_t stitch_steps = 0;
    std::size_t depth = 0;
  };

  struct BatchContext {
    explicit BatchContext(std::uint32_t shards)
        : mail(shards), cells(shards) {}
    std::vector<ShardMailbox> mail;
    std::vector<Cell> cells;
    ShardRunStats stats;
    std::size_t retired = 0;  ///< walks finished (incl. during seeding)
    std::uint32_t cost_ctx = 0;  ///< cost context the batch is charged to
  };

  /// Wall+CPU stopwatch matching ParallelRunner::dispatch's accounting.
  class BatchTimer {
   public:
    BatchTimer()
        : wall_(std::chrono::steady_clock::now()), cpu_(std::clock()) {}
    void fill(BatchStats& stats) const {
      stats.wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - wall_)
                               .count();
      stats.cpu_seconds =
          static_cast<double>(std::clock() - cpu_) / CLOCKS_PER_SEC;
    }

   private:
    std::chrono::steady_clock::time_point wall_;
    std::clock_t cpu_;
  };

  /// Outcome of advancing one CTRW token within a shard.
  struct CtrwStatus {
    bool finished = false;  ///< timer died (else: handed off via outs)
    NodeId node = 0;        ///< node where the timer died
    std::uint64_t hops = 0; ///< hops of THIS walk at death
    Rng rng{0};             ///< stream state at death (S&C continues on it)
  };

  /// Advances a CTRW token (kSample or kScWalk) until the timer dies or
  /// the walk leaves shard `s`. Mirrors walk/walkers.hpp's ctrw_sample
  /// exactly — same draw order, same probe hook order — with the stitched
  /// fast path consuming precomputed sojourns+steps when enabled.
  template <WalkProbe P>
  CtrwStatus advance_ctrw(std::uint32_t s, const WalkToken& tk, Cell& cell,
                          std::vector<std::vector<WalkToken>>& outs,
                          WalkKind kind, std::span<P> probes) {
    NodeId at = tk.at;
    double remaining = tk.acc;
    std::uint64_t hops = tk.steps;
    Rng rng = tk.rng;
    for (;;) {
      if (store_ != nullptr) {
        if (const WalkSegment* seg = store_->take(at)) {
          ++cell.stitches;
          const std::size_t len = seg->nodes.size() - 1;
          trace_flow("shard", "walk.stitch", 't', tk.flow, "len",
                     static_cast<std::uint64_t>(len));
          for (std::size_t k = 0; k < len; ++k) {
            const double sojourn = seg->sojourns[k];
            if constexpr (probe_enabled_v<P>)
              probes[tk.walk].on_sojourn(std::min(sojourn, remaining));
            remaining -= sojourn;
            if (remaining <= 0.0) {
              if constexpr (probe_enabled_v<P>) probes[tk.walk].sample_end(hops);
              return {true, seg->nodes[k], hops, rng};
            }
            at = seg->nodes[k + 1];
            ++hops;
            ++cell.stitch_steps;
            if constexpr (probe_enabled_v<P>) probes[tk.walk].on_visit(at);
          }
          if (graph_->owner(at) != s) {
            ++cell.handoffs;
            outs[graph_->owner(at)].push_back(
                frozen({tk.walk, kind, at, hops, remaining, rng}, tk.flow,
                       tk.ctx));
            return {};
          }
          continue;
        }
      }
      const auto degree = graph_->degree(at);
      OVERCOUNT_HOT_EXPECTS(degree > 0);
      const double sojourn = rng.exponential(static_cast<double>(degree));
      if constexpr (probe_enabled_v<P>)
        probes[tk.walk].on_sojourn(std::min(sojourn, remaining));
      remaining -= sojourn;
      if (remaining <= 0.0) {
        if constexpr (probe_enabled_v<P>) probes[tk.walk].sample_end(hops);
        return {true, at, hops, rng};
      }
      const auto row = graph_->neighbors(at);
      at = row[rng.uniform_below(row.size())];
      ++hops;
      if constexpr (probe_enabled_v<P>) probes[tk.walk].on_visit(at);
      if (graph_->owner(at) != s) {
        ++cell.handoffs;
        outs[graph_->owner(at)].push_back(
            frozen({tk.walk, kind, at, hops, remaining, rng}, tk.flow,
                   tk.ctx));
        return {};
      }
    }
  }

  template <WalkProbe P>
  void retire_tour(TourBatch& batch, std::span<P> probes, std::uint32_t walk,
                   double value, std::uint64_t steps, bool completed,
                   Cell& cell, std::uint64_t flow) {
    trace_flow("shard", "walk.flow", 'f', flow);
    if constexpr (probe_enabled_v<P>) probes[walk].tour_end(steps, completed);
    batch.tours[walk] = {value, steps, completed};
    ++cell.retired;
  }

  /// Microseconds since engine construction — the clock both ends of a
  /// handoff share for shard.handoff_latency_us (freeze here, thaw in
  /// run_rounds). Distinct from the trace clock on purpose: latency metrics
  /// must not require a TraceRecorder.
  std::uint64_t engine_now_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Reserves a flow-id block for a batch of m walks when a recorder is
  /// listening; 0 (= untraced) otherwise, which folds every flow site out.
  static std::uint64_t reserve_flows(std::size_t m) noexcept {
    return trace_active()
               ? TraceRecorder::reserve_flow_ids(static_cast<std::uint64_t>(m))
               : 0;
  }

  /// Stamps migration metadata on a freshly seeded token and opens its
  /// causal chain ('s' flow event on the driver, inside the batch span).
  /// The cost context rides the token so the thawing shard charges every
  /// delivery to the (tenant, query) that seeded the walk.
  WalkToken seed_token(WalkToken t, std::uint64_t flow_base, std::size_t i,
                       std::uint32_t cost_ctx) const noexcept {
    if (flow_base != 0) {
      t.flow = flow_base + i;
      trace_flow("shard", "walk.flow", 's', t.flow, "walk",
                 static_cast<std::uint64_t>(i));
    }
    if (latency_m_ != nullptr) t.frozen_us = engine_now_us();
    t.ctx = cost_ctx;
    return t;
  }

  /// Stamps migration metadata on a mid-walk handoff token: the walk's flow
  /// id and cost context ride along, and the freeze time feeds the latency
  /// histogram at the destination. Touches no walk state and no Rng.
  WalkToken frozen(WalkToken t, std::uint64_t flow,
                   std::uint32_t cost_ctx) const noexcept {
    t.flow = flow;
    if (latency_m_ != nullptr) t.frozen_us = engine_now_us();
    t.ctx = cost_ctx;
    return t;
  }

  void push_seeds(BatchContext& ctx,
                  std::vector<std::vector<WalkToken>>& seeds) {
    // The driver's seed bundles carry a source id past every shard; they
    // are the only bundles of round 0, so the tag only keeps drain order
    // well-defined.
    const std::uint32_t driver = graph_->num_shards();
    for (std::uint32_t d = 0; d < graph_->num_shards(); ++d) {
      ctx.stats.tokens_issued += seeds[d].size();
      ctx.mail[d].push_bundle(driver, std::move(seeds[d]));
    }
  }

  /// Runs BSP supersteps until every walk retired. `process(s, token, cell,
  /// outs)` advances one token inside shard s, appending any outgoing
  /// tokens to outs[destination].
  template <typename Process>
  void run_rounds(BatchContext& ctx, std::size_t total, Process&& process) {
    const std::uint32_t shards = graph_->num_shards();
    std::vector<std::vector<WalkToken>> inboxes(shards);
    // Liveness beacon: armed for the batch, one beat per superstep. The
    // guard disarms even when fold_round throws on a token leak — a stall
    // alarm must not outlive the batch that caused it.
    struct HeartbeatGuard {
      Heartbeat* hb;
      explicit HeartbeatGuard(Heartbeat* h) : hb(h) {
        if (hb != nullptr) hb->arm();
      }
      ~HeartbeatGuard() {
        if (hb != nullptr) hb->disarm();
      }
    } hb_guard(heartbeat_);
    while (ctx.retired < total) {
      ctx.stats.rounds += 1;
      if (heartbeat_ != nullptr) heartbeat_->beat();
      if (inject_delay_us_ > 0)
        std::this_thread::sleep_for(
            std::chrono::microseconds(inject_delay_us_));
      TraceSpan round_span("shard", "shard.round", "in_flight",
                           static_cast<std::uint64_t>(total - ctx.retired));
      // Strict BSP: the DRIVER drains every mailbox between the round
      // barriers, so a token pushed in round r is processed in round r+1
      // no matter how the pool schedules the shard tasks. Draining inside
      // the tasks instead would let a bundle pushed early in round r be
      // picked up late in the same round — the rounds counter, and with
      // stitching the per-node segment take() order, would then depend on
      // thread timing.
      for (std::uint32_t s = 0; s < shards; ++s)
        inboxes[s] = ctx.mail[s].drain(&ctx.cells[s].depth);
      runner_->run<char>(shards, [&](std::size_t si) {
        const auto s = static_cast<std::uint32_t>(si);
        Cell& cell = ctx.cells[s];
        std::vector<WalkToken> inbox = std::move(inboxes[s]);
        std::vector<std::vector<WalkToken>> outs(shards);
        for (WalkToken& tk : inbox) {
          ++cell.processed;
          // Every delivered token is billed to the context that seeded its
          // walk — the id rode the token across the handoff, so a shard
          // charges work it does ON BEHALF of a query it never admitted.
          cost_charge_ctx(tk.ctx, CostField::kTokens, 1);
          // Thaw accounting: freeze-to-thaw time of the migration this
          // token just completed (stamped by seed_token/frozen).
          if (tk.frozen_us != 0 && latency_m_ != nullptr)
            latency_m_->record(engine_now_us() - tk.frozen_us);
          if (tk.flow != 0) {
            // One hop span per delivered token, with the walk's flow id
            // stepping through it — Perfetto chains these across shards.
            TraceSpan hop_span("shard", "walk.hop", "walk", tk.walk);
            trace_flow("shard", "walk.flow", 't', tk.flow);
            process(s, tk, cell, outs);
          } else {
            process(s, tk, cell, outs);
          }
        }
        for (std::uint32_t d = 0; d < shards; ++d) {
          if (outs[d].empty()) continue;
          cell.issued += outs[d].size();
          ctx.mail[d].push_bundle(s, std::move(outs[d]));
        }
        return char{0};
      });
      fold_round(ctx, total);
    }
  }

  /// Folds (and resets) the per-shard round counters on the driver thread;
  /// runs strictly between round barriers.
  void fold_round(BatchContext& ctx, std::size_t total) {
    std::uint64_t processed = 0;
    for (Cell& cell : ctx.cells) {
      processed += cell.processed;
      ctx.retired += cell.retired;
      ctx.stats.handoffs += cell.handoffs;
      ctx.stats.reports += cell.reports;
      ctx.stats.tokens_issued += cell.issued;
      ctx.stats.stitches += cell.stitches;
      ctx.stats.stitch_steps += cell.stitch_steps;
      ctx.stats.max_mailbox_depth =
          std::max(ctx.stats.max_mailbox_depth,
                   static_cast<std::uint64_t>(cell.depth));
      if (depth_m_ != nullptr)
        depth_m_->record(static_cast<std::uint64_t>(cell.depth));
      cell = Cell{};
    }
    ctx.stats.tokens_consumed += processed;
    if (in_flight_m_ != nullptr)
      in_flight_m_->set(static_cast<double>(total - ctx.retired));
    if (processed == 0 && ctx.retired < total)
      throw std::runtime_error(
          "ShardedWalkEngine: a superstep processed no tokens while walks "
          "remain in flight (token leak)");
  }

  void finalize(BatchContext& ctx, std::size_t tasks, std::uint64_t steps,
                BatchStats& stats, const BatchTimer& timer) {
    ctx.stats.walks = tasks;
    ctx.stats.total_steps = steps;
    stats_ = ctx.stats;
    stats.tasks = tasks;
    stats.steps = steps;
    stats.threads = runner_->thread_count();
    timer.fill(stats);
    // Batch-granularity ledger charges (never per step — the hot loops stay
    // untouched): totals to the context captured at entry. The tokens were
    // already charged at thaw, one by one, via the id riding each token.
    if (cost_active()) {
      cost_charge_ctx(ctx.cost_ctx, CostField::kSteps, steps);
      cost_charge_ctx(ctx.cost_ctx, CostField::kWalks,
                      static_cast<std::uint64_t>(tasks));
      cost_charge_ctx(ctx.cost_ctx, CostField::kHandoffs, stats_.handoffs);
      cost_charge_ctx(ctx.cost_ctx, CostField::kStitches, stats_.stitches);
      cost_charge_ctx(ctx.cost_ctx, CostField::kStitchSteps,
                      stats_.stitch_steps);
      cost_charge_ctx(ctx.cost_ctx, CostField::kCpuUs,
                      static_cast<std::uint64_t>(stats.cpu_seconds * 1e6));
    }
    if (steps_m_ != nullptr) steps_m_->add(steps);
    if (handoffs_m_ != nullptr) {
      handoffs_m_->add(stats_.handoffs);
      stitches_m_->add(stats_.stitches);
      stitch_steps_m_->add(stats_.stitch_steps);
      rounds_m_->add(stats_.rounds);
      issued_m_->add(stats_.tokens_issued);
      consumed_m_->add(stats_.tokens_consumed);
      in_flight_m_->set(0.0);
    }
  }

  const ShardedGraph* graph_;
  ParallelRunner* runner_;
  SegmentStore* store_ = nullptr;
  ShardRunStats stats_;
  const std::chrono::steady_clock::time_point epoch_;
  Heartbeat* heartbeat_ = nullptr;
  std::uint64_t inject_delay_us_ = 0;

  Counter* steps_m_ = nullptr;  ///< walk.steps: batch steps, ledger-independent
  Counter* handoffs_m_ = nullptr;
  Counter* stitches_m_ = nullptr;
  Counter* stitch_steps_m_ = nullptr;
  Counter* rounds_m_ = nullptr;
  Counter* issued_m_ = nullptr;
  Counter* consumed_m_ = nullptr;
  Gauge* in_flight_m_ = nullptr;
  AtomicHistogram* depth_m_ = nullptr;
  AtomicHistogram* latency_m_ = nullptr;
};

/// Batch front-ends routed through the sharded engine when a ShardPlan is
/// supplied — same shapes as core/parallel.hpp, same bit-identical results.
/// G is Graph or DynamicGraph (anything ShardedGraph snapshots).

template <typename G, typename F>
TourBatch run_tours(const G& g, NodeId origin, std::size_t m, F f,
                    std::uint64_t seed, ParallelRunner& runner,
                    const ShardPlan& plan, std::uint64_t max_steps = ~0ULL) {
  ShardedGraph sharded(g, plan);
  ShardedWalkEngine engine(sharded, runner);
  return engine.run_tours(origin, m, f, seed, max_steps);
}

template <typename G>
TourBatch run_tours_size(const G& g, NodeId origin, std::size_t m,
                         std::uint64_t seed, ParallelRunner& runner,
                         const ShardPlan& plan,
                         std::uint64_t max_steps = ~0ULL) {
  return run_tours(
      g, origin, m, [](NodeId) { return 1.0; }, seed, runner, plan,
      max_steps);
}

template <typename G, typename F>
TourBatch run_tours_probed(const G& g, NodeId origin, std::size_t m, F f,
                           std::uint64_t seed, ParallelRunner& runner,
                           const ShardPlan& plan, WalkStats& walk_out,
                           std::uint64_t max_steps = ~0ULL) {
  ShardedGraph sharded(g, plan);
  ShardedWalkEngine engine(sharded, runner);
  std::vector<WalkStats> per_task(m);
  std::vector<WalkStatsProbe> probes;
  probes.reserve(m);
  for (std::size_t i = 0; i < m; ++i) probes.emplace_back(per_task[i]);
  TourBatch batch = engine.run_tours(origin, m, f, seed, max_steps,
                                     std::span<WalkStatsProbe>(probes));
  walk_out = detail::fold_walk_stats(per_task);
  return batch;
}

template <typename G>
SampleBatch run_samples(const G& g, NodeId origin, std::size_t m,
                        double timer, std::uint64_t seed,
                        ParallelRunner& runner, const ShardPlan& plan) {
  ShardedGraph sharded(g, plan);
  ShardedWalkEngine engine(sharded, runner);
  return engine.run_samples(origin, m, timer, seed);
}

template <typename G>
SampleBatch run_samples_probed(const G& g, NodeId origin, std::size_t m,
                               double timer, std::uint64_t seed,
                               ParallelRunner& runner, const ShardPlan& plan,
                               WalkStats& walk_out) {
  ShardedGraph sharded(g, plan);
  ShardedWalkEngine engine(sharded, runner);
  std::vector<WalkStats> per_task(m);
  std::vector<WalkStatsProbe> probes;
  probes.reserve(m);
  for (std::size_t i = 0; i < m; ++i) probes.emplace_back(per_task[i]);
  SampleBatch batch = engine.run_samples(origin, m, timer, seed,
                                         std::span<WalkStatsProbe>(probes));
  walk_out = detail::fold_walk_stats(per_task);
  return batch;
}

template <typename G>
ScBatch run_sc_trials(const G& g, NodeId origin, std::size_t trials,
                      double timer, std::size_t ell, std::uint64_t seed,
                      ParallelRunner& runner, const ShardPlan& plan) {
  ShardedGraph sharded(g, plan);
  ShardedWalkEngine engine(sharded, runner);
  return engine.run_sc_trials(origin, trials, timer, ell, seed);
}

template <typename G>
ScBatch run_sc_trials_probed(const G& g, NodeId origin, std::size_t trials,
                             double timer, std::size_t ell,
                             std::uint64_t seed, ParallelRunner& runner,
                             const ShardPlan& plan, WalkStats& walk_out) {
  ShardedGraph sharded(g, plan);
  ShardedWalkEngine engine(sharded, runner);
  std::vector<WalkStats> per_task(trials);
  std::vector<WalkStatsProbe> probes;
  probes.reserve(trials);
  for (std::size_t i = 0; i < trials; ++i) probes.emplace_back(per_task[i]);
  ScBatch batch = engine.run_sc_trials(origin, trials, timer, ell, seed,
                                       std::span<WalkStatsProbe>(probes));
  walk_out = detail::fold_walk_stats(per_task);
  return batch;
}

}  // namespace overcount

// The wire format of the sharded walk engine: a walk that steps onto a
// node its current shard does not own is frozen into a compact WalkToken
// and pushed to the owner's mailbox, where the next superstep thaws it and
// keeps walking. The token is everything a walk IS — id, position, step
// count, accumulator, RNG state — so handing one off moves the walk without
// copying any graph state, exactly the migration Das Sarma et al. perform
// between distributed machines.
//
// Determinism: mailboxes accept whole per-source bundles and drain them
// sorted by source shard. Within a bundle tokens keep their push order, and
// each source pushes at most one bundle per superstep, so the drain order —
// and therefore every downstream probe event and RNG draw — is a pure
// function of the walk schedule, never of thread timing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace overcount {

/// What kind of walk a token carries (selects the thaw loop and the
/// interpretation of `steps`/`acc`).
enum class WalkKind : std::uint8_t {
  kTour,      ///< Random Tour; steps = walk steps, acc = counter X
  kSample,    ///< CTRW sample;  steps = hops,       acc = remaining timer
  kScWalk,    ///< one CTRW walk inside an S&C trial (same fields as kSample)
  kScReport,  ///< finished S&C walk reporting home; at = sampled node,
              ///< steps = hops of that walk, rng = stream to continue with
};

/// A frozen in-flight walk: small enough that a handoff is one cheap vector
/// push, and nothing graph-sized ever crosses shards. The trailing fields
/// are migration metadata, not walk state: `flow` threads a per-walk
/// causal-trace id across every handoff (0 = untraced; obs/trace.hpp flow
/// events), `frozen_us` stamps when the walk froze so the thawing shard can
/// histogram shard.handoff_latency_us (0 = unstamped), and `ctx` rides the
/// cost-ledger context id (obs/cost/) so the thawing shard charges the
/// token to the (tenant, query) that seeded the walk (0 = unattributed).
/// None of these fields is ever read by the walk logic itself —
/// bit-identity of the estimates is untouched.
struct WalkToken {
  std::uint32_t walk = 0;  ///< batch slot (tour/sample index, or trial id)
  WalkKind kind = WalkKind::kTour;
  NodeId at = 0;           ///< current node (already visited/checked)
  std::uint64_t steps = 0;
  double acc = 0.0;
  Rng rng{0};
  std::uint64_t flow = 0;       ///< causal-trace flow id (0 = untraced)
  std::uint64_t frozen_us = 0;  ///< freeze timestamp (0 = unstamped)
  std::uint32_t ctx = 0;        ///< cost-ledger context (0 = unattributed)
};

/// MPSC mailbox for one shard. Producers (other shards' workers) push one
/// bundle per superstep; the engine's driver drains everything between the
/// superstep barriers, so the drain never races a push and a bundle from
/// round r is always delivered in round r+1. The mutex is uncontended in
/// the common case — S producers touch it at most once per superstep each.
class ShardMailbox {
 public:
  /// Enqueues `tokens` from `source` shard. Empty bundles are dropped.
  void push_bundle(std::uint32_t source, std::vector<WalkToken> tokens) {
    if (tokens.empty()) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    bundles_.emplace_back(source, std::move(tokens));
  }

  /// Removes and returns every pending token, ordered by source shard
  /// (bundle push order preserved within a source). Also reports the
  /// drained depth so the engine can histogram mailbox pressure.
  std::vector<WalkToken> drain(std::size_t* depth = nullptr) {
    std::vector<std::pair<std::uint32_t, std::vector<WalkToken>>> bundles;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      bundles.swap(bundles_);
    }
    std::stable_sort(bundles.begin(), bundles.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::vector<WalkToken> out;
    std::size_t total = 0;
    for (const auto& [src, tokens] : bundles) total += tokens.size();
    out.reserve(total);
    for (auto& [src, tokens] : bundles)
      out.insert(out.end(), tokens.begin(), tokens.end());
    if (depth != nullptr) *depth = total;
    return out;
  }

 private:
  std::mutex mutex_;
  std::vector<std::pair<std::uint32_t, std::vector<WalkToken>>> bundles_;
};

}  // namespace overcount

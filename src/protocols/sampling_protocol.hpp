// Message-level CTRW peer sampling and the Sample & Collide orchestration
// (paper Sections 4.1-4.2, loss handling per Section 5.3.1).
//
// A sampling probe carries the timer T. Each node that holds the probe
// (including the initiator before the first hop) subtracts an Exp(d_v)
// variate drawn locally; when the timer dies the holder reports its id
// straight back to the initiator. The initiator times out lost probes
// against its trip-time history and reissues them.
#pragma once

#include <cstdint>
#include <functional>

#include "core/sample_collide.hpp"
#include "des/network.hpp"
#include "util/stats.hpp"

namespace overcount {

/// Issues CTRW sampling probes and reports sampled peers to a callback.
class CtrwSampleProtocol {
 public:
  struct Sample {
    NodeId node = 0;
    std::uint64_t hops = 0;
    std::uint64_t retries = 0;
  };
  using Callback = std::function<void(const Sample&)>;

  /// Registers itself as the network's delivery handler.
  CtrwSampleProtocol(Network& net, double timer, Rng rng);

  /// Requests one sample, walking from `origin`. One request in flight per
  /// protocol instance.
  void request(NodeId origin, Callback done);

  void set_timeout_policy(double k, double initial_timeout);
  double timer() const noexcept { return timer_; }
  void set_timer(double t) {
    OVERCOUNT_EXPECTS(t > 0.0);
    timer_ = t;
  }

 private:
  struct Probe {
    NodeId origin;
    double remaining;
    std::uint64_t request_id;
    std::uint64_t hops;
  };
  struct Reply {
    NodeId sample;
    std::uint64_t request_id;
    std::uint64_t hops;
  };

  void on_message(NodeId to, NodeId from, const std::any& payload);
  void launch_probe();
  void arm_timeout();
  double current_timeout() const;
  /// Consumes timer at node `holder`; either reports the sample or forwards.
  void hold_probe(NodeId holder, Probe probe);

  Network* net_;
  double timer_;
  Rng rng_;
  Callback done_;
  NodeId origin_ = 0;
  std::uint64_t request_id_ = 0;
  bool in_flight_ = false;
  std::uint64_t retries_ = 0;
  SimTime launched_at_ = 0.0;
  Simulator::EventId timeout_event_ = 0;
  bool timeout_armed_ = false;
  RunningStats trip_times_;
  double timeout_k_ = 4.0;
  double initial_timeout_ = 1e6;
};

/// Drives CtrwSampleProtocol until `ell` collisions, then reports the
/// Sample & Collide estimates.
class SampleCollideProtocol {
 public:
  struct Result {
    ScEstimate estimate;
    std::uint64_t retries = 0;  ///< sampling probes reissued after timeouts
  };
  using Callback = std::function<void(const Result&)>;

  SampleCollideProtocol(Network& net, double timer, std::size_t ell, Rng rng);

  /// Runs one full measurement from `origin`.
  void start(NodeId origin, Callback done);

 private:
  void on_sample(const CtrwSampleProtocol::Sample& s);

  CtrwSampleProtocol sampler_;
  std::size_t ell_;
  NodeId origin_ = 0;
  Callback done_;
  CollisionTracker tracker_;
  std::uint64_t hops_ = 0;
  std::uint64_t retries_ = 0;
  bool running_ = false;
};

}  // namespace overcount

// Message-level gossip averaging (Jelasity & Montresor [20]) over the DES —
// the protocol realisation of core/gossip.hpp. Every peer wakes on a local
// timer (Exp(1) clocks, so exchanges interleave asynchronously), pushes its
// value to a random neighbour, and the pair settles on the average. Under
// message loss the pairwise exchange is made atomic-or-nothing by the
// responder echoing the settled value; a lost push simply skips the round
// (conservation of mass is what the estimate's correctness rests on).
#pragma once

#include <cstdint>
#include <vector>

#include "des/network.hpp"

namespace overcount {

class GossipAveragingProtocol {
 public:
  /// `starter` begins with value 1, all other peers 0. Registers itself as
  /// the network's delivery handler.
  GossipAveragingProtocol(Network& net, NodeId starter, Rng rng);

  /// Schedules every alive peer's first wake-up and runs until `t_end`.
  void run_until(SimTime t_end);

  /// Current size estimate at peer v (1/value); +inf while untouched.
  double estimate_at(NodeId v) const;

  /// Max-min spread of values — convergence indicator.
  double value_spread() const;

  /// Sum of all alive peers' values. Exactly 1 when no exchange is in
  /// flight and no message was lost; exchanges in flight perturb it by at
  /// most spread/2, and lost replies leak mass permanently (documented
  /// weakness of gossip under loss).
  double total_mass() const;

  std::uint64_t exchanges_started() const noexcept { return exchanges_; }

 private:
  struct Push {
    double value;
    std::uint64_t round;
  };
  struct Reply {
    double settled;
    std::uint64_t round;
    bool accepted;  ///< false: responder was mid-exchange, nothing changed
  };

  void on_message(NodeId to, NodeId from, const std::any& payload);
  void wake(NodeId v);
  void schedule_wake(NodeId v);

  Network* net_;
  Rng rng_;
  std::vector<double> value_;
  // Per-node round counter: a reply for a stale round is ignored so each
  // push settles at most one exchange.
  std::vector<std::uint64_t> round_;
  std::vector<bool> awaiting_reply_;
  std::vector<int> skipped_;  // wakes skipped while a reply is pending
  std::uint64_t exchanges_ = 0;
};

}  // namespace overcount

// Message-level Random Tour (paper Sections 3.1 and 5.3.1).
//
// The initiator launches a probe carrying (initiator id, counter); each
// recipient adds f(v)/d_v and forwards to a random neighbour; the initiator
// completes the tour when the probe returns. Probe loss (drop, or the probe
// sitting on a departing node) is handled exactly as Section 5.3.1
// prescribes: the initiator declares the probe lost when it has been out
// longer than (mean + k * stddev) of past trip times, and relaunches.
#pragma once

#include <cstdint>
#include <functional>

#include "des/network.hpp"
#include "util/stats.hpp"

namespace overcount {

class RandomTourProtocol {
 public:
  struct Result {
    double estimate = 0.0;
    std::uint64_t hops = 0;      ///< hops of the completing tour
    std::uint64_t retries = 0;   ///< probes relaunched after a timeout
    SimTime trip_time = 0.0;     ///< wall-clock (sim) time of the last probe
  };
  using Callback = std::function<void(const Result&)>;

  /// `f` is the per-node statistic to aggregate (defaults to 1 => size).
  /// Registers itself as the network's delivery handler.
  RandomTourProtocol(Network& net, Rng rng,
                     std::function<double(NodeId)> f = nullptr);

  /// Launches one tour from `initiator`; `done` fires on completion.
  /// Only one tour per protocol instance may be in flight at a time.
  void start(NodeId initiator, Callback done);

  /// Timeout = mean + `k` * stddev of past trip times (default k = 4); until
  /// enough history exists, `initial_timeout` is used.
  void set_timeout_policy(double k, double initial_timeout);

  std::uint64_t tours_completed() const noexcept { return completed_; }

 private:
  struct Probe {
    NodeId initiator;
    double counter;
    std::uint64_t tour_id;
    std::uint64_t hops;
  };

  void on_message(NodeId to, NodeId from, const std::any& payload);
  void launch_probe();
  void arm_timeout();
  double current_timeout() const;

  Network* net_;
  Rng rng_;
  std::function<double(NodeId)> f_;
  Callback done_;
  NodeId initiator_ = 0;
  std::uint64_t tour_id_ = 0;     // stale probes carry an older id
  bool in_flight_ = false;
  std::uint64_t retries_ = 0;
  SimTime launched_at_ = 0.0;
  Simulator::EventId timeout_event_ = 0;
  bool timeout_armed_ = false;
  RunningStats trip_times_;
  double timeout_k_ = 4.0;
  double initial_timeout_ = 1e6;
  std::uint64_t completed_ = 0;
};

}  // namespace overcount

#include "protocols/random_tour_protocol.hpp"

#include <algorithm>

#include "walk/topology.hpp"

namespace overcount {

RandomTourProtocol::RandomTourProtocol(Network& net, Rng rng,
                                       std::function<double(NodeId)> f)
    : net_(&net), rng_(rng), f_(std::move(f)) {
  if (!f_) f_ = [](NodeId) { return 1.0; };
  net_->set_handler([this](NodeId to, NodeId from, const std::any& payload) {
    on_message(to, from, payload);
  });
}

void RandomTourProtocol::set_timeout_policy(double k, double initial_timeout) {
  OVERCOUNT_EXPECTS(k > 0.0);
  OVERCOUNT_EXPECTS(initial_timeout > 0.0);
  timeout_k_ = k;
  initial_timeout_ = initial_timeout;
}

double RandomTourProtocol::current_timeout() const {
  double base = initial_timeout_;
  if (trip_times_.count() >= 3) {
    // Section 5.3.1: mean plus a few multiples of the standard deviation
    // (epsilon keeps a zero-variance history from producing a zero timeout).
    base = trip_times_.mean() + timeout_k_ * trip_times_.stddev() + 1e-9;
  }
  // Return times are heavy-tailed, so a timeout estimated from completed
  // (i.e. short, censored) tours can undershoot; exponential backoff across
  // consecutive retries of the same measurement guarantees progress.
  return base * static_cast<double>(1ULL << std::min<std::uint64_t>(
                                        retries_, 40));
}

void RandomTourProtocol::start(NodeId initiator, Callback done) {
  OVERCOUNT_EXPECTS(!in_flight_);
  OVERCOUNT_EXPECTS(net_->graph().alive(initiator));
  OVERCOUNT_EXPECTS(net_->graph().degree(initiator) > 0);
  initiator_ = initiator;
  done_ = std::move(done);
  retries_ = 0;
  in_flight_ = true;
  launch_probe();
}

void RandomTourProtocol::launch_probe() {
  const auto& g = net_->graph();
  ++tour_id_;
  launched_at_ = net_->simulator().now();
  Probe probe{initiator_,
              f_(initiator_) / static_cast<double>(g.degree(initiator_)),
              tour_id_, 1};
  const NodeId first = random_neighbor(g, initiator_, rng_);
  arm_timeout();
  net_->send(initiator_, first, probe);
}

void RandomTourProtocol::arm_timeout() {
  if (timeout_armed_) net_->simulator().cancel(timeout_event_);
  timeout_armed_ = true;
  const std::uint64_t expected_tour = tour_id_;
  timeout_event_ = net_->simulator().schedule_after(
      current_timeout(), [this, expected_tour]() {
        if (!in_flight_ || tour_id_ != expected_tour) return;  // stale timer
        ++retries_;
        if (!net_->graph().alive(initiator_) ||
            net_->graph().degree(initiator_) == 0) {
          // The initiator can no longer complete any tour; give up with an
          // empty estimate so the caller is not left hanging.
          in_flight_ = false;
          timeout_armed_ = false;
          Result r;
          r.retries = retries_;
          if (done_) done_(r);
          return;
        }
        launch_probe();
      });
}

void RandomTourProtocol::on_message(NodeId to, NodeId /*from*/,
                                    const std::any& payload) {
  const auto* probe = std::any_cast<Probe>(&payload);
  OVERCOUNT_EXPECTS(probe != nullptr);
  if (probe->tour_id != tour_id_) return;  // probe from a timed-out attempt

  const auto& g = net_->graph();
  if (to == probe->initiator) {
    // Tour complete.
    in_flight_ = false;
    if (timeout_armed_) {
      net_->simulator().cancel(timeout_event_);
      timeout_armed_ = false;
    }
    Result r;
    r.estimate = static_cast<double>(g.degree(to)) * probe->counter;
    r.hops = probe->hops;
    r.retries = retries_;
    r.trip_time = net_->simulator().now() - launched_at_;
    trip_times_.add(r.trip_time);
    ++completed_;
    if (done_) done_(r);
    return;
  }
  if (g.degree(to) == 0) return;  // probe stranded; timeout will recover
  Probe next = *probe;
  next.counter += f_(to) / static_cast<double>(g.degree(to));
  next.hops += 1;
  net_->send(to, random_neighbor(g, to, rng_), next);
}

}  // namespace overcount

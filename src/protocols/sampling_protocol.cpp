#include "protocols/sampling_protocol.hpp"

#include <algorithm>

#include "walk/topology.hpp"

namespace overcount {

CtrwSampleProtocol::CtrwSampleProtocol(Network& net, double timer, Rng rng)
    : net_(&net), timer_(timer), rng_(rng) {
  OVERCOUNT_EXPECTS(timer > 0.0);
  net_->set_handler([this](NodeId to, NodeId from, const std::any& payload) {
    on_message(to, from, payload);
  });
}

void CtrwSampleProtocol::set_timeout_policy(double k, double initial_timeout) {
  OVERCOUNT_EXPECTS(k > 0.0);
  OVERCOUNT_EXPECTS(initial_timeout > 0.0);
  timeout_k_ = k;
  initial_timeout_ = initial_timeout;
}

double CtrwSampleProtocol::current_timeout() const {
  double base = initial_timeout_;
  if (trip_times_.count() >= 3)
    base = trip_times_.mean() + timeout_k_ * trip_times_.stddev() + 1e-9;
  // Exponential backoff across consecutive retries, mirroring the Random
  // Tour protocol: a censored-history timeout must not be able to starve a
  // legitimately long walk.
  return base * static_cast<double>(1ULL << std::min<std::uint64_t>(
                                        retries_, 40));
}

void CtrwSampleProtocol::request(NodeId origin, Callback done) {
  OVERCOUNT_EXPECTS(!in_flight_);
  OVERCOUNT_EXPECTS(net_->graph().alive(origin));
  origin_ = origin;
  done_ = std::move(done);
  retries_ = 0;
  in_flight_ = true;
  launch_probe();
}

void CtrwSampleProtocol::launch_probe() {
  ++request_id_;
  launched_at_ = net_->simulator().now();
  arm_timeout();
  hold_probe(origin_, Probe{origin_, timer_, request_id_, 0});
}

void CtrwSampleProtocol::arm_timeout() {
  if (timeout_armed_) net_->simulator().cancel(timeout_event_);
  timeout_armed_ = true;
  const std::uint64_t expected = request_id_;
  timeout_event_ = net_->simulator().schedule_after(
      current_timeout(), [this, expected]() {
        if (!in_flight_ || request_id_ != expected) return;
        ++retries_;
        if (!net_->graph().alive(origin_)) {
          in_flight_ = false;
          timeout_armed_ = false;
          return;  // requester is gone; nobody to report to
        }
        launch_probe();
      });
}

void CtrwSampleProtocol::hold_probe(NodeId holder, Probe probe) {
  const auto& g = net_->graph();
  const auto degree = g.degree(holder);
  if (degree == 0) {
    // Isolated holder: the CTRW can never leave, so the sample is the
    // holder itself (its sojourn outlasts any timer).
    probe.remaining = 0.0;
  } else {
    probe.remaining -= rng_.exponential(static_cast<double>(degree));
  }
  if (probe.remaining <= 0.0) {
    if (holder == probe.origin) {
      // Timer died at the origin itself: report locally, no message needed.
      on_message(probe.origin, probe.origin,
                 Reply{holder, probe.request_id, probe.hops});
    } else {
      net_->send(holder, probe.origin,
                 Reply{holder, probe.request_id, probe.hops});
    }
    return;
  }
  probe.hops += 1;
  net_->send(holder, random_neighbor(g, holder, rng_), probe);
}

void CtrwSampleProtocol::on_message(NodeId to, NodeId /*from*/,
                                    const std::any& payload) {
  if (const auto* probe = std::any_cast<Probe>(&payload)) {
    if (probe->request_id != request_id_) return;  // stale attempt
    hold_probe(to, *probe);
    return;
  }
  const auto* reply = std::any_cast<Reply>(&payload);
  OVERCOUNT_EXPECTS(reply != nullptr);
  if (reply->request_id != request_id_ || !in_flight_) return;
  in_flight_ = false;
  if (timeout_armed_) {
    net_->simulator().cancel(timeout_event_);
    timeout_armed_ = false;
  }
  trip_times_.add(net_->simulator().now() - launched_at_);
  Sample s;
  s.node = reply->sample;
  s.hops = reply->hops;
  s.retries = retries_;
  if (done_) done_(s);
}

SampleCollideProtocol::SampleCollideProtocol(Network& net, double timer,
                                             std::size_t ell, Rng rng)
    : sampler_(net, timer, rng), ell_(ell) {
  OVERCOUNT_EXPECTS(ell >= 1);
}

void SampleCollideProtocol::start(NodeId origin, Callback done) {
  OVERCOUNT_EXPECTS(!running_);
  origin_ = origin;
  done_ = std::move(done);
  tracker_.reset();
  hops_ = 0;
  retries_ = 0;
  running_ = true;
  sampler_.request(origin_,
                   [this](const CtrwSampleProtocol::Sample& s) { on_sample(s); });
}

void SampleCollideProtocol::on_sample(const CtrwSampleProtocol::Sample& s) {
  OVERCOUNT_EXPECTS(running_);
  hops_ += s.hops;
  retries_ += s.retries;
  tracker_.feed(s.node);
  if (tracker_.collisions() < ell_) {
    sampler_.request(origin_, [this](const CtrwSampleProtocol::Sample& next) {
      on_sample(next);
    });
    return;
  }
  running_ = false;
  Result r;
  r.estimate.samples = tracker_.samples();
  r.estimate.hops = hops_;
  r.estimate.replies = tracker_.samples();
  r.estimate.ml = sc_ml_estimate(tracker_.samples(), tracker_.collisions());
  r.estimate.simple =
      sc_simple_estimate(tracker_.samples(), tracker_.collisions());
  const auto bracket = sc_bracket(tracker_.samples(), tracker_.collisions());
  r.estimate.n_minus = bracket.n_minus;
  r.estimate.n_plus = bracket.n_plus;
  r.retries = retries_;
  if (done_) done_(r);
}

}  // namespace overcount

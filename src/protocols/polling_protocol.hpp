// Message-level probabilistic polling ([15, 33, 24], paper Section 2.2)
// over the DES: the initiator floods a query across the overlay (each peer
// forwards once over every other incident edge); every reached peer replies
// directly with probability p. Run under the simulator this exhibits the
// two costs the paper criticises in the time domain: Theta(|E|) flood
// traffic, and the ACK-implosion burst of near-simultaneous replies at the
// initiator.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "des/network.hpp"

namespace overcount {

class PollingProtocol {
 public:
  struct Result {
    double estimate = 0.0;
    std::uint64_t replies = 0;
    std::uint64_t flood_messages = 0;
    /// Largest number of replies landing at the initiator within any
    /// window of `implosion_window` time units — the ACK implosion metric.
    std::uint64_t peak_reply_burst = 0;
    SimTime completed_at = 0.0;
  };
  using Callback = std::function<void(const Result&)>;

  /// `reply_probability` in (0, 1]; `quiet_period`: the poll is declared
  /// complete when no reply arrived for this long. Registers itself as the
  /// network's delivery handler.
  PollingProtocol(Network& net, double reply_probability, Rng rng,
                  double quiet_period = 50.0,
                  double implosion_window = 1.0);

  void start(NodeId initiator, Callback done);

 private:
  struct Query {
    NodeId initiator;
    std::uint64_t poll_id;
  };
  struct Reply {
    std::uint64_t poll_id;
  };

  void on_message(NodeId to, NodeId from, const std::any& payload);
  void arm_completion_timer();

  Network* net_;
  double reply_probability_;
  Rng rng_;
  double quiet_period_;
  double implosion_window_;
  Callback done_;
  NodeId initiator_ = 0;
  std::uint64_t poll_id_ = 0;
  bool running_ = false;
  std::vector<bool> seen_;            // per-slot: already forwarded query
  std::vector<SimTime> reply_times_;  // arrival times at the initiator
  std::uint64_t flood_messages_ = 0;
  Simulator::EventId completion_event_ = 0;
  bool completion_armed_ = false;
};

}  // namespace overcount

#include "protocols/gossip_protocol.hpp"

#include <cmath>
#include <limits>

#include "walk/topology.hpp"

namespace overcount {

GossipAveragingProtocol::GossipAveragingProtocol(Network& net, NodeId starter,
                                                 Rng rng)
    : net_(&net), rng_(rng) {
  const auto slots = net_->graph().num_slots();
  OVERCOUNT_EXPECTS(starter < slots);
  OVERCOUNT_EXPECTS(net_->graph().alive(starter));
  value_.assign(slots, 0.0);
  value_[starter] = 1.0;
  round_.assign(slots, 0);
  awaiting_reply_.assign(slots, false);
  skipped_.assign(slots, 0);
  net_->set_handler([this](NodeId to, NodeId from, const std::any& payload) {
    on_message(to, from, payload);
  });
}

void GossipAveragingProtocol::schedule_wake(NodeId v) {
  // Exp(1) local clocks: exchanges interleave asynchronously (the paper's
  // "nodes communicate asynchronously").
  net_->simulator().schedule_after(rng_.exponential(1.0),
                                   [this, v] { wake(v); });
}

void GossipAveragingProtocol::run_until(SimTime t_end) {
  for (NodeId v : net_->graph().alive_nodes()) schedule_wake(v);
  net_->simulator().run_until(t_end);
}

void GossipAveragingProtocol::wake(NodeId v) {
  const auto& g = net_->graph();
  if (!g.alive(v)) return;  // departed: stop this node's clock
  if (awaiting_reply_[v]) {
    // An exchange is still in flight. Waiting preserves exact mass
    // conservation (the pending reply will be applied); only after several
    // skipped rounds do we declare the reply lost and move on, accepting
    // the (loss-induced) drift.
    if (++skipped_[v] < 5) {
      schedule_wake(v);
      return;
    }
    ++round_[v];  // invalidate the stale reply
    awaiting_reply_[v] = false;
  }
  skipped_[v] = 0;
  if (g.degree(v) > 0) {
    ++round_[v];
    awaiting_reply_[v] = true;
    net_->send(v, random_neighbor(g, v, rng_), Push{value_[v], round_[v]});
    ++exchanges_;
  }
  schedule_wake(v);
}

void GossipAveragingProtocol::on_message(NodeId to, NodeId from,
                                         const std::any& payload) {
  if (const auto* push = std::any_cast<Push>(&payload)) {
    // A responder mid-exchange must not touch its value (it is committed to
    // the pending average). It must still answer, or pushers pile up in the
    // awaiting state and the whole overlay deadlocks — so it declines
    // explicitly and the pusher aborts with no state change.
    if (awaiting_reply_[to]) {
      net_->send(to, from, Reply{0.0, push->round, false});
      return;
    }
    const double settled = 0.5 * (push->value + value_[to]);
    value_[to] = settled;
    net_->send(to, from, Reply{settled, push->round, true});
    return;
  }
  const auto* reply = std::any_cast<Reply>(&payload);
  OVERCOUNT_EXPECTS(reply != nullptr);
  if (!awaiting_reply_[to] || reply->round != round_[to]) return;
  if (reply->accepted) value_[to] = reply->settled;
  awaiting_reply_[to] = false;
  skipped_[to] = 0;
}

double GossipAveragingProtocol::estimate_at(NodeId v) const {
  OVERCOUNT_EXPECTS(v < value_.size());
  return value_[v] > 0.0 ? 1.0 / value_[v]
                         : std::numeric_limits<double>::infinity();
}

double GossipAveragingProtocol::value_spread() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (NodeId v : net_->graph().alive_nodes()) {
    lo = std::min(lo, value_[v]);
    hi = std::max(hi, value_[v]);
  }
  return hi - lo;
}

double GossipAveragingProtocol::total_mass() const {
  double mass = 0.0;
  for (NodeId v : net_->graph().alive_nodes()) mass += value_[v];
  return mass;
}

}  // namespace overcount

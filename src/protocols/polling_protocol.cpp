#include "protocols/polling_protocol.hpp"

#include <algorithm>

namespace overcount {

PollingProtocol::PollingProtocol(Network& net, double reply_probability,
                                 Rng rng, double quiet_period,
                                 double implosion_window)
    : net_(&net),
      reply_probability_(reply_probability),
      rng_(rng),
      quiet_period_(quiet_period),
      implosion_window_(implosion_window) {
  OVERCOUNT_EXPECTS(reply_probability > 0.0 && reply_probability <= 1.0);
  OVERCOUNT_EXPECTS(quiet_period > 0.0);
  OVERCOUNT_EXPECTS(implosion_window > 0.0);
  net_->set_handler([this](NodeId to, NodeId from, const std::any& payload) {
    on_message(to, from, payload);
  });
}

void PollingProtocol::start(NodeId initiator, Callback done) {
  OVERCOUNT_EXPECTS(!running_);
  const auto& g = net_->graph();
  OVERCOUNT_EXPECTS(g.alive(initiator));
  initiator_ = initiator;
  done_ = std::move(done);
  ++poll_id_;
  running_ = true;
  seen_.assign(g.num_slots(), false);
  reply_times_.clear();
  flood_messages_ = 0;
  seen_[initiator] = true;
  for (NodeId u : g.neighbors(initiator)) {
    net_->send(initiator, u, Query{initiator, poll_id_});
    ++flood_messages_;
  }
  arm_completion_timer();
}

void PollingProtocol::arm_completion_timer() {
  if (completion_armed_) net_->simulator().cancel(completion_event_);
  completion_armed_ = true;
  const std::uint64_t expected = poll_id_;
  completion_event_ = net_->simulator().schedule_after(
      quiet_period_, [this, expected]() {
        if (!running_ || poll_id_ != expected) return;
        running_ = false;
        completion_armed_ = false;
        Result r;
        r.replies = reply_times_.size();
        r.flood_messages = flood_messages_;
        r.estimate = 1.0 + static_cast<double>(r.replies) /
                               reply_probability_;
        r.completed_at = net_->simulator().now();
        // Peak burst: max replies inside any implosion_window interval.
        std::sort(reply_times_.begin(), reply_times_.end());
        std::size_t best = 0;
        std::size_t lo = 0;
        for (std::size_t hi = 0; hi < reply_times_.size(); ++hi) {
          while (reply_times_[hi] - reply_times_[lo] > implosion_window_)
            ++lo;
          best = std::max(best, hi - lo + 1);
        }
        r.peak_reply_burst = best;
        if (done_) done_(r);
      });
}

void PollingProtocol::on_message(NodeId to, NodeId /*from*/,
                                 const std::any& payload) {
  if (const auto* query = std::any_cast<Query>(&payload)) {
    if (query->poll_id != poll_id_ || !running_) return;
    if (to >= seen_.size() || seen_[to]) return;  // slots grown mid-poll: skip
    seen_[to] = true;
    const auto& g = net_->graph();
    // Forward over every incident edge (classic flooding).
    for (NodeId u : g.neighbors(to)) {
      net_->send(to, u, *query);
      ++flood_messages_;
    }
    if (rng_.bernoulli(reply_probability_))
      net_->send(to, query->initiator, Reply{query->poll_id});
    return;
  }
  const auto* reply = std::any_cast<Reply>(&payload);
  OVERCOUNT_EXPECTS(reply != nullptr);
  if (reply->poll_id != poll_id_ || !running_) return;
  reply_times_.push_back(net_->simulator().now());
  arm_completion_timer();
}

}  // namespace overcount

#!/usr/bin/env python3
"""Validate BENCH_*.json telemetry artifacts emitted by the bench binaries.

Usage: validate_bench_json.py <telemetry-dir> [expected-count]
           [--baseline FILE] [--counters REGEX] [--tolerance FRACTION]

Checks every BENCH_*.json in the directory:
  * parses as JSON (the writer is home-grown, so this is a real check);
  * carries the schema version and the required top-level sections;
  * meta records n/seed/threads/fast/git_rev;
  * every series point is a finite [x, y] pair;
  * every batch stats object has the runtime counter fields;
  * every histogram summary is internally consistent (count vs buckets,
    percentile ordering p50 <= p90 <= p99 within [min, max]).

Baseline diff mode (--baseline): additionally compares the `values`
counters of the artifact with the same bench name as the baseline file
against the baseline's values, with a per-counter relative tolerance.
Throughput counters (names ending in `per_second` or containing
`speedup`) are higher-is-better: they fail only when the current value
drops more than `--tolerance` below baseline. Latency counters (names
containing `latency`, e.g. the serve layer's request-latency percentiles)
are lower-is-better: they fail only when the current value rises more
than the tolerance above baseline. All other matched counters fail when
they deviate from baseline by more than the tolerance in either
direction. Counters matched by --counters that the CURRENT artifact adds
but the baseline lacks are printed as informational `new` lines and never
fail the diff, so a bench can grow instrumentation without forcing a
baseline refresh. The CI perf-smoke job runs this against the committed
bench/baselines/BENCH_micro.json with --counters over BM_RandomTour*
items_per_second, so a >25% regression of the walk hot path fails CI.

Exits non-zero, printing per-file errors, when anything is off.
"""
import argparse
import json
import math
import re
import sys
from pathlib import Path

REQUIRED_TOP = [
    "schema",
    "bench",
    "description",
    "meta",
    "paper_notes",
    "series",
    "batches",
    "histograms",
    "walk_stats",
    "values",
]
REQUIRED_META = ["n", "seed", "threads", "fast", "git_rev"]
REQUIRED_BATCH = [
    "tasks",
    "steps",
    "wall_s",
    "cpu_s",
    "steps_per_s",
    "parallel_efficiency",
    "threads",
]
REQUIRED_HIST = ["count", "sum", "mean", "min", "max", "p50", "p90", "p99",
                 "buckets"]


def check_histogram(h, where, errors):
    for key in REQUIRED_HIST:
        if key not in h:
            errors.append(f"{where}: histogram missing '{key}'")
            return
    bucket_total = sum(count for _, count in h["buckets"])
    if bucket_total != h["count"]:
        errors.append(
            f"{where}: bucket counts sum to {bucket_total}, count says "
            f"{h['count']}")
    if h["count"] == 0:
        return  # empty histograms have null min/max and null percentiles
    if not (h["min"] <= h["p50"] <= h["p90"] <= h["p99"] <= h["max"]):
        errors.append(
            f"{where}: percentiles not ordered within [min, max]: "
            f"min={h['min']} p50={h['p50']} p90={h['p90']} p99={h['p99']} "
            f"max={h['max']}")


def check_file(path):
    errors = []
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        return [f"does not parse: {e}"]

    for key in REQUIRED_TOP:
        if key not in doc:
            errors.append(f"missing top-level key '{key}'")
    if errors:
        return errors

    if doc["schema"] != 1:
        errors.append(f"unexpected schema version {doc['schema']}")
    if not doc["bench"]:
        errors.append("empty bench name")
    for key in REQUIRED_META:
        if key not in doc["meta"]:
            errors.append(f"meta missing '{key}'")

    for series in doc["series"]:
        name = series.get("name", "<unnamed>")
        for point in series.get("points", []):
            if (len(point) != 2
                    or any(p is None or not math.isfinite(p) for p in point)):
                errors.append(f"series '{name}': bad point {point}")
                break

    for batch in doc["batches"]:
        label = batch.get("label", "<unlabelled>")
        stats = batch.get("stats", {})
        for key in REQUIRED_BATCH:
            if key not in stats:
                errors.append(f"batch '{label}': stats missing '{key}'")

    for hist in doc["histograms"]:
        label = hist.get("label", "<unlabelled>")
        check_histogram(hist.get("summary", {}), f"histogram '{label}'",
                        errors)

    for walk in doc["walk_stats"]:
        label = walk.get("label", "<unlabelled>")
        stats = walk.get("stats", {})
        for key in ("walks", "visits", "tour_steps", "sample_hops"):
            if key not in stats:
                errors.append(f"walk_stats '{label}': missing '{key}'")
        for hist_key in ("tour_steps", "sample_hops", "collision_gaps"):
            if hist_key in stats:
                check_histogram(stats[hist_key],
                                f"walk_stats '{label}'.{hist_key}", errors)

    # Every artifact must carry machine-readable runtime counters and at
    # least one cost distribution — that is the point of the telemetry.
    if not doc["batches"]:
        errors.append("no batches recorded")
    if not doc["histograms"] and not doc["walk_stats"]:
        errors.append("no histograms or walk_stats recorded")
    if doc["bench"] == "soak":
        check_soak(doc, errors)
    return errors


SOAK_REQUIRED_VALUES = [
    "soak.requests",
    "soak.ok",
    "soak.rejected_rate",
    "soak.shed_rate",
    "soak.jain_fairness",
    "soak.throughput_rps",
    "cost.steps",
    "cost.unattributed_steps",
]
SOAK_CLASSES = ["gold", "silver", "bronze"]
SOAK_CLASS_VALUES = ["hit_rate", "latency_p50_us", "latency_p90_us",
                     "latency_p99_us"]


def check_soak(doc, errors):
    """Schema for the multi-tenant soak artifact (bench name 'soak'):
    the headline counters CI gates on must exist and the bounded ones
    must actually be in [0, 1]."""
    values = doc.get("values", {})
    required = list(SOAK_REQUIRED_VALUES)
    for cls in SOAK_CLASSES:
        required.extend(f"soak.class.{cls}.{v}" for v in SOAK_CLASS_VALUES)
    for key in required:
        if key not in values:
            errors.append(f"soak: missing required value '{key}'")
    for key, value in values.items():
        bounded = (key == "soak.jain_fairness" or key.endswith(".hit_rate")
                   or key.endswith("_rate"))
        if bounded and key in values and not (0.0 <= value <= 1.0):
            errors.append(f"soak: '{key}' = {value} outside [0, 1]")


def higher_is_better(counter):
    # Jain fairness, SLO hit rates and served throughput join the
    # classic throughput counters: only a DROP is a regression.
    return (counter.endswith("per_second") or "speedup" in counter
            or "jain" in counter or counter.endswith("hit_rate")
            or counter.endswith("throughput_rps"))


def lower_is_better(counter):
    # Message-cost counters of the sharded walk engine join the latency
    # percentiles: fewer cross-shard handoffs per tour is strictly better.
    return "latency" in counter or "handoffs_per_tour" in counter


def diff_against_baseline(files, baseline_path, counter_re, tolerance):
    """Compares matched `values` counters against the committed baseline.

    Returns a list of error strings (empty = within tolerance)."""
    errors = []
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [f"baseline {baseline_path}: unreadable: {e}"]

    current_path = next(
        (p for p in files if p.name == baseline_path.name), None)
    if current_path is None:
        return [f"baseline diff: no current artifact named "
                f"{baseline_path.name} to compare"]
    current = json.loads(current_path.read_text())

    base_values = baseline.get("values", {})
    cur_values = current.get("values", {})
    matched = sorted(k for k in base_values if counter_re.search(k))
    if not matched:
        return [f"baseline diff: no baseline counters match "
                f"'{counter_re.pattern}'"]

    for key in matched:
        base = base_values[key]
        if key not in cur_values:
            errors.append(f"baseline diff: counter '{key}' missing from "
                          f"current {current_path.name}")
            continue
        cur = cur_values[key]
        if not (math.isfinite(base) and math.isfinite(cur)):
            errors.append(f"baseline diff: '{key}' not comparable "
                          f"(baseline={base}, current={cur})")
            continue
        if base == 0:
            # A zero baseline carries meaning of its own (e.g. a tenant
            # whose queries all hit the cache, or the zero-residue
            # unattributed-steps pin): staying zero is fine, waking up is
            # exactly the drift the diff exists to surface.
            marker = "ok  " if cur == 0 else "FAIL"
            print(f"{marker} {key}: baseline=0 current={cur:.6g}")
            if cur != 0:
                errors.append(f"baseline diff: '{key}' was 0 at baseline, "
                              f"now {cur:.6g}")
            continue
        rel = (cur - base) / abs(base)
        if higher_is_better(key):
            ok = rel >= -tolerance  # only a drop is a regression
        elif lower_is_better(key):
            ok = rel <= tolerance  # only a rise is a regression
        else:
            ok = abs(rel) <= tolerance
        marker = "ok  " if ok else "FAIL"
        print(f"{marker} {key}: baseline={base:.6g} current={cur:.6g} "
              f"({rel:+.1%})")
        if not ok:
            errors.append(
                f"baseline diff: '{key}' regressed {rel:+.1%} "
                f"(tolerance {tolerance:.0%}): baseline={base:.6g}, "
                f"current={cur:.6g}")

    # Counters that exist only in the CURRENT artifact are reported but
    # never fail the diff: a bench adding instrumentation (new counters)
    # must not force a baseline refresh — the committed baseline is only a
    # floor for the counters it already records.
    new_keys = sorted(k for k in cur_values
                      if counter_re.search(k) and k not in base_values)
    for key in new_keys:
        print(f"new  {key}: current={cur_values[key]:.6g} "
              f"(not in baseline; informational only)")
    return errors


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Validate (and optionally baseline-diff) BENCH_*.json "
                    "telemetry artifacts")
    parser.add_argument("directory", type=Path,
                        help="directory holding the BENCH_*.json artifacts")
    parser.add_argument("expected_count", type=int, nargs="?", default=None,
                        help="minimum number of artifacts expected")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_*.json to diff `values` "
                             "counters against")
    parser.add_argument("--counters",
                        default=r"^bm\.BM_RandomTour.*\.items_per_second$",
                        help="regex selecting which baseline counters to "
                             "diff (default: BM_RandomTour* items/s)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative tolerance per counter (default 0.25)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report baseline-diff violations without "
                             "failing (structural validation still fails); "
                             "for drift-watch counters like the per-tenant "
                             "cost.* accounting, where a shift is a signal "
                             "to read, not a regression to block on")
    return parser.parse_args(argv)


def main(argv=None):
    args = parse_args(argv)
    files = sorted(args.directory.glob("BENCH_*.json"))
    if not files:
        print(f"error: no BENCH_*.json files in {args.directory}")
        return 1
    if args.expected_count is not None and len(files) < args.expected_count:
        print(f"error: expected >= {args.expected_count} artifacts, found "
              f"{len(files)}")
        return 1

    failed = False
    for path in files:
        errors = check_file(path)
        status = "FAIL" if errors else "ok"
        print(f"{status:4} {path.name}")
        for e in errors:
            print(f"     - {e}")
        failed = failed or bool(errors)
    print(f"{len(files)} artifacts checked")

    if args.baseline is not None:
        diff_errors = diff_against_baseline(
            files, args.baseline, re.compile(args.counters), args.tolerance)
        for e in diff_errors:
            print(f"     - {e}")
        if diff_errors and args.warn_only:
            print(f"warn: {len(diff_errors)} baseline-diff violation(s) "
                  f"reported but not fatal (--warn-only)")
        else:
            failed = failed or bool(diff_errors)

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Validate BENCH_*.json telemetry artifacts emitted by the bench binaries.

Usage: validate_bench_json.py <telemetry-dir> [expected-count]

Checks every BENCH_*.json in the directory:
  * parses as JSON (the writer is home-grown, so this is a real check);
  * carries the schema version and the required top-level sections;
  * meta records n/seed/threads/fast/git_rev;
  * every series point is a finite [x, y] pair;
  * every batch stats object has the runtime counter fields;
  * every histogram summary is internally consistent (count vs buckets,
    percentile ordering p50 <= p90 <= p99 within [min, max]).

Exits non-zero, printing per-file errors, when anything is off.
"""
import json
import math
import sys
from pathlib import Path

REQUIRED_TOP = [
    "schema",
    "bench",
    "description",
    "meta",
    "paper_notes",
    "series",
    "batches",
    "histograms",
    "walk_stats",
    "values",
]
REQUIRED_META = ["n", "seed", "threads", "fast", "git_rev"]
REQUIRED_BATCH = [
    "tasks",
    "steps",
    "wall_s",
    "cpu_s",
    "steps_per_s",
    "parallel_efficiency",
    "threads",
]
REQUIRED_HIST = ["count", "sum", "mean", "min", "max", "p50", "p90", "p99",
                 "buckets"]


def check_histogram(h, where, errors):
    for key in REQUIRED_HIST:
        if key not in h:
            errors.append(f"{where}: histogram missing '{key}'")
            return
    bucket_total = sum(count for _, count in h["buckets"])
    if bucket_total != h["count"]:
        errors.append(
            f"{where}: bucket counts sum to {bucket_total}, count says "
            f"{h['count']}")
    if h["count"] == 0:
        return  # empty histograms have null min/max and null percentiles
    if not (h["min"] <= h["p50"] <= h["p90"] <= h["p99"] <= h["max"]):
        errors.append(
            f"{where}: percentiles not ordered within [min, max]: "
            f"min={h['min']} p50={h['p50']} p90={h['p90']} p99={h['p99']} "
            f"max={h['max']}")


def check_file(path):
    errors = []
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        return [f"does not parse: {e}"]

    for key in REQUIRED_TOP:
        if key not in doc:
            errors.append(f"missing top-level key '{key}'")
    if errors:
        return errors

    if doc["schema"] != 1:
        errors.append(f"unexpected schema version {doc['schema']}")
    if not doc["bench"]:
        errors.append("empty bench name")
    for key in REQUIRED_META:
        if key not in doc["meta"]:
            errors.append(f"meta missing '{key}'")

    for series in doc["series"]:
        name = series.get("name", "<unnamed>")
        for point in series.get("points", []):
            if (len(point) != 2
                    or any(p is None or not math.isfinite(p) for p in point)):
                errors.append(f"series '{name}': bad point {point}")
                break

    for batch in doc["batches"]:
        label = batch.get("label", "<unlabelled>")
        stats = batch.get("stats", {})
        for key in REQUIRED_BATCH:
            if key not in stats:
                errors.append(f"batch '{label}': stats missing '{key}'")

    for hist in doc["histograms"]:
        label = hist.get("label", "<unlabelled>")
        check_histogram(hist.get("summary", {}), f"histogram '{label}'",
                        errors)

    for walk in doc["walk_stats"]:
        label = walk.get("label", "<unlabelled>")
        stats = walk.get("stats", {})
        for key in ("walks", "visits", "tour_steps", "sample_hops"):
            if key not in stats:
                errors.append(f"walk_stats '{label}': missing '{key}'")
        for hist_key in ("tour_steps", "sample_hops", "collision_gaps"):
            if hist_key in stats:
                check_histogram(stats[hist_key],
                                f"walk_stats '{label}'.{hist_key}", errors)

    # Every artifact must carry machine-readable runtime counters and at
    # least one cost distribution — that is the point of the telemetry.
    if not doc["batches"]:
        errors.append("no batches recorded")
    if not doc["histograms"] and not doc["walk_stats"]:
        errors.append("no histograms or walk_stats recorded")
    return errors


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    directory = Path(sys.argv[1])
    files = sorted(directory.glob("BENCH_*.json"))
    if not files:
        print(f"error: no BENCH_*.json files in {directory}")
        return 1
    if len(sys.argv) > 2 and len(files) < int(sys.argv[2]):
        print(f"error: expected >= {sys.argv[2]} artifacts, found "
              f"{len(files)}")
        return 1

    failed = False
    for path in files:
        errors = check_file(path)
        status = "FAIL" if errors else "ok"
        print(f"{status:4} {path.name}")
        for e in errors:
            print(f"     - {e}")
        failed = failed or bool(errors)
    print(f"{len(files)} artifacts checked")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

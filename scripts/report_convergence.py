#!/usr/bin/env python3
"""Render convergence time-series JSON (obs/timeseries.cpp) as a terminal
report: the estimate-vs-truth trajectory, the spend axis, and a verdict on
whether the run converged.

Usage: report_convergence.py <timeseries.json>... [--rel-tol F] [--strict]

For each file (schema 1: {schema, kind, truth, points: [{walks, steps,
estimate, half_width, wall_s}]}):
  * prints one row per point: walks, cumulative steps, estimate, relative
    error against the truth (when known), and the predicted half-width;
  * draws an ASCII trajectory of the relative error on a log-ish scale;
  * declares the run CONVERGED when the final estimate is within --rel-tol
    of the truth (default 0.15), and reports the first point from which the
    trajectory stayed inside that band;
  * flags NON-CONVERGENCE (exit 1 with --strict) otherwise, or when the
    trajectory is empty.

Files without a recorded truth are reported descriptively (no verdict):
the script still prints the trajectory and the half-width column so drift
is visible.
"""
import argparse
import json
import math
import sys
from pathlib import Path

BAR_WIDTH = 40


def fmt(x, width=12):
    if x is None or (isinstance(x, float) and not math.isfinite(x)):
        return "-".rjust(width)
    if isinstance(x, float):
        return f"{x:.4g}".rjust(width)
    return str(x).rjust(width)


def error_bar(rel_err):
    """|####      | — bar length ~ log10 of the relative error, so one
    character is roughly a fifth of a decade; full bar at >= 100% error."""
    if rel_err is None or not math.isfinite(rel_err):
        return " " * BAR_WIDTH
    if rel_err <= 0:
        return ""
    # map [1e-4, 1] -> [0, BAR_WIDTH]
    scaled = (math.log10(max(rel_err, 1e-4)) + 4.0) / 4.0
    return "#" * max(1, round(scaled * BAR_WIDTH))


def report(path, rel_tol):
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL {path}: does not parse: {e}")
        return False
    if doc.get("schema") != 1:
        print(f"FAIL {path}: unexpected schema {doc.get('schema')!r}")
        return False
    points = doc.get("points", [])
    truth = doc.get("truth")
    kind = doc.get("kind", "?")
    print(f"== {path.name}: {kind}, {len(points)} points, "
          f"truth={'unknown' if truth is None else f'{truth:g}'}")
    if not points:
        print("FAIL: empty trajectory")
        return False

    header = (f"{'walks':>10} {'steps':>14} {'estimate':>12} "
              f"{'rel_err':>12} {'pred_hw':>12} {'wall_s':>9}  trajectory")
    print(header)
    settled = None
    for i, p in enumerate(points):
        rel = None
        if truth:
            rel = abs(p["estimate"] - truth) / abs(truth)
            if rel <= rel_tol:
                if settled is None:
                    settled = i
            else:
                settled = None
        print(f"{p['walks']:>10} {p['steps']:>14} "
              f"{fmt(p['estimate'])} {fmt(rel)} {fmt(p.get('half_width'))} "
              f"{p['wall_s']:>9.3f}  |{error_bar(rel)}")

    if truth is None:
        print("note: no ground truth recorded; descriptive report only")
        return True
    final_rel = abs(points[-1]["estimate"] - truth) / abs(truth)
    if settled is not None:
        p = points[settled]
        print(f"CONVERGED: within {rel_tol:.0%} of truth from walk "
              f"{p['walks']} ({p['steps']} steps, {p['wall_s']:.3f}s); "
              f"final rel_err {final_rel:.2%}")
        return True
    print(f"NON-CONVERGENCE: final estimate {points[-1]['estimate']:.4g} "
          f"is {final_rel:.1%} from truth {truth:g} "
          f"(tolerance {rel_tol:.0%})")
    return False


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Report convergence trajectories recorded by "
                    "TimeSeriesRecorder")
    parser.add_argument("files", type=Path, nargs="+",
                        help="timeseries JSON file(s)")
    parser.add_argument("--rel-tol", type=float, default=0.15,
                        help="relative tolerance for the converged verdict "
                             "(default 0.15)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any run fails to converge")
    args = parser.parse_args(argv)

    ok = True
    for path in args.files:
        ok = report(path, args.rel_tol) and ok
        print()
    return 0 if ok or not args.strict else 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Fold a Chrome-trace capture into collapsed stacks for flamegraphs.

Usage: flamegraph.py <input> [--out FILE]

<input> is either a flight-recorder bundle directory (uses its trace.json,
plus costs.json — when present — to name cost contexts) or a trace.json
file written by obs/trace.hpp.

The folder mirrors obs/cost/flame.cpp exactly, so the Python output for a
bundle matches the profile.folded the C++ side wrote into it:

  * only complete ('X') spans count, grouped per thread;
  * spans sort by start ascending then duration DESCENDING, and nest by
    interval containment (a span ends before another starts => siblings);
  * each span contributes its EXCLUSIVE microseconds (duration minus the
    time covered by nested spans) to its full stack path;
  * a span carrying a non-zero cost_ctx argument is an attribution
    boundary: "tenant=<t>;query=<id>" frames (from costs.json's
    context_table, else "ctx=<id>") are spliced in above it;
  * output lines are "frame;frame;... <us>", sorted by stack path — byte
    stable for identical traces.

Feed the output straight to a renderer, e.g.:
  flamegraph.py flight-0-slo_breach/ --out profile.folded
  flamegraph.pl profile.folded > profile.svg

Exits non-zero when the trace holds no complete spans (an empty profile is
always a wiring bug, not a quiet success).
"""
import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path


def attribution_frames(ctx, contexts):
    info = contexts.get(ctx)
    if info is None:
        return f"ctx={ctx}"
    tenant = str(info.get("tenant", "?"))
    tenant = tenant.replace(";", "_").replace(" ", "_")
    return f"tenant={tenant};query={info.get('query_id', 0)}"


def fold(events, contexts):
    """Collapsed stacks {path: exclusive_us} from Chrome-trace events."""
    by_tid = defaultdict(list)
    for e in events:
        if e.get("ph") == "X":
            by_tid[e.get("tid", 0)].append(e)

    folded = defaultdict(int)

    def close(stack):
        top = stack.pop()
        exclusive = top["dur"] - top["child"]
        if exclusive > 0:
            folded[top["path"]] += exclusive

    for tid in sorted(by_tid):
        spans = sorted(by_tid[tid], key=lambda e: (e["ts"], -e.get("dur", 0)))
        stack = []
        for e in spans:
            ts, dur = e["ts"], e.get("dur", 0)
            while stack and stack[-1]["end"] <= ts:
                close(stack)
            frame = e.get("name", "?")
            ctx = e.get("args", {}).get("cost_ctx", 0)
            if ctx:
                frame = attribution_frames(ctx, contexts) + ";" + frame
            path = stack[-1]["path"] + ";" + frame if stack else frame
            if stack:
                stack[-1]["child"] += dur
            stack.append({"path": path, "end": ts + dur, "dur": dur,
                          "child": 0})
        while stack:
            close(stack)
    return folded


def load_contexts(costs_path):
    """ctx id -> context row, from costs.json's context_table."""
    try:
        doc = json.loads(costs_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"# flamegraph: ignoring {costs_path}: {e}", file=sys.stderr)
        return {}
    return {row["ctx"]: row for row in doc.get("context_table", [])
            if isinstance(row, dict) and "ctx" in row}


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fold a trace into collapsed flamegraph stacks")
    parser.add_argument("input", type=Path,
                        help="flight bundle directory or trace.json file")
    parser.add_argument("--out", type=Path, default=None,
                        help="output file (default stdout)")
    args = parser.parse_args(argv)

    if args.input.is_dir():
        trace_path = args.input / "trace.json"
        costs_path = args.input / "costs.json"
    else:
        trace_path = args.input
        costs_path = args.input.parent / "costs.json"
    if not trace_path.is_file():
        print(f"FAIL: no trace at {trace_path}", file=sys.stderr)
        return 1

    try:
        trace = json.loads(trace_path.read_text())
    except json.JSONDecodeError as e:
        print(f"FAIL: {trace_path} does not parse: {e}", file=sys.stderr)
        return 1
    events = trace.get("traceEvents", [])
    contexts = load_contexts(costs_path) if costs_path.is_file() else {}

    folded = fold(events, contexts)
    if not folded:
        print(f"FAIL: {trace_path} holds no complete ('X') spans — "
              "nothing to fold", file=sys.stderr)
        return 1

    lines = "".join(f"{path} {us}\n" for path, us in sorted(folded.items()))
    if args.out is None:
        sys.stdout.write(lines)
    else:
        args.out.write_text(lines)
        print(f"# flamegraph: {len(folded)} stacks -> {args.out}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Validate flight-recorder bundles written by obs/health/flight.cpp.

Usage: validate_flight.py <dir> [options]

<dir> is either one bundle (contains manifest.json) or a flight directory
holding flight-<seq>-<reason>/ bundles, in which case every bundle is
validated and at least one must exist.

Per bundle:
  * manifest.json parses, schema == 1, has reason / seq / ts_us, carries
    provenance (a non-empty git_rev string and an integer bench_schema),
    and its `files` array lists only files that exist in the bundle and
    are non-empty;
  * profile.folded (when present) is a valid collapsed-stack file: every
    line is "frame[;frame...] <positive integer>";
  * metrics.json parses and carries counters/gauges/histograms objects;
  * trace.json (when present) passes the full validate_trace.py check;
    at least ONE bundle must carry --min-flow-links flow arrows — this is
    how CI proves a stall bundle captured walk traces that really chain
    across shards (early bundles, dumped before any handoff thawed, may
    legitimately hold flows with no links yet);
  * health_events.jsonl (when present) parses line by line, every event
    carries seq/ts_us/severity/code/subsystem/message, severities are
    info/warn/critical, and seqs are strictly increasing;
  * each --require-code CODE appears on at least one health event in at
    least one bundle (e.g. shard.superstep_stall for the stall drill,
    serve.slo_breach for the broker-stall drill).

Exits non-zero with per-check errors when anything is off.
"""
import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from validate_trace import check_trace  # noqa: E402

SEVERITIES = {"info", "warn", "critical"}
EVENT_KEYS = {"seq", "ts_us", "severity", "code", "subsystem", "message"}


def check_health_events(path):
    errors = []
    codes = set()
    prev_seq = -1
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            errors.append(f"{path}:{lineno}: blank line in JSONL")
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{path}:{lineno}: does not parse: {e}")
            continue
        missing = EVENT_KEYS - event.keys()
        if missing:
            errors.append(
                f"{path}:{lineno}: missing keys {sorted(missing)}")
            continue
        if event["severity"] not in SEVERITIES:
            errors.append(
                f"{path}:{lineno}: unknown severity {event['severity']!r}")
        seq = event["seq"]
        if not isinstance(seq, int) or seq <= prev_seq:
            errors.append(
                f"{path}:{lineno}: seq {seq!r} not strictly increasing "
                f"(previous {prev_seq})")
        else:
            prev_seq = seq
        codes.add(event["code"])
    return errors, codes


def check_collapsed(path):
    """Collapsed-stack format: 'frame[;frame...] <count>' per line."""
    errors = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        stack, sep, count = line.rpartition(" ")
        if not sep or not stack:
            errors.append(f"{path}:{lineno}: not 'stack count': {line!r}")
            continue
        if not count.isdigit() or int(count) <= 0:
            errors.append(
                f"{path}:{lineno}: count {count!r} is not a positive int")
        if any(not frame for frame in stack.split(";")):
            errors.append(f"{path}:{lineno}: empty frame in {stack!r}")
    return errors


def check_bundle(bundle, min_flow_links):
    """Returns (errors, health-event codes, whether the bundle's trace met
    the flow-link floor)."""
    errors = []
    codes = set()
    flow_ok = min_flow_links == 0
    manifest_path = bundle / "manifest.json"
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [f"{manifest_path}: does not parse: {e}"], codes, flow_ok

    if manifest.get("schema") != 1:
        errors.append(f"{manifest_path}: schema is {manifest.get('schema')!r},"
                      " expected 1")
    for key in ("reason", "seq", "ts_us", "git_rev", "bench_schema"):
        if key not in manifest:
            errors.append(f"{manifest_path}: missing {key!r}")
    git_rev = manifest.get("git_rev")
    if "git_rev" in manifest and (
            not isinstance(git_rev, str) or not git_rev):
        errors.append(f"{manifest_path}: git_rev {git_rev!r} is not a "
                      "non-empty string")
    bench_schema = manifest.get("bench_schema")
    if "bench_schema" in manifest and not isinstance(bench_schema, int):
        errors.append(f"{manifest_path}: bench_schema {bench_schema!r} is "
                      "not an integer")
    files = manifest.get("files")
    if not isinstance(files, list) or not files:
        errors.append(f"{manifest_path}: files is not a non-empty array")
        files = []
    for name in files:
        member = bundle / name
        if not member.is_file():
            errors.append(f"{bundle}: manifest lists missing file {name!r}")
        elif member.stat().st_size == 0 and name != "health_events.jsonl":
            # An empty event log is a healthy run; everything else empty
            # means the dump was cut short.
            errors.append(f"{member}: empty")

    metrics = bundle / "metrics.json"
    if metrics.is_file():
        try:
            doc = json.loads(metrics.read_text())
            for section in ("counters", "gauges", "histograms"):
                if not isinstance(doc.get(section), dict):
                    errors.append(f"{metrics}: no {section!r} object")
        except json.JSONDecodeError as e:
            errors.append(f"{metrics}: does not parse: {e}")
    else:
        errors.append(f"{bundle}: no metrics.json")

    trace = bundle / "trace.json"
    if trace.is_file():
        trace_errors = check_trace(trace, min_events=0, require_cats=[],
                                   min_flow_links=min_flow_links)
        # The flow-link floor is a per-RUN requirement (any bundle may
        # satisfy it); every other trace error is fatal per bundle.
        flow_ok = not any("flow link(s)" in e for e in trace_errors)
        errors.extend(e for e in trace_errors if "flow link(s)" not in e)

    folded = bundle / "profile.folded"
    if folded.is_file():
        errors.extend(check_collapsed(folded))

    jsonl = bundle / "health_events.jsonl"
    if jsonl.is_file():
        jsonl_errors, codes = check_health_events(jsonl)
        errors.extend(jsonl_errors)
    return errors, codes, flow_ok


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Validate flight-recorder bundles")
    parser.add_argument("dir", type=Path,
                        help="a bundle, or a directory of flight-* bundles")
    parser.add_argument("--min-flow-links", type=int, default=0,
                        help="flow arrows required in each bundle's "
                             "trace.json (default 0)")
    parser.add_argument("--require-code", action="append", default=[],
                        help="health-event code that must appear in at "
                             "least one bundle (repeatable)")
    args = parser.parse_args(argv)

    if (args.dir / "manifest.json").is_file():
        bundles = [args.dir]
    else:
        bundles = sorted(p for p in args.dir.glob("flight-*")
                         if (p / "manifest.json").is_file())
    if not bundles:
        print(f"FAIL: no flight bundles under {args.dir}", file=sys.stderr)
        return 1

    errors = []
    all_codes = set()
    any_flow_ok = False
    for bundle in bundles:
        bundle_errors, codes, flow_ok = check_bundle(bundle,
                                                     args.min_flow_links)
        errors.extend(bundle_errors)
        all_codes |= codes
        any_flow_ok = any_flow_ok or flow_ok
    if args.min_flow_links > 0 and not any_flow_ok:
        errors.append(f"{args.dir}: no bundle's trace.json carries >= "
                      f"{args.min_flow_links} flow link(s)")
    for code in args.require_code:
        if code not in all_codes:
            errors.append(f"{args.dir}: no bundle carries health event "
                          f"code {code!r} (saw {sorted(all_codes)})")

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print(f"OK: {len(bundles)} bundle(s) valid "
          f"({sum(1 for _ in all_codes)} distinct health codes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

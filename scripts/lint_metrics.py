#!/usr/bin/env python3
"""Lint metric NAMES in a Prometheus text-exposition scrape.

Usage: lint_metrics.py <scrape.txt> [more.txt ...] [--allow-prefix P ...]

validate_trace.py --prometheus checks the exposition FORMAT (types, label
syntax, cumulative buckets); this linter checks the naming conventions the
repo's dashboards and baseline diffs rely on, so a new counter can't
quietly land as `WalkSteps` or `serve_latency` (unit-less) and fragment
the metric namespace:

  * names are lowercase `[a-z][a-z0-9_]*` — no camelCase, no colons;
  * every family lives under a known subsystem prefix (walk_, shard_,
    serve_, cost_, audit_, health_, des_, monitor_ — extend with
    --allow-prefix when a new subsystem is born);
  * counters end in `_total` exactly once (the renderer appends it;
    a doubled `_total_total` means the source name already carried it);
  * gauges and histograms never end in `_total` (that suffix is the
    counter marker);
  * duration-flavoured names (latency/wait/wall/age/ttl) carry an explicit
    time unit (`_us`, `_ms` or `_s`) so no dashboard has to guess;
  * a family is declared by `# TYPE` exactly once per scrape.

Exits non-zero listing every violation; prints a per-file family count on
success so CI logs show the linter actually saw the scrape.
"""
import argparse
import re
import sys
from pathlib import Path

DEFAULT_PREFIXES = [
    "audit", "cost", "des", "health", "monitor", "serve", "shard", "walk",
]
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
TIME_WORD_RE = re.compile(r"(latency|wait|wall|age|ttl)")
TIME_UNIT_RE = re.compile(r"_(us|ms|s)$")


def logical_name(family, kind):
    """The source-level name a family was registered under."""
    if kind == "counter" and family.endswith("_total"):
        return family[: -len("_total")]
    return family


def lint_file(path, prefixes):
    errors = []
    families = {}  # name -> type
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not line.startswith("# TYPE "):
            continue
        parts = line.split()
        if len(parts) != 4:
            errors.append(f"{path.name}:{lineno}: malformed TYPE line: "
                          f"{line!r}")
            continue
        name, kind = parts[2], parts[3]
        if name in families:
            errors.append(f"{path.name}:{lineno}: family '{name}' declared "
                          f"twice")
            continue
        families[name] = kind

        if not NAME_RE.match(name):
            errors.append(f"{path.name}:{lineno}: '{name}' is not lowercase "
                          f"[a-z][a-z0-9_]*")
            continue
        base = logical_name(name, kind)
        prefix = base.split("_", 1)[0]
        if prefix not in prefixes:
            errors.append(
                f"{path.name}:{lineno}: '{name}' is outside every known "
                f"subsystem prefix ({', '.join(sorted(prefixes))}); add "
                f"--allow-prefix {prefix} only if a new subsystem really "
                f"exists")
        if kind == "counter":
            if not name.endswith("_total"):
                errors.append(f"{path.name}:{lineno}: counter '{name}' must "
                              f"end in _total")
            elif name.endswith("_total_total"):
                errors.append(f"{path.name}:{lineno}: counter '{name}' "
                              f"doubles the _total suffix — drop it from "
                              f"the source name")
        elif name.endswith("_total"):
            errors.append(f"{path.name}:{lineno}: {kind} '{name}' ends in "
                          f"_total, the counter marker")
        if TIME_WORD_RE.search(base) and not TIME_UNIT_RE.search(base):
            errors.append(f"{path.name}:{lineno}: '{name}' reads like a "
                          f"duration but carries no _us/_ms/_s unit suffix")
    if not families:
        errors.append(f"{path.name}: no # TYPE families found — not a "
                      f"Prometheus text scrape?")
    return errors, len(families)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Lint metric naming conventions in Prometheus scrapes")
    parser.add_argument("files", nargs="+", type=Path)
    parser.add_argument("--allow-prefix", action="append", default=[],
                        help="additional subsystem prefix to accept")
    args = parser.parse_args(argv)

    prefixes = set(DEFAULT_PREFIXES) | set(args.allow_prefix)
    failed = False
    for path in args.files:
        try:
            errors, count = lint_file(path, prefixes)
        except OSError as e:
            errors, count = [f"{path}: unreadable: {e}"], 0
        if errors:
            failed = True
            for e in errors:
                print(f"error: {e}")
        else:
            print(f"ok   {path.name}: {count} families, all names "
                  f"conventional")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Validate Chrome/Perfetto trace_event JSON emitted by obs/trace.cpp.

Usage: validate_trace.py <trace.json> [--min-events N] [--require-cat CAT]...

Checks that the file is what ui.perfetto.dev / chrome://tracing will accept:
  * parses as JSON with a `traceEvents` array;
  * every event has name/ph/pid/tid/ts; `ph` is one of X/i/M/s/t/f;
  * complete ('X') events carry a non-negative integer `dur`;
  * instant ('i') events carry a scope `s`;
  * flow events ('s'/'t'/'f') carry a positive integer `id`, and steps and
    finishes bind to the enclosing slice (`bp` == "e");
  * metadata ('M') events name the process and every tid that appears;
  * timestamps are non-negative integers (microseconds);
  * at least --min-events non-metadata events were recorded;
  * at least --min-flow-links flow arrows exist (consecutive flow events
    sharing an id draw one arrow; the health smoke test uses this to prove
    a walk's trace really links across >= 2 shard handoffs);
  * each --require-cat category appears on at least one event (so the CI
    smoke test proves the runner, walk and estimator instrumentation all
    actually fired).

Also validates the Prometheus side when --prometheus FILE is given: the
exposition text must carry a `# HELP` AND a `# TYPE` comment for every
metric family (gauges and zero-observation histograms included), metric
names must match [a-zA-Z_:][a-zA-Z0-9_:]*, histogram series must have
non-decreasing cumulative buckets ending in an `+Inf` bucket equal to
`_count`.

Exits non-zero with per-check errors when anything is off.
"""
import argparse
import json
import re
import sys
from pathlib import Path

METRIC_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+NaInf-]+)$")
TYPE_LINE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")
HELP_LINE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.+)$")


def check_trace(path, min_events, require_cats, min_flow_links=0):
    errors = []
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: does not parse: {e}"]

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents array"]

    seen_tids = set()
    named_tids = set()
    process_named = False
    cats = set()
    payload = 0
    flow_counts = {}
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                errors.append(f"{where}: missing '{key}'")
        ph = e.get("ph")
        if ph not in ("X", "i", "M", "s", "t", "f"):
            errors.append(f"{where}: unexpected phase {ph!r}")
            continue
        if ph == "M":
            if e.get("name") == "process_name":
                process_named = True
            elif e.get("name") == "thread_name":
                named_tids.add(e.get("tid"))
            continue
        payload += 1
        cats.add(e.get("cat", ""))
        seen_tids.add(e.get("tid"))
        ts = e.get("ts")
        if not isinstance(ts, int) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, int) or dur < 0:
                errors.append(f"{where}: 'X' event with bad dur {dur!r}")
        if ph == "i" and e.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}: 'i' event with bad scope "
                          f"{e.get('s')!r}")
        if ph in ("s", "t", "f"):
            flow_id = e.get("id")
            if not isinstance(flow_id, int) or flow_id < 1:
                errors.append(f"{where}: '{ph}' event with bad id "
                              f"{flow_id!r}")
            else:
                flow_counts[flow_id] = flow_counts.get(flow_id, 0) + 1
            if ph in ("t", "f") and e.get("bp") != "e":
                errors.append(f"{where}: '{ph}' event without bp='e' "
                              "(must bind to its enclosing slice)")

    if not process_named:
        errors.append("no process_name metadata event")
    unnamed = seen_tids - named_tids
    if unnamed:
        errors.append(f"tids without thread_name metadata: {sorted(unnamed)}")
    if payload < min_events:
        errors.append(f"only {payload} non-metadata events recorded, "
                      f"expected >= {min_events}")
    # Each consecutive pair of flow events with the same id is one rendered
    # arrow (s->t, t->t, t->f), so a chain of k events contributes k-1 links.
    flow_links = sum(n - 1 for n in flow_counts.values() if n > 1)
    if flow_links < min_flow_links:
        errors.append(f"only {flow_links} flow link(s) across "
                      f"{len(flow_counts)} flow id(s), expected >= "
                      f"{min_flow_links}")
    for cat in require_cats:
        if cat not in cats:
            errors.append(f"required category '{cat}' never recorded "
                          f"(saw: {sorted(c for c in cats if c)})")
    if not errors:
        print(f"ok   {path.name}: {payload} events, "
              f"{len(seen_tids)} thread(s), {flow_links} flow link(s), "
              f"categories {sorted(c for c in cats if c)}")
    return errors


def check_prometheus(path):
    errors = []
    try:
        text = path.read_text()
    except OSError as e:
        return [f"{path}: unreadable: {e}"]

    declared = {}
    helped = set()
    samples = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            m = TYPE_LINE.match(line)
            if m is not None:
                declared[m.group(1)] = m.group(2)
                continue
            m = HELP_LINE.match(line)
            if m is not None:
                helped.add(m.group(1))
                continue
            errors.append(f"{path.name}:{lineno}: bad comment line "
                          f"{line!r}")
            continue
        m = METRIC_LINE.match(line)
        if m is None:
            errors.append(f"{path.name}:{lineno}: bad sample line {line!r}")
            continue
        samples.setdefault(m.group(1), []).append(
            (m.group(2) or "", m.group(3)))

    if not declared:
        errors.append(f"{path.name}: no # TYPE declarations")
    for name, kind in declared.items():
        if name not in helped:
            errors.append(f"{name}: # TYPE without # HELP "
                          f"(every {kind} family needs both)")
        if kind == "histogram":
            buckets = samples.get(name + "_bucket", [])
            counts = [float(v) for _, v in buckets]
            if counts != sorted(counts):
                errors.append(f"{name}: bucket counts not cumulative")
            if not buckets or 'le="+Inf"' not in buckets[-1][0]:
                errors.append(f"{name}: histogram without +Inf bucket")
            count_sample = samples.get(name + "_count")
            if count_sample is None:
                errors.append(f"{name}: histogram without _count")
            elif counts and float(count_sample[0][1]) != counts[-1]:
                errors.append(f"{name}: +Inf bucket {counts[-1]} != _count "
                              f"{count_sample[0][1]}")
        elif name not in samples:
            errors.append(f"{name}: declared but no sample line")
    if not errors:
        print(f"ok   {path.name}: {len(declared)} metrics "
              f"({sum(len(v) for v in samples.values())} samples)")
    return errors


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Validate trace_event JSON (and optionally Prometheus "
                    "exposition text)")
    parser.add_argument("trace", type=Path, nargs="?", default=None,
                        help="trace_event JSON file (optional when only "
                             "--prometheus is being validated)")
    parser.add_argument("--min-events", type=int, default=1,
                        help="minimum non-metadata events (default 1)")
    parser.add_argument("--require-cat", action="append", default=[],
                        help="category that must appear on >= 1 event "
                             "(repeatable)")
    parser.add_argument("--min-flow-links", type=int, default=0,
                        help="minimum flow arrows (consecutive same-id flow "
                             "events) the trace must contain (default 0)")
    parser.add_argument("--prometheus", type=Path, default=None,
                        help="Prometheus exposition text file to validate "
                             "as well")
    args = parser.parse_args(argv)
    if args.trace is None and args.prometheus is None:
        parser.error("nothing to validate: give a trace file and/or "
                     "--prometheus FILE")

    errors = []
    if args.trace is not None:
        errors += check_trace(args.trace, args.min_events, args.require_cat,
                              args.min_flow_links)
    if args.prometheus is not None:
        errors += check_prometheus(args.prometheus)
    for e in errors:
        print(f"     - {e}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())

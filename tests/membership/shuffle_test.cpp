#include "membership/shuffle.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/random_tour.hpp"
#include "core/sample_collide.hpp"
#include "graph/connectivity.hpp"
#include "spectral/laplacian.hpp"
#include "util/stats.hpp"

namespace overcount {
namespace {

TEST(ShuffleMembership, BootstrapInvariants) {
  ShuffleMembership m(200, 8, Rng(1));
  EXPECT_EQ(m.num_peers(), 200u);
  EXPECT_TRUE(m.check_invariants());
  for (NodeId v = 0; v < 200; ++v)
    EXPECT_EQ(m.view_of(v).size(), 8u);
}

TEST(ShuffleMembership, OverlayStaysConnectedAcrossRounds) {
  ShuffleMembership m(500, 8, Rng(2));
  for (int epoch = 0; epoch < 5; ++epoch) {
    m.run_rounds(5);
    EXPECT_TRUE(m.check_invariants()) << "epoch " << epoch;
    EXPECT_TRUE(is_connected(m.overlay())) << "epoch " << epoch;
  }
}

TEST(ShuffleMembership, ShufflingRandomisesTheSeedRing) {
  ShuffleMembership m(400, 6, Rng(3));
  m.run_rounds(30);
  // After shuffling, only a small fraction of peers should still hold
  // their original ring successor.
  std::size_t still_ring = 0;
  for (NodeId v = 0; v < 400; ++v) {
    const auto& view = m.view_of(v);
    if (std::find(view.begin(), view.end(),
                  static_cast<NodeId>((v + 1) % 400)) != view.end())
      ++still_ring;
  }
  EXPECT_LT(still_ring, 60u);
}

TEST(ShuffleMembership, InDegreeConcentrates) {
  ShuffleMembership m(600, 8, Rng(4));
  m.run_rounds(30);
  const auto in_degree = m.in_degree_histogram();
  RunningStats stats;
  for (std::size_t d : in_degree) stats.add(static_cast<double>(d));
  EXPECT_NEAR(stats.mean(), 8.0, 0.01);  // conservation of view slots
  EXPECT_LT(stats.stddev(), 4.0);        // no hubs, no starvation
  EXPECT_GE(stats.min(), 1.0);
}

TEST(ShuffleMembership, OverlayIsAnExpander) {
  // The whole point of this maintenance style (paper Section 5.1): the
  // resulting overlay has a healthy spectral gap.
  ShuffleMembership m(1000, 8, Rng(5));
  m.run_rounds(20);
  const Graph g = m.overlay();
  EXPECT_GE(g.min_degree(), 4u);
  EXPECT_GT(spectral_gap_lanczos(g, 120), 0.5);
}

TEST(ShuffleMembership, EstimatorsRunOnTheMaintainedOverlay) {
  // Close the loop: maintain an overlay, then measure its size with both
  // of the paper's estimators.
  ShuffleMembership m(1500, 8, Rng(6));
  m.run_rounds(15);
  const Graph g = m.overlay();
  const double n = static_cast<double>(g.num_nodes());
  Rng rng(7);
  RunningStats tours;
  for (int t = 0; t < 1500; ++t)
    tours.add(random_tour_size(g, 0, rng).value);
  EXPECT_NEAR(tours.mean(), n, 5.0 * tours.stddev() / std::sqrt(1500.0));

  SampleCollideEstimator sc(g, 0, 6.0, 20, rng.split());
  RunningStats estimates;
  for (int t = 0; t < 10; ++t) estimates.add(sc.estimate().simple);
  EXPECT_NEAR(estimates.mean(), n,
              4.0 * estimates.stddev() / std::sqrt(10.0));
}

TEST(ShuffleMembership, JoinIntegratesNewPeer) {
  ShuffleMembership m(300, 8, Rng(8));
  m.run_rounds(10);
  const NodeId newcomer = m.join(5);
  EXPECT_EQ(newcomer, 300u);
  EXPECT_TRUE(m.check_invariants());
  EXPECT_GE(m.view_of(newcomer).size(), 2u);
  // The newcomer is reachable: someone's view contains it.
  const auto in_degree = m.in_degree_histogram();
  EXPECT_GE(in_degree[newcomer], 1u);
  // And after a few rounds it is fully woven into a connected overlay.
  m.run_rounds(5);
  EXPECT_TRUE(is_connected(m.overlay()));
}

TEST(ShuffleMembership, ManyJoinsKeepInvariants) {
  ShuffleMembership m(100, 6, Rng(9));
  for (int i = 0; i < 100; ++i) {
    const NodeId contact =
        static_cast<NodeId>(Rng(i).uniform_below(m.num_peers()));
    m.join(contact);
    if (i % 10 == 0) m.run_rounds(2);
  }
  EXPECT_EQ(m.num_peers(), 200u);
  EXPECT_TRUE(m.check_invariants());
  m.run_rounds(10);
  EXPECT_TRUE(is_connected(m.overlay()));
}

TEST(ShuffleMembership, LeavePurgesAllReferences) {
  ShuffleMembership m(200, 6, Rng(10));
  m.run_rounds(10);
  m.leave(17);
  EXPECT_FALSE(m.participating(17));
  EXPECT_TRUE(m.check_invariants());
  const auto in_degree = m.in_degree_histogram();
  EXPECT_EQ(in_degree[17], 0u);
  EXPECT_TRUE(m.view_of(17).empty());
  // Survivors repair their views over subsequent rounds and the overlay of
  // the remaining peers stays connected.
  m.run_rounds(5);
  const Graph g = m.overlay();
  EXPECT_EQ(component_size(g, 0), 199u);
}

TEST(ShuffleMembership, MassDeparturesSurvive) {
  ShuffleMembership m(300, 8, Rng(11));
  m.run_rounds(10);
  Rng pick(12);
  std::size_t departed = 0;
  while (departed < 100) {
    const auto v = static_cast<NodeId>(pick.uniform_below(300));
    if (!m.participating(v)) continue;
    m.leave(v);
    ++departed;
    if (departed % 20 == 0) m.run_rounds(2);
  }
  EXPECT_TRUE(m.check_invariants());
  m.run_rounds(5);
  // Find a surviving peer and check its component spans all survivors.
  const Graph g = m.overlay();
  NodeId survivor = 0;
  while (!m.participating(survivor)) ++survivor;
  EXPECT_EQ(component_size(g, survivor), 200u);
}

TEST(ShuffleMembership, LeaveTwiceRejected) {
  ShuffleMembership m(50, 4, Rng(13));
  m.leave(3);
  EXPECT_THROW(m.leave(3), precondition_error);
  EXPECT_THROW(m.join(3), precondition_error);
}

TEST(ShuffleMembership, PreconditionsEnforced) {
  EXPECT_THROW(ShuffleMembership(5, 8, Rng(1)), precondition_error);
  EXPECT_THROW(ShuffleMembership(10, 1, Rng(1)), precondition_error);
  ShuffleMembership m(50, 4, Rng(1));
  EXPECT_THROW(m.view_of(50), precondition_error);
  EXPECT_THROW(m.join(50), precondition_error);
}

}  // namespace
}  // namespace overcount

#include "sim/attributes.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/aggregate.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace overcount {
namespace {

TEST(PeerAttributes, DeterministicPerNode) {
  const PeerAttributes attrs(42);
  for (NodeId v = 0; v < 50; ++v) {
    const auto a = attrs.of(v);
    const auto b = attrs.of(v);
    EXPECT_EQ(a.link, b.link);
    EXPECT_DOUBLE_EQ(a.upload_mbps, b.upload_mbps);
    EXPECT_DOUBLE_EQ(a.uptime_hours, b.uptime_hours);
    EXPECT_EQ(a.region, b.region);
  }
}

TEST(PeerAttributes, SeedsProduceDifferentPopulations) {
  // Compare a continuous attribute: upload_mbps coincides whenever both
  // seeds classify a node as dial-up (fixed 0.05), which is expected.
  const PeerAttributes a(1);
  const PeerAttributes b(2);
  int differing = 0;
  for (NodeId v = 0; v < 100; ++v)
    if (a.of(v).uptime_hours != b.of(v).uptime_hours) ++differing;
  EXPECT_EQ(differing, 100);
}

TEST(PeerAttributes, MixFractionsRespected) {
  const PeerAttributes attrs(7);
  std::size_t dialup = 0;
  std::size_t dsl = 0;
  std::size_t fibre = 0;
  const std::size_t n = 20000;
  for (NodeId v = 0; v < n; ++v) {
    switch (attrs.of(v).link) {
      case LinkClass::kDialup: ++dialup; break;
      case LinkClass::kDsl: ++dsl; break;
      case LinkClass::kFibre: ++fibre; break;
    }
  }
  EXPECT_NEAR(static_cast<double>(dialup) / n, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(dsl) / n, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(fibre) / n, 0.2, 0.02);
}

TEST(PeerAttributes, BandwidthRangesPerClass) {
  const PeerAttributes attrs(9);
  for (NodeId v = 0; v < 2000; ++v) {
    const auto p = attrs.of(v);
    switch (p.link) {
      case LinkClass::kDialup:
        EXPECT_DOUBLE_EQ(p.upload_mbps, 0.05);
        break;
      case LinkClass::kDsl:
        EXPECT_GE(p.upload_mbps, 1.0);
        EXPECT_LE(p.upload_mbps, 10.0);
        break;
      case LinkClass::kFibre:
        EXPECT_GE(p.upload_mbps, 20.0);
        EXPECT_LE(p.upload_mbps, 100.0);
        break;
    }
    EXPECT_GE(p.uptime_hours, 0.0);
    EXPECT_LT(p.region, 4);
  }
}

TEST(PeerAttributes, RegionsRoughlyUniform) {
  const PeerAttributes attrs(11);
  std::vector<std::size_t> counts(4, 0);
  for (NodeId v = 0; v < 8000; ++v) ++counts[attrs.of(v).region];
  for (std::size_t r = 0; r < 4; ++r)
    EXPECT_NEAR(static_cast<double>(counts[r]) / 8000.0, 0.25, 0.03);
}

TEST(PeerAttributes, DrivesRandomTourAggregation) {
  // End-to-end: count fibre peers in region 2 via Random Tours.
  Rng rng(13);
  const Graph g = largest_component(balanced_random_graph(400, rng));
  const PeerAttributes attrs(21);
  double truth = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto p = attrs.of(v);
    if (p.link == LinkClass::kFibre && p.region == 2) truth += 1.0;
  }
  const auto est = estimate_count(
      g, 0,
      [&attrs](NodeId v) {
        const auto p = attrs.of(v);
        return p.link == LinkClass::kFibre && p.region == 2;
      },
      4000, rng);
  EXPECT_NEAR(est.value, truth, 5.0 * est.standard_error + 1e-9);
}

TEST(PeerAttributes, PreconditionsEnforced) {
  PeerAttributes::Mix bad;
  bad.dialup_fraction = 0.8;
  bad.dsl_fraction = 0.5;
  EXPECT_THROW(PeerAttributes(1, bad), precondition_error);
}

}  // namespace
}  // namespace overcount

#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace overcount {
namespace {

ScenarioResult sample_result() {
  ScenarioResult r;
  r.points.push_back({0, 100.0, 95.5, 95.5, 1200});
  r.points.push_back({1, 100.0, 104.25, 99.875, 1100});
  r.points.push_back({2, 99.0, 101.0, 100.25, 1300});
  r.total_messages = 3600;
  return r;
}

TEST(ScenarioCsv, RoundTripThroughStreams) {
  const auto original = sample_result();
  std::stringstream ss;
  write_scenario_csv(ss, original);
  const auto back = read_scenario_csv(ss);
  ASSERT_EQ(back.points.size(), original.points.size());
  for (std::size_t i = 0; i < back.points.size(); ++i) {
    EXPECT_EQ(back.points[i].run, original.points[i].run);
    EXPECT_DOUBLE_EQ(back.points[i].actual_size,
                     original.points[i].actual_size);
    EXPECT_DOUBLE_EQ(back.points[i].estimate, original.points[i].estimate);
    EXPECT_DOUBLE_EQ(back.points[i].windowed, original.points[i].windowed);
    EXPECT_EQ(back.points[i].messages, original.points[i].messages);
  }
  EXPECT_EQ(back.total_messages, original.total_messages);
}

TEST(ScenarioCsv, HeaderIsMandatory) {
  std::stringstream ss("1,2,3,4,5\n");
  EXPECT_THROW(read_scenario_csv(ss), std::runtime_error);
}

TEST(ScenarioCsv, MalformedRowThrows) {
  std::stringstream ss(
      "run,actual_size,estimate,windowed,messages\n1,2,3\n");
  EXPECT_THROW(read_scenario_csv(ss), std::runtime_error);
}

TEST(ScenarioCsv, EmptyBodyIsValid) {
  std::stringstream ss("run,actual_size,estimate,windowed,messages\n");
  const auto r = read_scenario_csv(ss);
  EXPECT_TRUE(r.points.empty());
  EXPECT_EQ(r.total_messages, 0u);
}

TEST(ScenarioCsv, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/overcount_trace.csv";
  save_scenario_csv(path, sample_result());
  const auto back = load_scenario_csv(path);
  EXPECT_EQ(back.points.size(), 3u);
  std::remove(path.c_str());
}

TEST(ScenarioCsv, MissingFileThrows) {
  EXPECT_THROW(load_scenario_csv("/no/such/dir/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace overcount

#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.hpp"

namespace overcount {
namespace {

TEST(ChurnJoin, BalancedRespectsDegreeCapOnTargets) {
  Rng rng(1);
  DynamicGraph g(balanced_random_graph(200, rng));
  for (int i = 0; i < 200; ++i)
    churn_join(g, TopologyKind::kBalanced, rng, 3, 10);
  EXPECT_EQ(g.num_alive(), 400u);
  EXPECT_TRUE(g.check_invariants());
  // Pre-existing nodes gained links only while below the cap; joiners add
  // at most 10 of their own.
  for (NodeId v : g.alive_nodes()) EXPECT_LE(g.degree(v), 11u);
}

TEST(ChurnJoin, ScaleFreePrefersHighDegree) {
  Rng rng(2);
  DynamicGraph g(barabasi_albert(300, 3, rng));
  NodeId hub = g.alive_nodes()[0];
  for (NodeId v : g.alive_nodes())
    if (g.degree(v) > g.degree(hub)) hub = v;
  const auto hub_degree_before = g.degree(hub);
  for (int i = 0; i < 300; ++i)
    churn_join(g, TopologyKind::kScaleFree, rng, 3, 10);
  // The hub keeps attracting new links at a super-uniform rate.
  const double hub_gain =
      static_cast<double>(g.degree(hub) - hub_degree_before);
  const double uniform_expectation = 300.0 * 3.0 / 300.0;  // = 3 links
  EXPECT_GT(hub_gain, 2.0 * uniform_expectation);
  EXPECT_TRUE(g.check_invariants());
}

TEST(ChurnLeave, RemovesExactlyOneAliveNode) {
  Rng rng(3);
  DynamicGraph g(complete(10));
  churn_leave(g, rng);
  EXPECT_EQ(g.num_alive(), 9u);
  EXPECT_TRUE(g.check_invariants());
}

TEST(ScenarioSpecs, GradualDeltasMatchPaperShape) {
  const auto dec = gradual_decrease_spec(1000, 100, TopologyKind::kBalanced);
  ASSERT_EQ(dec.gradual.size(), 1u);
  EXPECT_EQ(dec.gradual[0].from_run, 30u);
  EXPECT_EQ(dec.gradual[0].to_run, 80u);
  EXPECT_EQ(dec.gradual[0].delta, -500);

  const auto inc = gradual_increase_spec(1000, 100, TopologyKind::kBalanced);
  EXPECT_EQ(inc.gradual[0].delta, 500);

  const auto cat = catastrophic_spec(1000, 100, TopologyKind::kBalanced);
  ASSERT_EQ(cat.sudden.size(), 3u);
  EXPECT_EQ(cat.sudden[0].at_run, 10u);
  EXPECT_EQ(cat.sudden[0].delta, -250);
  EXPECT_EQ(cat.sudden[2].delta, 250);
}

TEST(RunScenario, StaticScenarioTracksTruth) {
  ScenarioSpec spec;
  spec.initial_nodes = 400;
  spec.runs = 60;
  spec.topology = TopologyKind::kBalanced;
  const auto result =
      run_scenario(spec, sample_collide_estimate_fn(8.0, 10), 5, 42);
  ASSERT_EQ(result.points.size(), 60u);
  // After the window warms up, the windowed estimate stays within ~40% of
  // truth (relative std of a 5-window of l=10 estimates ~ 14%).
  for (std::size_t i = 10; i < result.points.size(); ++i) {
    const auto& p = result.points[i];
    EXPECT_NEAR(p.windowed, p.actual_size, 0.4 * p.actual_size)
        << "run " << i;
  }
  EXPECT_GT(result.total_messages, 0u);
}

TEST(RunScenario, GradualDecreaseEndsAtHalfPopulation) {
  auto spec = gradual_decrease_spec(600, 50, TopologyKind::kBalanced);
  spec.actual_size_every = 1;
  const auto result =
      run_scenario(spec, random_tour_estimate_fn(), 10, 7);
  // Population: 600 at run 0, 300 after run 40 (modulo component effects).
  EXPECT_GT(result.points[5].actual_size, 550.0);
  EXPECT_LT(result.points.back().actual_size, 330.0);
  EXPECT_GT(result.points.back().actual_size, 200.0);
}

TEST(RunScenario, GradualIncreaseEndsAtThreeHalves) {
  auto spec = gradual_increase_spec(400, 50, TopologyKind::kScaleFree);
  spec.actual_size_every = 1;
  const auto result =
      run_scenario(spec, random_tour_estimate_fn(), 10, 8);
  EXPECT_NEAR(result.points.back().actual_size, 600.0, 30.0);
}

TEST(RunScenario, CatastrophicAppliesSuddenSteps) {
  auto spec = catastrophic_spec(800, 40, TopologyKind::kBalanced);
  spec.actual_size_every = 1;
  const auto result =
      run_scenario(spec, random_tour_estimate_fn(), 1, 9);
  // After run 4: -200; after run 20: -200; after run 28: +200.
  EXPECT_GT(result.points[2].actual_size, 700.0);
  EXPECT_LT(result.points[10].actual_size, 650.0);
  EXPECT_LT(result.points[24].actual_size, 480.0);
  EXPECT_GT(result.points[35].actual_size, 520.0);
}

TEST(RunScenario, WindowedSeriesIsSmootherThanRaw) {
  ScenarioSpec spec;
  spec.initial_nodes = 300;
  spec.runs = 80;
  spec.topology = TopologyKind::kBalanced;
  const auto result =
      run_scenario(spec, random_tour_estimate_fn(), 20, 10);
  double raw_var = 0.0;
  double win_var = 0.0;
  const double n = 300.0;
  for (std::size_t i = 20; i < result.points.size(); ++i) {
    raw_var += std::pow(result.points[i].estimate - n, 2);
    win_var += std::pow(result.points[i].windowed - n, 2);
  }
  EXPECT_LT(win_var, raw_var);
}

TEST(RunScenario, DeterministicForFixedSeed) {
  ScenarioSpec spec;
  spec.initial_nodes = 200;
  spec.runs = 20;
  spec.topology = TopologyKind::kScaleFree;
  const auto a = run_scenario(spec, random_tour_estimate_fn(), 5, 11);
  const auto b = run_scenario(spec, random_tour_estimate_fn(), 5, 11);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points[i].estimate, b.points[i].estimate);
    EXPECT_DOUBLE_EQ(a.points[i].actual_size, b.points[i].actual_size);
  }
  EXPECT_EQ(a.total_messages, b.total_messages);
}

TEST(RunScenario, PreconditionsEnforced) {
  ScenarioSpec spec;
  spec.initial_nodes = 1;
  spec.runs = 10;
  EXPECT_THROW(run_scenario(spec, random_tour_estimate_fn(), 1, 1),
               precondition_error);
  spec.initial_nodes = 100;
  spec.runs = 0;
  EXPECT_THROW(run_scenario(spec, random_tour_estimate_fn(), 1, 1),
               precondition_error);
}

}  // namespace
}  // namespace overcount

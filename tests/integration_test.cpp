// Cross-subsystem integration: each test strings several modules together
// the way a downstream user would, so interface drift between layers breaks
// loudly here even when every unit suite passes.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/gap_diagnostics.hpp"
#include "core/monitor.hpp"
#include "core/overcount.hpp"
#include "protocols/sampling_protocol.hpp"
#include "sim/attributes.hpp"
#include "sim/scenario.hpp"
#include "sim/trace.hpp"
#include "util/tests.hpp"
#include "walk/exact.hpp"
#include "walk/hitting.hpp"

namespace overcount {
namespace {

TEST(Integration, SaveLoadThenEstimate) {
  // Generate -> serialise -> reload -> the reloaded overlay yields the same
  // deterministic estimates as the original.
  Rng rng(1);
  const Graph g = largest_component(balanced_random_graph(600, rng));
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph loaded = read_edge_list(ss);

  Rng walk_a(99);
  Rng walk_b(99);
  for (int t = 0; t < 50; ++t) {
    EXPECT_DOUBLE_EQ(random_tour_size(g, 0, walk_a).value,
                     random_tour_size(loaded, 0, walk_b).value);
  }
}

TEST(Integration, SpectralPipelineConsistency) {
  // Lanczos gap vs sweep-cut conductance vs Cheeger, on a fresh overlay.
  Rng rng(2);
  const Graph g = largest_component(balanced_random_graph(1500, rng));
  const double gap = spectral_gap_lanczos(g, 150);
  const auto sweep = sweep_cut(g, fiedler_vector(g, 150));
  // The sweep cut's expansion upper-bounds the true h, and Cheeger's upper
  // bound with the TRUE h must cover lambda_2; with sweep-h >= h the bound
  // can only be looser, so it must hold:
  EXPECT_LE(gap, 2.0 * sweep.expansion + 1e-9);
  // The walk-side upper bound from tour variance covers the true gap too.
  Rng walk_rng(3);
  const auto diag = gap_upper_bound_from_tour_variance(g, 0, 1500, walk_rng);
  EXPECT_GE(diag.lambda2, 0.8 * gap);
}

TEST(Integration, TimerBudgetFeedsSamplingQuality) {
  // gap -> timer -> S&C: the full recipe from the README, checked end to
  // end against the true size.
  Rng rng(4);
  const Graph g = largest_component(k_out_graph(3000, 3, rng));
  const double n = static_cast<double>(g.num_nodes());
  const double timer = recommended_ctrw_timer(n, spectral_gap_lanczos(g, 120));
  SampleCollideEstimator sc(g, 0, timer, 30, rng.split());
  RunningStats values;
  for (int trial = 0; trial < 10; ++trial) values.add(sc.estimate().simple);
  EXPECT_NEAR(values.mean(), n, 4.0 * values.stddev() / std::sqrt(10.0));
}

TEST(Integration, ScenarioToCsvToMonitor) {
  // Run a catastrophic scenario, persist it, reload it, and replay the raw
  // estimates through the SizeMonitor: the change detector must fire for
  // each sudden event and track the new levels.
  auto spec = catastrophic_spec(3000, 90, TopologyKind::kBalanced);
  spec.actual_size_every = 1;
  const auto result =
      run_scenario(spec, sample_collide_estimate_fn(8.0, 50), 1, 77);

  std::stringstream ss;
  write_scenario_csv(ss, result);
  const auto reloaded = read_scenario_csv(ss);
  ASSERT_EQ(reloaded.points.size(), result.points.size());

  MonitorConfig config;
  config.window = 30;
  config.estimate_rel_std = 1.0 / std::sqrt(50.0);
  SizeMonitor monitor(config);
  for (const auto& p : reloaded.points) monitor.feed(p.estimate);
  // Three sudden events (-25%, -25%, +33%-of-current); each is a >= 2 sigma
  // shift for l=50 noise, so the CUSUM should flag at least two and the
  // final level should be tracked.
  EXPECT_GE(monitor.changes_detected(), 2u);
  EXPECT_NEAR(monitor.value(), reloaded.points.back().actual_size,
              0.25 * reloaded.points.back().actual_size);
}

TEST(Integration, ProtocolAndDirectPathsAgree) {
  // The DES-based sampling protocol and the direct CtrwSampler must induce
  // statistically identical collision processes; compare their S&C
  // estimate distributions with a KS test.
  Rng rng(5);
  DynamicGraph graph(largest_component(balanced_random_graph(500, rng)));
  // Record the topology version with the snapshot: the comparison below is
  // only apples-to-apples while the live graph has not drifted from what
  // the direct path measured (no churn runs here, and the assertion at the
  // end pins that).
  const std::uint64_t snapshot_version = graph.version();
  const Graph snapshot = graph.snapshot();

  std::vector<double> direct;
  SampleCollideEstimator est(snapshot, 0, 8.0, 8, rng.split());
  for (int trial = 0; trial < 40; ++trial)
    direct.push_back(est.estimate().simple);

  std::vector<double> protocol;
  Simulator sim;
  Network net(sim, graph, {1.0, 0.0}, 0.0, rng.split());
  SampleCollideProtocol proto(net, 8.0, 8, rng.split());
  int remaining = 40;
  std::function<void(const SampleCollideProtocol::Result&)> on_done =
      [&](const SampleCollideProtocol::Result& r) {
        protocol.push_back(r.estimate.simple);
        if (--remaining > 0) proto.start(0, on_done);
      };
  proto.start(0, on_done);
  sim.run();

  const Ecdf a(std::move(direct));
  const Ecdf b(std::move(protocol));
  // Two-sample KS at n = m = 40: reject only blatant mismatches.
  EXPECT_LT(a.ks_distance(b), 0.35);
  // The live graph must not have drifted from the recorded snapshot
  // version, or the two distributions measured different populations.
  EXPECT_EQ(graph.version(), snapshot_version);
}

TEST(Integration, AttributeAggregationThroughChurn) {
  // Attributes stay consistent under churn because they are a pure
  // function of the node id; estimate a class count mid-churn.
  Rng rng(6);
  DynamicGraph g(largest_component(balanced_random_graph(800, rng)));
  const PeerAttributes attrs(55);
  Rng churn_rng = rng.split();
  for (int k = 0; k < 200; ++k) churn_leave(g, churn_rng);
  for (int k = 0; k < 100; ++k)
    churn_join(g, TopologyKind::kBalanced, churn_rng, 3, 10);

  // Ground truth over the probing node's component.
  NodeId probe = g.random_alive_node(churn_rng);
  while (g.degree(probe) == 0) probe = g.random_alive_node(churn_rng);
  double truth = 0.0;
  for (NodeId v : g.component_nodes(probe))
    if (attrs.of(v).link != LinkClass::kDialup) truth += 1.0;

  Rng est_rng = rng.split();
  const auto est = estimate_count(
      g, probe,
      [&attrs](NodeId v) {
        return attrs.of(v).link != LinkClass::kDialup;
      },
      4000, est_rng);
  EXPECT_NEAR(est.value, truth, 5.0 * est.standard_error + 1e-9);
}

TEST(Integration, ExactMachineryValidatesMonteCarlo) {
  // The exact tour moments (linear solve), the exact CTRW distribution
  // (uniformisation), and the simulated walks must agree on one graph.
  Rng rng(7);
  const Graph g = largest_component(erdos_renyi_gnp(35, 0.2, rng));
  const auto moments = exact_tour_moments(g, 0);
  EXPECT_NEAR(moments.mean, static_cast<double>(g.num_nodes()), 1e-6);

  const double t = 3.0;
  const auto dist = ctrw_distribution(g, 0, t);
  std::vector<std::size_t> counts(g.num_nodes(), 0);
  const int draws = 30000;
  for (int i = 0; i < draws; ++i) ++counts[ctrw_sample(g, 0, t, rng).node];
  std::vector<double> observed(counts.begin(), counts.end());
  std::vector<double> expected(g.num_nodes());
  for (std::size_t v = 0; v < expected.size(); ++v)
    expected[v] = dist[v] * draws;
  const auto chi = chi_square_test(observed, expected);
  EXPECT_GT(chi.p_value, 1e-4) << "stat=" << chi.statistic;
}

}  // namespace
}  // namespace overcount

// Flight-recorder bundles must be self-contained and machine-valid: the
// manifest (schema 1) lists exactly the files written, every listed file
// exists and parses, health events survive as line-parseable JSONL, and the
// auto-dump wiring honours its severity floor and rate limit. These are the
// same properties scripts/validate_flight.py enforces on CI bundles.
#include "obs/health/flight.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/health/health.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace overcount {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string fresh_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

TEST(FlightRecorder, EmptyDirDisablesDumping) {
  FlightRecorder recorder("");
  EXPECT_FALSE(recorder.enabled());
  EXPECT_EQ(recorder.dump("anything"), "");
  EXPECT_EQ(recorder.dumps(), 0u);
}

TEST(FlightRecorder, BundleIsSelfContainedAndParses) {
  MetricsRegistry registry;
  registry.counter("shard.handoffs").add(12);
  registry.histogram("shard.mailbox_depth").record(3);

  TraceRecorder trace(64);
  trace.record_instant("shard", "superstep");
  trace.record_complete("shard", "shard.run_tours", 0);

  HealthCenter center;
  center.raise(HealthSeverity::kCritical, "shard.superstep_stall", "shard",
               "no beat for 2s", 2e6, 1e6);

  TimeSeriesRecorder series("size");
  series.record(10, 1000, 99.5, 4.0);

  FlightRecorder recorder(fresh_dir("flight_bundle_test"));
  ASSERT_TRUE(recorder.enabled());
  recorder.attach_metrics(&registry);
  recorder.attach_trace(&trace);
  recorder.attach_health(&center);
  recorder.attach_timeseries(&series);

  const std::string bundle = recorder.dump("unit.test-reason");
  ASSERT_FALSE(bundle.empty());
  EXPECT_EQ(recorder.dumps(), 1u);
  // The reason lands (sanitised) in the bundle directory name, so a human
  // listing OVERCOUNT_FLIGHT_DIR can tell the dumps apart.
  EXPECT_NE(bundle.find("unit.test-reason"), std::string::npos);

  const JsonValue manifest = parse_json(slurp(fs::path(bundle) / "manifest.json"));
  ASSERT_TRUE(manifest.is_object());
  EXPECT_EQ(manifest.find("schema")->as_number(), 1.0);
  EXPECT_EQ(manifest.find("reason")->as_string(), "unit.test-reason");
  // Provenance keys a post-mortem needs: the producing revision and the
  // bench schema its artifacts pair with (validate_flight.py requires
  // both).
  ASSERT_NE(manifest.find("git_rev"), nullptr);
  EXPECT_FALSE(manifest.find("git_rev")->as_string().empty());
  ASSERT_NE(manifest.find("bench_schema"), nullptr);
  EXPECT_EQ(manifest.find("bench_schema")->as_number(), 1.0);
  ASSERT_NE(manifest.find("files"), nullptr);
  const auto& files = manifest.find("files")->as_array();
  // Four attached sources, plus the profile folded from the trace ring.
  ASSERT_EQ(files.size(), 5u);
  for (const JsonValue& f : files)
    EXPECT_TRUE(fs::exists(fs::path(bundle) / f.as_string()))
        << f.as_string();

  // metrics.json round-trips through the parser with the counters intact.
  const JsonValue metrics = parse_json(slurp(fs::path(bundle) / "metrics.json"));
  const JsonValue* counters = metrics.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("shard.handoffs")->as_number(), 12.0);

  // trace.json is Chrome trace_event format: a traceEvents array.
  const JsonValue tr = parse_json(slurp(fs::path(bundle) / "trace.json"));
  ASSERT_NE(tr.find("traceEvents"), nullptr);
  EXPECT_TRUE(tr.find("traceEvents")->is_array());

  // health_events.jsonl: one parseable object per line, our event included.
  std::ifstream jsonl(fs::path(bundle) / "health_events.jsonl");
  std::string line;
  std::size_t lines = 0;
  bool saw_stall = false;
  while (std::getline(jsonl, line)) {
    const JsonValue event = parse_json(line);
    if (event.find("code")->as_string() == "shard.superstep_stall")
      saw_stall = true;
    ++lines;
  }
  EXPECT_EQ(lines, 1u);
  EXPECT_TRUE(saw_stall);

  // A second dump gets its own sequence number and directory.
  const std::string second = recorder.dump("unit.test-reason");
  EXPECT_NE(second, bundle);
  EXPECT_EQ(recorder.dumps(), 2u);
}

TEST(FlightRecorder, AutoDumpHonoursSeverityFloorAndRateLimit) {
  HealthCenter center;
  FlightRecorder recorder(fresh_dir("flight_auto_test"));
  recorder.attach_health(&center);
  recorder.auto_dump_on(center, HealthSeverity::kCritical,
                        /*min_interval_us=*/60'000'000);

  // Below the floor: watched but never dumped.
  center.raise(HealthSeverity::kInfo, "a", "t", "m");
  center.raise(HealthSeverity::kWarn, "b", "t", "m");
  EXPECT_EQ(recorder.dumps(), 0u);

  // The first critical event dumps a bundle named after its code.
  center.raise(HealthSeverity::kCritical, "serve.slo_breach", "serve", "m");
  EXPECT_EQ(recorder.dumps(), 1u);

  // Criticals inside the rate-limit window are counted, not dumped: a
  // breach storm must not fill the disk with identical bundles.
  center.raise(HealthSeverity::kCritical, "serve.slo_breach", "serve", "m");
  center.raise(HealthSeverity::kCritical, "shard.superstep_stall", "shard",
               "m");
  EXPECT_EQ(recorder.dumps(), 1u);
  EXPECT_EQ(recorder.suppressed_dumps(), 2u);

  // The bundle that did land carries the triggering code in its name and
  // the full event history in its JSONL (including the suppressed ones'
  // predecessors).
  bool found = false;
  for (const auto& entry :
       fs::directory_iterator(fs::path(::testing::TempDir()) /
                              "flight_auto_test"))
    if (entry.path().filename().string().find("serve.slo_breach") !=
        std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace overcount

// The whole health stack keeps the bit-identity contract: running the
// sharded engine under a TraceRecorder + HealthCenter + Heartbeat +
// metrics + auditor produces ESTIMATES IDENTICAL to a bare run of the same
// (seed, m) — observability reads, never perturbs. And the tracing it
// produces is causally useful: one walk's flow events chain across >= 2
// shard handoffs, which is what lets Perfetto draw a single tour's path
// across shard lanes.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "core/parallel.hpp"
#include "graph/generators.hpp"
#include "obs/health/audit.hpp"
#include "obs/health/health.hpp"
#include "obs/health/watchdog.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "shard/engine.hpp"
#include "shard/partition.hpp"

namespace overcount {
namespace {

constexpr std::uint64_t kSeed = 0xFEEDBEEF;

Graph test_graph() {
  Rng rng(99);
  return balanced_random_graph(400, rng);
}

TEST(HealthIdentity, FullyInstrumentedRunIsBitIdentical) {
  const Graph g = test_graph();
  const std::size_t m = 48;
  const ShardPlan plan = make_shard_plan(g, 4);
  const ShardedGraph sharded(g, plan);

  // Reference: nothing attached, nothing installed.
  ParallelRunner bare_runner(4, 8);
  ShardedWalkEngine bare(sharded, bare_runner);
  const TourBatch reference =
      bare.run_tours(0, m, [](NodeId) { return 1.0; }, kSeed);

  // Instrumented: every observability hook this PR adds, all at once.
  MetricsRegistry registry;
  HealthCenter center(&registry);
  center.install();
  TraceRecorder trace;
  trace.install();
  Heartbeat hb;
  Watchdog dog(&center);
  dog.watch_heartbeat("shard.superstep_stall", "shard", &hb, 60'000'000);
  EstimateAuditor auditor(&registry, &center);

  ParallelRunner runner(4, 8);
  ShardedWalkEngine engine(sharded, runner, &registry);
  engine.set_heartbeat(&hb);
  const TourBatch observed =
      engine.run_tours(0, m, [](NodeId) { return 1.0; }, kSeed);
  auditor.observe("size", "random_tour", observed.sum, 0.3, 0.2, 1);
  dog.poll_once();

  trace.uninstall();
  center.uninstall();

  ASSERT_EQ(observed.tours.size(), reference.tours.size());
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_EQ(observed.tours[i].value, reference.tours[i].value);  // bitwise
    EXPECT_EQ(observed.tours[i].steps, reference.tours[i].steps);
  }
  EXPECT_EQ(observed.sum, reference.sum);
  EXPECT_EQ(observed.total_steps, reference.total_steps);

  // The instrumentation actually observed the run it left untouched.
  EXPECT_GT(hb.beats(), 0u);  // one beat per superstep
  EXPECT_FALSE(hb.armed());   // disarmed on batch exit
  EXPECT_EQ(dog.trips(), 0u);
  EXPECT_EQ(auditor.observations(), 1u);
  EXPECT_GT(registry.snapshot().counter_or_zero("shard.handoffs"), 0u);
}

TEST(HealthIdentity, WalkFlowsChainAcrossShardHandoffs) {
  const Graph g = test_graph();
  const ShardPlan plan = make_shard_plan(g, 4);
  const ShardedGraph sharded(g, plan);
  ParallelRunner runner(4, 8);
  MetricsRegistry registry;
  ShardedWalkEngine engine(sharded, runner, &registry);

  TraceRecorder trace;
  trace.install();
  engine.run_tours(0, 48, [](NodeId) { return 1.0; }, kSeed);
  trace.uninstall();

  // Count flow arrows the way Perfetto draws them: each consecutive pair of
  // flow events sharing an id is one link. A 4-shard batch of 48 walks on a
  // 400-node graph migrates constantly, so single walks must chain through
  // at least two handoffs ('s' at the seed, 't' per thaw, 'f' at retire).
  std::map<std::uint64_t, std::size_t> per_flow;
  std::size_t starts = 0, steps = 0, finishes = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase != 's' && e.phase != 't' && e.phase != 'f') continue;
    ASSERT_NE(e.flow, 0u);  // 0 is the "untraced" sentinel, never recorded
    ++per_flow[e.flow];
    if (e.phase == 's') ++starts;
    if (e.phase == 't') ++steps;
    if (e.phase == 'f') ++finishes;
  }
  // One flow start per SEEDED walk (a tour that completes inside the serial
  // seeding prologue never becomes a token), and every started flow retires.
  EXPECT_GT(starts, 0u);
  EXPECT_EQ(starts, finishes);
  EXPECT_GT(steps, 0u);  // thaws happened (every drained token steps its flow)
  std::size_t best_chain = 0;
  std::size_t links = 0;
  for (const auto& [flow, count] : per_flow) {
    if (count > 1) links += count - 1;
    best_chain = std::max(best_chain, count);
  }
  // >= 2 links within ONE walk's flow: seed -> handoff -> handoff, the
  // acceptance bar for "causal tracing links across shards".
  EXPECT_GE(best_chain, 3u);
  EXPECT_GE(links, 48u * 2u / 4u);  // and plenty of links overall
}

}  // namespace
}  // namespace overcount

// Watchdog semantics under a fully injected clock: a heartbeat that stops
// beating while armed trips exactly once per stall episode (a fresh beat
// re-arms it, disarming silences it), and a level check only trips after
// its threshold has been held for the sustain window — momentary spikes
// are normal, plateaus are the problem. Every trip is a kCritical
// HealthEvent through the wired center.
#include "obs/health/watchdog.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "obs/health/health.hpp"

namespace overcount {
namespace {

struct ManualClock {
  std::uint64_t now = 1'000'000;
  WatchdogConfig config() {
    WatchdogConfig cfg;
    cfg.now_us = [this] { return now; };
    return cfg;
  }
};

TEST(Watchdog, HeartbeatStallTripsOncePerEpisode) {
  HealthCenter center;
  ManualClock clock;
  Watchdog dog(&center, clock.config());
  Heartbeat hb;
  dog.watch_heartbeat("shard.superstep_stall", "shard", &hb, 500'000);

  hb.arm();
  hb.beat_at(clock.now);
  EXPECT_EQ(dog.poll_once(), 0u);  // fresh beat: healthy

  clock.now += 499'999;
  EXPECT_EQ(dog.poll_once(), 0u);  // just inside the allowance

  clock.now += 1;
  EXPECT_EQ(dog.poll_once(), 1u);  // 500 ms of silence while armed
  EXPECT_EQ(dog.trips(), 1u);
  // Still silent: the SAME stall episode must not re-alarm every poll.
  clock.now += 2'000'000;
  EXPECT_EQ(dog.poll_once(), 0u);
  EXPECT_EQ(dog.trips(), 1u);

  // Progress resumed, then stalled again: a new episode, a new trip.
  hb.beat_at(clock.now);
  EXPECT_EQ(dog.poll_once(), 0u);
  clock.now += 600'000;
  EXPECT_EQ(dog.poll_once(), 1u);
  EXPECT_EQ(dog.trips(), 2u);

  const auto events = center.recent();
  ASSERT_EQ(events.size(), 2u);
  for (const HealthEvent& e : events) {
    EXPECT_EQ(e.severity, HealthSeverity::kCritical);
    EXPECT_EQ(e.code, "shard.superstep_stall");
    EXPECT_EQ(e.subsystem, "shard");
    EXPECT_GE(e.value, 500'000.0);  // observed silence
    EXPECT_EQ(e.threshold, 500'000.0);
  }
}

TEST(Watchdog, DisarmedHeartbeatNeverAlarms) {
  HealthCenter center;
  ManualClock clock;
  Watchdog dog(&center, clock.config());
  Heartbeat hb;
  dog.watch_heartbeat("shard.superstep_stall", "shard", &hb, 100);
  // Never armed: an idle engine is not a stalled engine.
  clock.now += 10'000'000;
  EXPECT_EQ(dog.poll_once(), 0u);
  // Armed, stalled, then disarmed before the poll: batch finished, no alarm.
  hb.arm();
  hb.beat_at(clock.now);
  clock.now += 10'000'000;
  hb.disarm();
  EXPECT_EQ(dog.poll_once(), 0u);
  EXPECT_EQ(dog.trips(), 0u);
}

TEST(Watchdog, LevelCheckRequiresSustainedPlateau) {
  HealthCenter center;
  ManualClock clock;
  Watchdog dog(&center, clock.config());
  double depth = 0.0;
  dog.watch_level("serve.queue_saturated", "serve", [&] { return depth; },
                  8.0, 300'000);

  EXPECT_EQ(dog.poll_once(), 0u);  // below threshold

  depth = 10.0;  // spike begins
  EXPECT_EQ(dog.poll_once(), 0u);  // first sight starts the sustain timer
  clock.now += 200'000;
  EXPECT_EQ(dog.poll_once(), 0u);  // held 200 ms < 300 ms

  depth = 2.0;  // spike resolved before sustain elapsed
  EXPECT_EQ(dog.poll_once(), 0u);
  clock.now += 1'000'000;

  depth = 9.0;  // a real plateau this time
  EXPECT_EQ(dog.poll_once(), 0u);  // timer restarted from here
  clock.now += 300'000;
  EXPECT_EQ(dog.poll_once(), 1u);
  EXPECT_EQ(dog.trips(), 1u);
  clock.now += 300'000;
  EXPECT_EQ(dog.poll_once(), 0u);  // once per episode

  // Recovery re-arms; the next sustained plateau is a fresh episode.
  depth = 0.0;
  EXPECT_EQ(dog.poll_once(), 0u);
  depth = 20.0;
  EXPECT_EQ(dog.poll_once(), 0u);
  clock.now += 300'000;
  EXPECT_EQ(dog.poll_once(), 1u);
  EXPECT_EQ(dog.trips(), 2u);

  const auto events = center.recent();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].code, "serve.queue_saturated");
  EXPECT_EQ(events[0].severity, HealthSeverity::kCritical);
  EXPECT_EQ(events[1].value, 20.0);
  EXPECT_EQ(events[1].threshold, 8.0);
}

TEST(Watchdog, ZeroSustainTripsOnFirstSight) {
  HealthCenter center;
  ManualClock clock;
  Watchdog dog(&center, clock.config());
  double level = 100.0;
  dog.watch_level("serve.queue_saturated", "serve", [&] { return level; },
                  8.0, 0);
  EXPECT_EQ(dog.poll_once(), 1u);
  EXPECT_EQ(dog.trips(), 1u);
}

TEST(Watchdog, BackgroundThreadStartStopIsIdempotent) {
  // Smoke for the threaded path the examples use: start twice, stop twice,
  // destructor stops again. poll cadence is fast so the thread spins a bit.
  HealthCenter center;
  WatchdogConfig cfg;
  cfg.poll_period_us = 1'000;
  Watchdog dog(&center, cfg);
  Heartbeat hb;  // never armed: no trips expected
  dog.watch_heartbeat("shard.superstep_stall", "shard", &hb, 1);
  dog.start();
  dog.start();
  dog.stop();
  dog.stop();
  EXPECT_EQ(dog.trips(), 0u);
}

}  // namespace
}  // namespace overcount

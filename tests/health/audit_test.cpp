// EstimateAuditor: the delivered-accuracy checks must stay silent on a
// stream that honours its (epsilon, delta) promise, trip when the empirical
// scatter exceeds the promised envelope, reset on topology churn (a version
// bump changes the truth), and flag two methods that disagree about the
// same quantity. SloLedger: window hit-rate and error-budget-burn math,
// one kCritical serve.slo_breach per episode with hysteresis re-arm, and
// rejections tracked without burning budget.
#include "obs/health/audit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/health/health.hpp"
#include "obs/metrics.hpp"

namespace overcount {
namespace {

AuditConfig tight_audit() {
  AuditConfig config;
  config.window = 32;
  config.min_samples = 8;
  config.slack = 3.0;
  return config;
}

TEST(EstimateAuditor, HonestStreamNeverTrips) {
  MetricsRegistry registry;
  EstimateAuditor auditor(&registry, nullptr, tight_audit());
  // Estimates scattered well inside a generous envelope: +-2% around 1000
  // under an eps=0.3 promise.
  const double values[] = {990, 1010, 1005, 995, 1000, 1008, 992, 1001,
                           998,  1012, 988,  1003};
  for (const double v : values)
    auditor.observe("size", "random_tour", v, 0.3, 0.2, 1);
  EXPECT_EQ(auditor.observations(), 12u);
  EXPECT_EQ(auditor.confidence_trips(), 0u);
  EXPECT_EQ(auditor.variance_trips(), 0u);
  EXPECT_EQ(auditor.divergence_trips(), 0u);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or_zero("audit.observations"), 12u);
  // The per-stream window gauges expose the state the checks ran against.
  double mean = 0.0;
  bool found = false;
  for (const auto& [name, v] : snap.gauges)
    if (name == "audit.size.random_tour.mean") {
      mean = v;
      found = true;
    }
  ASSERT_TRUE(found);
  EXPECT_NEAR(mean, 1000.0, 15.0);
}

TEST(EstimateAuditor, GrossExceedanceTripsTheConfidenceAudit) {
  HealthCenter center;
  EstimateAuditor auditor(nullptr, &center, tight_audit());
  // A stream promising eps=0.01 (1%) but swinging +-33% around its mean:
  // every window entry exceeds its promised envelope, far beyond the
  // Binomial(n, delta) allowance.
  for (int i = 0; i < 16; ++i)
    auditor.observe("size", "random_tour", i % 2 == 0 ? 100.0 : 200.0, 0.01,
                    0.05, 1);
  EXPECT_GE(auditor.confidence_trips(), 1u);
  bool saw = false;
  for (const HealthEvent& e : center.recent()) {
    EXPECT_EQ(e.severity, HealthSeverity::kWarn);  // alarms, not crashes
    EXPECT_EQ(e.subsystem, "audit");
    if (e.code == "audit.confidence_envelope") saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(EstimateAuditor, CorrelatedHalvesTripTheVarianceAudit) {
  HealthCenter center;
  EstimateAuditor auditor(nullptr, &center, tight_audit());
  // Each entry individually honours its eps=0.1 promise (deviation 9% of
  // the mean), so the confidence audit stays quiet — but the deviations are
  // perfectly correlated with parity, so the even/odd half-means sit a full
  // 18% apart while independent halves of k entries should differ by
  // ~ eps * sqrt(2/k). The split-sample check is what catches this.
  for (int i = 0; i < 16; ++i)
    auditor.observe("size", "random_tour", i % 2 == 0 ? 91.0 : 109.0, 0.1,
                    0.3, 1);
  EXPECT_GE(auditor.variance_trips(), 1u);
  EXPECT_EQ(auditor.confidence_trips(), 0u);
  bool saw = false;
  for (const HealthEvent& e : center.recent())
    if (e.code == "audit.variance_envelope") saw = true;
  EXPECT_TRUE(saw);
}

TEST(EstimateAuditor, NoVerdictsBelowMinSamples) {
  EstimateAuditor auditor(nullptr, nullptr, tight_audit());
  // Seven wildly inconsistent estimates — one short of min_samples, so the
  // auditor must withhold judgement.
  for (int i = 0; i < 7; ++i)
    auditor.observe("size", "random_tour", i % 2 == 0 ? 1.0 : 1000.0, 0.01,
                    0.05, 1);
  EXPECT_EQ(auditor.confidence_trips(), 0u);
  EXPECT_EQ(auditor.variance_trips(), 0u);
}

TEST(EstimateAuditor, TopologyVersionBumpResetsTheWindow) {
  EstimateAuditor auditor(nullptr, nullptr, tight_audit());
  // Six tight estimates at version 1, then six around a DIFFERENT mean at
  // version 2. Mixed they would trip everything; with the reset, neither
  // epoch reaches min_samples, so no verdicts.
  for (int i = 0; i < 6; ++i)
    auditor.observe("size", "random_tour", 100.0, 0.01, 0.05, 1);
  for (int i = 0; i < 6; ++i)
    auditor.observe("size", "random_tour", 500.0, 0.01, 0.05, 2);
  EXPECT_EQ(auditor.confidence_trips(), 0u);
  EXPECT_EQ(auditor.variance_trips(), 0u);
  // The version-2 window keeps filling: once it alone crosses min_samples
  // with honest data, it still stays quiet.
  for (int i = 0; i < 6; ++i)
    auditor.observe("size", "random_tour", 500.0, 0.01, 0.05, 2);
  EXPECT_EQ(auditor.confidence_trips(), 0u);
  EXPECT_EQ(auditor.variance_trips(), 0u);
}

TEST(EstimateAuditor, DisagreeingMethodsTripDivergence) {
  HealthCenter center;
  EstimateAuditor auditor(nullptr, &center, tight_audit());
  // Each method is perfectly self-consistent (no variance/confidence trips)
  // but they disagree by 2x — far beyond their combined eps=0.05 envelopes.
  for (int i = 0; i < 8; ++i)
    auditor.observe("size", "random_tour", 100.0, 0.05, 0.1, 1);
  for (int i = 0; i < 8; ++i)
    auditor.observe("size", "sample_collide", 200.0, 0.05, 0.1, 1);
  EXPECT_GE(auditor.divergence_trips(), 1u);
  EXPECT_EQ(auditor.variance_trips(), 0u);
  bool saw = false;
  for (const HealthEvent& e : center.recent())
    if (e.code == "audit.method_divergence") saw = true;
  EXPECT_TRUE(saw);
}

SloPolicy tight_slo() {
  SloPolicy policy;
  policy.target = 0.9;  // one miss allowed per 10-request window
  policy.window = 10;
  policy.min_requests = 5;
  return policy;
}

TEST(SloLedger, HitRateAndBurnFollowTheWindow) {
  MetricsRegistry registry;
  SloLedger ledger(&registry, nullptr, tight_slo());
  EXPECT_TRUE(std::isnan(ledger.hit_rate("size.random_tour.deadline")));
  for (int i = 0; i < 8; ++i)
    ledger.record("size.random_tour.deadline", SloOutcome::kOk, 1000);
  EXPECT_EQ(ledger.hit_rate("size.random_tour.deadline"), 1.0);
  EXPECT_EQ(ledger.budget_burn("size.random_tour.deadline"), 0.0);
  ledger.record("size.random_tour.deadline", SloOutcome::kDeadlineMiss, 9000);
  // 1 miss in a 10-slot window at target 0.9: the whole allowance is spent.
  EXPECT_NEAR(ledger.hit_rate("size.random_tour.deadline"), 8.0 / 9.0, 1e-12);
  EXPECT_NEAR(ledger.budget_burn("size.random_tour.deadline"), 1.0, 1e-12);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(
      snap.counter_or_zero("serve.slo.size.random_tour.deadline.requests"),
      9u);
  EXPECT_EQ(snap.counter_or_zero("serve.slo.size.random_tour.deadline.ok"),
            8u);
  EXPECT_EQ(snap.counter_or_zero(
                "serve.slo.size.random_tour.deadline.deadline_misses"),
            1u);
}

TEST(SloLedger, BreachRaisesOncePerEpisodeWithHysteresis) {
  HealthCenter center;
  SloLedger ledger(nullptr, &center, tight_slo());
  const char* cls = "size.random_tour.deadline";
  for (int i = 0; i < 5; ++i) ledger.record(cls, SloOutcome::kOk, 1000);
  ledger.record(cls, SloOutcome::kDeadlineMiss, 9000);  // burn hits 1.0
  EXPECT_EQ(ledger.breaches(), 1u);
  // Further misses inside the same breached episode raise nothing new.
  ledger.record(cls, SloOutcome::kDeadlineMiss, 9000);
  ledger.record(cls, SloOutcome::kDeadlineMiss, 9000);
  EXPECT_EQ(ledger.breaches(), 1u);
  // Recovery: a full window of hits pushes burn to 0 (< 0.5 re-arm point)…
  for (int i = 0; i < 10; ++i) ledger.record(cls, SloOutcome::kOk, 1000);
  EXPECT_EQ(ledger.budget_burn(cls), 0.0);
  // …so the next budget exhaustion is a NEW episode.
  ledger.record(cls, SloOutcome::kDeadlineMiss, 9000);
  EXPECT_EQ(ledger.breaches(), 2u);
  std::size_t critical = 0;
  for (const HealthEvent& e : center.recent())
    if (e.code == "serve.slo_breach") {
      EXPECT_EQ(e.severity, HealthSeverity::kCritical);
      EXPECT_EQ(e.subsystem, "serve");
      ++critical;
    }
  EXPECT_EQ(critical, 2u);
}

TEST(SloLedger, RejectionsAreTrackedButBurnNoBudget) {
  MetricsRegistry registry;
  SloLedger ledger(&registry, nullptr, tight_slo());
  const char* cls = "size.random_tour.besteffort";
  for (int i = 0; i < 20; ++i) ledger.record(cls, SloOutcome::kRejected, 0);
  // Load-shedding is not an SLO violation: no hit-rate sample, no burn, no
  // breach — but the request/rejected counters say it happened.
  EXPECT_TRUE(std::isnan(ledger.hit_rate(cls)));
  EXPECT_EQ(ledger.budget_burn(cls), 0.0);
  EXPECT_EQ(ledger.breaches(), 0u);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or_zero(
                "serve.slo.size.random_tour.besteffort.rejected"),
            20u);
  EXPECT_EQ(snap.counter_or_zero(
                "serve.slo.size.random_tour.besteffort.requests"),
            20u);
  EXPECT_EQ(
      snap.counter_or_zero("serve.slo.size.random_tour.besteffort.ok"), 0u);
}

}  // namespace
}  // namespace overcount
